//! The IR verifier and lint pass.
//!
//! Checks, in the order they were assigned codes:
//!
//! * **GA001** (error) — a textual block has no terminator. The in-memory
//!   IR cannot represent this (every [`gist_ir::BasicBlock`] owns exactly
//!   one terminator), so the check runs on `.gir` source text via
//!   [`verify_source`] before parsing.
//! * **GA002** (error) — a branch targets a nonexistent block.
//! * **GA003** (error) — a register use is not dominated by any definition.
//!   MiniC is not SSA, so the rule is: some definition of the register must
//!   appear earlier in the same block, in a strictly dominating block, or
//!   in the parameter list.
//! * **GA004** (error) — a direct call passes the wrong number of
//!   arguments (spawn routines take exactly one), or targets a
//!   nonexistent function.
//! * **GA005** (warning) — a block is unreachable from the function entry.
//! * **GA006** (warning) — a global is stored to but never read.
//! * **GA007** (warning) — a call binds the result of a callee that never
//!   returns a value.

use std::collections::{BTreeMap, BTreeSet};

use gist_ir::cfg::Cfg;
use gist_ir::dom::DomTree;
use gist_ir::parser::parse_program;
use gist_ir::{Callee, Function, GlobalId, Op, Operand, Program, Terminator, VarId};

use crate::diag::{sort_diagnostics, Diagnostic};
use crate::pass::{AnalysisCtx, Pass};

/// Runs every program-level verifier check (GA002–GA007) and returns the
/// sorted diagnostics. GA001 is textual; see [`verify_source`].
pub fn verify(program: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in &program.functions {
        verify_function(program, f, &mut diags);
    }
    lint_write_only_globals(program, &mut diags);
    sort_diagnostics(&mut diags);
    diags
}

fn verify_function(program: &Program, f: &Function, diags: &mut Vec<Diagnostic>) {
    if f.blocks.is_empty() {
        // Declared-but-undefined functions are legal (externs); nothing to
        // check inside them.
        return;
    }
    // GA002 first: branch targets must exist before a CFG can be built at
    // all, so the dominance-based checks below are skipped on failure.
    let mut bad_targets = false;
    for b in &f.blocks {
        for t in b.term.successors() {
            if t.index() >= f.blocks.len() {
                bad_targets = true;
                diags.push(
                    Diagnostic::error(
                        "GA002",
                        format!("branch in fn `{}` targets nonexistent block {t}", f.name),
                    )
                    .at(b.term.loc())
                    .in_func(f.id),
                );
            }
        }
    }
    let cfg_dom = if bad_targets {
        None
    } else {
        let cfg = Cfg::build(f);
        let dom = DomTree::dominators(&cfg);
        Some((cfg, dom))
    };

    // GA005: dead blocks.
    if let Some((cfg, _)) = &cfg_dom {
        for b in &f.blocks {
            if !cfg.reachable.get(b.id.index()).copied().unwrap_or(false) {
                diags.push(
                    Diagnostic::warning(
                        "GA005",
                        format!("block `{}` in fn `{}` is unreachable", b.label, f.name),
                    )
                    .at(b.term.loc())
                    .in_func(f.id),
                );
            }
        }
    }

    // Definition sites per register: (block, index-within-block).
    let mut defs: BTreeMap<VarId, Vec<(gist_ir::BlockId, usize)>> = BTreeMap::new();
    for b in &f.blocks {
        for (i, instr) in b.instrs.iter().enumerate() {
            if let Some(d) = instr.op.def() {
                defs.entry(d).or_default().push((b.id, i));
            }
        }
    }
    let params: BTreeSet<VarId> = f.params.iter().copied().collect();

    let dominated = |v: VarId, block: gist_ir::BlockId, index: usize| -> bool {
        if params.contains(&v) {
            return true;
        }
        let Some((_, dom)) = &cfg_dom else {
            return true; // no CFG: skip dominance checks (GA002 reported)
        };
        defs.get(&v).is_some_and(|sites| {
            sites
                .iter()
                .any(|&(db, di)| (db == block && di < index) || dom.strictly_dominates(db, block))
        })
    };

    for b in &f.blocks {
        // Dominance is meaningless in dead blocks (already GA005).
        let live = cfg_dom
            .as_ref()
            .is_some_and(|(cfg, _)| cfg.reachable.get(b.id.index()).copied().unwrap_or(false));
        for (i, instr) in b.instrs.iter().enumerate() {
            // GA003: every register use must be dominated by a definition.
            if live {
                for u in instr.op.uses() {
                    if let Operand::Var(v) = u {
                        if !dominated(v, b.id, i) {
                            diags.push(
                                Diagnostic::error(
                                    "GA003",
                                    format!(
                                        "use of register `{}` in fn `{}` is not dominated \
                                         by any definition",
                                        f.var_name(v),
                                        f.name
                                    ),
                                )
                                .at(instr.loc)
                                .in_func(f.id),
                            );
                        }
                    }
                }
            }
            // GA004: call arity and callee existence.
            let call = match &instr.op {
                Op::Call { callee, args, .. } => Some((callee, args.len(), "call")),
                Op::ThreadCreate { routine, .. } => Some((routine, 1, "spawn")),
                _ => None,
            };
            if let Some((Callee::Direct(target), nargs, what)) = call {
                if target.index() >= program.functions.len() {
                    diags.push(
                        Diagnostic::error(
                            "GA004",
                            format!(
                                "{what} in fn `{}` targets nonexistent function {target}",
                                f.name
                            ),
                        )
                        .at(instr.loc)
                        .in_func(f.id),
                    );
                } else {
                    let callee_fn = &program.functions[target.index()];
                    let want = callee_fn.params.len();
                    if want != nargs {
                        diags.push(
                            Diagnostic::error(
                                "GA004",
                                format!(
                                    "{what} in fn `{}` passes {nargs} argument{} to \
                                     `{}` which expects {want}",
                                    f.name,
                                    if nargs == 1 { "" } else { "s" },
                                    callee_fn.name
                                ),
                            )
                            .at(instr.loc)
                            .in_func(f.id),
                        );
                    }
                    // GA007: result bound from a callee that never returns
                    // a value.
                    if let Op::Call { dst: Some(_), .. } = &instr.op {
                        if !callee_fn.blocks.is_empty() && !returns_value(callee_fn) {
                            diags.push(
                                Diagnostic::warning(
                                    "GA007",
                                    format!(
                                        "call in fn `{}` binds the result of `{}`, \
                                         which never returns a value",
                                        f.name, callee_fn.name
                                    ),
                                )
                                .at(instr.loc)
                                .in_func(f.id),
                            );
                        }
                    }
                }
            }
        }
        // Terminator checks.
        if live {
            for u in b.term.uses() {
                if let Operand::Var(v) = u {
                    if !dominated(v, b.id, b.instrs.len()) {
                        diags.push(
                            Diagnostic::error(
                                "GA003",
                                format!(
                                    "use of register `{}` in fn `{}` is not dominated \
                                     by any definition",
                                    f.var_name(v),
                                    f.name
                                ),
                            )
                            .at(b.term.loc())
                            .in_func(f.id),
                        );
                    }
                }
            }
        }
    }
}

/// True if any `ret` in `f` carries a value.
fn returns_value(f: &Function) -> bool {
    f.blocks
        .iter()
        .any(|b| matches!(&b.term, Terminator::Ret { value: Some(_), .. }))
}

/// GA006: globals that are stored to but never read or otherwise used.
fn lint_write_only_globals(program: &Program, diags: &mut Vec<Diagnostic>) {
    let mut stored: BTreeSet<GlobalId> = BTreeSet::new();
    let mut otherwise_used: BTreeSet<GlobalId> = BTreeSet::new();
    for f in &program.functions {
        for b in &f.blocks {
            for instr in &b.instrs {
                if let Op::Store { addr, value } = &instr.op {
                    if let Operand::Global(g) = addr {
                        stored.insert(*g);
                    }
                    if let Operand::Global(g) = value {
                        otherwise_used.insert(*g);
                    }
                    continue;
                }
                for u in instr.op.uses() {
                    if let Operand::Global(g) = u {
                        otherwise_used.insert(g);
                    }
                }
            }
            for u in b.term.uses() {
                if let Operand::Global(g) = u {
                    otherwise_used.insert(g);
                }
            }
        }
    }
    for g in stored.difference(&otherwise_used) {
        let global = &program.globals[g.index()];
        diags.push(
            Diagnostic::warning(
                "GA006",
                format!("global `{}` is stored to but never read", global.name),
            )
            .at(global.loc),
        );
    }
}

/// The result of verifying a `.gir` source text.
#[derive(Debug)]
pub struct SourceVerification {
    /// The parsed program, when parsing succeeded.
    pub program: Option<Program>,
    /// All diagnostics: textual (GA001), parse errors (GA000), and
    /// program-level checks.
    pub diagnostics: Vec<Diagnostic>,
}

impl SourceVerification {
    /// True if the source is free of errors (warnings are allowed).
    pub fn is_clean(&self) -> bool {
        !crate::diag::has_errors(&self.diagnostics)
    }
}

/// Verifies `.gir` source text: first the textual block-structure check
/// (GA001 — only representable at the text level, since the in-memory IR
/// forces one terminator per block), then a parse, then [`verify`] on the
/// parsed program.
pub fn verify_source(name: &str, text: &str) -> SourceVerification {
    let mut diagnostics = missing_terminators(text);
    match parse_program(name, text) {
        Ok(program) => {
            diagnostics.extend(verify(&program));
            sort_diagnostics(&mut diagnostics);
            SourceVerification {
                program: Some(program),
                diagnostics,
            }
        }
        Err(e) => {
            // Parse errors are only worth reporting when the textual scan
            // did not already explain the malformation.
            if diagnostics.is_empty() {
                diagnostics.push(Diagnostic::error("GA000", format!("parse error: {e}")));
            }
            SourceVerification {
                program: None,
                diagnostics,
            }
        }
    }
}

/// GA001: scans textual function bodies for blocks whose last statement is
/// not a terminator (`br`, `condbr`, `ret`, `unreachable`).
fn missing_terminators(text: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut current_fn: Option<String> = None;
    // (label, line-number of label, last statement seen in the block)
    let mut block: Option<(String, usize, Option<String>)> = None;

    let mut close_block = |block: &mut Option<(String, usize, Option<String>)>, fn_name: &str| {
        if let Some((label, lineno, last)) = block.take() {
            let terminated = last.as_deref().map(is_terminator_stmt).unwrap_or(false);
            if !terminated {
                diags.push(Diagnostic::error(
                    "GA001",
                    format!(
                        "block `{label}` in fn `{fn_name}` (line {lineno}) has no \
                             terminator"
                    ),
                ));
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        if let Some(fn_name) = &current_fn {
            if line == "}" {
                let name = fn_name.clone();
                close_block(&mut block, &name);
                current_fn = None;
                continue;
            }
            if let Some(label) = line.strip_suffix(':') {
                if !label.contains(char::is_whitespace) {
                    let name = fn_name.clone();
                    close_block(&mut block, &name);
                    block = Some((label.to_owned(), lineno, None));
                    continue;
                }
            }
            match &mut block {
                Some((_, _, last)) => *last = Some(line.to_owned()),
                // Statements before any label: the implicit entry block.
                None => block = Some(("<entry>".to_owned(), lineno, Some(line.to_owned()))),
            }
        } else if let Some(rest) = line.strip_prefix("fn ") {
            let name = rest.split('(').next().unwrap_or(rest).trim().to_owned();
            current_fn = Some(name);
            block = None;
        }
    }
    diags
}

/// True if a textual statement is one of the four terminators.
fn is_terminator_stmt(stmt: &str) -> bool {
    let head = stmt.split_whitespace().next().unwrap_or("");
    matches!(head, "br" | "condbr" | "ret" | "unreachable")
}

/// [`verify`] packaged as a [`Pass`].
pub struct VerifierPass;

impl Pass for VerifierPass {
    fn name(&self) -> &'static str {
        "verify"
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> Vec<Diagnostic> {
        verify(cx.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::builder::ProgramBuilder;
    use gist_ir::{BlockId, FuncId};

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn ga001_missing_terminator_in_source_text() {
        let text = "\
fn main() {
entry:
  x = const 1
body:
  ret
}
";
        let v = verify_source("t", text);
        assert!(
            v.diagnostics.iter().any(|d| d.code == "GA001"),
            "expected GA001, got {:?}",
            v.diagnostics
        );
        assert!(!v.is_clean());
        let msg = &v
            .diagnostics
            .iter()
            .find(|d| d.code == "GA001")
            .unwrap()
            .message;
        assert!(msg.contains("entry") && msg.contains("main"), "{msg}");
    }

    #[test]
    fn ga002_bad_branch_target() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.function("main", &[]);
        let exit = f.new_block("exit");
        f.br(exit);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        let mut p = pb.finish().unwrap();
        if let Terminator::Br { target, .. } = &mut p.functions[0].blocks[0].term {
            *target = BlockId(42);
        } else {
            panic!("expected Br");
        }
        let diags = verify(&p);
        assert!(codes(&diags).contains(&"GA002"), "got {diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("bb42")));
    }

    #[test]
    fn ga003_undominated_use() {
        // `y` is defined only on the `then` path but used at the join.
        let text = "\
fn main() {
entry:
  c = const 0
  condbr c, then, join
then:
  y = const 7
  br join
join:
  z = add y, 1
  ret
}
";
        let v = verify_source("t", text);
        assert!(
            v.diagnostics.iter().any(|d| d.code == "GA003"),
            "expected GA003, got {:?}",
            v.diagnostics
        );
        // The same register dominated along every path is fine.
        let ok = "\
fn main() {
entry:
  y = const 1
  c = const 0
  condbr c, then, join
then:
  y = const 7
  br join
join:
  z = add y, 1
  ret
}
";
        assert!(verify_source("t", ok).is_clean());
    }

    #[test]
    fn ga004_call_arity_mismatch() {
        let mut pb = ProgramBuilder::new("t");
        let callee = {
            let mut g = pb.function("g", &["x"]);
            g.ret(None);
            g.finish()
        };
        let mut f = pb.function("main", &[]);
        f.call(None, Callee::Direct(callee), &[Operand::Const(1)]);
        f.ret(None);
        f.finish();
        let mut p = pb.finish().unwrap();
        // Drop the argument after validation so only the verifier sees it.
        if let Op::Call { args, .. } = &mut p.functions[1].blocks[0].instrs[0].op {
            args.clear();
        } else {
            panic!("expected Call");
        }
        let diags = verify(&p);
        assert!(codes(&diags).contains(&"GA004"), "got {diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("expects 1")));
    }

    #[test]
    fn ga004_spawn_routine_arity() {
        let mut pb = ProgramBuilder::new("t");
        let routine = {
            let mut r = pb.function("worker", &["arg"]);
            r.ret(None);
            r.finish()
        };
        let mut f = pb.function("main", &[]);
        f.spawn(None, Callee::Direct(routine), Operand::Const(0));
        f.ret(None);
        f.finish();
        let mut p = pb.finish().unwrap();
        // A routine that takes two parameters can't be spawned with one arg.
        p.functions[0].params = vec![VarId(0), VarId(1)];
        p.functions[0].var_names = vec!["arg".to_owned(), "extra".to_owned()];
        let diags = verify(&p);
        assert!(codes(&diags).contains(&"GA004"), "got {diags:?}");
    }

    #[test]
    fn ga004_nonexistent_callee() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.function("main", &[]);
        f.call(None, Callee::Direct(FuncId(0)), &[]);
        f.ret(None);
        f.finish();
        let mut p = pb.finish().unwrap();
        if let Op::Call { callee, .. } = &mut p.functions[0].blocks[0].instrs[0].op {
            *callee = Callee::Direct(FuncId(9));
        } else {
            panic!("expected Call");
        }
        let diags = verify(&p);
        assert!(codes(&diags).contains(&"GA004"), "got {diags:?}");
    }

    #[test]
    fn ga005_dead_block_is_a_warning() {
        let text = "\
fn main() {
entry:
  ret
orphan:
  ret
}
";
        let v = verify_source("t", text);
        let dead: Vec<_> = v.diagnostics.iter().filter(|d| d.code == "GA005").collect();
        assert_eq!(dead.len(), 1, "got {:?}", v.diagnostics);
        assert!(!dead[0].is_error());
        assert!(v.is_clean(), "warnings must not make verification fail");
    }

    #[test]
    fn ga006_write_only_global() {
        let text = "\
global counter = 0

fn main() {
entry:
  store $counter, 1
  ret
}
";
        let v = verify_source("t", text);
        assert!(v.diagnostics.iter().any(|d| d.code == "GA006"));
        assert!(v.is_clean());
    }

    #[test]
    fn ga007_result_from_void_callee() {
        let mut pb = ProgramBuilder::new("t");
        let callee = {
            let mut g = pb.function("g", &[]);
            g.ret(None);
            g.finish()
        };
        let mut f = pb.function("main", &[]);
        f.call(Some("r"), Callee::Direct(callee), &[]);
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let diags = verify(&p);
        assert!(codes(&diags).contains(&"GA007"), "got {diags:?}");
        assert!(!crate::diag::has_errors(&diags));
    }

    #[test]
    fn loop_carried_registers_are_dominated() {
        // `i` defined in entry, updated in the loop body: the body use of
        // `i` is dominated by the entry definition.
        let text = "\
fn main() {
entry:
  i = const 0
  br head
head:
  c = cmp lt i, 10
  condbr c, body, exit
body:
  i = add i, 1
  br head
exit:
  ret
}
";
        assert!(verify_source("t", text).is_clean());
    }
}
