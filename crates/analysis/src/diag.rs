//! Diagnostics produced by the static analyses.
//!
//! Every finding is a [`Diagnostic`] with a stable `GA0xx` code, a severity,
//! a message, and (when known) a source location resolved through the
//! program's [`gist_ir::SourceMap`]. [`render_report`] formats a batch the
//! way a compiler would:
//!
//! ```text
//! error[GA002]: branch in fn `cons` targets nonexistent block bb9
//!   --> pbzip2.c:1088
//! ```

use std::fmt;

use gist_ir::{FuncId, Program, SrcLoc};

/// How serious a diagnostic is. Errors mean the program is malformed;
/// warnings flag legal-but-suspicious IR.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The program violates an IR well-formedness rule.
    Error,
    /// The program is well-formed but the shape is suspicious.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One finding from a static analysis pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code, e.g. `"GA003"`.
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Source location of the offending statement (may be unknown).
    pub loc: SrcLoc,
    /// The function containing the finding, if any.
    pub func: Option<FuncId>,
    /// Supporting notes (e.g. the value-flow chain behind a lint finding),
    /// rendered as indented `note:` lines after the location.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates an error diagnostic with no location.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            loc: SrcLoc::UNKNOWN,
            func: None,
            notes: Vec::new(),
        }
    }

    /// Creates a warning diagnostic with no location.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            loc: SrcLoc::UNKNOWN,
            func: None,
            notes: Vec::new(),
        }
    }

    /// Attaches a source location.
    pub fn at(mut self, loc: SrcLoc) -> Self {
        self.loc = loc;
        self
    }

    /// Attaches the containing function.
    pub fn in_func(mut self, func: FuncId) -> Self {
        self.func = Some(func);
        self
    }

    /// Appends a supporting note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// True if this diagnostic is an error.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

/// True if any diagnostic in the batch is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

/// Renders a batch of diagnostics as a compiler-style report, resolving
/// locations through `program`'s source map when one is available.
pub fn render_report(program: Option<&Program>, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for d in diags {
        match d.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
        }
        out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
        let where_ = match program {
            Some(p) if !d.loc.is_unknown() => p.source_map.display(d.loc),
            _ if !d.loc.is_unknown() => d.loc.to_string(),
            _ => "<unknown>".to_owned(),
        };
        out.push_str(&format!("  --> {where_}\n"));
        for note in &d.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
    }
    out.push_str(&format!(
        "{errors} error{}, {warnings} warning{}\n",
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
    ));
    out
}

/// Sorts diagnostics for stable reporting: errors first, then by location,
/// then by code.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.severity, a.loc, a.code, &a.message).cmp(&(b.severity, b.loc, b.code, &b.message))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_code_and_counts() {
        let diags = vec![
            Diagnostic::error("GA002", "branch targets nonexistent block bb9"),
            Diagnostic::warning("GA005", "block `dead` is unreachable"),
        ];
        let report = render_report(None, &diags);
        assert!(report.contains("error[GA002]: branch targets nonexistent block bb9"));
        assert!(report.contains("warning[GA005]"));
        assert!(report.contains("1 error, 1 warning"));
    }

    #[test]
    fn errors_sort_before_warnings() {
        let mut diags = vec![
            Diagnostic::warning("GA005", "w"),
            Diagnostic::error("GA003", "e"),
        ];
        sort_diagnostics(&mut diags);
        assert!(diags[0].is_error());
        assert!(has_errors(&diags));
    }
}
