//! Static **predicted failure sketches**: the minimal two-thread
//! statement ordering behind each lint finding, derived purely from the
//! SVFG and the happens-before/MHP relation — no production run needed.
//!
//! The paper's failure sketch (Fig. 1) is a two-column timeline: the
//! statements from each thread that matter for the failure, in the
//! order that makes it fire. The dynamic pipeline reconstructs that
//! order from Intel PT and watchpoint hits; this module *predicts* it
//! from statics alone, so a predicted sketch can be diffed against the
//! dynamic golden sketch as a ground-truth gate on the analysis stack
//! (value flow + feasibility + ordering).
//!
//! One prediction is emitted per cross-thread lint finding, plus a
//! data-race fallback (the top-ranked race candidates) so racy programs
//! whose bug shape no detector names still get their ordering core
//! predicted. Every step carries the thread it runs on; programs with
//! no spawn — the sequential bugbase entries — produce **no**
//! predictions, because every candidate pair lands on one thread.

use gist_ir::icfg::{Icfg, Ticfg};
use gist_ir::{InstrId, Program};

use crate::lint::{
    atomicity_candidates, kind_at, lifetime_pairs, null_flows, order_violations, where_of,
    OrderViolationKind,
};
use crate::mhp::Mhp;
use crate::race::{analyze_with, AccessKind};

/// One step of a predicted sketch: a statement pinned to a thread slot.
#[derive(Clone, Debug)]
pub struct PredictedStep {
    /// Thread slot (1 or 2) in the two-column sketch.
    pub thread: usize,
    /// The statement.
    pub stmt: InstrId,
    /// Access kind label (`read`/`write`/`free`/`sync`/`access`).
    pub kind: &'static str,
    /// Rendered source location.
    pub loc: String,
    /// Role of the step in the failure ordering.
    pub note: &'static str,
}

/// A predicted two-thread failure ordering for one lint finding.
#[derive(Clone, Debug)]
pub struct PredictedSketch {
    /// The backing finding's code (`GA010` for the race fallback).
    pub code: &'static str,
    /// One-line description of the predicted failure.
    pub title: String,
    /// Labels of the two thread slots (`main` / `worker@<spawn loc>`).
    pub threads: [String; 2],
    /// The statement whose execution completes the failure.
    pub failing: InstrId,
    /// The ordering, failure-inducing first-to-last.
    pub steps: Vec<PredictedStep>,
}

struct SketchBuilder<'a> {
    program: &'a Program,
    mhp: &'a Mhp,
}

impl SketchBuilder<'_> {
    /// The display label of a thread context, with an instance counter
    /// when two live instances of one spawn site race each other.
    fn ctx_label(&self, ctx: usize, instance: Option<usize>) -> String {
        if ctx == 0 {
            return "main".to_owned();
        }
        let site = self.mhp.spawn_sites()[ctx - 1];
        match instance {
            Some(n) => format!("worker#{n}@{}", where_of(self.program, site)),
            None => format!("worker@{}", where_of(self.program, site)),
        }
    }

    /// Builds a sketch from side-annotated statements (side 0 maps to
    /// thread slot T1, side 1 to T2). The two sides must be certified
    /// parallel: some cross-side statement pair has to overlap under a
    /// concrete pair of thread contexts, which also names the columns.
    /// Returns `None` when no such pair exists — a one-thread ordering
    /// is not a sketch.
    fn build(
        &self,
        code: &'static str,
        title: String,
        failing: InstrId,
        stmts: &[(InstrId, usize, &'static str)],
    ) -> Option<PredictedSketch> {
        let mut pair: Option<(usize, usize)> = None;
        'outer: for &(a, sa, _) in stmts {
            for &(b, sb, _) in stmts {
                if sa == 0 && sb == 1 && self.mhp.may_happen_in_parallel(a, b) {
                    if let Some(p) = self.mhp.parallel_ctx_pair(a, b) {
                        pair = Some(p);
                        break 'outer;
                    }
                }
            }
        }
        let (c0, c1) = pair?;
        let threads = if c0 == c1 {
            [self.ctx_label(c0, Some(1)), self.ctx_label(c1, Some(2))]
        } else {
            [self.ctx_label(c0, None), self.ctx_label(c1, None)]
        };
        let steps = stmts
            .iter()
            .map(|&(s, side, note)| PredictedStep {
                thread: side + 1,
                stmt: s,
                kind: kind_at(self.program, s),
                loc: where_of(self.program, s),
                note,
            })
            .collect();
        Some(PredictedSketch {
            code,
            title,
            threads,
            failing,
            steps,
        })
    }
}

/// Predicts failure sketches for every cross-thread lint finding, plus
/// the top-ranked race candidates not already covered by one.
pub fn predicted_sketches(program: &Program) -> Vec<PredictedSketch> {
    let ticfg: Ticfg = Icfg::build_ticfg(program);
    let mhp = Mhp::compute(program, &ticfg);
    if !mhp.has_threads() {
        return Vec::new();
    }
    let b = SketchBuilder { program, mhp: &mhp };
    let mut out: Vec<PredictedSketch> = Vec::new();
    // Unordered statement pairs already carried by some sketch; the
    // race fallback skips these.
    let mut covered: Vec<(InstrId, InstrId)> = Vec::new();
    fn pair_key(a: InstrId, b: InstrId) -> (InstrId, InstrId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
    let cover = |covered: &mut Vec<(InstrId, InstrId)>, a: InstrId, b: InstrId| {
        covered.push(pair_key(a, b));
    };

    // GA024 order violations: the racing statement overtakes the one
    // that should come first.
    for v in order_violations(program, &ticfg) {
        let cell = v.origin.display(program);
        let (title, stmts): (String, [(InstrId, usize, &'static str); 2]) = match v.kind {
            OrderViolationKind::UseBeforeInit => (
                format!("order violation: read of {cell} before its initializing store"),
                [
                    (v.racing, 0, "reads the cell before it is initialized"),
                    (v.expected_first, 1, "initializing store lands too late"),
                ],
            ),
            OrderViolationKind::FreeBeforeUse => (
                format!("order violation: {cell} freed before its last use"),
                [
                    (v.racing, 0, "frees the cell early"),
                    (v.expected_first, 1, "uses the already-freed cell"),
                ],
            ),
        };
        let failing = stmts[1].0;
        if let Some(s) = b.build("GA024", title, failing, &stmts) {
            cover(&mut covered, v.racing, v.expected_first);
            out.push(s);
        }
    }

    // GA020/GA021 cross-thread lifetime pairs: free first, use second.
    for p in lifetime_pairs(program, &ticfg) {
        if !p.cross_thread {
            continue;
        }
        let double = kind_at(program, p.used) == "free";
        let cell = p.origin.display(program);
        let (code, title, use_note): (_, _, &'static str) = if double {
            (
                "GA021",
                format!("double free of {cell}"),
                "frees the cell a second time",
            )
        } else {
            (
                "GA020",
                format!("use of {cell} after its racing free"),
                "uses the freed cell",
            )
        };
        let stmts = [(p.free, 0, "frees the cell"), (p.used, 1, use_note)];
        if let Some(s) = b.build(code, title, p.used, &stmts) {
            cover(&mut covered, p.free, p.used);
            out.push(s);
        }
    }

    // GA022 atomicity candidates: the remote interleaves the local pair.
    for c in atomicity_candidates(program, &ticfg) {
        let cell = c.origin.display(program);
        let title = format!("atomicity violation ({}) on {cell}", c.pattern.label());
        let stmts = [
            (c.first, 0, "first local access"),
            (c.remote, 1, "remote access interleaves"),
            (c.second, 0, "second local access sees torn state"),
        ];
        if let Some(s) = b.build("GA022", title, c.second, &stmts) {
            cover(&mut covered, c.first, c.remote);
            cover(&mut covered, c.second, c.remote);
            out.push(s);
        }
    }

    // GA023 interleaved null flows: the cross-thread null store lands
    // before the load whose result is dereferenced.
    for n in null_flows(program, &ticfg) {
        if !n.interleaved {
            continue;
        }
        let title = "null dereference: a racing store of 0 reaches the pointer load".to_owned();
        let stmts = [
            (n.store, 0, "stores null"),
            (n.load, 1, "loads the null pointer"),
            (n.deref, 1, "dereferences it"),
        ];
        if let Some(s) = b.build("GA023", title, n.deref, &stmts) {
            cover(&mut covered, n.store, n.load);
            out.push(s);
        }
    }

    // Race fallback: the top-ranked candidates whose pairs no detector
    // claimed. The hazard side (free, else write) is listed first as a
    // canonical rendering, but a race prediction is *unordered*: the pair
    // has no happens-before edge, so either interleaving can be the
    // failing one — the dynamic sketch fixes the direction at runtime.
    let races = analyze_with(program, &ticfg);
    let mut emitted = 0usize;
    for c in &races.candidates {
        if emitted >= 2 {
            break;
        }
        let key = pair_key(c.first.stmt, c.second.stmt);
        if covered.contains(&key) {
            continue;
        }
        if !mhp.may_happen_in_parallel(c.first.stmt, c.second.stmt) {
            continue;
        }
        let hazard = |k: AccessKind| match k {
            AccessKind::Free => 2,
            AccessKind::Write => 1,
            _ => 0,
        };
        let (hazard_ep, victim_ep) = if hazard(c.first.kind) >= hazard(c.second.kind) {
            (&c.first, &c.second)
        } else {
            (&c.second, &c.first)
        };
        let cell = c.origin.display(program);
        let title = format!("data race on {cell}");
        let stmts = [
            (hazard_ep.stmt, 0, "racing access, unordered with step 2"),
            (
                victim_ep.stmt,
                1,
                "victim access, may run either side of it",
            ),
        ];
        if let Some(s) = b.build("GA010", title, victim_ep.stmt, &stmts) {
            cover(&mut covered, c.first.stmt, c.second.stmt);
            out.push(s);
            emitted += 1;
        }
    }

    out
}

/// Renders a predicted sketch in the two-column spirit of the dynamic
/// sketch report: a header naming the finding, the thread legend, and
/// one line per step in predicted failure order.
pub fn render_prediction(sketch: &PredictedSketch) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "predicted sketch [{}] {}\n",
        sketch.code, sketch.title
    ));
    s.push_str(&format!(
        "  T1 = {}, T2 = {}\n",
        sketch.threads[0], sketch.threads[1]
    ));
    for (i, step) in sketch.steps.iter().enumerate() {
        let marker = if step.stmt == sketch.failing {
            "  <- failure"
        } else {
            ""
        };
        s.push_str(&format!(
            "  step {} [T{}] {:<6} {}  ({}){}\n",
            i + 1,
            step.thread,
            step.kind,
            step.loc,
            step.note,
            marker
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::parser::parse_program;

    #[test]
    fn sequential_program_has_no_predictions() {
        let p = parse_program(
            "t",
            r#"
fn main() {
entry:
  p = alloc 1
  store p, 7
  free p
  v = load p
  print v
  ret
}
"#,
        )
        .unwrap();
        assert!(
            predicted_sketches(&p).is_empty(),
            "one thread cannot make a two-thread ordering"
        );
    }

    #[test]
    fn racing_free_predicts_free_before_use() {
        let p = parse_program(
            "t",
            r#"
fn cons(q) {
entry:
  m = load q
  lock m
  unlock m
  ret
}
fn main() {
entry:
  q = alloc 1
  mu = alloc 1
  store q, mu
  t = spawn cons(q)
  free mu
  store q, 0
  join t
  ret
}
"#,
        )
        .unwrap();
        let sketches = predicted_sketches(&p);
        let uaf = sketches
            .iter()
            .find(|s| s.code == "GA020")
            .expect("racing free predicted");
        assert_eq!(uaf.steps.len(), 2);
        assert_eq!(uaf.steps[0].kind, "free");
        assert_ne!(
            uaf.steps[0].thread, uaf.steps[1].thread,
            "the two steps sit on different threads"
        );
        assert_eq!(uaf.failing, uaf.steps[1].stmt);
        let text = render_prediction(uaf);
        assert!(text.contains("predicted sketch [GA020]"), "{text}");
        assert!(text.contains("<- failure"), "{text}");
    }

    #[test]
    fn unlocked_counter_predicts_interleaved_remote() {
        let p = parse_program(
            "t",
            r#"
global counter = 0
global lk = 0
fn worker(arg) {
entry:
  lock $lk
  v = load $counter
  w = add v, 1
  store $counter, w
  unlock $lk
  ret
}
fn main() {
entry:
  t = spawn worker(0)
  a = load $counter
  b = add a, 1
  store $counter, b
  join t
  ret
}
"#,
        )
        .unwrap();
        let sketches = predicted_sketches(&p);
        let av = sketches
            .iter()
            .find(|s| s.code == "GA022")
            .expect("atomicity prediction");
        assert_eq!(av.steps.len(), 3);
        assert_ne!(
            av.steps[0].thread, av.steps[1].thread,
            "the remote step is on the other thread"
        );
        assert_eq!(av.steps[0].thread, av.steps[2].thread);
    }

    #[test]
    fn plain_race_falls_back_to_ga010_prediction() {
        // No lock anywhere, both sides write: no GA022 candidate (no
        // inconsistent locking), but the race fallback still predicts
        // the two-thread core.
        let p = parse_program(
            "t",
            r#"
global g = 0
fn worker(arg) {
entry:
  store $g, 1
  ret
}
fn main() {
entry:
  t = spawn worker(0)
  store $g, 2
  v = load $g
  print v
  join t
  ret
}
"#,
        )
        .unwrap();
        let sketches = predicted_sketches(&p);
        assert!(
            sketches.iter().any(|s| s.code == "GA010"),
            "fallback covers plain races: {:?}",
            sketches.iter().map(|s| s.code).collect::<Vec<_>>()
        );
    }
}
