//! The `gist-lint` detector suite: static bug detectors built on the
//! sparse value-flow graph ([`crate::svfg::Svfg`]) and the
//! may-happen-in-parallel relation ([`crate::mhp::Mhp`]).
//!
//! Four detector families, each reporting rustc-style diagnostics whose
//! `note:` lines spell out the value-flow chain behind the finding:
//!
//! * **Lifetime** ([`UafLintPass`]) — `GA020` use-after-free and `GA021`
//!   double-free. Same-thread findings come from a forward TICFG walk
//!   from each `free`, stopped at re-executions of the freed cell's
//!   allocation site (so a free-then-realloc loop is not a false
//!   positive); cross-thread findings come from race candidates with a
//!   `free` endpoint (the pbzip2 shape: the mutex freed under a thread
//!   still locking it), screened by the MHP relation so a free that is
//!   ordered after the last use (a free past the `join`, say) no longer
//!   surfaces.
//! * **Atomicity** ([`AtomicityLintPass`]) — `GA022`
//!   atomicity-violation candidates: a shared cell accessed both with
//!   and without lock protection, where a remote access can interleave
//!   between two same-thread accesses. Candidates are classified and
//!   ranked by the classic access-interleaving patterns
//!   ([`AvPattern`]: RWR, WWR, RWW, WRW); remotes that cannot overlap
//!   the local window (MHP-negative against both endpoints) are
//!   dropped.
//! * **Null flow** ([`NullFlowLintPass`]) — `GA023` Casper-style null
//!   provenance: a stored constant zero that flows along SVFG memory
//!   edges into a load whose result is then dereferenced. A branch that
//!   checks the loaded pointer against zero on every path to the
//!   dereference suppresses the finding; an interleaved (cross-thread)
//!   null store that is ordered *after* the dereference cannot reach it
//!   and is dropped.
//! * **Ordering** ([`OrderLintPass`]) — `GA024` order violations:
//!   cross-thread use-before-init (a heap load with a may-parallel
//!   initializing store and no store ordered before it) and
//!   free-before-last-use (an unordered free/use pair the race arm
//!   cannot see because a common lock hides it — locks serialize, they
//!   do not order).
//!
//! All four are silent on sequential memory-safe programs by
//! construction: the cross-thread arms need shared origins / race
//! candidates / an MHP relation with actual threads, and the
//! same-thread arms need a real free→use path or a null store that
//! actually reaches a dereference.
//!
//! When several SVFG chains reach the same (finding, statement) pair,
//! the shortest chain (resolved deterministically by source location,
//! then statement id) backs the diagnostic, and literally duplicated
//! note lines are removed while preserving note order.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use gist_ir::icfg::Ticfg;
use gist_ir::{FuncId, InstrId, Op, Operand, Program, SrcLoc};

use crate::dataflow::{ConstProp, ConstVal};
use crate::diag::Diagnostic;
use crate::mhp::{Mhp, OrderFact};
use crate::pass::{AnalysisCtx, Pass, PassManager};
use crate::points_to::{Loc, MemOrigin, PointsTo};
use crate::race::{analyze_with, locksets_with, AccessKind};
use crate::svfg::{Svfg, SvfgEdgeKind};

/// The atomicity-violation interleaving patterns, in rank order (most
/// failure-prone first, per the AVIO-style classification): the letters
/// are (local access, remote access, local access).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AvPattern {
    /// read — remote write — read: the two local reads see different
    /// values of what should be one consistent snapshot.
    Rwr,
    /// write — remote write — read: the local read gets the remote value
    /// instead of its own thread's write.
    Wwr,
    /// read — remote write — write: the local write clobbers the remote
    /// one based on a stale read.
    Rww,
    /// write — remote read — write: the remote read observes an
    /// intermediate value between two local writes.
    Wrw,
}

impl AvPattern {
    /// Classifies a (local, remote, local) access triple, if it matches
    /// one of the four serializability-violating patterns. Frees count as
    /// writes.
    pub fn classify(
        first: AccessKind,
        remote: AccessKind,
        second: AccessKind,
    ) -> Option<AvPattern> {
        let w = |k: AccessKind| matches!(k, AccessKind::Write | AccessKind::Free);
        let r = |k: AccessKind| matches!(k, AccessKind::Read);
        match (first, remote, second) {
            (f, rem, s) if r(f) && w(rem) && r(s) => Some(AvPattern::Rwr),
            (f, rem, s) if w(f) && w(rem) && r(s) => Some(AvPattern::Wwr),
            (f, rem, s) if r(f) && w(rem) && w(s) => Some(AvPattern::Rww),
            (f, rem, s) if w(f) && r(rem) && w(s) => Some(AvPattern::Wrw),
            _ => None,
        }
    }

    /// The pattern's canonical label.
    pub fn label(self) -> &'static str {
        match self {
            AvPattern::Rwr => "RWR",
            AvPattern::Wwr => "WWR",
            AvPattern::Rww => "RWW",
            AvPattern::Wrw => "WRW",
        }
    }
}

pub(crate) fn loc_of(program: &Program, s: InstrId) -> SrcLoc {
    program.stmt_loc(s).unwrap_or(SrcLoc::UNKNOWN)
}

pub(crate) fn where_of(program: &Program, s: InstrId) -> String {
    program
        .stmt_loc(s)
        .map(|l| program.source_map.display(l))
        .unwrap_or_else(|| s.to_string())
}

/// The abstract cells an instruction may touch (store/load/free/lock/
/// unlock/intrinsic), with frees widened to the whole origin.
fn access_locs(program: &Program, pts: &PointsTo, func: FuncId, s: InstrId) -> BTreeSet<Loc> {
    let Some(instr) = program.instr(s) else {
        return BTreeSet::new();
    };
    match &instr.op {
        Op::Intrinsic { args, .. } => {
            let mut locs = BTreeSet::new();
            for a in args {
                for l in pts.operand_origins(func, *a) {
                    locs.insert(Loc::anywhere(l.origin));
                }
            }
            locs
        }
        Op::Free { addr } => pts
            .operand_origins(func, *addr)
            .into_iter()
            .map(|l| Loc::anywhere(l.origin))
            .collect(),
        op => op
            .access_addr()
            .map(|addr| pts.operand_origins(func, addr))
            .unwrap_or_default(),
    }
}

/// Removes literally duplicated note lines, preserving first-seen order.
/// Distinct SVFG chains that land on the same (finding, statement) pair
/// render the same note text; one copy carries all the information.
fn dedup_notes(mut d: Diagnostic) -> Diagnostic {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    d.notes.retain(|n| seen.insert(n.clone()));
    d
}

/// A free→use lifetime pair backing a `GA020`/`GA021` finding.
#[derive(Clone, Copy, Debug)]
pub struct LifetimePair {
    /// The freeing statement.
    pub free: InstrId,
    /// The later use (or second free).
    pub used: InstrId,
    /// The freed cell.
    pub origin: MemOrigin,
    /// The cell's allocation site.
    pub alloc_site: InstrId,
    /// True when the pair comes from the cross-thread (race) arm.
    pub cross_thread: bool,
}

/// Computes the lifetime pairs the `GA020`/`GA021` diagnostics report:
/// the same-thread forward-reach arm plus the cross-thread race arm,
/// the latter screened by MHP (a free ordered after the last use — past
/// the `join`, say — is not a lifetime bug).
pub fn lifetime_pairs(program: &Program, ticfg: &Ticfg) -> Vec<LifetimePair> {
    let pts = PointsTo::compute(program, ticfg);
    let mhp = Mhp::compute(program, ticfg);
    let mut found: Vec<LifetimePair> = Vec::new();
    let mut seen: BTreeSet<(InstrId, InstrId)> = BTreeSet::new();

    // Same-thread arm: forward walk from each free, stopping at the
    // freed origin's allocation site (a re-executed `alloc` makes the
    // pointer valid again, so flows through it are not lifetime bugs).
    for f in &program.functions {
        for b in &f.blocks {
            for instr in &b.instrs {
                let Op::Free { addr } = &instr.op else {
                    continue;
                };
                let free_id = instr.id;
                for l in pts.operand_origins(f.id, *addr) {
                    let MemOrigin::Heap(alloc_site) = l.origin else {
                        continue; // frees of non-heap memory are GA0xx verifier turf
                    };
                    for reached in forward_reach(ticfg, free_id, alloc_site) {
                        if reached == free_id {
                            continue;
                        }
                        let Some(rfunc) = program.stmt_func(reached) else {
                            continue;
                        };
                        let locs = access_locs(program, &pts, rfunc, reached);
                        if !locs.iter().any(|rl| rl.origin == l.origin) {
                            continue;
                        }
                        if seen.insert((free_id, reached)) {
                            found.push(LifetimePair {
                                free: free_id,
                                used: reached,
                                origin: l.origin,
                                alloc_site,
                                cross_thread: false,
                            });
                        }
                    }
                }
            }
        }
    }

    // Cross-thread arm: race candidates with a free endpoint. The
    // racing access has no program-order edge from the free, so the
    // forward walk cannot see it; the race detector's context and
    // lockset reasoning establishes that the two can conflict, and the
    // MHP relation screens pairs the thread structure orders anyway.
    let races = analyze_with(program, ticfg);
    for c in &races.candidates {
        let (free_ep, other_ep) = match (c.first.kind, c.second.kind) {
            (AccessKind::Free, _) => (&c.first, &c.second),
            (_, AccessKind::Free) => (&c.second, &c.first),
            _ => continue,
        };
        let MemOrigin::Heap(alloc_site) = c.origin else {
            continue;
        };
        // Keep genuinely-unordered pairs, and pairs where the free is
        // guaranteed first (a definite use-after-free). A use that is
        // ordered before the free (e.g. the free sits after the join)
        // is a false positive the race detector cannot rule out.
        let ordered_safe = mhp.must_precede(other_ep.stmt, free_ep.stmt);
        let can_conflict = mhp.may_happen_in_parallel(free_ep.stmt, other_ep.stmt)
            || mhp.must_precede(free_ep.stmt, other_ep.stmt);
        if ordered_safe || !can_conflict {
            continue;
        }
        if seen.insert((free_ep.stmt, other_ep.stmt)) {
            found.push(LifetimePair {
                free: free_ep.stmt,
                used: other_ep.stmt,
                origin: c.origin,
                alloc_site,
                cross_thread: true,
            });
        }
    }

    found.sort_by_key(|p| (loc_of(program, p.used), p.free, p.used));
    found
}

/// `GA020` use-after-free / `GA021` double-free along value flows.
#[derive(Default)]
pub struct UafLintPass {
    /// Cap on reported findings (default 8).
    pub limit: Option<usize>,
}

impl UafLintPass {
    fn run_inner(&self, program: &Program, ticfg: &Ticfg) -> Vec<Diagnostic> {
        let limit = self.limit.unwrap_or(8);
        lifetime_pairs(program, ticfg)
            .into_iter()
            .take(limit)
            .map(|p| dedup_notes(lifetime_finding(program, &p)))
            .collect()
    }
}

/// Builds the GA020/GA021 diagnostic for a free→use pair.
fn lifetime_finding(program: &Program, p: &LifetimePair) -> Diagnostic {
    let is_double_free = program
        .instr(p.used)
        .map(|i| matches!(i.op, Op::Free { .. }))
        .unwrap_or(false);
    let cell = p.origin.display(program);
    let how = if p.cross_thread {
        "may race with"
    } else {
        "is reached by"
    };
    let d = if is_double_free {
        Diagnostic::warning(
            "GA021",
            format!(
                "double free of {cell}: the free at {} {how} another free",
                where_of(program, p.free)
            ),
        )
    } else {
        Diagnostic::warning(
            "GA020",
            format!(
                "use after free of {cell}: freed at {}, {} the use",
                where_of(program, p.free),
                if p.cross_thread {
                    "which may race with"
                } else {
                    "on a path to"
                },
            ),
        )
    };
    d.at(loc_of(program, p.used))
        .with_note(format!("allocated at {}", where_of(program, p.alloc_site)))
        .with_note(format!("freed at {}", where_of(program, p.free)))
        .with_note(format!(
            "{} at {}",
            if is_double_free {
                "freed again"
            } else {
                "used"
            },
            where_of(program, p.used)
        ))
}

/// Statements forward-reachable from `from` in the TICFG without passing
/// through `stop` (the allocation site whose re-execution revalidates the
/// freed pointer).
fn forward_reach(ticfg: &Ticfg, from: InstrId, stop: InstrId) -> Vec<InstrId> {
    let mut seen: BTreeSet<InstrId> = BTreeSet::new();
    let mut q: VecDeque<InstrId> = VecDeque::from([from]);
    while let Some(s) = q.pop_front() {
        for &(n, _) in ticfg.succs(s) {
            if n == stop {
                continue;
            }
            if seen.insert(n) {
                q.push_back(n);
            }
        }
    }
    seen.into_iter().collect()
}

impl Pass for UafLintPass {
    fn name(&self) -> &'static str {
        "uaf-lint"
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> Vec<Diagnostic> {
        let program = cx.program;
        let ticfg = cx.ticfg();
        self.run_inner(program, ticfg)
    }
}

/// One ranked atomicity-violation candidate backing a `GA022` finding.
#[derive(Clone, Copy, Debug)]
pub struct AvCandidate {
    /// The interleaving pattern, in rank order.
    pub pattern: AvPattern,
    /// The inconsistently-locked cell.
    pub origin: MemOrigin,
    /// First local access.
    pub first: InstrId,
    /// The remote access that can interleave.
    pub remote: InstrId,
    /// Second local access.
    pub second: InstrId,
}

/// Computes the best atomicity-violation candidate per inconsistently
/// locked origin. Remote accesses the MHP relation orders entirely
/// before or after the local window cannot interleave and are skipped.
pub fn atomicity_candidates(program: &Program, ticfg: &Ticfg) -> Vec<AvCandidate> {
    let (stmt_ls, pts) = locksets_with(program, ticfg);
    let races = analyze_with(program, ticfg);
    let svfg = Svfg::build_with(program, ticfg, &pts);
    let feas = &svfg.feasibility;
    let mhp = Mhp::compute(program, ticfg);

    // Per-origin locking consistency: some access protected, some not.
    let mut locked: BTreeSet<MemOrigin> = BTreeSet::new();
    let mut unlocked: BTreeSet<MemOrigin> = BTreeSet::new();
    let mut data_accesses: Vec<(InstrId, FuncId, AccessKind, BTreeSet<MemOrigin>)> = Vec::new();
    for f in &program.functions {
        for b in &f.blocks {
            for instr in &b.instrs {
                let kind = match &instr.op {
                    Op::Load { .. } => AccessKind::Read,
                    Op::Store { .. } => AccessKind::Write,
                    Op::Free { .. } => AccessKind::Free,
                    _ => continue,
                };
                let origins: BTreeSet<MemOrigin> = access_locs(program, &pts, f.id, instr.id)
                    .into_iter()
                    .map(|l| l.origin)
                    .collect();
                if origins.is_empty() {
                    continue;
                }
                let has_lock = stmt_ls
                    .get(&instr.id)
                    .map(|ls| !ls.is_empty())
                    .unwrap_or(false);
                for &o in &origins {
                    if has_lock {
                        locked.insert(o);
                    } else {
                        unlocked.insert(o);
                    }
                }
                data_accesses.push((instr.id, f.id, kind, origins));
            }
        }
    }
    let inconsistent: BTreeSet<MemOrigin> = locked.intersection(&unlocked).copied().collect();

    // A race candidate supplies the (local, remote) skeleton: the two
    // sides can interleave. Complete it with a second local access on
    // the same origin reachable from (or reaching) the local side.
    let mut best: HashMap<MemOrigin, (AvPattern, InstrId, InstrId, InstrId)> = HashMap::new();
    for c in &races.candidates {
        if !inconsistent.contains(&c.origin) {
            continue;
        }
        for (local, remote) in [(&c.first, &c.second), (&c.second, &c.first)] {
            let Some(lfunc) = program.stmt_func(local.stmt) else {
                continue;
            };
            for (partner, pfunc, pkind, porigins) in &data_accesses {
                if *partner == local.stmt || *pfunc != lfunc {
                    continue;
                }
                if !porigins.contains(&c.origin) {
                    continue;
                }
                // Order the local pair by intra-procedural flow.
                let triples = [
                    (local.stmt, local.kind, *partner, *pkind),
                    (*partner, *pkind, local.stmt, local.kind),
                ];
                for (s1, k1, s2, k2) in triples {
                    if !feas.intra_path_feasible(program, s1, s2) || s1 == s2 {
                        continue;
                    }
                    // MHP screen: the remote must be able to land
                    // inside the (s1, s2) window — a remote ordered
                    // before s1 or after s2 by thread structure cannot.
                    if !mhp.may_happen_in_parallel(remote.stmt, s1)
                        && !mhp.may_happen_in_parallel(remote.stmt, s2)
                    {
                        continue;
                    }
                    let Some(pattern) = AvPattern::classify(k1, remote.kind, k2) else {
                        continue;
                    };
                    let cand = (pattern, s1, remote.stmt, s2);
                    match best.get(&c.origin) {
                        Some(prev) if *prev <= cand => {}
                        _ => {
                            best.insert(c.origin, cand);
                        }
                    }
                }
            }
        }
    }
    let mut out: Vec<AvCandidate> = best
        .into_iter()
        .map(|(origin, (pattern, first, remote, second))| AvCandidate {
            pattern,
            origin,
            first,
            remote,
            second,
        })
        .collect();
    out.sort_by_key(|c| (c.pattern, loc_of(program, c.first), c.first, c.remote));
    out
}

/// `GA022` atomicity-violation candidates on inconsistently-locked
/// shared cells, ranked by interleaving pattern.
#[derive(Default)]
pub struct AtomicityLintPass {
    /// Cap on reported findings (default 8).
    pub limit: Option<usize>,
}

impl AtomicityLintPass {
    fn run_inner(&self, program: &Program, ticfg: &Ticfg) -> Vec<Diagnostic> {
        let limit = self.limit.unwrap_or(8);
        atomicity_candidates(program, ticfg)
            .into_iter()
            .take(limit)
            .map(|c| {
                let cell = c.origin.display(program);
                let d = Diagnostic::warning(
                    "GA022",
                    format!(
                        "atomicity violation ({}) on {cell}: a remote access can interleave \
                         between two same-thread accesses",
                        c.pattern.label()
                    ),
                )
                .at(loc_of(program, c.first))
                .with_note(format!(
                    "local {} at {}",
                    kind_at(program, c.first),
                    where_of(program, c.first)
                ))
                .with_note(format!(
                    "remote {} at {} can interleave here",
                    kind_at(program, c.remote),
                    where_of(program, c.remote)
                ))
                .with_note(format!(
                    "local {} at {}",
                    kind_at(program, c.second),
                    where_of(program, c.second)
                ))
                .with_note("cell is lock-protected on some accesses but not all".to_owned());
                dedup_notes(d)
            })
            .collect()
    }
}

pub(crate) fn kind_at(program: &Program, s: InstrId) -> &'static str {
    match program.instr(s).map(|i| &i.op) {
        Some(Op::Load { .. }) => "read",
        Some(Op::Store { .. }) => "write",
        Some(Op::Free { .. }) => "free",
        Some(Op::MutexLock { .. }) | Some(Op::MutexUnlock { .. }) => "sync",
        _ => "access",
    }
}

impl Pass for AtomicityLintPass {
    fn name(&self) -> &'static str {
        "atomicity-lint"
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> Vec<Diagnostic> {
        let program = cx.program;
        let ticfg = cx.ticfg();
        self.run_inner(program, ticfg)
    }
}

/// One null-store→load→dereference chain backing a `GA023` finding.
#[derive(Clone, Copy, Debug)]
pub struct NullFlow {
    /// The store of constant zero.
    pub store: InstrId,
    /// The load the zero flows into.
    pub load: InstrId,
    /// The dereference of the loaded value.
    pub deref: InstrId,
    /// True when the store reaches the load across threads.
    pub interleaved: bool,
}

/// Computes null-flow chains. When several loads connect the same
/// (store, dereference) pair, the chain through the earliest-located
/// load is kept (the shortest chain, resolved deterministically by
/// source location then statement id). Cross-thread stores that the
/// thread structure orders after the dereference cannot reach it and
/// are dropped.
pub fn null_flows(program: &Program, ticfg: &Ticfg) -> Vec<NullFlow> {
    let pts = PointsTo::compute(program, ticfg);
    let svfg = Svfg::build_with(program, ticfg, &pts);
    let consts = ConstProp::compute(program, ticfg);
    let mhp = Mhp::compute(program, ticfg);
    // (store, deref) -> best (loc, load, interleaved)
    let mut best: BTreeMap<(InstrId, InstrId), (SrcLoc, InstrId, bool)> = BTreeMap::new();

    for f in &program.functions {
        for b in &f.blocks {
            for instr in &b.instrs {
                // A dereference through a register address.
                let addr = match &instr.op {
                    Op::Load { addr, .. }
                    | Op::Store { addr, .. }
                    | Op::Free { addr }
                    | Op::MutexLock { addr }
                    | Op::MutexUnlock { addr } => *addr,
                    _ => continue,
                };
                let Operand::Var(v) = addr else { continue };
                let deref = instr.id;
                if !svfg.feasibility.stmt_live(program, deref) {
                    continue;
                }
                // The pointer's reaching loads.
                for e in svfg.edges_in(deref) {
                    if e.kind != SvfgEdgeKind::Direct {
                        continue;
                    }
                    let load = e.def;
                    let Some(Op::Load { dst, .. }) = program.instr(load).map(|i| &i.op) else {
                        continue;
                    };
                    if *dst != v {
                        continue;
                    }
                    // Null stores flowing into that load's cell.
                    for we in svfg.edges_in(load) {
                        if !matches!(we.kind, SvfgEdgeKind::Memory | SvfgEdgeKind::Interleaved) {
                            continue;
                        }
                        let w = we.def;
                        let Some(Op::Store { value, .. }) = program.instr(w).map(|i| &i.op) else {
                            continue;
                        };
                        let wfunc = program.stmt_func(w).expect("indexed");
                        if consts.operand_const(wfunc, *value) != ConstVal::Const(0) {
                            continue;
                        }
                        let interleaved = we.kind == SvfgEdgeKind::Interleaved;
                        // A cross-thread store ordered after the load
                        // can never be the value the load observes.
                        if interleaved && mhp.must_precede(load, w) {
                            continue;
                        }
                        // Suppressed when a null check guards every
                        // path from the load to the dereference.
                        if !svfg
                            .feasibility
                            .reachable_with_null(program, load, deref, v)
                        {
                            continue;
                        }
                        let key = (w, deref);
                        let cand = (loc_of(program, load), load, interleaved);
                        match best.get(&key) {
                            Some(prev) if *prev <= cand => {}
                            _ => {
                                best.insert(key, cand);
                            }
                        }
                    }
                }
            }
        }
    }
    let mut out: Vec<NullFlow> = best
        .into_iter()
        .map(|((store, deref), (_, load, interleaved))| NullFlow {
            store,
            load,
            deref,
            interleaved,
        })
        .collect();
    out.sort_by_key(|n| (loc_of(program, n.deref), n.store, n.deref));
    out
}

/// `GA023` null-value flow into a dereference (Casper-style provenance).
#[derive(Default)]
pub struct NullFlowLintPass {
    /// Cap on reported findings (default 8).
    pub limit: Option<usize>,
}

impl NullFlowLintPass {
    fn run_inner(&self, program: &Program, ticfg: &Ticfg) -> Vec<Diagnostic> {
        let limit = self.limit.unwrap_or(8);
        null_flows(program, ticfg)
            .into_iter()
            .take(limit)
            .map(|n| {
                let d = Diagnostic::warning(
                    "GA023",
                    format!(
                        "possible null dereference: the value stored at {} may be \
                         zero when dereferenced",
                        where_of(program, n.store)
                    ),
                )
                .at(loc_of(program, n.deref))
                .with_note(format!("null (0) stored at {}", where_of(program, n.store)))
                .with_note(format!("loaded at {}", where_of(program, n.load)))
                .with_note(format!(
                    "dereferenced without a null check at {}",
                    where_of(program, n.deref)
                ));
                dedup_notes(d)
            })
            .collect()
    }
}

impl Pass for NullFlowLintPass {
    fn name(&self) -> &'static str {
        "null-flow-lint"
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> Vec<Diagnostic> {
        let program = cx.program;
        let ticfg = cx.ticfg();
        self.run_inner(program, ticfg)
    }
}

/// What a `GA024` order violation looks like.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OrderViolationKind {
    /// A load may run before any store initializes the heap cell.
    UseBeforeInit,
    /// A free and a use with no happens-before edge between them.
    FreeBeforeUse,
}

/// One cross-thread order violation backing a `GA024` finding.
#[derive(Clone, Copy, Debug)]
pub struct OrderViolation {
    /// The violation shape.
    pub kind: OrderViolationKind,
    /// The statement that should run first (the init store / the use).
    pub expected_first: InstrId,
    /// The statement that may overtake it (the use / the free).
    pub racing: InstrId,
    /// The cell the pair touches.
    pub origin: MemOrigin,
    /// True when a common lock serializes (but does not order) the pair.
    pub lock_excluded: bool,
}

/// Computes cross-thread order violations: heap loads no initializing
/// store is ordered before, and unordered free/use pairs that the race
/// arm misses because a common lock hides them. Pairs the lifetime
/// detector already reports are skipped.
pub fn order_violations(program: &Program, ticfg: &Ticfg) -> Vec<OrderViolation> {
    let mhp = Mhp::compute(program, ticfg);
    if !mhp.has_threads() {
        return Vec::new();
    }
    let pts = PointsTo::compute(program, ticfg);
    let shared = crate::race::shared_origins_with(program, ticfg);
    let svfg = Svfg::build_with(program, ticfg, &pts);

    // All live data accesses on shared origins.
    let mut reads: Vec<(InstrId, MemOrigin)> = Vec::new();
    let mut writes: Vec<(InstrId, MemOrigin)> = Vec::new();
    let mut frees: Vec<(InstrId, MemOrigin)> = Vec::new();
    let mut uses: Vec<(InstrId, MemOrigin)> = Vec::new();
    for f in &program.functions {
        for b in &f.blocks {
            for instr in &b.instrs {
                if !svfg.feasibility.stmt_live(program, instr.id) {
                    continue;
                }
                let origins: Vec<MemOrigin> = access_locs(program, &pts, f.id, instr.id)
                    .into_iter()
                    .map(|l| l.origin)
                    .filter(|o| shared.contains(o))
                    .collect();
                for &o in &origins {
                    match &instr.op {
                        Op::Load { .. } => {
                            reads.push((instr.id, o));
                            uses.push((instr.id, o));
                        }
                        Op::Store { .. } => {
                            writes.push((instr.id, o));
                            uses.push((instr.id, o));
                        }
                        Op::MutexLock { .. } | Op::MutexUnlock { .. } => {
                            uses.push((instr.id, o));
                        }
                        Op::Free { .. } => frees.push((instr.id, o)),
                        _ => {}
                    }
                }
            }
        }
    }

    let reported: BTreeSet<(InstrId, InstrId)> = lifetime_pairs(program, ticfg)
        .into_iter()
        .flat_map(|p| [(p.free, p.used), (p.used, p.free)])
        .collect();

    let mut out: Vec<OrderViolation> = Vec::new();
    let mut seen: BTreeSet<(InstrId, InstrId)> = BTreeSet::new();

    // Use-before-init: a heap load with a may-parallel store and no
    // store ordered before it. Globals are initialized at startup, so
    // only heap cells (initialized by explicit stores) qualify.
    for &(load, o) in &reads {
        if !matches!(o, MemOrigin::Heap(_)) {
            continue;
        }
        let stores_o: Vec<InstrId> = writes
            .iter()
            .filter(|&&(_, wo)| wo == o)
            .map(|&(w, _)| w)
            .collect();
        if stores_o.is_empty() {
            continue;
        }
        if stores_o.iter().any(|&s| mhp.must_precede(s, load)) {
            continue; // some initialization is ordered before the use
        }
        let Some(&racing_init) = stores_o
            .iter()
            .find(|&&s| mhp.may_happen_in_parallel(load, s))
        else {
            continue;
        };
        if seen.insert((racing_init, load)) {
            out.push(OrderViolation {
                kind: OrderViolationKind::UseBeforeInit,
                expected_first: racing_init,
                racing: load,
                origin: o,
                lock_excluded: mhp.common_lock(racing_init, load),
            });
        }
    }

    // Free-before-last-use: an unordered free/use pair. The lifetime
    // detector's race arm already covers lock-free pairs; this arm
    // catches the ones a common lock hides (locks serialize, they do
    // not order).
    for &(free, o) in &frees {
        for &(used, uo) in &uses {
            if uo != o || used == free {
                continue;
            }
            if reported.contains(&(free, used)) {
                continue;
            }
            let fact = mhp.order_fact(free, used);
            if !matches!(fact, OrderFact::Parallel | OrderFact::Excluded) {
                continue;
            }
            if seen.insert((used, free)) {
                out.push(OrderViolation {
                    kind: OrderViolationKind::FreeBeforeUse,
                    expected_first: used,
                    racing: free,
                    origin: o,
                    lock_excluded: fact == OrderFact::Excluded,
                });
            }
        }
    }

    out.sort_by_key(|v| {
        (
            loc_of(program, v.racing),
            loc_of(program, v.expected_first),
            v.racing,
        )
    });
    out
}

/// `GA024` cross-thread order violations (use-before-init and
/// free-before-last-use with no happens-before edge).
#[derive(Default)]
pub struct OrderLintPass {
    /// Cap on reported findings (default 8).
    pub limit: Option<usize>,
}

impl OrderLintPass {
    fn run_inner(&self, program: &Program, ticfg: &Ticfg) -> Vec<Diagnostic> {
        let limit = self.limit.unwrap_or(8);
        order_violations(program, ticfg)
            .into_iter()
            .take(limit)
            .map(|v| {
                let cell = v.origin.display(program);
                let d = match v.kind {
                    OrderViolationKind::UseBeforeInit => Diagnostic::warning(
                        "GA024",
                        format!(
                            "order violation on {cell}: the read at {} may run before \
                             the initializing store",
                            where_of(program, v.racing)
                        ),
                    )
                    .at(loc_of(program, v.racing))
                    .with_note(format!(
                        "initialized at {}",
                        where_of(program, v.expected_first)
                    ))
                    .with_note(format!("read at {}", where_of(program, v.racing)))
                    .with_note("no happens-before edge orders the pair".to_owned()),
                    OrderViolationKind::FreeBeforeUse => Diagnostic::warning(
                        "GA024",
                        format!(
                            "order violation on {cell}: the free at {} may run before \
                             the last use",
                            where_of(program, v.racing)
                        ),
                    )
                    .at(loc_of(program, v.racing))
                    .with_note(format!("used at {}", where_of(program, v.expected_first)))
                    .with_note(format!("freed at {}", where_of(program, v.racing)))
                    .with_note("no happens-before edge orders the pair".to_owned()),
                };
                let d = if v.lock_excluded {
                    d.with_note(
                        "a common lock serializes the pair but does not order it".to_owned(),
                    )
                } else {
                    d
                };
                dedup_notes(d)
            })
            .collect()
    }
}

impl Pass for OrderLintPass {
    fn name(&self) -> &'static str {
        "order-lint"
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> Vec<Diagnostic> {
        let program = cx.program;
        let ticfg = cx.ticfg();
        self.run_inner(program, ticfg)
    }
}

/// The `gist-lint` pipeline: the IR verifier (malformed programs fail
/// fast) followed by the four SVFG/MHP-based detectors.
pub fn lint_passes() -> PassManager {
    PassManager::new()
        .with_pass(crate::verify::VerifierPass)
        .with_pass(UafLintPass::default())
        .with_pass(AtomicityLintPass::default())
        .with_pass(NullFlowLintPass::default())
        .with_pass(OrderLintPass::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::parser::parse_program;

    fn lint(text: &str) -> Vec<Diagnostic> {
        let p = parse_program("t", text).unwrap();
        lint_passes().run(&p)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn sequential_store_load_is_clean() {
        let diags = lint(
            r#"
global g = 0
fn main() {
entry:
  store $g, 7
  v = load $g
  assert v, "boom"
  ret
}
"#,
        );
        assert!(diags.is_empty(), "clean sequential program: {diags:?}");
    }

    #[test]
    fn same_thread_use_after_free_found() {
        let diags = lint(
            r#"
fn main() {
entry:
  p = alloc 1
  store p, 7
  free p
  v = load p
  print v
  ret
}
"#,
        );
        assert!(codes(&diags).contains(&"GA020"), "{diags:?}");
        let uaf = diags.iter().find(|d| d.code == "GA020").unwrap();
        assert_eq!(uaf.notes.len(), 3, "alloc/free/use chain: {:?}", uaf.notes);
    }

    #[test]
    fn same_thread_double_free_found() {
        let diags = lint(
            r#"
fn main() {
entry:
  p = alloc 1
  free p
  free p
  ret
}
"#,
        );
        assert!(codes(&diags).contains(&"GA021"), "{diags:?}");
    }

    #[test]
    fn free_then_realloc_in_loop_is_clean() {
        // The freed pointer is re-allocated before reuse: the allocation
        // site on the path revalidates it.
        let diags = lint(
            r#"
global n = 0
fn main() {
entry:
  br head
head:
  p = alloc 1
  store p, 7
  free p
  c = load $n
  condbr c, head, done
done:
  ret
}
"#,
        );
        assert!(
            !codes(&diags).contains(&"GA020") && !codes(&diags).contains(&"GA021"),
            "realloc on the back edge revalidates the pointer: {diags:?}"
        );
    }

    #[test]
    fn cross_thread_racing_free_found() {
        let diags = lint(
            r#"
fn cons(q) {
entry:
  m = load q
  lock m
  unlock m
  ret
}
fn main() {
entry:
  q = alloc 1
  mu = alloc 1
  store q, mu
  t = spawn cons(q)
  free mu
  store q, 0
  join t
  ret
}
"#,
        );
        assert!(
            codes(&diags).contains(&"GA020"),
            "racing free of the mutex is a cross-thread UAF: {diags:?}"
        );
    }

    #[test]
    fn free_after_join_is_not_a_cross_thread_uaf() {
        // Identical shape, but the free happens after the join: the
        // thread structure orders every worker access before the free,
        // so the MHP screen suppresses the race-arm candidate.
        let diags = lint(
            r#"
fn cons(q) {
entry:
  m = load q
  lock m
  unlock m
  ret
}
fn main() {
entry:
  q = alloc 1
  mu = alloc 1
  store q, mu
  t = spawn cons(q)
  join t
  free mu
  store q, 0
  ret
}
"#,
        );
        assert!(
            !codes(&diags).contains(&"GA020") && !codes(&diags).contains(&"GA024"),
            "the join orders the free after the last use: {diags:?}"
        );
    }

    #[test]
    fn inconsistently_locked_shared_counter_is_an_atomicity_candidate() {
        let diags = lint(
            r#"
global counter = 0
global lk = 0
fn worker(arg) {
entry:
  lock $lk
  v = load $counter
  w = add v, 1
  store $counter, w
  unlock $lk
  ret
}
fn main() {
entry:
  t = spawn worker(0)
  a = load $counter
  b = add a, 1
  store $counter, b
  join t
  ret
}
"#,
        );
        let av: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "GA022").collect();
        assert!(!av.is_empty(), "unlocked RMW on a locked cell: {diags:?}");
        assert!(
            av[0].message.contains("RWR")
                || av[0].message.contains("WWR")
                || av[0].message.contains("RWW")
                || av[0].message.contains("WRW"),
            "pattern named in the message: {}",
            av[0].message
        );
    }

    #[test]
    fn consistently_locked_counter_is_clean() {
        let diags = lint(
            r#"
global counter = 0
global lk = 0
fn worker(arg) {
entry:
  lock $lk
  v = load $counter
  w = add v, 1
  store $counter, w
  unlock $lk
  ret
}
fn main() {
entry:
  t = spawn worker(0)
  lock $lk
  a = load $counter
  b = add a, 1
  store $counter, b
  unlock $lk
  join t
  ret
}
"#,
        );
        assert!(
            !codes(&diags).contains(&"GA022"),
            "consistent locking: {diags:?}"
        );
    }

    #[test]
    fn null_flow_into_dereference_found_and_guard_suppresses() {
        let found = lint(
            r#"
global slot = 0
fn main() {
entry:
  store $slot, 0
  m = load $slot
  lock m
  ret
}
"#,
        );
        assert!(codes(&found).contains(&"GA023"), "{found:?}");
        let guarded = lint(
            r#"
global slot = 0
fn main() {
entry:
  store $slot, 0
  m = load $slot
  z = cmp eq m, 0
  condbr z, skip, use
use:
  lock m
  br skip
skip:
  ret
}
"#,
        );
        assert!(
            !codes(&guarded).contains(&"GA023"),
            "null check guards the lock: {guarded:?}"
        );
    }

    #[test]
    fn unordered_heap_init_is_an_order_violation() {
        // The initializing store races the worker's read: no
        // happens-before edge guarantees the cell is set first.
        let diags = lint(
            r#"
fn worker(q) {
entry:
  v = load q
  print v
  ret
}
fn main() {
entry:
  q = alloc 1
  t = spawn worker(q)
  store q, 7
  join t
  ret
}
"#,
        );
        assert!(
            codes(&diags).contains(&"GA024"),
            "use may precede init: {diags:?}"
        );
        let d = diags.iter().find(|d| d.code == "GA024").unwrap();
        assert!(
            d.message.contains("before"),
            "names the ordering problem: {}",
            d.message
        );
    }

    #[test]
    fn ordered_heap_init_is_clean() {
        // Same program, but the store dominates the spawn: ordered.
        let diags = lint(
            r#"
fn worker(q) {
entry:
  v = load q
  print v
  ret
}
fn main() {
entry:
  q = alloc 1
  store q, 7
  t = spawn worker(q)
  join t
  ret
}
"#,
        );
        assert!(
            !codes(&diags).contains(&"GA024"),
            "pre-spawn init is ordered: {diags:?}"
        );
    }

    #[test]
    fn lock_hidden_unordered_free_is_an_order_violation() {
        // Both sides hold the same lock, so the lockset race arm is
        // silent — but the lock only serializes the pair; nothing
        // orders the free after the worker's use.
        let diags = lint(
            r#"
global cell = 0
global lk = 0
fn worker(arg) {
entry:
  lock $lk
  p = load $cell
  v = load p
  unlock $lk
  ret
}
fn main() {
entry:
  b = alloc 1
  store b, 5
  store $cell, b
  t = spawn worker(0)
  lock $lk
  free b
  unlock $lk
  join t
  ret
}
"#,
        );
        let order: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "GA024").collect();
        assert!(
            !order.is_empty(),
            "lock-excluded free/use pair is unordered: {diags:?}"
        );
        assert!(
            order
                .iter()
                .any(|d| d.notes.iter().any(|n| n.contains("common lock"))),
            "the lock-exclusion note is present: {order:?}"
        );
    }

    #[test]
    fn notes_are_deduplicated() {
        let d = Diagnostic::warning("GA020", "x")
            .with_note("a".to_owned())
            .with_note("b".to_owned())
            .with_note("a".to_owned());
        let d = dedup_notes(d);
        assert_eq!(d.notes, vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn av_pattern_classification() {
        use AccessKind::*;
        assert_eq!(AvPattern::classify(Read, Write, Read), Some(AvPattern::Rwr));
        assert_eq!(
            AvPattern::classify(Write, Write, Read),
            Some(AvPattern::Wwr)
        );
        assert_eq!(
            AvPattern::classify(Read, Write, Write),
            Some(AvPattern::Rww)
        );
        assert_eq!(
            AvPattern::classify(Write, Read, Write),
            Some(AvPattern::Wrw)
        );
        assert_eq!(AvPattern::classify(Read, Read, Read), None);
        assert_eq!(AvPattern::classify(Free, Write, Read), Some(AvPattern::Wwr));
    }

    #[test]
    fn lint_pipeline_names() {
        assert_eq!(
            lint_passes().pass_names(),
            vec![
                "verify",
                "uaf-lint",
                "atomicity-lint",
                "null-flow-lint",
                "order-lint"
            ]
        );
    }
}
