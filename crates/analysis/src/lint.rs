//! The `gist-lint` detector suite: static bug detectors built on the
//! sparse value-flow graph ([`crate::svfg::Svfg`]).
//!
//! Three detector families, each reporting rustc-style diagnostics whose
//! `note:` lines spell out the value-flow chain behind the finding:
//!
//! * **Lifetime** ([`UafLintPass`]) — `GA020` use-after-free and `GA021`
//!   double-free. Same-thread findings come from a forward TICFG walk
//!   from each `free`, stopped at re-executions of the freed cell's
//!   allocation site (so a free-then-realloc loop is not a false
//!   positive); cross-thread findings come from race candidates with a
//!   `free` endpoint (the pbzip2 shape: the mutex freed under a thread
//!   still locking it).
//! * **Atomicity** ([`AtomicityLintPass`]) — `GA022`
//!   atomicity-violation candidates: a shared cell accessed both with
//!   and without lock protection, where a remote access can interleave
//!   between two same-thread accesses. Candidates are classified and
//!   ranked by the classic access-interleaving patterns
//!   ([`AvPattern`]: RWR, WWR, RWW, WRW).
//! * **Null flow** ([`NullFlowLintPass`]) — `GA023` Casper-style null
//!   provenance: a stored constant zero that flows along SVFG memory
//!   edges into a load whose result is then dereferenced. A branch that
//!   checks the loaded pointer against zero on every path to the
//!   dereference suppresses the finding
//!   ([`crate::svfg::Feasibility::reachable_with_null`]).
//!
//! All three are silent on sequential memory-safe programs by
//! construction: the lifetime and atomicity detectors' cross-thread arms
//! need shared origins / race candidates (empty when single-threaded),
//! and the same-thread arms need a real free→use path or a null store
//! that actually reaches a dereference.

use std::collections::{BTreeSet, HashMap, VecDeque};

use gist_ir::icfg::Ticfg;
use gist_ir::{FuncId, InstrId, Op, Operand, Program, SrcLoc};

use crate::dataflow::{ConstProp, ConstVal};
use crate::diag::Diagnostic;
use crate::pass::{AnalysisCtx, Pass, PassManager};
use crate::points_to::{Loc, MemOrigin, PointsTo};
use crate::race::{analyze_with, locksets_with, AccessKind, RaceCandidate};
use crate::svfg::{Svfg, SvfgEdgeKind};

/// The atomicity-violation interleaving patterns, in rank order (most
/// failure-prone first, per the AVIO-style classification): the letters
/// are (local access, remote access, local access).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AvPattern {
    /// read — remote write — read: the two local reads see different
    /// values of what should be one consistent snapshot.
    Rwr,
    /// write — remote write — read: the local read gets the remote value
    /// instead of its own thread's write.
    Wwr,
    /// read — remote write — write: the local write clobbers the remote
    /// one based on a stale read.
    Rww,
    /// write — remote read — write: the remote read observes an
    /// intermediate value between two local writes.
    Wrw,
}

impl AvPattern {
    /// Classifies a (local, remote, local) access triple, if it matches
    /// one of the four serializability-violating patterns. Frees count as
    /// writes.
    pub fn classify(
        first: AccessKind,
        remote: AccessKind,
        second: AccessKind,
    ) -> Option<AvPattern> {
        let w = |k: AccessKind| matches!(k, AccessKind::Write | AccessKind::Free);
        let r = |k: AccessKind| matches!(k, AccessKind::Read);
        match (first, remote, second) {
            (f, rem, s) if r(f) && w(rem) && r(s) => Some(AvPattern::Rwr),
            (f, rem, s) if w(f) && w(rem) && r(s) => Some(AvPattern::Wwr),
            (f, rem, s) if r(f) && w(rem) && w(s) => Some(AvPattern::Rww),
            (f, rem, s) if w(f) && r(rem) && w(s) => Some(AvPattern::Wrw),
            _ => None,
        }
    }

    /// The pattern's canonical label.
    pub fn label(self) -> &'static str {
        match self {
            AvPattern::Rwr => "RWR",
            AvPattern::Wwr => "WWR",
            AvPattern::Rww => "RWW",
            AvPattern::Wrw => "WRW",
        }
    }
}

fn loc_of(program: &Program, s: InstrId) -> SrcLoc {
    program.stmt_loc(s).unwrap_or(SrcLoc::UNKNOWN)
}

fn where_of(program: &Program, s: InstrId) -> String {
    program
        .stmt_loc(s)
        .map(|l| program.source_map.display(l))
        .unwrap_or_else(|| s.to_string())
}

/// The abstract cells an instruction may touch (store/load/free/lock/
/// unlock/intrinsic), with frees widened to the whole origin.
fn access_locs(program: &Program, pts: &PointsTo, func: FuncId, s: InstrId) -> BTreeSet<Loc> {
    let Some(instr) = program.instr(s) else {
        return BTreeSet::new();
    };
    match &instr.op {
        Op::Intrinsic { args, .. } => {
            let mut locs = BTreeSet::new();
            for a in args {
                for l in pts.operand_origins(func, *a) {
                    locs.insert(Loc::anywhere(l.origin));
                }
            }
            locs
        }
        Op::Free { addr } => pts
            .operand_origins(func, *addr)
            .into_iter()
            .map(|l| Loc::anywhere(l.origin))
            .collect(),
        op => op
            .access_addr()
            .map(|addr| pts.operand_origins(func, addr))
            .unwrap_or_default(),
    }
}

/// `GA020` use-after-free / `GA021` double-free along value flows.
#[derive(Default)]
pub struct UafLintPass {
    /// Cap on reported findings (default 8).
    pub limit: Option<usize>,
}

impl UafLintPass {
    fn run_inner(&self, program: &Program, ticfg: &Ticfg) -> Vec<Diagnostic> {
        let pts = PointsTo::compute(program, ticfg);
        let mut found: Vec<(InstrId, InstrId, Diagnostic)> = Vec::new();
        let mut seen: BTreeSet<(InstrId, InstrId)> = BTreeSet::new();

        // Same-thread arm: forward walk from each free, stopping at the
        // freed origin's allocation site (a re-executed `alloc` makes the
        // pointer valid again, so flows through it are not lifetime bugs).
        for f in &program.functions {
            for b in &f.blocks {
                for instr in &b.instrs {
                    let Op::Free { addr } = &instr.op else {
                        continue;
                    };
                    let free_id = instr.id;
                    for l in pts.operand_origins(f.id, *addr) {
                        let MemOrigin::Heap(alloc_site) = l.origin else {
                            continue; // frees of non-heap memory are GA0xx verifier turf
                        };
                        for reached in forward_reach(ticfg, free_id, alloc_site) {
                            if reached == free_id {
                                continue;
                            }
                            let Some(rfunc) = program.stmt_func(reached) else {
                                continue;
                            };
                            let locs = access_locs(program, &pts, rfunc, reached);
                            if !locs.iter().any(|rl| rl.origin == l.origin) {
                                continue;
                            }
                            if seen.insert((free_id, reached)) {
                                found.push(lifetime_finding(
                                    program, free_id, reached, l.origin, alloc_site, false,
                                ));
                            }
                        }
                    }
                }
            }
        }

        // Cross-thread arm: race candidates with a free endpoint. The
        // racing access has no program-order edge from the free, so the
        // forward walk cannot see it; the race detector's context and
        // lockset reasoning establishes that the two can interleave.
        let races = analyze_with(program, ticfg);
        for c in &races.candidates {
            let (free_ep, other_ep) = match (c.first.kind, c.second.kind) {
                (AccessKind::Free, _) => (&c.first, &c.second),
                (_, AccessKind::Free) => (&c.second, &c.first),
                _ => continue,
            };
            let MemOrigin::Heap(alloc_site) = c.origin else {
                continue;
            };
            if seen.insert((free_ep.stmt, other_ep.stmt)) {
                found.push(lifetime_finding(
                    program,
                    free_ep.stmt,
                    other_ep.stmt,
                    c.origin,
                    alloc_site,
                    true,
                ));
            }
        }

        found.sort_by_key(|(free, used, _)| (loc_of(program, *used), *free, *used));
        let limit = self.limit.unwrap_or(8);
        found.into_iter().take(limit).map(|(_, _, d)| d).collect()
    }
}

/// Builds the GA020/GA021 diagnostic for a free→use pair.
fn lifetime_finding(
    program: &Program,
    free: InstrId,
    used: InstrId,
    origin: MemOrigin,
    alloc_site: InstrId,
    cross_thread: bool,
) -> (InstrId, InstrId, Diagnostic) {
    let is_double_free = program
        .instr(used)
        .map(|i| matches!(i.op, Op::Free { .. }))
        .unwrap_or(false);
    let cell = origin.display(program);
    let how = if cross_thread {
        "may race with"
    } else {
        "is reached by"
    };
    let d = if is_double_free {
        Diagnostic::warning(
            "GA021",
            format!(
                "double free of {cell}: the free at {} {how} another free",
                where_of(program, free)
            ),
        )
    } else {
        Diagnostic::warning(
            "GA020",
            format!(
                "use after free of {cell}: freed at {}, {} the use",
                where_of(program, free),
                if cross_thread {
                    "which may race with"
                } else {
                    "on a path to"
                },
            ),
        )
    };
    let d = d
        .at(loc_of(program, used))
        .with_note(format!("allocated at {}", where_of(program, alloc_site)))
        .with_note(format!("freed at {}", where_of(program, free)))
        .with_note(format!(
            "{} at {}",
            if is_double_free {
                "freed again"
            } else {
                "used"
            },
            where_of(program, used)
        ));
    (free, used, d)
}

/// Statements forward-reachable from `from` in the TICFG without passing
/// through `stop` (the allocation site whose re-execution revalidates the
/// freed pointer).
fn forward_reach(ticfg: &Ticfg, from: InstrId, stop: InstrId) -> Vec<InstrId> {
    let mut seen: BTreeSet<InstrId> = BTreeSet::new();
    let mut q: VecDeque<InstrId> = VecDeque::from([from]);
    while let Some(s) = q.pop_front() {
        for &(n, _) in ticfg.succs(s) {
            if n == stop {
                continue;
            }
            if seen.insert(n) {
                q.push_back(n);
            }
        }
    }
    seen.into_iter().collect()
}

impl Pass for UafLintPass {
    fn name(&self) -> &'static str {
        "uaf-lint"
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> Vec<Diagnostic> {
        let program = cx.program;
        let ticfg = cx.ticfg();
        self.run_inner(program, ticfg)
    }
}

/// `GA022` atomicity-violation candidates on inconsistently-locked
/// shared cells, ranked by interleaving pattern.
#[derive(Default)]
pub struct AtomicityLintPass {
    /// Cap on reported findings (default 8).
    pub limit: Option<usize>,
}

impl AtomicityLintPass {
    fn run_inner(&self, program: &Program, ticfg: &Ticfg) -> Vec<Diagnostic> {
        let (stmt_ls, pts) = locksets_with(program, ticfg);
        let races = analyze_with(program, ticfg);
        let svfg = Svfg::build_with(program, ticfg, &pts);
        let feas = &svfg.feasibility;

        // Per-origin locking consistency: some access protected, some not.
        let mut locked: BTreeSet<MemOrigin> = BTreeSet::new();
        let mut unlocked: BTreeSet<MemOrigin> = BTreeSet::new();
        let mut data_accesses: Vec<(InstrId, FuncId, AccessKind, BTreeSet<MemOrigin>)> = Vec::new();
        for f in &program.functions {
            for b in &f.blocks {
                for instr in &b.instrs {
                    let kind = match &instr.op {
                        Op::Load { .. } => AccessKind::Read,
                        Op::Store { .. } => AccessKind::Write,
                        Op::Free { .. } => AccessKind::Free,
                        _ => continue,
                    };
                    let origins: BTreeSet<MemOrigin> = access_locs(program, &pts, f.id, instr.id)
                        .into_iter()
                        .map(|l| l.origin)
                        .collect();
                    if origins.is_empty() {
                        continue;
                    }
                    let has_lock = stmt_ls
                        .get(&instr.id)
                        .map(|ls| !ls.is_empty())
                        .unwrap_or(false);
                    for &o in &origins {
                        if has_lock {
                            locked.insert(o);
                        } else {
                            unlocked.insert(o);
                        }
                    }
                    data_accesses.push((instr.id, f.id, kind, origins));
                }
            }
        }
        let inconsistent: BTreeSet<MemOrigin> = locked.intersection(&unlocked).copied().collect();

        // A race candidate supplies the (local, remote) skeleton: the two
        // sides can interleave. Complete it with a second local access on
        // the same origin reachable from (or reaching) the local side.
        let mut best: HashMap<MemOrigin, (AvPattern, InstrId, InstrId, InstrId)> = HashMap::new();
        for c in &races.candidates {
            if !inconsistent.contains(&c.origin) {
                continue;
            }
            for (local, remote) in [(&c.first, &c.second), (&c.second, &c.first)] {
                let Some(lfunc) = program.stmt_func(local.stmt) else {
                    continue;
                };
                for (partner, pfunc, pkind, porigins) in &data_accesses {
                    if *partner == local.stmt || *pfunc != lfunc {
                        continue;
                    }
                    if !porigins.contains(&c.origin) {
                        continue;
                    }
                    // Order the local pair by intra-procedural flow.
                    let triples = [
                        (local.stmt, local.kind, *partner, *pkind),
                        (*partner, *pkind, local.stmt, local.kind),
                    ];
                    for (s1, k1, s2, k2) in triples {
                        if !feas.intra_path_feasible(program, s1, s2) || s1 == s2 {
                            continue;
                        }
                        let Some(pattern) = AvPattern::classify(k1, remote_kind(remote), k2) else {
                            continue;
                        };
                        let cand = (pattern, s1, remote.stmt, s2);
                        match best.get(&c.origin) {
                            Some(prev) if *prev <= cand => {}
                            _ => {
                                best.insert(c.origin, cand);
                            }
                        }
                    }
                }
            }
        }

        let mut found: Vec<((AvPattern, SrcLoc), Diagnostic)> = Vec::new();
        for (origin, (pattern, s1, r, s2)) in best {
            let cell = origin.display(program);
            let d = Diagnostic::warning(
                "GA022",
                format!(
                    "atomicity violation ({}) on {cell}: a remote access can interleave \
                     between two same-thread accesses",
                    pattern.label()
                ),
            )
            .at(loc_of(program, s1))
            .with_note(format!(
                "local {} at {}",
                kind_at(program, s1),
                where_of(program, s1)
            ))
            .with_note(format!(
                "remote {} at {} can interleave here",
                kind_at(program, r),
                where_of(program, r)
            ))
            .with_note(format!(
                "local {} at {}",
                kind_at(program, s2),
                where_of(program, s2)
            ))
            .with_note("cell is lock-protected on some accesses but not all".to_owned());
            found.push(((pattern, loc_of(program, s1)), d));
        }
        found.sort_by_key(|a| a.0);
        let limit = self.limit.unwrap_or(8);
        found.into_iter().take(limit).map(|(_, d)| d).collect()
    }
}

fn remote_kind(e: &crate::race::RaceEndpoint) -> AccessKind {
    e.kind
}

fn kind_at(program: &Program, s: InstrId) -> &'static str {
    match program.instr(s).map(|i| &i.op) {
        Some(Op::Load { .. }) => "read",
        Some(Op::Store { .. }) => "write",
        Some(Op::Free { .. }) => "free",
        Some(Op::MutexLock { .. }) | Some(Op::MutexUnlock { .. }) => "sync",
        _ => "access",
    }
}

impl Pass for AtomicityLintPass {
    fn name(&self) -> &'static str {
        "atomicity-lint"
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> Vec<Diagnostic> {
        let program = cx.program;
        let ticfg = cx.ticfg();
        self.run_inner(program, ticfg)
    }
}

/// `GA023` null-value flow into a dereference (Casper-style provenance).
#[derive(Default)]
pub struct NullFlowLintPass {
    /// Cap on reported findings (default 8).
    pub limit: Option<usize>,
}

impl NullFlowLintPass {
    fn run_inner(&self, program: &Program, ticfg: &Ticfg) -> Vec<Diagnostic> {
        let pts = PointsTo::compute(program, ticfg);
        let svfg = Svfg::build_with(program, ticfg, &pts);
        let consts = ConstProp::compute(program, ticfg);
        let mut found: Vec<(SrcLoc, Diagnostic)> = Vec::new();
        let mut seen: BTreeSet<(InstrId, InstrId)> = BTreeSet::new();

        for f in &program.functions {
            for b in &f.blocks {
                for instr in &b.instrs {
                    // A dereference through a register address.
                    let addr = match &instr.op {
                        Op::Load { addr, .. }
                        | Op::Store { addr, .. }
                        | Op::Free { addr }
                        | Op::MutexLock { addr }
                        | Op::MutexUnlock { addr } => *addr,
                        _ => continue,
                    };
                    let Operand::Var(v) = addr else { continue };
                    let deref = instr.id;
                    if !svfg.feasibility.stmt_live(program, deref) {
                        continue;
                    }
                    // The pointer's reaching loads.
                    for e in svfg.edges_in(deref) {
                        if e.kind != SvfgEdgeKind::Direct {
                            continue;
                        }
                        let load = e.def;
                        let Some(Op::Load { dst, .. }) = program.instr(load).map(|i| &i.op) else {
                            continue;
                        };
                        if *dst != v {
                            continue;
                        }
                        // Null stores flowing into that load's cell.
                        for we in svfg.edges_in(load) {
                            if !matches!(we.kind, SvfgEdgeKind::Memory | SvfgEdgeKind::Interleaved)
                            {
                                continue;
                            }
                            let w = we.def;
                            let Some(Op::Store { value, .. }) = program.instr(w).map(|i| &i.op)
                            else {
                                continue;
                            };
                            let wfunc = program.stmt_func(w).expect("indexed");
                            if consts.operand_const(wfunc, *value) != ConstVal::Const(0) {
                                continue;
                            }
                            // Suppressed when a null check guards every
                            // path from the load to the dereference.
                            if !svfg
                                .feasibility
                                .reachable_with_null(program, load, deref, v)
                            {
                                continue;
                            }
                            if !seen.insert((w, deref)) {
                                continue;
                            }
                            let d = Diagnostic::warning(
                                "GA023",
                                format!(
                                    "possible null dereference: the value stored at {} may be \
                                     zero when dereferenced",
                                    where_of(program, w)
                                ),
                            )
                            .at(loc_of(program, deref))
                            .with_note(format!("null (0) stored at {}", where_of(program, w)))
                            .with_note(format!("loaded at {}", where_of(program, load)))
                            .with_note(format!(
                                "dereferenced without a null check at {}",
                                where_of(program, deref)
                            ));
                            found.push((loc_of(program, deref), d));
                        }
                    }
                }
            }
        }
        found.sort_by_key(|a| a.0);
        let limit = self.limit.unwrap_or(8);
        found.into_iter().take(limit).map(|(_, d)| d).collect()
    }
}

impl Pass for NullFlowLintPass {
    fn name(&self) -> &'static str {
        "null-flow-lint"
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> Vec<Diagnostic> {
        let program = cx.program;
        let ticfg = cx.ticfg();
        self.run_inner(program, ticfg)
    }
}

/// The `gist-lint` pipeline: the IR verifier (malformed programs fail
/// fast) followed by the three SVFG-based detectors.
pub fn lint_passes() -> PassManager {
    PassManager::new()
        .with_pass(crate::verify::VerifierPass)
        .with_pass(UafLintPass::default())
        .with_pass(AtomicityLintPass::default())
        .with_pass(NullFlowLintPass::default())
}

/// Suppress an unused-import warning path: RaceCandidate is part of the
/// public reasoning surface referenced in docs.
#[allow(dead_code)]
fn _doc_anchor(_: &RaceCandidate) {}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::parser::parse_program;

    fn lint(text: &str) -> Vec<Diagnostic> {
        let p = parse_program("t", text).unwrap();
        lint_passes().run(&p)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn sequential_store_load_is_clean() {
        let diags = lint(
            r#"
global g = 0
fn main() {
entry:
  store $g, 7
  v = load $g
  assert v, "boom"
  ret
}
"#,
        );
        assert!(diags.is_empty(), "clean sequential program: {diags:?}");
    }

    #[test]
    fn same_thread_use_after_free_found() {
        let diags = lint(
            r#"
fn main() {
entry:
  p = alloc 1
  store p, 7
  free p
  v = load p
  print v
  ret
}
"#,
        );
        assert!(codes(&diags).contains(&"GA020"), "{diags:?}");
        let uaf = diags.iter().find(|d| d.code == "GA020").unwrap();
        assert_eq!(uaf.notes.len(), 3, "alloc/free/use chain: {:?}", uaf.notes);
    }

    #[test]
    fn same_thread_double_free_found() {
        let diags = lint(
            r#"
fn main() {
entry:
  p = alloc 1
  free p
  free p
  ret
}
"#,
        );
        assert!(codes(&diags).contains(&"GA021"), "{diags:?}");
    }

    #[test]
    fn free_then_realloc_in_loop_is_clean() {
        // The freed pointer is re-allocated before reuse: the allocation
        // site on the path revalidates it.
        let diags = lint(
            r#"
global n = 0
fn main() {
entry:
  br head
head:
  p = alloc 1
  store p, 7
  free p
  c = load $n
  condbr c, head, done
done:
  ret
}
"#,
        );
        assert!(
            !codes(&diags).contains(&"GA020") && !codes(&diags).contains(&"GA021"),
            "realloc on the back edge revalidates the pointer: {diags:?}"
        );
    }

    #[test]
    fn cross_thread_racing_free_found() {
        let diags = lint(
            r#"
fn cons(q) {
entry:
  m = load q
  lock m
  unlock m
  ret
}
fn main() {
entry:
  q = alloc 1
  mu = alloc 1
  store q, mu
  t = spawn cons(q)
  free mu
  store q, 0
  join t
  ret
}
"#,
        );
        assert!(
            codes(&diags).contains(&"GA020"),
            "racing free of the mutex is a cross-thread UAF: {diags:?}"
        );
    }

    #[test]
    fn inconsistently_locked_shared_counter_is_an_atomicity_candidate() {
        let diags = lint(
            r#"
global counter = 0
global lk = 0
fn worker(arg) {
entry:
  lock $lk
  v = load $counter
  w = add v, 1
  store $counter, w
  unlock $lk
  ret
}
fn main() {
entry:
  t = spawn worker(0)
  a = load $counter
  b = add a, 1
  store $counter, b
  join t
  ret
}
"#,
        );
        let av: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "GA022").collect();
        assert!(!av.is_empty(), "unlocked RMW on a locked cell: {diags:?}");
        assert!(
            av[0].message.contains("RWR")
                || av[0].message.contains("WWR")
                || av[0].message.contains("RWW")
                || av[0].message.contains("WRW"),
            "pattern named in the message: {}",
            av[0].message
        );
    }

    #[test]
    fn consistently_locked_counter_is_clean() {
        let diags = lint(
            r#"
global counter = 0
global lk = 0
fn worker(arg) {
entry:
  lock $lk
  v = load $counter
  w = add v, 1
  store $counter, w
  unlock $lk
  ret
}
fn main() {
entry:
  t = spawn worker(0)
  lock $lk
  a = load $counter
  b = add a, 1
  store $counter, b
  unlock $lk
  join t
  ret
}
"#,
        );
        assert!(
            !codes(&diags).contains(&"GA022"),
            "consistent locking: {diags:?}"
        );
    }

    #[test]
    fn null_flow_into_dereference_found_and_guard_suppresses() {
        let found = lint(
            r#"
global slot = 0
fn main() {
entry:
  store $slot, 0
  m = load $slot
  lock m
  ret
}
"#,
        );
        assert!(codes(&found).contains(&"GA023"), "{found:?}");
        let guarded = lint(
            r#"
global slot = 0
fn main() {
entry:
  store $slot, 0
  m = load $slot
  z = cmp eq m, 0
  condbr z, skip, use
use:
  lock m
  br skip
skip:
  ret
}
"#,
        );
        assert!(
            !codes(&guarded).contains(&"GA023"),
            "null check guards the lock: {guarded:?}"
        );
    }

    #[test]
    fn av_pattern_classification() {
        use AccessKind::*;
        assert_eq!(AvPattern::classify(Read, Write, Read), Some(AvPattern::Rwr));
        assert_eq!(
            AvPattern::classify(Write, Write, Read),
            Some(AvPattern::Wwr)
        );
        assert_eq!(
            AvPattern::classify(Read, Write, Write),
            Some(AvPattern::Rww)
        );
        assert_eq!(
            AvPattern::classify(Write, Read, Write),
            Some(AvPattern::Wrw)
        );
        assert_eq!(AvPattern::classify(Read, Read, Read), None);
        assert_eq!(AvPattern::classify(Free, Write, Read), Some(AvPattern::Wwr));
    }

    #[test]
    fn lint_pipeline_names() {
        assert_eq!(
            lint_passes().pass_names(),
            vec!["verify", "uaf-lint", "atomicity-lint", "null-flow-lint"]
        );
    }
}
