//! The sparse value-flow graph (SVFG) and the path-feasibility pruner.
//!
//! The slicer's Algorithm 1 walks the TICFG and pulls in *every* feasible
//! definition of every item it touches — flow-insensitive on globals,
//! context-insensitive across calls, and blind to branch conditions. Each
//! surviving statement becomes a watchpoint candidate, so that slack is
//! paid for at runtime in debug registers and AsT iterations. This module
//! builds the sparse counterpart: a graph whose nodes are statements and
//! whose edges are *value flows*, assembled from the reaching-definitions
//! solution ([`crate::dataflow::reaching_definitions`]) and the Andersen
//! points-to result ([`crate::points_to::PointsTo`]):
//!
//! * [`SvfgEdgeKind::Direct`] — register def → use, kept only when the
//!   def actually reaches the use (flow-sensitive, unlike the slicer's
//!   "all defs of the register" pull);
//! * [`SvfgEdgeKind::Memory`] — store/free → same-thread memory access
//!   through a syntactic global name, again filtered by reaching defs;
//! * [`SvfgEdgeKind::Interleaved`] — cross-thread flow on a shared
//!   origin. These deliberately mirror the slicer's alias pull verbatim:
//!   a write in another thread has no forward TICFG path to the reader,
//!   so reaching-definitions cannot vouch for it and the flow must stay
//!   over-approximate;
//! * [`SvfgEdgeKind::Param`]/[`SvfgEdgeKind::Ret`] — call/return bindings
//!   labelled with their call site, giving the backward walk one level of
//!   context sensitivity (1-CFA): entering a callee through the return
//!   edge of call site `c` only exits through parameters bound at `c`.
//!
//! Every edge additionally passes the [`Feasibility`] pruner: branch
//! conditions decided by constant propagation and must-equality facts
//! along CFG edges mark edges no concrete execution can take; value flows
//! whose every def→use path crosses such an edge are dropped.
//!
//! Because each edge is the corresponding Algorithm 1 pull *plus* extra
//! filters, a backward SVFG slice is a subset of the legacy TICFG slice
//! for the same criterion — the property test in `tests/svfg_prop.rs`
//! pins this, and the `repro -- svfg` ablation measures the shrink.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use gist_ir::icfg::Ticfg;
use gist_ir::{
    BlockId, CmpKind, FuncId, GlobalId, InstrId, Op, Operand, Program, Terminator, Value, VarId,
};

use crate::dataflow::{reaching_definitions, ConstProp, ConstVal, Solution};
use crate::points_to::{Loc, LocSet, MemOrigin, PointsTo};
use crate::race::shared_origins_with;

/// How a value reaches a use site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SvfgEdgeKind {
    /// Register def → register use within one function.
    Direct,
    /// Store/free → memory access through a syntactic global name, in
    /// program order (the def reaches the use).
    Memory,
    /// Write → access on a thread-shared origin; may cross threads, so it
    /// carries no reaching-defs guarantee.
    Interleaved,
    /// Call site → parameter use in the callee; the id is the call site.
    Param(InstrId),
    /// Callee return → call result; the id is the call site.
    Ret(InstrId),
}

/// One incoming value-flow edge of a use site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SvfgEdge {
    /// The defining statement the value comes from.
    pub def: InstrId,
    /// How the value travels.
    pub kind: SvfgEdgeKind,
}

/// The sparse value-flow graph, stored backward: for each use site, the
/// edges the value may have arrived on.
pub struct Svfg {
    edges_in: BTreeMap<InstrId, Vec<SvfgEdge>>,
    /// The feasibility pruner used while building (shared with clients
    /// that want to ask their own path questions, e.g. the null-flow
    /// lint's guard check).
    pub feasibility: Feasibility,
    /// Origins reachable from more than one thread context.
    pub shared_origins: BTreeSet<MemOrigin>,
}

impl Svfg {
    /// Builds the graph: points-to, reaching defs, constant propagation,
    /// and the feasibility pruner, then one pass over all statements.
    pub fn build(program: &Program, ticfg: &Ticfg) -> Svfg {
        let pts = PointsTo::compute(program, ticfg);
        Svfg::build_with(program, ticfg, &pts)
    }

    /// Builds the graph reusing an existing points-to result.
    pub fn build_with(program: &Program, ticfg: &Ticfg, pts: &PointsTo) -> Svfg {
        let rd = reaching_definitions(program, ticfg, pts);
        let consts = ConstProp::compute(program, ticfg);
        let feasibility = Feasibility::compute(program, ticfg, &consts);
        let shared_origins = shared_origins_with(program, ticfg);
        let mut b = Builder {
            program,
            ticfg,
            pts,
            rd: &rd,
            feas: &feasibility,
            shared: &shared_origins,
            reg_defs: HashMap::new(),
            global_writes: HashMap::new(),
            write_locs: BTreeMap::new(),
            edges: BTreeMap::new(),
        };
        b.index();
        b.run();
        Svfg {
            edges_in: b.edges,
            feasibility,
            shared_origins,
        }
    }

    /// The incoming value-flow edges of a use site (empty if none).
    pub fn edges_in(&self, use_site: InstrId) -> &[SvfgEdge] {
        self.edges_in.get(&use_site).map_or(&[], Vec::as_slice)
    }

    /// All use sites that have at least one incoming edge, in id order.
    pub fn use_sites(&self) -> impl Iterator<Item = InstrId> + '_ {
        self.edges_in.keys().copied()
    }

    /// Total edge count (ablation reporting).
    pub fn edge_count(&self) -> usize {
        self.edges_in.values().map(Vec::len).sum()
    }

    /// Backward 1-CFA value-flow reachability from `criterion`: every
    /// statement whose value may flow into it, with the hop distance of
    /// the shortest flow chain. Context discipline: following a
    /// [`SvfgEdgeKind::Ret`] edge into a callee remembers the call site,
    /// and a [`SvfgEdgeKind::Param`] edge only exits through the same
    /// site (or any site when the context is unknown).
    pub fn backward_value_flow(&self, criterion: InstrId) -> HashMap<InstrId, u64> {
        let mut dist: HashMap<InstrId, u64> = HashMap::new();
        let mut seen: BTreeSet<(InstrId, Option<InstrId>)> = BTreeSet::new();
        let mut q: VecDeque<(InstrId, Option<InstrId>, u64)> = VecDeque::new();
        seen.insert((criterion, None));
        q.push_back((criterion, None, 0));
        while let Some((s, ctx, d)) = q.pop_front() {
            let slot = dist.entry(s).or_insert(d);
            if d < *slot {
                *slot = d;
            }
            for e in self.edges_in(s) {
                let next_ctx = match e.kind {
                    SvfgEdgeKind::Ret(c) => Some(c),
                    SvfgEdgeKind::Param(c) => {
                        if ctx.is_some() && ctx != Some(c) {
                            continue; // entered through a different call site
                        }
                        None
                    }
                    _ => ctx,
                };
                if seen.insert((e.def, next_ctx)) {
                    q.push_back((e.def, next_ctx, d + 1));
                }
            }
        }
        dist
    }
}

struct Builder<'a> {
    program: &'a Program,
    ticfg: &'a Ticfg,
    pts: &'a PointsTo,
    rd: &'a Solution<BTreeSet<InstrId>>,
    feas: &'a Feasibility,
    shared: &'a BTreeSet<MemOrigin>,
    reg_defs: HashMap<(FuncId, VarId), Vec<InstrId>>,
    global_writes: HashMap<GlobalId, Vec<InstrId>>,
    /// Cells written by each store/free (frees widened to the origin).
    write_locs: BTreeMap<InstrId, LocSet>,
    edges: BTreeMap<InstrId, Vec<SvfgEdge>>,
}

impl Builder<'_> {
    fn index(&mut self) {
        for f in &self.program.functions {
            for b in &f.blocks {
                for i in &b.instrs {
                    if let Some(d) = i.op.def() {
                        self.reg_defs.entry((f.id, d)).or_default().push(i.id);
                    }
                    if let Some(Operand::Global(g)) = i.op.access_addr() {
                        if i.op.is_memory_write() {
                            self.global_writes.entry(g).or_default().push(i.id);
                        }
                    }
                    let locs = match &i.op {
                        Op::Store { addr, .. } => self.pts.operand_origins(f.id, *addr),
                        Op::Free { addr } => self
                            .pts
                            .operand_origins(f.id, *addr)
                            .into_iter()
                            .map(|l| Loc::anywhere(l.origin))
                            .collect(),
                        _ => continue,
                    };
                    if !locs.is_empty() {
                        self.write_locs.insert(i.id, locs);
                    }
                }
            }
        }
    }

    fn run(&mut self) {
        for fi in 0..self.program.functions.len() {
            let f = &self.program.functions[fi];
            let fid = f.id;
            let nparams = f.params.len() as u32;
            let mut work: Vec<(InstrId, Vec<Operand>, bool)> = Vec::new();
            for b in &f.blocks {
                for i in &b.instrs {
                    work.push((i.id, i.op.uses(), true));
                }
                work.push((b.term.id(), b.term.uses(), false));
            }
            for (s, uses, is_instr) in work {
                if !self.feas.stmt_live(self.program, s) {
                    continue;
                }
                for o in &uses {
                    match *o {
                        Operand::Var(v) => self.register_edges(fid, s, v, nparams),
                        Operand::Global(g) => self.global_edges(s, g),
                        Operand::Const(_) => {}
                    }
                }
                if is_instr {
                    self.alias_edges(fid, s);
                    self.return_edges(s);
                }
            }
        }
    }

    fn push(&mut self, use_site: InstrId, def: InstrId, kind: SvfgEdgeKind) {
        let edges = self.edges.entry(use_site).or_default();
        let e = SvfgEdge { def, kind };
        if !edges.contains(&e) {
            edges.push(e);
        }
    }

    /// `Direct` edges from reaching defs of `v`, plus `Param` edges from
    /// every call site when `v` is a parameter.
    fn register_edges(&mut self, fid: FuncId, s: InstrId, v: VarId, nparams: u32) {
        let defs: Vec<InstrId> = self.reg_defs.get(&(fid, v)).cloned().unwrap_or_default();
        for d in defs {
            if d != s
                && self.rd.before(s).contains(&d)
                && self.feas.stmt_live(self.program, d)
                && self.feas.intra_path_feasible(self.program, d, s)
            {
                self.push(s, d, SvfgEdgeKind::Direct);
            }
        }
        if v.0 < nparams {
            if let Some(callers) = self.ticfg.callers.get(&fid) {
                let callers = callers.clone();
                for cs in callers {
                    if self.feas.stmt_live(self.program, cs) {
                        self.push(s, cs, SvfgEdgeKind::Param(cs));
                    }
                }
            }
        }
    }

    /// Value flow through a syntactic global name. Thread-shared globals
    /// keep the slicer's flow-insensitive pull (`Interleaved`: any write,
    /// including locks); thread-confined ones get the sparse treatment
    /// (`Memory`: only writes that reach, only along feasible paths).
    fn global_edges(&mut self, s: InstrId, g: GlobalId) {
        let writes = self
            .global_writes
            .get(&g)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .to_vec();
        let is_shared = self.shared.contains(&MemOrigin::Global(g));
        for w in writes {
            if w == s || !self.feas.stmt_live(self.program, w) {
                continue;
            }
            if is_shared {
                self.push(s, w, SvfgEdgeKind::Interleaved);
            } else if self.rd.before(s).contains(&w)
                && self.feas.intra_path_feasible(self.program, w, s)
            {
                self.push(s, w, SvfgEdgeKind::Memory);
            }
        }
    }

    /// The slicer's alias pull, verbatim: an access on a thread-shared
    /// cell flows from every store/free on an overlapping cell.
    fn alias_edges(&mut self, fid: FuncId, s: InstrId) {
        let Some(instr) = self.program.instr(s) else {
            return;
        };
        let locs: LocSet = match &instr.op {
            Op::Intrinsic { args, .. } => {
                let mut locs = LocSet::new();
                for a in args {
                    for l in self.pts.operand_origins(fid, *a) {
                        locs.insert(Loc::anywhere(l.origin));
                    }
                }
                locs
            }
            op => op
                .access_addr()
                .map(|addr| self.pts.operand_origins(fid, addr))
                .unwrap_or_default(),
        };
        let locs: LocSet = locs
            .into_iter()
            .filter(|l| self.shared.contains(&l.origin))
            .collect();
        if locs.is_empty() {
            return;
        }
        let pulls: Vec<InstrId> = self
            .write_locs
            .iter()
            .filter(|(&w, wlocs)| {
                w != s && wlocs.iter().any(|wl| locs.iter().any(|rl| wl.overlaps(rl)))
            })
            .map(|(&w, _)| w)
            .collect();
        for w in pulls {
            if self.feas.stmt_live(self.program, w) {
                self.push(s, w, SvfgEdgeKind::Interleaved);
            }
        }
    }

    /// `Ret` edges: a call whose result is consumed flows from every
    /// returning statement of every callee, tagged with the call site.
    fn return_edges(&mut self, s: InstrId) {
        let Some(instr) = self.program.instr(s) else {
            return;
        };
        let Op::Call { dst: Some(_), .. } = &instr.op else {
            return;
        };
        let Some(targets) = self.ticfg.call_targets.get(&s) else {
            return;
        };
        let targets = targets.clone();
        for callee in targets {
            for b in &self.program.function(callee).blocks {
                if let Terminator::Ret {
                    id, value: Some(_), ..
                } = &b.term
                {
                    let id = *id;
                    if self.feas.stmt_live(self.program, id) {
                        self.push(s, id, SvfgEdgeKind::Ret(s));
                    }
                }
            }
        }
    }
}

/// A must-fact about a single-assignment register on entry to a block:
/// the register certainly equals a constant, or certainly differs from a
/// set of constants.
#[derive(Clone, Debug, Default, PartialEq)]
struct VarFact {
    eq: Option<Value>,
    ne: BTreeSet<Value>,
}

/// A branch-edge implication about a register.
#[derive(Clone, Copy, Debug, PartialEq)]
enum EdgeFact {
    /// The register equals this value on the edge.
    Eq(VarId, Value),
    /// The register differs from this value on the edge.
    Ne(VarId, Value),
}

type BlockFacts = BTreeMap<VarId, VarFact>;

/// The path-feasibility pruner: constant-propagated branch decisions plus
/// a per-function must-equality dataflow whose contradictions mark CFG
/// edges no concrete execution can take.
///
/// Soundness: facts are tracked only for registers with exactly one
/// defining statement (true SSA temporaries — MiniC allows shadowing
/// re-assignment, which disqualifies a register), so a fact learned on a
/// branch edge can never be invalidated downstream. Join is intersection:
/// a fact survives a merge point only if every feasible incoming edge
/// implies it.
pub struct Feasibility {
    /// (branch terminator, successor block) pairs that cannot be taken.
    infeasible: BTreeSet<(InstrId, BlockId)>,
    /// Per function, per block: reachable from the function entry over
    /// feasible edges only.
    live_blocks: Vec<Vec<bool>>,
    /// Per function, per block: the block set reachable through at least
    /// one feasible edge (so a block appears in its own set only on a
    /// cycle).
    reach: Vec<Vec<BTreeSet<usize>>>,
    /// Per function: branch-edge implications, for hypothesis queries.
    edge_facts: HashMap<(InstrId, BlockId), Vec<EdgeFact>>,
}

impl Feasibility {
    /// Runs the pruner: seeds infeasible edges from constant-propagated
    /// branch conditions, then iterates the must-fact dataflow and the
    /// contradiction check to a fixpoint (bounded at four rounds; each
    /// round only removes edges, so the bound is a safety net).
    pub fn compute(program: &Program, ticfg: &Ticfg, consts: &ConstProp) -> Feasibility {
        let mut feas = Feasibility {
            infeasible: BTreeSet::new(),
            live_blocks: Vec::new(),
            reach: Vec::new(),
            edge_facts: HashMap::new(),
        };
        for f in &program.functions {
            let single_defs = single_def_map(f);
            // Edge facts and constprop-decided branches.
            for b in &f.blocks {
                if let Terminator::CondBr {
                    id,
                    cond,
                    then_bb,
                    else_bb,
                    ..
                } = &b.term
                {
                    if let ConstVal::Const(c) = consts.operand_const(f.id, *cond) {
                        let dead = if c != 0 { *else_bb } else { *then_bb };
                        feas.infeasible.insert((*id, dead));
                    }
                    for (taken, target) in [(true, *then_bb), (false, *else_bb)] {
                        let facts = branch_implications(&single_defs, *cond, taken);
                        if !facts.is_empty() {
                            feas.edge_facts.insert((*id, target), facts);
                        }
                    }
                }
            }
            // Must-fact rounds: propagate, find contradictions, repeat.
            for _round in 0..4 {
                let in_facts = feas.solve_facts(f);
                let mut grew = false;
                for b in &f.blocks {
                    let Some(Some(facts)) = in_facts.get(b.id.index()) else {
                        continue;
                    };
                    let term_id = b.term.id();
                    for succ in b.term.successors() {
                        if feas.infeasible.contains(&(term_id, succ)) {
                            continue;
                        }
                        let contradicted = feas
                            .edge_facts
                            .get(&(term_id, succ))
                            .map(|efs| efs.iter().any(|ef| contradicts(facts, ef)))
                            .unwrap_or(false);
                        if contradicted {
                            feas.infeasible.insert((term_id, succ));
                            grew = true;
                        }
                    }
                }
                if !grew {
                    break;
                }
            }
        }
        // Per-function block liveness and reachability over feasible edges.
        for f in &program.functions {
            let n = f.blocks.len();
            let mut live = vec![false; n];
            if n > 0 {
                let mut q = VecDeque::from([0usize]);
                live[0] = true;
                while let Some(bi) = q.pop_front() {
                    for succ in feas.feasible_succs(f, bi) {
                        if !live[succ] {
                            live[succ] = true;
                            q.push_back(succ);
                        }
                    }
                }
            }
            let mut reach = Vec::with_capacity(n);
            for start in 0..n {
                let mut seen: BTreeSet<usize> = BTreeSet::new();
                let mut q: VecDeque<usize> = feas.feasible_succs(f, start).collect();
                while let Some(bi) = q.pop_front() {
                    if seen.insert(bi) {
                        q.extend(feas.feasible_succs(f, bi));
                    }
                }
                reach.push(seen);
            }
            feas.live_blocks.push(live);
            feas.reach.push(reach);
        }
        let _ = ticfg;
        feas
    }

    fn feasible_succs<'f>(
        &'f self,
        f: &'f gist_ir::Function,
        bi: usize,
    ) -> impl Iterator<Item = usize> + 'f {
        let term = &f.blocks[bi].term;
        let term_id = term.id();
        term.successors()
            .into_iter()
            .filter(move |s| !self.infeasible.contains(&(term_id, *s)))
            .map(|s| s.index())
    }

    /// One forward must-fact pass over a function, given the current
    /// infeasible-edge set. `None` = block unreachable.
    fn solve_facts(&self, f: &gist_ir::Function) -> Vec<Option<BlockFacts>> {
        let n = f.blocks.len();
        let mut facts: Vec<Option<BlockFacts>> = vec![None; n];
        if n == 0 {
            return facts;
        }
        facts[0] = Some(BlockFacts::new());
        let mut work: VecDeque<usize> = VecDeque::from([0]);
        let mut guard = 0usize;
        while let Some(bi) = work.pop_front() {
            guard += 1;
            if guard > n.saturating_mul(64) + 64 {
                break; // defensive bound
            }
            let Some(cur) = facts[bi].clone() else {
                continue;
            };
            let term = &f.blocks[bi].term;
            let term_id = term.id();
            for succ in term.successors() {
                if self.infeasible.contains(&(term_id, succ)) {
                    continue;
                }
                let mut out = cur.clone();
                if let Some(efs) = self.edge_facts.get(&(term_id, succ)) {
                    for ef in efs {
                        apply_fact(&mut out, ef);
                    }
                }
                let si = succ.index();
                let merged = match &facts[si] {
                    None => out,
                    Some(prev) => meet(prev, &out),
                };
                if facts[si].as_ref() != Some(&merged) {
                    facts[si] = Some(merged);
                    work.push_back(si);
                }
            }
        }
        facts
    }

    /// True if the (branch, successor block) edge may be taken.
    pub fn edge_feasible(&self, branch: InstrId, target: BlockId) -> bool {
        !self.infeasible.contains(&(branch, target))
    }

    /// Number of pruned CFG edges (ablation reporting).
    pub fn pruned_edge_count(&self) -> usize {
        self.infeasible.len()
    }

    /// True if the statement's block is reachable from its function entry
    /// over feasible edges.
    pub fn stmt_live(&self, program: &Program, s: InstrId) -> bool {
        let Some(pos) = program.stmt_pos(s) else {
            return true;
        };
        self.live_blocks
            .get(pos.func.index())
            .and_then(|blocks| blocks.get(pos.block.index()))
            .copied()
            .unwrap_or(true)
    }

    /// True if some feasible intra-function CFG path runs from `from` to
    /// `to`. Statements in different functions conservatively answer
    /// true (the caller decides whether a cross-function check applies).
    pub fn intra_path_feasible(&self, program: &Program, from: InstrId, to: InstrId) -> bool {
        let (Some(a), Some(b)) = (program.stmt_pos(from), program.stmt_pos(to)) else {
            return true;
        };
        if a.func != b.func {
            return true;
        }
        if a.block == b.block && a.index < b.index {
            return true;
        }
        self.reach
            .get(a.func.index())
            .and_then(|r| r.get(a.block.index()))
            .map(|set| set.contains(&b.block.index()))
            .unwrap_or(true)
    }

    /// True if some feasible path from `from` to `to` exists on which the
    /// hypothesis `var == 0` is never contradicted by a branch-edge fact —
    /// i.e. `to` can still execute with `var` null. Returns false when
    /// every path is guarded by a null check (the Casper-style suppression
    /// in the null-flow lint). Both statements must be in one function;
    /// cross-function queries conservatively answer true.
    pub fn reachable_with_null(
        &self,
        program: &Program,
        from: InstrId,
        to: InstrId,
        var: VarId,
    ) -> bool {
        let (Some(a), Some(b)) = (program.stmt_pos(from), program.stmt_pos(to)) else {
            return true;
        };
        if a.func != b.func {
            return true;
        }
        if a.block == b.block && a.index < b.index {
            return true; // no branch in between
        }
        let f = program.function(a.func);
        let goal = b.block.index();
        let allowed = |term_id: InstrId, succ: BlockId| -> bool {
            if self.infeasible.contains(&(term_id, succ)) {
                return false;
            }
            match self.edge_facts.get(&(term_id, succ)) {
                None => true,
                Some(efs) => !efs.iter().any(|ef| match *ef {
                    EdgeFact::Ne(v, k) => v == var && k == 0,
                    EdgeFact::Eq(v, k) => v == var && k != 0,
                }),
            }
        };
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut q: VecDeque<usize> = VecDeque::new();
        let start_term = &f.blocks[a.block.index()].term;
        for succ in start_term.successors() {
            if allowed(start_term.id(), succ) {
                q.push_back(succ.index());
            }
        }
        while let Some(bi) = q.pop_front() {
            if bi == goal {
                return true;
            }
            if !seen.insert(bi) {
                continue;
            }
            let term = &f.blocks[bi].term;
            for succ in term.successors() {
                if allowed(term.id(), succ) {
                    q.push_back(succ.index());
                }
            }
        }
        false
    }
}

/// The single-assignment registers of `f`: parameters with no body
/// re-definition, and non-parameters with exactly one defining statement
/// (MiniC allows shadowing re-assignment, which disqualifies a register).
/// Only these can carry must-facts. Mapped to the defining op when there
/// is one in the body.
struct SingleDefs<'f> {
    safe: BTreeSet<VarId>,
    def_op: HashMap<VarId, &'f Op>,
}

fn single_def_map(f: &gist_ir::Function) -> SingleDefs<'_> {
    let mut counts: HashMap<VarId, usize> = HashMap::new();
    let mut def_op: HashMap<VarId, &Op> = HashMap::new();
    for b in &f.blocks {
        for i in &b.instrs {
            if let Some(d) = i.op.def() {
                *counts.entry(d).or_insert(0) += 1;
                def_op.insert(d, &i.op);
            }
        }
    }
    let nparams = f.params.len() as u32;
    let mut safe = BTreeSet::new();
    for v in 0..f.var_names.len() as u32 {
        let v = VarId(v);
        let body_defs = counts.get(&v).copied().unwrap_or(0);
        let is_param = v.0 < nparams;
        if (is_param && body_defs == 0) || (!is_param && body_defs == 1) {
            safe.insert(v);
        }
    }
    def_op.retain(|v, _| safe.contains(v));
    SingleDefs { safe, def_op }
}

/// What taking (or not taking) a branch on `cond` implies about
/// single-assignment registers.
fn branch_implications(single_defs: &SingleDefs<'_>, cond: Operand, taken: bool) -> Vec<EdgeFact> {
    let mut out = Vec::new();
    let Operand::Var(c) = cond else {
        return out;
    };
    // A single-assignment condition register is itself constrained.
    if single_defs.safe.contains(&c) {
        if taken {
            out.push(EdgeFact::Ne(c, 0));
        } else {
            out.push(EdgeFact::Eq(c, 0));
        }
        // And if it is a comparison against a constant, so is its operand.
        if let Some(Op::Cmp { kind, a, b, .. }) = single_defs.def_op.get(&c) {
            let vk = match (a, b) {
                (Operand::Var(v), Operand::Const(k)) | (Operand::Const(k), Operand::Var(v)) => {
                    Some((*v, *k))
                }
                _ => None,
            };
            if let Some((v, k)) = vk {
                if single_defs.safe.contains(&v) {
                    match (kind, taken) {
                        (CmpKind::Eq, true) | (CmpKind::Ne, false) => {
                            out.push(EdgeFact::Eq(v, k));
                        }
                        (CmpKind::Eq, false) | (CmpKind::Ne, true) => {
                            out.push(EdgeFact::Ne(v, k));
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    out
}

fn apply_fact(facts: &mut BlockFacts, ef: &EdgeFact) {
    match *ef {
        EdgeFact::Eq(v, k) => {
            facts.entry(v).or_default().eq = Some(k);
        }
        EdgeFact::Ne(v, k) => {
            facts.entry(v).or_default().ne.insert(k);
        }
    }
}

/// Intersection of two must-fact maps: a fact survives only if both sides
/// carry it.
fn meet(a: &BlockFacts, b: &BlockFacts) -> BlockFacts {
    let mut out = BlockFacts::new();
    for (v, fa) in a {
        let Some(fb) = b.get(v) else { continue };
        let eq = match (fa.eq, fb.eq) {
            (Some(x), Some(y)) if x == y => Some(x),
            _ => None,
        };
        let ne: BTreeSet<Value> = fa.ne.intersection(&fb.ne).copied().collect();
        if eq.is_some() || !ne.is_empty() {
            out.insert(*v, VarFact { eq, ne });
        }
    }
    out
}

/// True if the incoming must-facts rule the edge fact out.
fn contradicts(facts: &BlockFacts, ef: &EdgeFact) -> bool {
    match *ef {
        EdgeFact::Eq(v, k) => facts
            .get(&v)
            .map(|f| f.eq.is_some_and(|e| e != k) || f.ne.contains(&k))
            .unwrap_or(false),
        EdgeFact::Ne(v, k) => facts.get(&v).map(|f| f.eq == Some(k)).unwrap_or(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::icfg::Icfg;
    use gist_ir::parser::parse_program;

    fn build(text: &str) -> (Program, Svfg) {
        let p = parse_program("t", text).unwrap();
        let ticfg = Icfg::build_ticfg(&p);
        let g = Svfg::build(&p, &ticfg);
        (p, g)
    }

    #[test]
    fn direct_edges_follow_reaching_defs() {
        let (p, g) = build(
            r#"
fn main() {
entry:
  a = const 1
  b = add a, 1
  assert b, "boom"
  ret
}
"#,
        );
        let main = &p.functions[0];
        let a = main.blocks[0].instrs[0].id;
        let b = main.blocks[0].instrs[1].id;
        let assert_ = main.blocks[0].instrs[2].id;
        assert!(g
            .edges_in(b)
            .iter()
            .any(|e| e.def == a && e.kind == SvfgEdgeKind::Direct));
        assert!(g
            .edges_in(assert_)
            .iter()
            .any(|e| e.def == b && e.kind == SvfgEdgeKind::Direct));
        let flow = g.backward_value_flow(assert_);
        assert_eq!(flow.get(&a), Some(&2));
        assert_eq!(flow.get(&b), Some(&1));
    }

    #[test]
    fn param_and_ret_edges_carry_the_call_site() {
        let (p, g) = build(
            r#"
fn mk(x) {
entry:
  y = add x, 1
  ret y
}
fn main() {
entry:
  a = const 41
  r = call mk(a)
  assert r, "boom"
  ret
}
"#,
        );
        let mk = p.function_by_name("mk").unwrap();
        let main = p.function_by_name("main").unwrap();
        let call = main.blocks[0].instrs[1].id;
        let add = mk.blocks[0].instrs[0].id;
        let ret = mk.blocks[0].term.id();
        assert!(g
            .edges_in(call)
            .iter()
            .any(|e| e.def == ret && e.kind == SvfgEdgeKind::Ret(call)));
        assert!(g
            .edges_in(add)
            .iter()
            .any(|e| e.def == call && e.kind == SvfgEdgeKind::Param(call)));
        let flow = g.backward_value_flow(main.blocks[0].instrs[2].id);
        assert!(flow.contains_key(&add), "callee computation reached");
        assert!(
            flow.contains_key(&main.blocks[0].instrs[0].id),
            "argument source reached through the matching call site"
        );
    }

    #[test]
    fn one_cfa_context_blocks_cross_call_site_leaks() {
        // Two calls into `id`; the value flowing out of call site 1 must
        // not be attributed to call site 2's argument.
        let (p, g) = build(
            r#"
fn id(x) {
entry:
  ret x
}
fn main() {
entry:
  a = const 1
  b = const 2
  r1 = call id(a)
  r2 = call id(b)
  assert r1, "boom"
  ret
}
"#,
        );
        let main = p.function_by_name("main").unwrap();
        let a = main.blocks[0].instrs[0].id;
        let b = main.blocks[0].instrs[1].id;
        let assert_ = main.blocks[0].instrs[4].id;
        let flow = g.backward_value_flow(assert_);
        assert!(flow.contains_key(&a), "r1's argument flows in");
        assert!(
            !flow.contains_key(&b),
            "r2's argument must be blocked by the 1-CFA context: {flow:?}"
        );
    }

    #[test]
    fn thread_confined_global_flows_are_reaching_def_filtered() {
        // The overwritten store cannot reach the load; the legacy slicer
        // would pull it anyway (flow-insensitive global item pull).
        let (p, g) = build(
            r#"
global g = 0
fn main() {
entry:
  store $g, 1
  store $g, 2
  v = load $g
  assert v, "boom"
  ret
}
"#,
        );
        let main = &p.functions[0];
        let s1 = main.blocks[0].instrs[0].id;
        let s2 = main.blocks[0].instrs[1].id;
        let load = main.blocks[0].instrs[2].id;
        let defs: Vec<InstrId> = g.edges_in(load).iter().map(|e| e.def).collect();
        assert!(defs.contains(&s2), "reaching store flows: {defs:?}");
        assert!(!defs.contains(&s1), "killed store pruned: {defs:?}");
    }

    #[test]
    fn shared_origin_writes_stay_interleaved() {
        let (p, g) = build(
            r#"
fn cons(q) {
entry:
  m = load q
  lock m
  unlock m
  ret
}
fn main() {
entry:
  q = alloc 1
  mu = alloc 1
  store q, mu
  t = spawn cons(q)
  free mu
  store q, 0
  join t
  ret
}
"#,
        );
        let cons = p.function_by_name("cons").unwrap();
        let main = p.function_by_name("main").unwrap();
        let load_q = cons.blocks[0].instrs[0].id;
        let store_null = main.blocks[0].instrs[5].id;
        let lock_m = cons.blocks[0].instrs[1].id;
        let free_mu = main.blocks[0].instrs[4].id;
        assert!(
            g.edges_in(load_q)
                .iter()
                .any(|e| e.def == store_null && e.kind == SvfgEdgeKind::Interleaved),
            "cross-thread store into the queue cell is an interleaved flow"
        );
        assert!(
            g.edges_in(lock_m)
                .iter()
                .any(|e| e.def == free_mu && e.kind == SvfgEdgeKind::Interleaved),
            "racing free flows into the lock"
        );
    }

    #[test]
    fn constprop_decided_branches_prune_flows() {
        // The false arm of `if (1)` writes g; that write can never reach
        // the load.
        let (p, g) = build(
            r#"
global g = 0
fn main() {
entry:
  c = const 1
  condbr c, yes, no
no:
  store $g, 7
  br done
yes:
  store $g, 9
  br done
done:
  v = load $g
  assert v, "boom"
  ret
}
"#,
        );
        let main = &p.functions[0];
        // Block ids follow first-reference order: entry, yes, no, done.
        let store_live = main.blocks[1].instrs[0].id; // in `yes`
        let store_dead = main.blocks[2].instrs[0].id; // in `no`
        let load = main.blocks[3].instrs[0].id;
        let defs: Vec<InstrId> = g.edges_in(load).iter().map(|e| e.def).collect();
        assert!(defs.contains(&store_live), "live arm flows: {defs:?}");
        assert!(!defs.contains(&store_dead), "dead arm pruned: {defs:?}");
    }

    #[test]
    fn contradictory_branch_facts_prune_paths() {
        // v == 0 on the taken edge contradicts the second check's taken
        // edge (v != 0): the store behind it can never reach the load.
        let (p, g) = build(
            r#"
global g = 0
global src = 0
fn main() {
entry:
  v = load $src
  z = cmp eq v, 0
  condbr z, zero, other
zero:
  z2 = cmp ne v, 0
  condbr z2, dead, done
dead:
  store $g, 7
  br done
other:
  br done
done:
  out = load $g
  assert out, "boom"
  ret
}
"#,
        );
        let main = &p.functions[0];
        // Block ids follow first-reference order: entry, zero, other, dead, done.
        let store_dead = main.blocks[3].instrs[0].id;
        let load = main.blocks[4].instrs[0].id;
        let defs: Vec<InstrId> = g.edges_in(load).iter().map(|e| e.def).collect();
        assert!(
            !defs.contains(&store_dead),
            "store behind contradictory checks pruned: {defs:?}"
        );
        assert!(!g.feasibility.stmt_live(&p, store_dead));
    }

    #[test]
    fn null_hypothesis_blocked_by_guard() {
        let p = parse_program(
            "t",
            r#"
global slot = 0
fn main() {
entry:
  m = load $slot
  z = cmp eq m, 0
  condbr z, skip, use
use:
  lock m
  br skip
skip:
  ret
}
"#,
        )
        .unwrap();
        let ticfg = Icfg::build_ticfg(&p);
        let g = Svfg::build(&p, &ticfg);
        let main = &p.functions[0];
        let load = main.blocks[0].instrs[0].id;
        // Block ids follow first-reference order: entry, skip, use.
        let lock = main.blocks[2].instrs[0].id;
        let m = main.var_names.iter().position(|n| n == "m").unwrap() as u32;
        assert!(
            !g.feasibility.reachable_with_null(&p, load, lock, VarId(m)),
            "the eq-zero check guards the lock"
        );
        // Without the guard the hypothesis survives.
        let p2 = parse_program(
            "t",
            r#"
global slot = 0
fn main() {
entry:
  m = load $slot
  lock m
  ret
}
"#,
        )
        .unwrap();
        let ticfg2 = Icfg::build_ticfg(&p2);
        let g2 = Svfg::build(&p2, &ticfg2);
        let main2 = &p2.functions[0];
        let load2 = main2.blocks[0].instrs[0].id;
        let lock2 = main2.blocks[0].instrs[1].id;
        let m2 = main2.var_names.iter().position(|n| n == "m").unwrap() as u32;
        assert!(g2
            .feasibility
            .reachable_with_null(&p2, load2, lock2, VarId(m2)));
    }
}
