//! Static analyses over the MiniC IR.
//!
//! Gist's server-side pipeline (paper §3) runs entirely on static program
//! structure before any production run is instrumented: it slices backwards
//! from the failure, then picks instrumentation points. This crate adds the
//! two static analyses that sit naturally in front of that pipeline:
//!
//! * an **IR verifier and lint** ([`verify`]) that rejects malformed
//!   programs (bad branch targets, undominated register uses, call arity
//!   mismatches, textual blocks without terminators) and warns about
//!   suspicious-but-legal shapes (dead blocks, write-only globals), with
//!   `error[GA0xx]`-style diagnostics carrying source locations, and
//! * a **static data race detector** ([`race`]) in the lockset tradition of
//!   Eraser/RELAY: a thread-escape analysis over the TICFG finds memory
//!   that is reachable from more than one thread, a flow-sensitive lockset
//!   analysis computes the locks held at each shared access, and accesses
//!   on overlapping cells with disjoint locksets become ranked
//!   [`race::RaceCandidate`]s.
//!
//! The race ranking feeds two consumers downstream: the instrumentation
//! planner orders hardware watchpoints by race rank instead of slice order
//! (so the four DR registers go to the most suspicious accesses first), and
//! the Gist server seeds the first Adaptive Slice Tracking iteration with
//! race-candidate statements, which lets accesses that are invisible to the
//! alias-free data-flow slice (a racing `free`, for instance) be tracked
//! from recurrence one.
//!
//! Underneath the lints sits a **monotone dataflow framework**
//! ([`dataflow`]): one worklist solver over the TICFG parameterised by
//! direction, join, and transfer, with interprocedural propagation riding
//! the graph's call/return/spawn edges. It powers reaching definitions,
//! register liveness, memory-cell liveness (whose complement is the
//! dead-store set the watchpoint planner prunes against), and a sparse
//! constant propagation that fills sketch `value_note`s statically. The
//! [`deadlock`] module adds a lock-order-graph detector on top of the
//! race detector's lockset stage, predicting ABBA inversions before any
//! run observes them.
//!
//! On top of the dataflow framework sits a **sparse value-flow graph**
//! ([`svfg`]): interprocedural def-use chains with 1-CFA call/return
//! binding and a branch-condition path-feasibility pruner, built so every
//! edge is a filtered version of what the legacy slicer would pull (SVFG
//! backward slices are subsets of TICFG slices by construction). The
//! [`lint`] module uses it for the `gist-lint` detector suite:
//! use-after-free/double-free (`GA020`/`GA021`), atomicity-violation
//! candidates ranked by interleaving pattern (`GA022`), and Casper-style
//! null-value flow into dereferences (`GA023`).
//!
//! The third static pillar is the **happens-before/MHP relation**
//! ([`mhp`]): a thread-structure-aware happens-before graph (spawn/join
//! edges, lock regions, join-before-spawn chaining) solved into a
//! per-pair fact lattice — must-precede > sequential > lock-excluded >
//! parallel. It screens the lint suite's cross-thread findings, adds the
//! order-violation detector (`GA024`), lets the watchpoint planner and
//! the Gist server skip never-parallel stores and statically-impossible
//! interleaving hypotheses, and drives the [`predict`] module's *static
//! predicted failure sketches*: per finding, the minimal two-thread
//! ordering behind the failure, diffable against the dynamic sketches
//! the runtime pipeline reconstructs.
//!
//! Analyses are packaged as [`pass::Pass`]es run by a [`pass::PassManager`]
//! over a shared [`pass::AnalysisCtx`], so new passes can reuse the lazily
//! built TICFG.

pub mod dataflow;
pub mod deadlock;
pub mod diag;
pub mod ground_truth;
pub mod lint;
pub mod mhp;
pub mod pass;
pub mod points_to;
pub mod predict;
pub mod race;
pub mod svfg;
pub mod verify;

pub use dataflow::{
    dead_stores, live_variables, reaching_definitions, solve, ConstProp, ConstVal,
    DataflowAnalysis, DeadStoreLintPass, Direction, Liveness, MemLiveness, ReachingDefs, Solution,
    VarSet,
};
pub use deadlock::{DeadlockAnalysis, DeadlockCycle, DeadlockLintPass, LockOrderEdge};
pub use diag::{has_errors, render_report, sort_diagnostics, Diagnostic, Severity};
pub use ground_truth::{
    code_histogram, diag_references_line, findings_on_lines, lint_all, prediction_covers,
    predictions,
};
pub use lint::{
    lint_passes, AtomicityLintPass, AvPattern, NullFlowLintPass, OrderLintPass, UafLintPass,
};
pub use mhp::{LockRegion, LockSummary, Mhp, OrderFact};
pub use pass::{default_passes, AnalysisCtx, Pass, PassManager};
pub use points_to::{Loc, LocSet, MemOrigin, PointsTo};
pub use predict::{predicted_sketches, render_prediction, PredictedSketch, PredictedStep};
pub use race::{
    analyze, analyze_with, shared_origins_with, AccessKind, RaceAnalysis, RaceCandidate,
    RaceEndpoint,
};
pub use svfg::{Feasibility, Svfg, SvfgEdge, SvfgEdgeKind};
pub use verify::{verify, verify_source, SourceVerification};
