//! May-happen-in-parallel (MHP) analysis over the TICFG.
//!
//! The third static pillar next to value flow ([`crate::svfg`]) and path
//! feasibility: a thread-structure-aware happens-before relation. The
//! slicer answers *which values reach the failure*; this module answers
//! *which statements can actually overlap in time*, so the lint suite
//! stops reporting never-parallel pairs as races, the planner stops
//! burning watchpoint slots on never-parallel stores, and the AsT loop
//! stops testing statically-impossible interleaving hypotheses.
//!
//! # Construction
//!
//! Thread contexts mirror the race detector's: the main thread plus one
//! context per static `spawn` site. Happens-before edges come from
//! thread structure only — locks order nothing (they only exclude):
//!
//! * **Spawn**: every statement that must complete before a spawn
//!   executes (strict dominance in the spawning function, plus whole
//!   bodies of functions callable only from that dominating region)
//!   happens-before everything the spawned thread runs.
//! * **Join**: a `join` whose thread-id operand is the spawn's result
//!   variable closes the thread's lifetime: statements the join
//!   strictly dominates happen-after everything the joined thread ran.
//! * **Transitive thread order**: when the join of spawn *i* strictly
//!   dominates spawn *j*, all of thread *i* precedes all of thread *j*.
//!
//! Ordering claims are only made for spawn sites that execute at most
//! once (`multi` spawn sites — a spawn in a CFG cycle, or in a function
//! with several callers — get no happens-before edges and are
//! additionally parallel with themselves). Missing a join or a
//! dominance fact therefore errs toward *more* parallelism, which is
//! the sound direction for a may-analysis: the `tests/mhp_sound.rs`
//! gate replays every bugbase journal and rejects any false
//! "never parallel" verdict.
//!
//! # Lattice
//!
//! Per statement pair the analysis decides one of four facts, ordered
//! by strength: `MustPrecede` (a happens-before path orders the pair
//! the same way in every execution) > `Sequential` (the pair never runs
//! on two overlapping threads) > `Excluded` (the pair may interleave
//! but a common lock serializes it) > `Parallel` (no ordering and no
//! exclusion). [`Mhp::may_happen_in_parallel`] is true for the bottom
//! two: lock exclusion serializes *access*, not *order*, so an excluded
//! pair still interleaves.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use gist_ir::icfg::Ticfg;
use gist_ir::program::StmtPos;
use gist_ir::{BlockId, FuncId, InstrId, Op, Operand, Program};

use crate::points_to::{Loc, MemOrigin, PointsTo};
use crate::race::{locksets_with, Lockset};

/// The per-pair verdict lattice (strongest fact first).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OrderFact {
    /// A happens-before path orders the pair; it can never overlap.
    MustPrecede,
    /// The pair never runs on two concurrently-live threads.
    Sequential,
    /// The pair may interleave, but a common lock serializes it.
    Excluded,
    /// No ordering and no common lock: the pair may overlap in time.
    Parallel,
}

/// One lock's concurrent-region summary: the statements holding it,
/// grouped per thread context and function, plus which region pairs may
/// actually contend at runtime.
#[derive(Clone, Debug)]
pub struct LockSummary {
    /// The lock cell.
    pub lock: Loc,
    /// Regions holding the lock, one per (context, function) group.
    pub regions: Vec<LockRegion>,
    /// Indices into `regions` of pairs that may contend at runtime.
    pub contending: Vec<(usize, usize)>,
}

/// A set of statements holding one lock under one thread context.
#[derive(Clone, Debug)]
pub struct LockRegion {
    /// Thread context index (0 = main, i+1 = spawn site i).
    pub ctx: usize,
    /// Function the region lives in.
    pub func: FuncId,
    /// Statements executed while the lock is held.
    pub stmts: BTreeSet<InstrId>,
}

/// Per-function strict block dominance pairs.
type DomPairs = BTreeMap<FuncId, BTreeSet<(BlockId, BlockId)>>;

/// The solved may-happen-in-parallel relation.
pub struct Mhp {
    /// Thread contexts each statement may run under
    /// (0 = main thread, i+1 = the thread of `spawn_sites[i]`).
    stmt_ctxs: BTreeMap<InstrId, BTreeSet<usize>>,
    /// Static `spawn` statements, in program order.
    spawn_sites: Vec<InstrId>,
    /// Spawn-site indices that may start several simultaneous threads.
    multi: BTreeSet<usize>,
    /// Per spawn index: statements that must complete before the spawn.
    pre_spawn: Vec<BTreeSet<InstrId>>,
    /// Per spawn index: statements ordered after the matching join.
    post_join: Vec<BTreeSet<InstrId>>,
    /// `(i, j)`: thread `i` is joined before thread `j` is spawned.
    ctx_order: BTreeSet<(usize, usize)>,
    /// Flow-sensitive locksets per statement (for exclusion facts).
    locksets: BTreeMap<InstrId, Lockset>,
    /// Statement positions, for dominance queries.
    positions: BTreeMap<InstrId, StmtPos>,
    /// Strict block dominance, per function.
    dom_pairs: DomPairs,
    /// Whether the program spawns threads at all.
    has_threads: bool,
}

impl Mhp {
    /// Computes the relation over a program and its TICFG.
    pub fn compute(program: &Program, ticfg: &Ticfg) -> Mhp {
        Builder { program, ticfg }.build()
    }

    /// True when the program has any `spawn` statement.
    pub fn has_threads(&self) -> bool {
        self.has_threads
    }

    /// The static spawn statements, in program order.
    pub fn spawn_sites(&self) -> &[InstrId] {
        &self.spawn_sites
    }

    /// Thread contexts a statement may run under: `(main, spawn sites)`.
    pub fn stmt_threads(&self, s: InstrId) -> (bool, Vec<InstrId>) {
        let Some(ctxs) = self.stmt_ctxs.get(&s) else {
            return (false, Vec::new());
        };
        let main = ctxs.contains(&0);
        let spawns = ctxs
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| self.spawn_sites[c - 1])
            .collect();
        (main, spawns)
    }

    /// The strongest static fact about the pair.
    pub fn order_fact(&self, a: InstrId, b: InstrId) -> OrderFact {
        if a != b && (self.must_precede(a, b) || self.must_precede(b, a)) {
            return OrderFact::MustPrecede;
        }
        if !self.may_happen_in_parallel(a, b) {
            return OrderFact::Sequential;
        }
        if self.common_lock(a, b) {
            return OrderFact::Excluded;
        }
        OrderFact::Parallel
    }

    /// May `a` and `b` overlap in time? True for [`OrderFact::Parallel`]
    /// and [`OrderFact::Excluded`] — a lock serializes the pair but does
    /// not order it, so both interleavings remain possible.
    pub fn may_happen_in_parallel(&self, a: InstrId, b: InstrId) -> bool {
        if a == b {
            return self.self_parallel(a);
        }
        if self.must_precede(a, b) || self.must_precede(b, a) {
            return false;
        }
        self.parallel_contexts(a, b)
    }

    /// Does `a` complete before `b` starts, in every execution? Sound
    /// but incomplete: only thread-structure edges (dominance within a
    /// function, spawn, join, join-before-spawn) are claimed; `false`
    /// means "unknown", not "may reorder".
    pub fn must_precede(&self, a: InstrId, b: InstrId) -> bool {
        if a == b {
            return false;
        }
        let (Some(ca), Some(cb)) = (self.stmt_ctxs.get(&a), self.stmt_ctxs.get(&b)) else {
            return false;
        };
        // Intra-function strict dominance. Valid only when the function
        // has a single live invocation: one thread context, and that
        // context not multi-instance. A routine two spawn sites share
        // runs concurrently with itself — one invocation's `a` does not
        // precede the other invocation's `b` — so it gets no claim.
        if ca == cb && ca.len() == 1 {
            let c = *ca.iter().next().expect("nonempty");
            let single_invocation = c == 0 || !self.multi.contains(&(c - 1));
            if single_invocation && self.sdom(a, b) {
                return true;
            }
        }
        for (i, pre) in self.pre_spawn.iter().enumerate() {
            let ctx = i + 1;
            // Spawn edge: a fully precedes spawn i, b only runs on
            // thread i.
            if pre.contains(&a) && !cb.is_empty() && cb.iter().all(|&c| c == ctx) {
                return true;
            }
            // Join edge: a only runs on thread i, b is after its join.
            if self.post_join[i].contains(&b) && !ca.is_empty() && ca.iter().all(|&c| c == ctx) {
                return true;
            }
        }
        // Thread i joined before thread j spawned.
        let only = |cs: &BTreeSet<usize>| -> Option<usize> {
            if cs.len() == 1 && !cs.contains(&0) {
                cs.iter().next().map(|&c| c - 1)
            } else {
                None
            }
        };
        if let (Some(i), Some(j)) = (only(ca), only(cb)) {
            if self.ctx_order.contains(&(i, j)) {
                return true;
            }
        }
        false
    }

    /// A pair of thread contexts — one carrying `a`, one carrying `b` —
    /// under which the two statements may overlap, when one exists.
    /// Deterministic (the numerically smallest pair wins). An equal
    /// pair is returned only for multi-instance spawn contexts, where
    /// two live instances of the same site can race each other.
    pub fn parallel_ctx_pair(&self, a: InstrId, b: InstrId) -> Option<(usize, usize)> {
        let (ca, cb) = (self.stmt_ctxs.get(&a)?, self.stmt_ctxs.get(&b)?);
        let mut best: Option<(usize, usize)> = None;
        for &i in ca {
            for &j in cb {
                if self.ctx_pair_parallel(i, j, a, b) {
                    let cand = (i, j);
                    if best.map(|prev| cand < prev).unwrap_or(true) {
                        best = Some(cand);
                    }
                }
            }
        }
        best
    }

    /// True when the two statements hold a common lock, so a mutex
    /// serializes (but does not order) the pair.
    pub fn common_lock(&self, a: InstrId, b: InstrId) -> bool {
        match (self.locksets.get(&a), self.locksets.get(&b)) {
            (Some(la), Some(lb)) => la.intersection(lb).next().is_some(),
            _ => false,
        }
    }

    /// Memory-writing statements (stores and frees) with no may-parallel
    /// access to the same cell on another thread — their interleavings
    /// cannot matter, so the planner can skip watching them for
    /// cross-thread discovery. Empty for single-threaded programs
    /// (every store would qualify there, and the data-flow pipeline
    /// still needs them).
    pub fn never_parallel_stores(&self, program: &Program, pts: &PointsTo) -> BTreeSet<InstrId> {
        if !self.has_threads {
            return BTreeSet::new();
        }
        let mut accesses: Vec<(InstrId, BTreeSet<MemOrigin>, bool)> = Vec::new();
        for f in &program.functions {
            for b in &f.blocks {
                for instr in &b.instrs {
                    let is_write = matches!(instr.op, Op::Store { .. } | Op::Free { .. });
                    let addr = match &instr.op {
                        Op::Free { addr } => *addr,
                        op => match op.access_addr() {
                            Some(a) => a,
                            None => continue,
                        },
                    };
                    let origins: BTreeSet<MemOrigin> = pts
                        .operand_origins(f.id, addr)
                        .into_iter()
                        .map(|l| l.origin)
                        .collect();
                    if !origins.is_empty() {
                        accesses.push((instr.id, origins, is_write));
                    }
                }
            }
        }
        let mut out = BTreeSet::new();
        for (s, origins, is_write) in &accesses {
            if !is_write {
                continue;
            }
            let has_parallel_partner = accesses.iter().any(|(t, torigins, _)| {
                t != s
                    && origins.intersection(torigins).next().is_some()
                    && self.may_happen_in_parallel(*s, *t)
            });
            if !has_parallel_partner {
                out.insert(*s);
            }
        }
        out
    }

    /// Per-lock concurrent-region summaries: who holds each lock, under
    /// which thread context, and which region pairs may contend.
    pub fn lock_summaries(&self) -> Vec<LockSummary> {
        let mut by_lock: BTreeMap<Loc, BTreeMap<(usize, FuncId), BTreeSet<InstrId>>> =
            BTreeMap::new();
        for (&s, ls) in &self.locksets {
            let Some(pos) = self.positions.get(&s) else {
                continue;
            };
            let Some(ctxs) = self.stmt_ctxs.get(&s) else {
                continue;
            };
            for lock in ls.iter() {
                for &ctx in ctxs {
                    by_lock
                        .entry(*lock)
                        .or_default()
                        .entry((ctx, pos.func))
                        .or_default()
                        .insert(s);
                }
            }
        }
        by_lock
            .into_iter()
            .map(|(lock, groups)| {
                let regions: Vec<LockRegion> = groups
                    .into_iter()
                    .map(|((ctx, func), stmts)| LockRegion { ctx, func, stmts })
                    .collect();
                let mut contending = Vec::new();
                for i in 0..regions.len() {
                    for j in (i + 1)..regions.len() {
                        let parallel = regions[i].stmts.iter().any(|&a| {
                            regions[j]
                                .stmts
                                .iter()
                                .any(|&b| self.may_happen_in_parallel(a, b))
                        });
                        if parallel {
                            contending.push((i, j));
                        }
                    }
                }
                LockSummary {
                    lock,
                    regions,
                    contending,
                }
            })
            .collect()
    }

    /// A statement racing with itself: a multi-instance spawn (two live
    /// instances of one site), or two *different* unordered contexts
    /// both carrying the statement (a routine shared by two concurrent
    /// spawn sites races its own code).
    fn self_parallel(&self, s: InstrId) -> bool {
        let Some(ctxs) = self.stmt_ctxs.get(&s) else {
            return false;
        };
        ctxs.iter()
            .any(|&i| ctxs.iter().any(|&j| self.ctx_pair_parallel(i, j, s, s)))
    }

    /// Context-level parallelism with the spawn/join windows applied.
    fn parallel_contexts(&self, a: InstrId, b: InstrId) -> bool {
        let (Some(ca), Some(cb)) = (self.stmt_ctxs.get(&a), self.stmt_ctxs.get(&b)) else {
            return false;
        };
        ca.iter()
            .any(|&i| cb.iter().any(|&j| self.ctx_pair_parallel(i, j, a, b)))
    }

    /// May context instance `i` of `a` overlap context instance `j` of
    /// `b`?
    fn ctx_pair_parallel(&self, i: usize, j: usize, a: InstrId, b: InstrId) -> bool {
        if i == j {
            // Same spawn site: parallel only when several instances may
            // be live at once.
            return i > 0 && self.multi.contains(&(i - 1));
        }
        match (i, j) {
            (0, j) => {
                // Main-side statement vs thread j - 1: serialized only
                // when a is confined to before the spawn or after the
                // join of that thread.
                let t = j - 1;
                !(self.pre_spawn[t].contains(&a) || self.post_join[t].contains(&a))
            }
            (i, 0) => {
                let t = i - 1;
                !(self.pre_spawn[t].contains(&b) || self.post_join[t].contains(&b))
            }
            (i, j) => {
                let (ti, tj) = (i - 1, j - 1);
                !(self.ctx_order.contains(&(ti, tj)) || self.ctx_order.contains(&(tj, ti)))
            }
        }
    }

    /// Strict statement-level dominance within one function.
    fn sdom(&self, a: InstrId, b: InstrId) -> bool {
        let (Some(pa), Some(pb)) = (self.positions.get(&a), self.positions.get(&b)) else {
            return false;
        };
        if pa.func != pb.func {
            return false;
        }
        if pa.block == pb.block {
            return pa.index < pb.index;
        }
        self.dom_pairs
            .get(&pa.func)
            .map(|d| d.contains(&(pa.block, pb.block)))
            .unwrap_or(false)
    }
}

struct Builder<'a> {
    program: &'a Program,
    ticfg: &'a Ticfg,
}

impl Builder<'_> {
    fn build(self) -> Mhp {
        let program = self.program;
        let ticfg = self.ticfg;

        // Spawn sites, in program order.
        let mut spawn_sites: Vec<InstrId> = Vec::new();
        for f in &program.functions {
            for b in &f.blocks {
                for i in &b.instrs {
                    if matches!(i.op, Op::ThreadCreate { .. }) {
                        spawn_sites.push(i.id);
                    }
                }
            }
        }
        let has_threads = !spawn_sites.is_empty();

        // Statement positions.
        let mut positions = BTreeMap::new();
        for id in program.all_stmt_ids() {
            if let Some(pos) = program.stmt_pos(id) {
                positions.insert(id, pos);
            }
        }

        // Function contexts: main (0) from the entry function, one per
        // spawn site from its routine targets. Call edges only — a
        // spawned routine is the root of its own context.
        let mut func_ctxs: BTreeMap<FuncId, BTreeSet<usize>> = BTreeMap::new();
        let mark =
            |roots: Vec<FuncId>, ctx: usize, func_ctxs: &mut BTreeMap<FuncId, BTreeSet<usize>>| {
                let mut q: VecDeque<FuncId> = roots.into();
                while let Some(f) = q.pop_front() {
                    if !func_ctxs.entry(f).or_default().insert(ctx) {
                        continue;
                    }
                    for b in &program.function(f).blocks {
                        for i in &b.instrs {
                            if matches!(i.op, Op::Call { .. }) {
                                for t in ticfg.call_targets.get(&i.id).into_iter().flatten() {
                                    q.push_back(*t);
                                }
                            }
                        }
                    }
                }
            };
        mark(vec![program.entry], 0, &mut func_ctxs);
        for (idx, &s) in spawn_sites.iter().enumerate() {
            let routines = ticfg.call_targets.get(&s).cloned().unwrap_or_default();
            mark(routines, idx + 1, &mut func_ctxs);
        }

        let mut stmt_ctxs: BTreeMap<InstrId, BTreeSet<usize>> = BTreeMap::new();
        for (&id, pos) in &positions {
            if let Some(ctxs) = func_ctxs.get(&pos.func) {
                stmt_ctxs.insert(id, ctxs.clone());
            }
        }

        // Multi-instance spawn sites: the spawn re-executes (its block
        // is in a CFG cycle) or its containing function may run more
        // than once (several callsites, several thread contexts, or a
        // context that is itself multi — closed under a fixpoint).
        let mut multi: BTreeSet<usize> = BTreeSet::new();
        for (idx, &s) in spawn_sites.iter().enumerate() {
            let Some(pos) = positions.get(&s) else {
                multi.insert(idx);
                continue;
            };
            let callsites = ticfg.callers.get(&pos.func).map(Vec::len).unwrap_or(0);
            let ctx_count = func_ctxs.get(&pos.func).map(BTreeSet::len).unwrap_or(0);
            let func_multi = pos.func != program.entry && (callsites != 1 || ctx_count != 1);
            if func_multi || self.block_in_cycle(pos.func, pos.block) {
                multi.insert(idx);
            }
        }
        loop {
            let mut grew = false;
            for (idx, &s) in spawn_sites.iter().enumerate() {
                if multi.contains(&idx) {
                    continue;
                }
                let Some(pos) = positions.get(&s) else {
                    continue;
                };
                let nested_multi = func_ctxs
                    .get(&pos.func)
                    .map(|ctxs| ctxs.iter().any(|&c| c > 0 && multi.contains(&(c - 1))))
                    .unwrap_or(false);
                if nested_multi {
                    multi.insert(idx);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }

        // Strict block-dominance pairs per function.
        let mut dom_pairs: DomPairs = BTreeMap::new();
        for (fi, f) in program.functions.iter().enumerate() {
            let dt = &ticfg.doms[fi];
            let pairs = dom_pairs.entry(f.id).or_default();
            for a in &f.blocks {
                for b in &f.blocks {
                    if a.id != b.id && dt.strictly_dominates(a.id, b.id) {
                        pairs.insert((a.id, b.id));
                    }
                }
            }
        }

        let mut mhp = Mhp {
            stmt_ctxs,
            spawn_sites: spawn_sites.clone(),
            multi: multi.clone(),
            pre_spawn: vec![BTreeSet::new(); spawn_sites.len()],
            post_join: vec![BTreeSet::new(); spawn_sites.len()],
            ctx_order: BTreeSet::new(),
            locksets: locksets_with(program, ticfg).0,
            positions,
            dom_pairs,
            has_threads,
        };

        // Pre-spawn and post-join regions for single-instance spawns.
        let joins = self.match_joins(&spawn_sites, &multi);
        for (idx, &s) in spawn_sites.iter().enumerate() {
            if multi.contains(&idx) {
                continue; // no ordering claims for re-executing spawns
            }
            let pre = self.closed_region(&mhp, s, true, &func_ctxs);
            mhp.pre_spawn[idx] = pre;
            if let Some(&join) = joins.get(&idx) {
                let post = self.closed_region(&mhp, join, false, &func_ctxs);
                mhp.post_join[idx] = post;
            }
        }

        // Thread order: join(i) strictly dominates spawn(j).
        let mut order: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (i, _) in spawn_sites.iter().enumerate() {
            let Some(&join_i) = joins.get(&i) else {
                continue;
            };
            for (j, &spawn_j) in spawn_sites.iter().enumerate() {
                if i == j || multi.contains(&i) || multi.contains(&j) {
                    continue;
                }
                if mhp.sdom(join_i, spawn_j) {
                    order.insert((i, j));
                }
            }
        }
        mhp.ctx_order = order;
        mhp
    }

    /// Matches each single-instance spawn to the unique `join` on its
    /// result variable within the spawning function. Ambiguous or
    /// memory-routed thread ids match nothing (sound: fewer HB edges).
    fn match_joins(
        &self,
        spawn_sites: &[InstrId],
        multi: &BTreeSet<usize>,
    ) -> BTreeMap<usize, InstrId> {
        let program = self.program;
        let mut out = BTreeMap::new();
        for (idx, &s) in spawn_sites.iter().enumerate() {
            if multi.contains(&idx) {
                continue;
            }
            let Some(Op::ThreadCreate {
                dst: Some(tid_var), ..
            }) = program.instr(s).map(|i| &i.op)
            else {
                continue;
            };
            let Some(func) = program.stmt_func(s) else {
                continue;
            };
            let f = program.function(func);
            // All joins in the same function on exactly that variable;
            // a redefinition of the variable disqualifies the match.
            let mut joins = Vec::new();
            let mut redefined = false;
            for b in &f.blocks {
                for i in &b.instrs {
                    match &i.op {
                        Op::ThreadJoin {
                            tid: Operand::Var(v),
                        } if v == tid_var => joins.push(i.id),
                        op => {
                            if i.id != s && op.def() == Some(*tid_var) {
                                redefined = true;
                            }
                        }
                    }
                }
            }
            if joins.len() == 1 && !redefined {
                out.insert(idx, joins[0]);
            }
        }
        out
    }

    /// The closed happens-before region around an anchor statement:
    /// statements in the anchor's function that strictly dominate it
    /// (`before = true`) or are strictly dominated by it (`before =
    /// false`), plus whole bodies of functions whose every callsite lies
    /// inside the region (greatest fixpoint, so a function called both
    /// inside and outside the region is evicted).
    fn closed_region(
        &self,
        mhp: &Mhp,
        anchor: InstrId,
        before: bool,
        func_ctxs: &BTreeMap<FuncId, BTreeSet<usize>>,
    ) -> BTreeSet<InstrId> {
        let program = self.program;
        let Some(anchor_func) = program.stmt_func(anchor) else {
            return BTreeSet::new();
        };
        let mut region: BTreeSet<InstrId> = BTreeSet::new();
        for b in &program.function(anchor_func).blocks {
            for id in b.stmt_ids() {
                let ordered = if before {
                    mhp.sdom(id, anchor)
                } else {
                    mhp.sdom(anchor, id)
                };
                if ordered {
                    region.insert(id);
                }
            }
        }

        // Greatest fixpoint over whole-function inclusion: start from
        // every single-context function other than the anchor's, evict
        // any with a callsite outside the current region.
        let mut funcs: BTreeSet<FuncId> = program
            .functions
            .iter()
            .map(|f| f.id)
            .filter(|&fid| fid != anchor_func && fid != program.entry)
            .filter(|fid| func_ctxs.get(fid).map(|c| c.len() == 1).unwrap_or(false))
            .collect();
        loop {
            let mut evicted = false;
            for fid in funcs.clone() {
                let sites = self.ticfg.callers.get(&fid).cloned().unwrap_or_default();
                let ok = !sites.is_empty()
                    && sites.iter().all(|site| {
                        // A spawn site inside a pre-region only proves
                        // the routine *starts* before the anchor, not
                        // that it completes — evict it. (For a post
                        // region, starting after the anchor is enough.)
                        let is_spawn = program
                            .instr(*site)
                            .map(|i| matches!(i.op, Op::ThreadCreate { .. }))
                            .unwrap_or(false);
                        if before && is_spawn {
                            return false;
                        }
                        region.contains(site)
                            || program
                                .stmt_func(*site)
                                .map(|sf| funcs.contains(&sf))
                                .unwrap_or(false)
                    });
                if !ok {
                    funcs.remove(&fid);
                    evicted = true;
                }
            }
            if !evicted {
                break;
            }
        }
        for fid in funcs {
            for b in &program.function(fid).blocks {
                region.extend(b.stmt_ids());
            }
        }
        region
    }

    /// Is the block part of a CFG cycle in its function?
    fn block_in_cycle(&self, func: FuncId, block: BlockId) -> bool {
        let Some(fi) = self.program.functions.iter().position(|f| f.id == func) else {
            return true;
        };
        let cfg = &self.ticfg.cfgs[fi];
        let mut seen: BTreeSet<BlockId> = BTreeSet::new();
        let mut q: VecDeque<BlockId> = cfg.succs[block.index()].iter().copied().collect();
        while let Some(b) = q.pop_front() {
            if b == block {
                return true;
            }
            if seen.insert(b) {
                q.extend(cfg.succs[b.index()].iter().copied());
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::icfg::Icfg;
    use gist_ir::parser::parse_program;

    fn mhp_of(text: &str) -> (Program, Ticfg, Mhp) {
        let p = parse_program("t", text).unwrap();
        let g = Icfg::build_ticfg(&p);
        let m = Mhp::compute(&p, &g);
        (p, g, m)
    }

    const SPAWN_JOIN: &str = r#"
global g = 0
fn worker(arg) {
entry:
  store $g, 1
  ret
}
fn main() {
entry:
  store $g, 7
  t = spawn worker(0)
  v = load $g
  join t
  w = load $g
  print w
  ret
}
"#;

    #[test]
    fn pre_spawn_store_is_ordered_before_the_worker() {
        let (p, _, m) = mhp_of(SPAWN_JOIN);
        let worker_store = p.function_by_name("worker").unwrap().blocks[0].instrs[0].id;
        let main_f = p.function_by_name("main").unwrap();
        let main_init = main_f.blocks[0].instrs[0].id;
        let mid_load = main_f.blocks[0].instrs[2].id;
        let post_load = main_f.blocks[0].instrs[4].id;

        assert!(m.has_threads());
        assert!(m.must_precede(main_init, worker_store), "init before spawn");
        assert!(!m.may_happen_in_parallel(main_init, worker_store));
        // Between spawn and join: genuinely parallel.
        assert!(m.may_happen_in_parallel(mid_load, worker_store));
        assert!(!m.must_precede(mid_load, worker_store));
        // After the join: ordered again.
        assert!(
            m.must_precede(worker_store, post_load),
            "join closes the window"
        );
        assert!(!m.may_happen_in_parallel(post_load, worker_store));
    }

    #[test]
    fn sequential_program_has_no_parallel_pairs() {
        let (p, _, m) = mhp_of(
            r#"
global g = 0
fn main() {
entry:
  store $g, 1
  v = load $g
  print v
  ret
}
"#,
        );
        assert!(!m.has_threads());
        let ids: Vec<InstrId> = p.all_stmt_ids().collect();
        for &a in &ids {
            for &b in &ids {
                assert!(!m.may_happen_in_parallel(a, b), "{a} || {b}");
            }
        }
    }

    #[test]
    fn two_joined_threads_in_sequence_are_ordered() {
        let (p, _, m) = mhp_of(
            r#"
global g = 0
fn w1(arg) {
entry:
  store $g, 1
  ret
}
fn w2(arg) {
entry:
  store $g, 2
  ret
}
fn main() {
entry:
  a = spawn w1(0)
  join a
  b = spawn w2(0)
  join b
  ret
}
"#,
        );
        let s1 = p.function_by_name("w1").unwrap().blocks[0].instrs[0].id;
        let s2 = p.function_by_name("w2").unwrap().blocks[0].instrs[0].id;
        assert!(m.must_precede(s1, s2), "w1 joined before w2 spawned");
        assert!(!m.may_happen_in_parallel(s1, s2));
    }

    #[test]
    fn concurrent_threads_without_order_are_parallel() {
        let (p, _, m) = mhp_of(
            r#"
global g = 0
fn w1(arg) {
entry:
  store $g, 1
  ret
}
fn w2(arg) {
entry:
  store $g, 2
  ret
}
fn main() {
entry:
  a = spawn w1(0)
  b = spawn w2(0)
  join a
  join b
  ret
}
"#,
        );
        let s1 = p.function_by_name("w1").unwrap().blocks[0].instrs[0].id;
        let s2 = p.function_by_name("w2").unwrap().blocks[0].instrs[0].id;
        assert!(m.may_happen_in_parallel(s1, s2));
        assert!(!m.must_precede(s1, s2));
    }

    #[test]
    fn spawn_in_loop_is_self_parallel_and_unordered() {
        let (p, _, m) = mhp_of(
            r#"
global g = 0
global n = 0
fn w(arg) {
entry:
  store $g, 1
  ret
}
fn main() {
entry:
  br head
head:
  t = spawn w(0)
  c = load $n
  condbr c, head, done
done:
  ret
}
"#,
        );
        let ws = p.function_by_name("w").unwrap().blocks[0].instrs[0].id;
        assert!(m.may_happen_in_parallel(ws, ws), "loop spawn races itself");
        // No ordering claims at all for the multi spawn.
        let main_f = p.function_by_name("main").unwrap();
        let head_load = main_f.blocks[1].instrs[1].id;
        assert!(m.may_happen_in_parallel(head_load, ws));
    }

    #[test]
    fn common_lock_is_excluded_but_still_mhp() {
        let (p, _, m) = mhp_of(
            r#"
global g = 0
global lk = 0
fn w(arg) {
entry:
  lock $lk
  store $g, 1
  unlock $lk
  ret
}
fn main() {
entry:
  t = spawn w(0)
  lock $lk
  v = load $g
  unlock $lk
  join t
  ret
}
"#,
        );
        let ws = p.function_by_name("w").unwrap().blocks[0].instrs[1].id;
        let mv = p.function_by_name("main").unwrap().blocks[0].instrs[2].id;
        assert!(
            m.may_happen_in_parallel(ws, mv),
            "locks serialize, not order"
        );
        assert_eq!(m.order_fact(ws, mv), OrderFact::Excluded);
        // The lock summary reports the two contending regions.
        let summaries = m.lock_summaries();
        assert!(!summaries.is_empty());
        let s = &summaries[0];
        assert!(s.regions.len() >= 2, "{s:?}");
        assert!(!s.contending.is_empty(), "{s:?}");
    }

    #[test]
    fn never_parallel_stores_spares_racing_writes() {
        let (p, g, m) = mhp_of(SPAWN_JOIN);
        let pts = PointsTo::compute(&p, &g);
        let never = m.never_parallel_stores(&p, &pts);
        let worker_store = p.function_by_name("worker").unwrap().blocks[0].instrs[0].id;
        let main_init = p.function_by_name("main").unwrap().blocks[0].instrs[0].id;
        // The worker's store races the mid-window load: kept.
        assert!(!never.contains(&worker_store), "{never:?}");
        // The pre-spawn init is ordered before every other access to
        // the cell: droppable.
        assert!(never.contains(&main_init), "{never:?}");
    }

    #[test]
    fn never_parallel_is_empty_without_threads() {
        let (p, g, m) = mhp_of(
            r#"
global g = 0
fn main() {
entry:
  store $g, 1
  v = load $g
  print v
  ret
}
"#,
        );
        let pts = PointsTo::compute(&p, &g);
        assert!(m.never_parallel_stores(&p, &pts).is_empty());
    }

    #[test]
    fn order_fact_lattice_is_consistent() {
        let (p, _, m) = mhp_of(SPAWN_JOIN);
        let main_f = p.function_by_name("main").unwrap();
        let init = main_f.blocks[0].instrs[0].id;
        let worker_store = p.function_by_name("worker").unwrap().blocks[0].instrs[0].id;
        let mid_load = main_f.blocks[0].instrs[2].id;
        assert_eq!(m.order_fact(init, worker_store), OrderFact::MustPrecede);
        assert_eq!(m.order_fact(worker_store, init), OrderFact::MustPrecede);
        assert_eq!(m.order_fact(mid_load, worker_store), OrderFact::Parallel);
        assert_eq!(m.order_fact(init, mid_load), OrderFact::MustPrecede);
    }
}
