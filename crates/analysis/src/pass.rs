//! A small pass framework for static analyses.
//!
//! Passes share an [`AnalysisCtx`] so expensive program-wide structures
//! (today: the TICFG) are built once and reused. The [`PassManager`] runs a
//! list of passes and collects their diagnostics into one sorted report,
//! mirroring how the paper's prototype chains LLVM analysis passes on the
//! Gist server before computing instrumentation plans.

use gist_ir::icfg::{Icfg, Ticfg};
use gist_ir::Program;

use crate::diag::{sort_diagnostics, Diagnostic};

/// Shared state for one analysis run over a single program.
pub struct AnalysisCtx<'p> {
    /// The program under analysis.
    pub program: &'p Program,
    ticfg: Option<Ticfg>,
}

impl<'p> AnalysisCtx<'p> {
    /// Creates a context for `program`. Nothing is computed up front.
    pub fn new(program: &'p Program) -> Self {
        AnalysisCtx {
            program,
            ticfg: None,
        }
    }

    /// The thread-interprocedural CFG, built on first use and cached.
    pub fn ticfg(&mut self) -> &Ticfg {
        if self.ticfg.is_none() {
            self.ticfg = Some(Icfg::build_ticfg(self.program));
        }
        self.ticfg.as_ref().expect("just built")
    }
}

/// One static analysis that reports diagnostics.
pub trait Pass {
    /// Short name used in reports and debugging.
    fn name(&self) -> &'static str;
    /// Runs the pass, returning its findings.
    fn run(&self, cx: &mut AnalysisCtx<'_>) -> Vec<Diagnostic>;
}

/// Runs a sequence of passes over one shared context.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// Creates an empty pass manager.
    pub fn new() -> Self {
        PassManager::default()
    }

    /// Appends a pass (builder style).
    pub fn with_pass(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Names of the registered passes, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs all passes over `program` and returns the sorted diagnostics.
    pub fn run(&self, program: &Program) -> Vec<Diagnostic> {
        let mut cx = AnalysisCtx::new(program);
        let mut diags = Vec::new();
        for pass in &self.passes {
            diags.extend(pass.run(&mut cx));
        }
        sort_diagnostics(&mut diags);
        diags
    }
}

/// The default pipeline: the IR verifier followed by the dataflow lints
/// (race, lock-order deadlock, dead store).
pub fn default_passes() -> PassManager {
    PassManager::new()
        .with_pass(crate::verify::VerifierPass)
        .with_pass(crate::race::RaceLintPass::default())
        .with_pass(crate::deadlock::DeadlockLintPass::default())
        .with_pass(crate::dataflow::DeadStoreLintPass::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::builder::ProgramBuilder;

    fn tiny_program() -> Program {
        let mut pb = ProgramBuilder::new("tiny");
        let mut f = pb.function("main", &[]);
        f.ret(None);
        f.finish();
        pb.finish().unwrap()
    }

    #[test]
    fn default_pipeline_accepts_a_trivial_program() {
        let p = tiny_program();
        let pm = default_passes();
        assert_eq!(
            pm.pass_names(),
            vec!["verify", "race-lint", "deadlock-lint", "dead-store-lint"]
        );
        assert!(pm.run(&p).is_empty());
    }

    #[test]
    fn ticfg_is_built_lazily_and_cached() {
        let p = tiny_program();
        let mut cx = AnalysisCtx::new(&p);
        let edges = cx.ticfg().edge_count();
        // Second call must reuse the cached graph (same object, same count).
        assert_eq!(cx.ticfg().edge_count(), edges);
    }
}
