//! A generic monotone dataflow framework over the TICFG.
//!
//! Gist's server-side pipeline needs several classic dataflow facts —
//! which definitions reach the failure, which registers and cells are
//! still live, which operands are compile-time constants — and each
//! downstream consumer (the slicer, the watchpoint planner, the sketch
//! builder) wants a different one. Rather than hand-rolling a fixpoint
//! per client, this module provides one worklist solver ([`solve`])
//! parameterised by a [`DataflowAnalysis`]: a direction, a join, and a
//! per-statement transfer function. Interprocedural propagation falls out
//! of solving over the TICFG directly: `Call`/`Return` and
//! `ThreadCreate`/`ThreadJoin` edges carry facts across function and
//! thread boundaries, which is exactly the summary behaviour Algorithm 1
//! assumes when it slices across `pthread_create`.
//!
//! Three flagship analyses ship on the framework (the fourth, the
//! lock-order deadlock detector, lives in [`crate::deadlock`]):
//!
//! * [`Liveness`] — backward register liveness,
//! * [`ReachingDefs`] — forward reaching definitions covering both
//!   register defs and memory writes (with strong kills for stores whose
//!   points-to target is a single concrete cell), and
//! * [`MemLiveness`] — backward liveness of abstract memory cells, whose
//!   complement ([`dead_stores`]) tells the watchpoint planner which
//!   stores can never be observed again and therefore never deserve one
//!   of the four debug registers.
//!
//! [`ConstProp`] is the sparse variant: MiniC registers are in SSA form
//! (the verifier's GA003 enforces def-dominates-use), so constantness is
//! a property of the register, not the program point, and a worklist over
//! defs converges without per-point fact maps.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use gist_ir::icfg::Ticfg;
use gist_ir::{BinKind, FuncId, InstrId, Op, Operand, Program, Terminator, Value, VarId};

use crate::points_to::{Loc, LocSet, PointsTo};

/// Which way facts flow through the TICFG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors.
    Forward,
    /// Facts flow from successors to predecessors.
    Backward,
}

/// A monotone dataflow problem: a fact lattice, a direction, a join, and
/// a per-statement transfer function. The framework handles worklist
/// scheduling and interprocedural edges.
pub trait DataflowAnalysis {
    /// The lattice element attached to each program point.
    type Fact: Clone + PartialEq;

    /// Which way facts flow.
    fn direction(&self) -> Direction;

    /// The least element, used to initialise non-boundary points.
    fn bottom(&self) -> Self::Fact;

    /// The fact at boundary nodes (program entry for forward problems,
    /// thread exits for backward ones). Defaults to [`Self::bottom`].
    fn boundary(&self) -> Self::Fact {
        self.bottom()
    }

    /// Joins `from` into `into`, returning true if `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// Applies one statement's transfer function in place. `id` may name
    /// an instruction or a terminator.
    fn transfer(&self, program: &Program, id: InstrId, fact: &mut Self::Fact);
}

/// The fixpoint of a dataflow problem: one fact before and one after each
/// statement, in *program* order regardless of analysis direction.
pub struct Solution<F> {
    before: HashMap<InstrId, F>,
    after: HashMap<InstrId, F>,
    bottom: F,
}

impl<F> Solution<F> {
    /// The fact holding just before `id` executes.
    pub fn before(&self, id: InstrId) -> &F {
        self.before.get(&id).unwrap_or(&self.bottom)
    }

    /// The fact holding just after `id` executes.
    pub fn after(&self, id: InstrId) -> &F {
        self.after.get(&id).unwrap_or(&self.bottom)
    }
}

/// Runs the worklist solver for `analysis` over the whole TICFG.
pub fn solve<A: DataflowAnalysis>(
    program: &Program,
    ticfg: &Ticfg,
    analysis: &A,
) -> Solution<A::Fact> {
    let forward = analysis.direction() == Direction::Forward;
    let nodes: Vec<InstrId> = program.all_stmt_ids().collect();
    // The program entry's first statement is always a boundary node in
    // forward problems, even if a back edge points at it.
    let entry_stmt = program
        .functions
        .get(program.entry.index())
        .and_then(|f| f.blocks.first())
        .map(|b| b.stmt_ids().next().expect("block has a terminator"));

    let mut before: HashMap<InstrId, A::Fact> = HashMap::new();
    let mut after: HashMap<InstrId, A::Fact> = HashMap::new();
    let mut work: VecDeque<InstrId> = if forward {
        nodes.iter().copied().collect()
    } else {
        nodes.iter().rev().copied().collect()
    };
    let mut queued: BTreeSet<InstrId> = nodes.iter().copied().collect();

    while let Some(n) = work.pop_front() {
        queued.remove(&n);
        // Input fact: join over flow-predecessors' outputs, plus the
        // boundary fact at boundary nodes.
        let flow_preds = if forward {
            ticfg.preds(n)
        } else {
            ticfg.succs(n)
        };
        let is_boundary = if forward {
            flow_preds.is_empty() || Some(n) == entry_stmt
        } else {
            flow_preds.is_empty()
        };
        let mut input = if is_boundary {
            analysis.boundary()
        } else {
            analysis.bottom()
        };
        for &(p, _) in flow_preds {
            let out = if forward {
                after.get(&p)
            } else {
                before.get(&p)
            };
            if let Some(out) = out {
                analysis.join(&mut input, out);
            }
        }
        let mut output = input.clone();
        analysis.transfer(program, n, &mut output);
        let (in_map, out_map) = if forward {
            (&mut before, &mut after)
        } else {
            (&mut after, &mut before)
        };
        in_map.insert(n, input);
        let changed = out_map.get(&n) != Some(&output);
        if changed {
            out_map.insert(n, output);
            let flow_succs = if forward {
                ticfg.succs(n)
            } else {
                ticfg.preds(n)
            };
            for &(s, _) in flow_succs {
                if queued.insert(s) {
                    work.push_back(s);
                }
            }
        }
    }
    Solution {
        before,
        after,
        bottom: analysis.bottom(),
    }
}

/// A set of registers, qualified by owning function so interprocedural
/// propagation cannot confuse same-numbered registers of different
/// functions.
pub type VarSet = BTreeSet<(FuncId, VarId)>;

/// Backward register liveness over the TICFG.
pub struct Liveness;

impl DataflowAnalysis for Liveness {
    type Fact = VarSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> VarSet {
        VarSet::new()
    }

    fn join(&self, into: &mut VarSet, from: &VarSet) -> bool {
        let n = into.len();
        into.extend(from.iter().copied());
        into.len() != n
    }

    fn transfer(&self, program: &Program, id: InstrId, fact: &mut VarSet) {
        let Some(func) = program.stmt_func(id) else {
            return;
        };
        if let Some(instr) = program.instr(id) {
            if let Some(d) = instr.op.def() {
                fact.remove(&(func, d));
            }
            for u in instr.op.uses() {
                if let Some(v) = u.as_var() {
                    fact.insert((func, v));
                }
            }
        } else if let Some(term) = program.terminator(id) {
            for u in term.uses() {
                if let Some(v) = u.as_var() {
                    fact.insert((func, v));
                }
            }
        }
    }
}

/// Solves register liveness; `before(use_site)` contains every register
/// that may still be read on some path from there.
pub fn live_variables(program: &Program, ticfg: &Ticfg) -> Solution<VarSet> {
    solve(program, ticfg, &Liveness)
}

/// Forward reaching definitions: which defining statements (register defs
/// and memory writes) may have produced the values visible at a point.
///
/// Register defs are never killed — MiniC is SSA, so a register's one def
/// reaches every use it dominates. Stores are killed strongly when a later
/// store certainly overwrites the same single concrete cell.
pub struct ReachingDefs {
    /// Store statements whose points-to target is one concrete cell.
    strong: BTreeMap<InstrId, Loc>,
}

impl ReachingDefs {
    /// Precomputes the strong-update map from the points-to result.
    pub fn new(program: &Program, pts: &PointsTo) -> Self {
        let mut strong = BTreeMap::new();
        for f in &program.functions {
            for b in &f.blocks {
                for instr in &b.instrs {
                    if let Op::Store { addr, .. } = &instr.op {
                        let targets = pts.operand_origins(f.id, *addr);
                        if targets.len() == 1 {
                            let only = *targets.iter().next().expect("len checked");
                            if only.offset.is_some() {
                                strong.insert(instr.id, only);
                            }
                        }
                    }
                }
            }
        }
        ReachingDefs { strong }
    }

    /// True if `id` is a definition this analysis tracks.
    fn is_def(op: &Op) -> bool {
        op.def().is_some() || matches!(op, Op::Store { .. } | Op::Free { .. })
    }
}

impl DataflowAnalysis for ReachingDefs {
    type Fact = BTreeSet<InstrId>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> BTreeSet<InstrId> {
        BTreeSet::new()
    }

    fn join(&self, into: &mut BTreeSet<InstrId>, from: &BTreeSet<InstrId>) -> bool {
        let n = into.len();
        into.extend(from.iter().copied());
        into.len() != n
    }

    fn transfer(&self, program: &Program, id: InstrId, fact: &mut BTreeSet<InstrId>) {
        let Some(instr) = program.instr(id) else {
            return;
        };
        if let Some(cell) = self.strong.get(&id) {
            // This store certainly hits `cell`: earlier stores that could
            // only have written that same cell are overwritten for sure.
            fact.retain(|d| *d == id || self.strong.get(d) != Some(cell));
        }
        if Self::is_def(&instr.op) {
            fact.insert(id);
        }
    }
}

/// Solves reaching definitions; `before(failing)` is the def set the
/// sketch builder prunes against.
pub fn reaching_definitions(
    program: &Program,
    ticfg: &Ticfg,
    pts: &PointsTo,
) -> Solution<BTreeSet<InstrId>> {
    solve(program, ticfg, &ReachingDefs::new(program, pts))
}

/// Backward liveness of abstract memory cells: a cell is live at a point
/// if some path from there may still read it (a `load`, a `free`, a
/// `lock`/`unlock`, or an intrinsic walking the allocation).
pub struct MemLiveness<'a> {
    pts: &'a PointsTo,
}

impl<'a> MemLiveness<'a> {
    /// Builds the problem over a points-to result.
    pub fn new(pts: &'a PointsTo) -> Self {
        MemLiveness { pts }
    }
}

impl DataflowAnalysis for MemLiveness<'_> {
    type Fact = LocSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> LocSet {
        LocSet::new()
    }

    fn join(&self, into: &mut LocSet, from: &LocSet) -> bool {
        let n = into.len();
        into.extend(from.iter().copied());
        into.len() != n
    }

    fn transfer(&self, program: &Program, id: InstrId, fact: &mut LocSet) {
        let Some(func) = program.stmt_func(id) else {
            return;
        };
        let Some(instr) = program.instr(id) else {
            return;
        };
        match &instr.op {
            Op::Load { addr, .. }
            | Op::Free { addr }
            | Op::MutexLock { addr }
            | Op::MutexUnlock { addr } => {
                fact.extend(self.pts.operand_origins(func, *addr));
            }
            Op::Intrinsic { args, .. } => {
                // strlen/memcpy/memset walk whole allocations; keep every
                // cell they may touch live.
                for a in args {
                    for loc in self.pts.operand_origins(func, *a) {
                        fact.insert(Loc::anywhere(loc.origin));
                    }
                }
            }
            Op::Store { addr, .. } => {
                let targets = self.pts.operand_origins(func, *addr);
                if targets.len() == 1 {
                    let only = *targets.iter().next().expect("len checked");
                    if only.offset.is_some() {
                        fact.remove(&only);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Stores whose written cell can never be observed again: no later load,
/// free, lock, or intrinsic on any TICFG path may touch any cell the
/// store may write. Watchpoints on these are wasted debug registers.
pub fn dead_stores(program: &Program, ticfg: &Ticfg, pts: &PointsTo) -> BTreeSet<InstrId> {
    let live = solve(program, ticfg, &MemLiveness::new(pts));
    let mut dead = BTreeSet::new();
    for f in &program.functions {
        for b in &f.blocks {
            for instr in &b.instrs {
                let Op::Store { addr, .. } = &instr.op else {
                    continue;
                };
                let targets = pts.operand_origins(f.id, *addr);
                if targets.is_empty() {
                    continue; // unknown address: keep it watchable
                }
                let live_after = live.after(instr.id);
                if targets
                    .iter()
                    .all(|t| !live_after.iter().any(|l| l.overlaps(t)))
                {
                    dead.insert(instr.id);
                }
            }
        }
    }
    dead
}

/// A constant lattice value: unknown (no def evaluated yet), one constant,
/// or provably varying.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConstVal {
    /// No evaluated definition yet (the lattice bottom).
    Unknown,
    /// Always this value.
    Const(Value),
    /// More than one value (the lattice top).
    Varies,
}

impl ConstVal {
    fn merge(self, other: ConstVal) -> ConstVal {
        match (self, other) {
            (ConstVal::Unknown, x) | (x, ConstVal::Unknown) => x,
            (ConstVal::Const(a), ConstVal::Const(b)) if a == b => ConstVal::Const(a),
            _ => ConstVal::Varies,
        }
    }
}

/// Sparse interprocedural constant propagation.
///
/// Registers are SSA, so each has one def and constantness is flow
/// independent; parameters join over call sites and call results join over
/// callee returns. Loads and inputs are `Varies` — runtime memory is the
/// dynamic trace's job, this analysis only fills in what must hold on
/// *every* run.
#[derive(Debug, Default)]
pub struct ConstProp {
    vals: BTreeMap<(FuncId, VarId), ConstVal>,
    rets: BTreeMap<FuncId, ConstVal>,
}

impl ConstProp {
    /// Runs the propagation to fixpoint.
    pub fn compute(program: &Program, ticfg: &Ticfg) -> ConstProp {
        let mut cp = ConstProp::default();
        // The workload chooses entry inputs; entry params (if any) vary.
        for &p in &program.function(program.entry).params {
            cp.merge_var(program.entry, p, ConstVal::Varies);
        }
        loop {
            let mut changed = false;
            for f in &program.functions {
                for b in &f.blocks {
                    for instr in &b.instrs {
                        changed |= cp.transfer(program, ticfg, f.id, instr.id, &instr.op);
                    }
                    if let Terminator::Ret { value, .. } = &b.term {
                        let v = match value {
                            Some(op) => cp.operand_const(f.id, *op),
                            None => ConstVal::Varies,
                        };
                        changed |= cp.merge_ret(f.id, v);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        cp
    }

    fn transfer(
        &mut self,
        program: &Program,
        ticfg: &Ticfg,
        func: FuncId,
        id: InstrId,
        op: &Op,
    ) -> bool {
        match op {
            Op::Const { dst, value } => self.merge_var(func, *dst, ConstVal::Const(*value)),
            Op::Bin { dst, kind, a, b } => {
                let v = match (self.operand_const(func, *a), self.operand_const(func, *b)) {
                    (ConstVal::Const(x), ConstVal::Const(y)) => fold_bin(*kind, x, y),
                    (ConstVal::Varies, _) | (_, ConstVal::Varies) => ConstVal::Varies,
                    _ => ConstVal::Unknown,
                };
                self.merge_var(func, *dst, v)
            }
            Op::Cmp { dst, kind, a, b } => {
                let v = match (self.operand_const(func, *a), self.operand_const(func, *b)) {
                    (ConstVal::Const(x), ConstVal::Const(y)) => ConstVal::Const(kind.eval(x, y)),
                    (ConstVal::Varies, _) | (_, ConstVal::Varies) => ConstVal::Varies,
                    _ => ConstVal::Unknown,
                };
                self.merge_var(func, *dst, v)
            }
            Op::Call { dst, args, .. } => {
                let mut changed = false;
                let mut ret = ConstVal::Unknown;
                let targets = ticfg.call_targets.get(&id).map_or(&[][..], Vec::as_slice);
                for &target in targets {
                    let params = program.function(target).params.clone();
                    for (param, arg) in params.iter().zip(args) {
                        let v = self.operand_const(func, *arg);
                        changed |= self.merge_var(target, *param, v);
                    }
                    ret = ret.merge(self.rets.get(&target).copied().unwrap_or(ConstVal::Unknown));
                }
                if targets.is_empty() {
                    ret = ConstVal::Varies; // unresolved indirect call
                }
                if let Some(d) = dst {
                    changed |= self.merge_var(func, *d, ret);
                }
                changed
            }
            Op::ThreadCreate { dst, arg, .. } => {
                let mut changed = false;
                for &target in ticfg.call_targets.get(&id).map_or(&[][..], Vec::as_slice) {
                    if let Some(&param) = program.function(target).params.first() {
                        let v = self.operand_const(func, *arg);
                        changed |= self.merge_var(target, param, v);
                    }
                }
                if let Some(d) = dst {
                    changed |= self.merge_var(func, *d, ConstVal::Varies);
                }
                changed
            }
            _ => match op.def() {
                // Loads, allocations, geps, inputs, intrinsics: runtime
                // dependent as far as this analysis is concerned.
                Some(d) => self.merge_var(func, d, ConstVal::Varies),
                None => false,
            },
        }
    }

    fn merge_var(&mut self, func: FuncId, var: VarId, v: ConstVal) -> bool {
        let slot = self.vals.entry((func, var)).or_insert(ConstVal::Unknown);
        let next = slot.merge(v);
        let changed = *slot != next;
        *slot = next;
        changed
    }

    fn merge_ret(&mut self, func: FuncId, v: ConstVal) -> bool {
        let slot = self.rets.entry(func).or_insert(ConstVal::Unknown);
        let next = slot.merge(v);
        let changed = *slot != next;
        *slot = next;
        changed
    }

    /// The lattice value of an operand in `func`.
    pub fn operand_const(&self, func: FuncId, op: Operand) -> ConstVal {
        match op {
            Operand::Const(c) => ConstVal::Const(c),
            Operand::Var(v) => self
                .vals
                .get(&(func, v))
                .copied()
                .unwrap_or(ConstVal::Unknown),
            // A global operand is the global's *address*; its runtime value
            // is fixed but useless as a value annotation.
            Operand::Global(_) => ConstVal::Varies,
        }
    }

    /// The proven constant value of an operand, if there is one.
    pub fn operand_value(&self, func: FuncId, op: Operand) -> Option<Value> {
        match self.operand_const(func, op) {
            ConstVal::Const(c) => Some(c),
            _ => None,
        }
    }
}

/// The dead-store analysis packaged as a lint [`Pass`]: stores whose cell
/// is never observed again are reported as `GA012` warnings.
#[derive(Default)]
pub struct DeadStoreLintPass {
    /// Cap on reported stores (default 5).
    pub limit: Option<usize>,
}

impl crate::pass::Pass for DeadStoreLintPass {
    fn name(&self) -> &'static str {
        "dead-store-lint"
    }

    fn run(&self, cx: &mut crate::pass::AnalysisCtx<'_>) -> Vec<crate::diag::Diagnostic> {
        let program = cx.program;
        let ticfg = cx.ticfg();
        let pts = PointsTo::compute(program, ticfg);
        let dead = dead_stores(program, ticfg, &pts);
        let limit = self.limit.unwrap_or(5);
        dead.iter()
            .take(limit)
            .map(|&id| {
                let loc = program.stmt_loc(id).unwrap_or(gist_ir::SrcLoc::UNKNOWN);
                crate::diag::Diagnostic::warning(
                    "GA012",
                    "stored value is never read, freed, or synchronized on any path".to_owned(),
                )
                .at(loc)
            })
            .collect()
    }
}

/// Folds a binary operation on two constants, mirroring VM semantics.
/// Division and remainder by zero are VM *failures*, not values, so they
/// fold to `Varies` rather than pretending a result exists.
fn fold_bin(kind: BinKind, a: Value, b: Value) -> ConstVal {
    let v = match kind {
        BinKind::Add => a.wrapping_add(b),
        BinKind::Sub => a.wrapping_sub(b),
        BinKind::Mul => a.wrapping_mul(b),
        BinKind::Div => {
            if b == 0 {
                return ConstVal::Varies;
            }
            a.wrapping_div(b)
        }
        BinKind::Rem => {
            if b == 0 {
                return ConstVal::Varies;
            }
            a.wrapping_rem(b)
        }
        BinKind::And => a & b,
        BinKind::Or => a | b,
        BinKind::Xor => a ^ b,
        BinKind::Shl => a.wrapping_shl((b & 63) as u32),
        BinKind::Shr => a.wrapping_shr((b & 63) as u32),
    };
    ConstVal::Const(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::builder::ProgramBuilder;
    use gist_ir::icfg::Icfg;
    use gist_ir::{Callee, Operand};

    fn var(program: &Program, func: FuncId, name: &str) -> VarId {
        let idx = program.functions[func.index()]
            .var_names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("no var {name}"));
        VarId(idx as u32)
    }

    #[test]
    fn liveness_kills_defs_and_resurrects_uses() {
        // main: a = 1; b = a + 1; print b
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.function("main", &[]);
        let a = f.const_i64("a", 1);
        let b = f.bin("b", BinKind::Add, a.into(), Operand::Const(1));
        f.print(&[b.into()]);
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let ticfg = Icfg::build_ticfg(&p);
        let live = live_variables(&p, &ticfg);
        let main = p.entry;
        let ids: Vec<InstrId> = p.all_stmt_ids().collect();
        // Before `b = a + 1`, `a` is live and `b` is not.
        assert!(live.before(ids[1]).contains(&(main, var(&p, main, "a"))));
        assert!(!live.before(ids[1]).contains(&(main, var(&p, main, "b"))));
        // After the print, nothing is live.
        assert!(live.after(ids[2]).is_empty());
        // Before the first statement, nothing is live (a is defined here).
        assert!(!live.before(ids[0]).contains(&(main, var(&p, main, "a"))));
    }

    #[test]
    fn liveness_crosses_call_boundaries() {
        // callee uses its param; the caller's argument register must be
        // live before the call.
        let mut pb = ProgramBuilder::new("t");
        let callee = {
            let mut g = pb.function("g", &["x"]);
            g.print(&[Operand::Var(VarId(0))]);
            g.ret(None);
            g.finish()
        };
        let mut f = pb.function("main", &[]);
        let a = f.const_i64("a", 7);
        f.call(None, Callee::Direct(callee), &[a.into()]);
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let ticfg = Icfg::build_ticfg(&p);
        let live = live_variables(&p, &ticfg);
        let main = p.function_by_name("main").unwrap().id;
        let call_id = p.functions[main.index()].blocks[0].instrs[1].id;
        // The callee's param is live at its entry, and that fact reaches
        // the call site through the Call edge.
        assert!(live.before(call_id).contains(&(callee, VarId(0))));
    }

    #[test]
    fn reaching_defs_sees_defs_across_calls_and_kills_strong_stores() {
        // main: store $g, 1; store $g, 2; v = load $g
        // The second store strongly kills the first.
        let mut pb = ProgramBuilder::new("t");
        let g = pb.global("g", 0);
        let mut f = pb.function("main", &[]);
        f.store(Operand::Global(g), Operand::Const(1));
        f.store(Operand::Global(g), Operand::Const(2));
        f.load("v", Operand::Global(g));
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let ticfg = Icfg::build_ticfg(&p);
        let pts = PointsTo::compute(&p, &ticfg);
        let rd = reaching_definitions(&p, &ticfg, &pts);
        let ids: Vec<InstrId> = p.all_stmt_ids().collect();
        let at_load = rd.before(ids[2]);
        assert!(at_load.contains(&ids[1]), "second store reaches the load");
        assert!(
            !at_load.contains(&ids[0]),
            "first store is strongly killed: {at_load:?}"
        );
    }

    #[test]
    fn branch_join_keeps_both_stores_reaching() {
        let mut pb = ProgramBuilder::new("t");
        let g = pb.global("g", 0);
        let mut f = pb.function("main", &[]);
        let c = f.read_input("c", 0);
        let then_bb = f.new_block("then");
        let else_bb = f.new_block("else");
        let join_bb = f.new_block("join");
        f.condbr(c.into(), then_bb, else_bb);
        f.switch_to(then_bb);
        f.store(Operand::Global(g), Operand::Const(1));
        f.br(join_bb);
        f.switch_to(else_bb);
        f.store(Operand::Global(g), Operand::Const(2));
        f.br(join_bb);
        f.switch_to(join_bb);
        f.load("v", Operand::Global(g));
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let ticfg = Icfg::build_ticfg(&p);
        let pts = PointsTo::compute(&p, &ticfg);
        let rd = reaching_definitions(&p, &ticfg, &pts);
        let main = p.entry;
        let store_then = p.functions[main.index()].blocks[1].instrs[0].id;
        let store_else = p.functions[main.index()].blocks[2].instrs[0].id;
        let load = p.functions[main.index()].blocks[3].instrs[0].id;
        let at_load = rd.before(load);
        assert!(at_load.contains(&store_then));
        assert!(at_load.contains(&store_else));
    }

    #[test]
    fn dead_store_is_found_and_live_store_is_kept() {
        // scratch is written and never read; out is written then loaded.
        let mut pb = ProgramBuilder::new("t");
        let scratch = pb.global("scratch", 0);
        let out = pb.global("out", 0);
        let mut f = pb.function("main", &[]);
        f.store(Operand::Global(scratch), Operand::Const(1));
        f.store(Operand::Global(out), Operand::Const(2));
        f.load("v", Operand::Global(out));
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let ticfg = Icfg::build_ticfg(&p);
        let pts = PointsTo::compute(&p, &ticfg);
        let dead = dead_stores(&p, &ticfg, &pts);
        let ids: Vec<InstrId> = p.all_stmt_ids().collect();
        assert!(dead.contains(&ids[0]), "scratch store is dead: {dead:?}");
        assert!(!dead.contains(&ids[1]), "out store is observed");
        let _ = (scratch, out);
    }

    #[test]
    fn overwritten_then_read_store_is_not_dead() {
        // store g, 1; load g; store g, 2; load g — both stores observed.
        let mut pb = ProgramBuilder::new("t");
        let g = pb.global("g", 0);
        let mut f = pb.function("main", &[]);
        f.store(Operand::Global(g), Operand::Const(1));
        f.load("a", Operand::Global(g));
        f.store(Operand::Global(g), Operand::Const(2));
        f.load("b", Operand::Global(g));
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let ticfg = Icfg::build_ticfg(&p);
        let pts = PointsTo::compute(&p, &ticfg);
        let dead = dead_stores(&p, &ticfg, &pts);
        assert!(dead.is_empty(), "every store is read back: {dead:?}");
    }

    #[test]
    fn freed_allocation_keeps_its_stores_live() {
        // A store into a buffer that is later freed must stay watchable:
        // the racing-free pattern depends on it.
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.function("main", &[]);
        let p_ = f.alloc("p", Operand::Const(1));
        f.store(p_.into(), Operand::Const(7));
        f.free(p_.into());
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let ticfg = Icfg::build_ticfg(&p);
        let pts = PointsTo::compute(&p, &ticfg);
        let dead = dead_stores(&p, &ticfg, &pts);
        assert!(dead.is_empty(), "free observes the cell: {dead:?}");
    }

    #[test]
    fn constprop_folds_chains_and_calls() {
        let mut pb = ProgramBuilder::new("t");
        let callee = {
            let mut g = pb.function("twice", &["x"]);
            let x = VarId(0);
            let r = g.bin("r", BinKind::Mul, x.into(), Operand::Const(2));
            g.ret(Some(r.into()));
            g.finish()
        };
        let mut f = pb.function("main", &[]);
        let a = f.const_i64("a", 21);
        f.call(Some("b"), Callee::Direct(callee), &[a.into()]);
        let b = f.var("b");
        let c = f.bin("c", BinKind::Add, b.into(), Operand::Const(0));
        f.print(&[c.into()]);
        f.ret(None);
        f.finish();
        let mut p = pb.finish().unwrap();
        p.entry = p.function_by_name("main").unwrap().id;
        let ticfg = Icfg::build_ticfg(&p);
        let cp = ConstProp::compute(&p, &ticfg);
        let main = p.function_by_name("main").unwrap().id;
        assert_eq!(
            cp.operand_value(main, Operand::Var(var(&p, main, "c"))),
            Some(42)
        );
        assert_eq!(
            cp.operand_value(callee, Operand::Var(var(&p, callee, "r"))),
            Some(42)
        );
    }

    #[test]
    fn constprop_divergent_params_and_div_by_zero_vary() {
        let mut pb = ProgramBuilder::new("t");
        let callee = {
            let mut g = pb.function("id", &["x"]);
            g.ret(Some(Operand::Var(VarId(0))));
            g.finish()
        };
        let mut f = pb.function("main", &[]);
        f.call(Some("a"), Callee::Direct(callee), &[Operand::Const(1)]);
        f.call(Some("b"), Callee::Direct(callee), &[Operand::Const(2)]);
        let d = f.bin("d", BinKind::Div, Operand::Const(1), Operand::Const(0));
        f.print(&[d.into()]);
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let ticfg = Icfg::build_ticfg(&p);
        let cp = ConstProp::compute(&p, &ticfg);
        let main = p.function_by_name("main").unwrap().id;
        // Two call sites with different constants: the param varies, so
        // both results vary.
        assert_eq!(
            cp.operand_value(main, Operand::Var(var(&p, main, "a"))),
            None
        );
        assert_eq!(cp.operand_value(callee, Operand::Var(VarId(0))), None);
        // Division by zero is a failure, not a constant.
        assert_eq!(
            cp.operand_value(main, Operand::Var(var(&p, main, "d"))),
            None
        );
    }

    #[test]
    fn solver_reaches_fixpoint_on_loops() {
        // A counting loop: liveness of the loop counter must converge and
        // keep the counter live on the back edge.
        let mut pb = ProgramBuilder::new("t");
        let g = pb.global("g", 0);
        let mut f = pb.function("main", &[]);
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        f.br(body);
        f.switch_to(body);
        let v = f.load("v", Operand::Global(g));
        let c = f.cmp("c", gist_ir::CmpKind::Lt, v.into(), Operand::Const(10));
        f.condbr(c.into(), body, exit);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let ticfg = Icfg::build_ticfg(&p);
        let live = live_variables(&p, &ticfg);
        let main = p.entry;
        let cmp_id = p.functions[main.index()].blocks[1].instrs[1].id;
        assert!(live.before(cmp_id).contains(&(main, var(&p, main, "v"))));
        let _ = g;
    }
}
