//! Ground-truth conformance helpers for generated programs.
//!
//! The synthetic bugbase (`gist-bugbase::synth`) injects exactly one
//! root-cause pattern per program and records which `GA0xx` code and
//! which source lines the static analyses must recover. This module
//! holds the *analysis-side* half of that contract, generic over any
//! [`Program`] (this crate only dev-depends on the bugbase, so nothing
//! here names generator types): run the full lint battery, bucket the
//! findings by code, and check that a finding actually points at the
//! injected lines rather than merely carrying the right label.

use std::collections::BTreeMap;

use gist_ir::Program;

use crate::deadlock::DeadlockLintPass;
use crate::diag::Diagnostic;
use crate::lint::lint_passes;
use crate::predict::{predicted_sketches, PredictedSketch};

/// Runs the full lint battery (value-flow lints plus the deadlock pass)
/// and returns the diagnostics.
pub fn lint_all(program: &Program) -> Vec<Diagnostic> {
    lint_passes()
        .with_pass(DeadlockLintPass::default())
        .run(program)
}

/// The distinct diagnostic codes reported for `program`, with counts.
pub fn code_histogram(diags: &[Diagnostic]) -> BTreeMap<&'static str, usize> {
    let mut h = BTreeMap::new();
    for d in diags {
        *h.entry(d.code).or_insert(0) += 1;
    }
    h
}

/// True if `text` mentions `file:line` with a digit boundary after the
/// line number (so `synth.c:11` does not match inside `synth.c:115`).
fn mentions_site(text: &str, site: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = text[from..].find(site) {
        let end = from + pos + site.len();
        let boundary = text[end..]
            .chars()
            .next()
            .map(|c| !c.is_ascii_digit())
            .unwrap_or(true);
        if boundary {
            return true;
        }
        from = end;
    }
    false
}

/// True if the diagnostic's location, message, or notes reference at
/// least one of `lines` of `file` (rendered as `file:line` through the
/// program's source map, the same way the CLI prints findings).
pub fn diag_references_line(
    program: &Program,
    diag: &Diagnostic,
    file: &str,
    lines: &[u32],
) -> bool {
    let rendered = program.source_map.display(diag.loc);
    lines.iter().any(|&l| {
        let site = format!("{file}:{l}");
        rendered == site
            || mentions_site(&diag.message, &site)
            || diag.notes.iter().any(|n| mentions_site(n, &site))
    })
}

/// The diagnostics of `diags` carrying `code` that reference at least one
/// of `lines` (see [`diag_references_line`]).
pub fn findings_on_lines<'d>(
    program: &Program,
    diags: &'d [Diagnostic],
    code: &str,
    file: &str,
    lines: &[u32],
) -> Vec<&'d Diagnostic> {
    diags
        .iter()
        .filter(|d| d.code == code && diag_references_line(program, d, file, lines))
        .collect()
}

/// True if some predicted sketch with `code` steps through at least one
/// of `lines` of `file` (predicted failure sketches render their step
/// locations as `file:line` strings).
pub fn prediction_covers(
    predictions: &[PredictedSketch],
    code: &str,
    file: &str,
    lines: &[u32],
) -> bool {
    predictions.iter().any(|p| {
        p.code == code
            && lines.iter().any(|&l| {
                let site = format!("{file}:{l}");
                p.steps.iter().any(|s| s.loc == site)
            })
    })
}

/// Convenience: predictions for `program` (same entry point the
/// `gist-analyze predict` subcommand uses).
pub fn predictions(program: &Program) -> Vec<PredictedSketch> {
    predicted_sketches(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_mentions_respect_digit_boundaries() {
        assert!(mentions_site("read at synth.c:11", "synth.c:11"));
        assert!(mentions_site("read at synth.c:11, then", "synth.c:11"));
        assert!(!mentions_site("read at synth.c:115", "synth.c:11"));
        assert!(mentions_site("synth.c:115 and synth.c:11", "synth.c:11"));
    }
}
