//! Static lock-order-graph deadlock detection.
//!
//! The VM can *observe* a deadlock when one happens; this pass predicts
//! them before any run. It reuses the race detector's flow-sensitive
//! lockset analysis ([`crate::race::locksets_with`]): every `lock p`
//! statement acquires the abstract mutex cells `p` may denote while the
//! statement's lockset names the mutexes certainly already held, so each
//! `(held, acquired)` pair is an edge in a lock-order graph over abstract
//! locations. A cycle in that graph — thread A takes `m1` then `m2`,
//! thread B takes `m2` then `m1` — is the classic ABBA shape, reported as
//! a `GA011` warning by [`DeadlockLintPass`].
//!
//! Edges connect through [`Loc::overlaps`] rather than equality so a
//! widened lock (`queue[*]`) still matches a precise acquisition
//! (`queue[1]`); self-overlapping edges (re-acquiring a cell already
//! held) are skipped, since recursive locking is a different bug class
//! the VM already traps dynamically.

use std::collections::BTreeSet;

use gist_ir::icfg::{Icfg, Ticfg};
use gist_ir::{InstrId, Op, Program, SrcLoc};

use crate::diag::Diagnostic;
use crate::pass::{AnalysisCtx, Pass};
use crate::points_to::Loc;
use crate::race::locksets_with;

/// One acquisition-order edge: `held` was certainly locked when `acquired`
/// was taken at statement `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockOrderEdge {
    /// A mutex certainly held at the acquisition.
    pub held: Loc,
    /// The mutex being acquired.
    pub acquired: Loc,
    /// The acquiring `lock` statement.
    pub at: InstrId,
}

/// A cycle in the lock-order graph: the locks, in acquisition order, and
/// the `lock` statements witnessing each edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockCycle {
    /// The locks on the cycle (each acquired while the previous is held).
    pub locks: Vec<Loc>,
    /// The `lock` statements witnessing each edge, aligned with `locks`.
    pub sites: Vec<InstrId>,
}

impl DeadlockCycle {
    /// Renders `a -> b -> a` with source-level lock names.
    pub fn render(&self, program: &Program) -> String {
        let mut names: Vec<String> = self
            .locks
            .iter()
            .map(|l| l.origin.display(program))
            .collect();
        if let Some(first) = names.first().cloned() {
            names.push(first);
        }
        names.join(" -> ")
    }
}

/// The deadlock detector's output.
#[derive(Clone, Debug, Default)]
pub struct DeadlockAnalysis {
    /// All acquisition-order edges found.
    pub edges: Vec<LockOrderEdge>,
    /// Distinct cycles, shortest first.
    pub cycles: Vec<DeadlockCycle>,
}

impl DeadlockAnalysis {
    /// True if the lock-order graph is acyclic.
    pub fn is_clean(&self) -> bool {
        self.cycles.is_empty()
    }
}

/// Runs the detector, building a fresh TICFG.
pub fn analyze(program: &Program) -> DeadlockAnalysis {
    let ticfg = Icfg::build_ticfg(program);
    analyze_with(program, &ticfg)
}

/// Runs the detector against a prebuilt TICFG.
pub fn analyze_with(program: &Program, ticfg: &Ticfg) -> DeadlockAnalysis {
    let (stmt_ls, pts) = locksets_with(program, ticfg);
    let mut edges: Vec<LockOrderEdge> = Vec::new();
    for f in &program.functions {
        for b in &f.blocks {
            for instr in &b.instrs {
                let Op::MutexLock { addr } = &instr.op else {
                    continue;
                };
                let acquired = pts.operand_origins(f.id, *addr);
                let Some(held) = stmt_ls.get(&instr.id) else {
                    continue;
                };
                for &h in held {
                    for &a in &acquired {
                        if h.overlaps(&a) {
                            continue; // re-acquisition, not an ordering edge
                        }
                        let e = LockOrderEdge {
                            held: h,
                            acquired: a,
                            at: instr.id,
                        };
                        if !edges.contains(&e) {
                            edges.push(e);
                        }
                    }
                }
            }
        }
    }
    let cycles = find_cycles(&edges);
    DeadlockAnalysis { edges, cycles }
}

/// Enumerates simple cycles by walking edges from each start edge until a
/// lock overlapping the start's `held` reappears. Cycles are deduplicated
/// by their lock set and reported shortest-first.
fn find_cycles(edges: &[LockOrderEdge]) -> Vec<DeadlockCycle> {
    let mut cycles: Vec<DeadlockCycle> = Vec::new();
    let mut seen: BTreeSet<Vec<Loc>> = BTreeSet::new();
    for start in edges {
        // DFS over acquisition edges, path = locks acquired so far.
        let mut stack: Vec<(Loc, Vec<Loc>, Vec<InstrId>)> = vec![(
            start.acquired,
            vec![start.held, start.acquired],
            vec![start.at],
        )];
        let mut visited: BTreeSet<Loc> = BTreeSet::new();
        while let Some((cur, path, sites)) = stack.pop() {
            if !visited.insert(cur) {
                continue;
            }
            for e in edges {
                if !e.held.overlaps(&cur) {
                    continue;
                }
                if e.acquired.overlaps(&start.held) {
                    // Closed the loop back to the start's held lock.
                    let locks = path.clone();
                    let mut ss = sites.clone();
                    ss.push(e.at);
                    let mut key: Vec<Loc> = locks.clone();
                    key.sort();
                    key.dedup();
                    if seen.insert(key) {
                        cycles.push(DeadlockCycle { locks, sites: ss });
                    }
                    continue;
                }
                if path.iter().any(|l| l.overlaps(&e.acquired)) {
                    continue; // already on the path
                }
                let mut p2 = path.clone();
                p2.push(e.acquired);
                let mut s2 = sites.clone();
                s2.push(e.at);
                stack.push((e.acquired, p2, s2));
            }
        }
    }
    cycles.sort_by_key(|c| c.locks.len());
    cycles
}

/// The deadlock detector packaged as a lint [`Pass`]: each lock-order
/// cycle is reported as a `GA011` warning.
#[derive(Default)]
pub struct DeadlockLintPass {
    /// Cap on reported cycles (default 5).
    pub limit: Option<usize>,
}

impl Pass for DeadlockLintPass {
    fn name(&self) -> &'static str {
        "deadlock-lint"
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> Vec<Diagnostic> {
        let program = cx.program;
        let analysis = analyze_with(program, cx.ticfg());
        let limit = self.limit.unwrap_or(5);
        analysis
            .cycles
            .iter()
            .take(limit)
            .map(|c| {
                let site = c.sites.first().copied();
                let loc = site
                    .and_then(|s| program.stmt_loc(s))
                    .unwrap_or(SrcLoc::UNKNOWN);
                Diagnostic::warning(
                    "GA011",
                    format!("potential deadlock: lock-order cycle {}", c.render(program)),
                )
                .at(loc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::builder::ProgramBuilder;
    use gist_ir::{Callee, Operand};

    fn finish_with_main(pb: ProgramBuilder) -> Program {
        let mut p = pb.finish().unwrap();
        if let Some(main) = p.function_by_name("main") {
            p.entry = main.id;
        }
        p
    }

    /// main locks a then b; a spawned worker locks in `worker_order`.
    fn two_lock_program(worker_ab: bool) -> Program {
        let mut pb = ProgramBuilder::new("dl");
        let a = pb.global("lock_a", 0);
        let b = pb.global("lock_b", 0);
        let worker = {
            let mut w = pb.function("worker", &["x"]);
            let (first, second) = if worker_ab { (a, b) } else { (b, a) };
            w.lock(Operand::Global(first));
            w.lock(Operand::Global(second));
            w.unlock(Operand::Global(second));
            w.unlock(Operand::Global(first));
            w.ret(None);
            w.finish()
        };
        let mut f = pb.function("main", &[]);
        f.spawn(None, Callee::Direct(worker), Operand::Const(0));
        f.lock(Operand::Global(a));
        f.lock(Operand::Global(b));
        f.unlock(Operand::Global(b));
        f.unlock(Operand::Global(a));
        f.ret(None);
        f.finish();
        finish_with_main(pb)
    }

    #[test]
    fn abba_order_inversion_is_a_cycle() {
        let p = two_lock_program(false);
        let d = analyze(&p);
        assert!(
            !d.is_clean(),
            "inverted acquisition order must cycle: {:?}",
            d.edges
        );
        let c = &d.cycles[0];
        assert_eq!(c.locks.len(), 2, "two-lock ABBA cycle: {c:?}");
        // The lint reports it.
        let pm = crate::pass::PassManager::new().with_pass(DeadlockLintPass::default());
        let diags = pm.run(&p);
        assert!(diags.iter().any(|d| d.code == "GA011"), "{diags:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let p = two_lock_program(true);
        let d = analyze(&p);
        assert!(
            d.is_clean(),
            "consistent order must not cycle: {:?}",
            d.cycles
        );
        assert!(!d.edges.is_empty(), "a->b edges still exist");
    }

    #[test]
    fn single_lock_program_has_no_edges() {
        let mut pb = ProgramBuilder::new("dl");
        let a = pb.global("lock_a", 0);
        let mut f = pb.function("main", &[]);
        f.lock(Operand::Global(a));
        f.unlock(Operand::Global(a));
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let d = analyze(&p);
        assert!(d.edges.is_empty());
        assert!(d.is_clean());
    }

    #[test]
    fn three_lock_cycle_is_found() {
        // t1: a then b; t2: b then c; t3: c then a.
        let mut pb = ProgramBuilder::new("dl3");
        let a = pb.global("la", 0);
        let b = pb.global("lb", 0);
        let c = pb.global("lc", 0);
        let pairs = [(a, b), (b, c), (c, a)];
        let mut workers = Vec::new();
        for (i, (x, y)) in pairs.iter().enumerate() {
            let mut w = pb.function(&format!("w{i}"), &["p"]);
            w.lock(Operand::Global(*x));
            w.lock(Operand::Global(*y));
            w.unlock(Operand::Global(*y));
            w.unlock(Operand::Global(*x));
            w.ret(None);
            workers.push(w.finish());
        }
        let mut f = pb.function("main", &[]);
        for w in &workers {
            f.spawn(None, Callee::Direct(*w), Operand::Const(0));
        }
        f.ret(None);
        f.finish();
        let p = finish_with_main(pb);
        let d = analyze(&p);
        assert!(!d.is_clean(), "three-way cycle: {:?}", d.edges);
        assert!(
            d.cycles.iter().any(|cy| cy.locks.len() == 3),
            "{:?}",
            d.cycles
        );
    }
}
