//! Static lockset-based data race detection.
//!
//! The pipeline (in the Eraser/RELAY tradition, adapted to MiniC):
//!
//! 1. **Thread contexts.** Every `spawn` site opens a context; the set of
//!    functions each context can reach (over call edges) assigns each
//!    statement the threads that may execute it. Statements in `main` that
//!    dominate every spawn — initialization code — shed their main-thread
//!    membership, like Eraser's virgin state.
//! 2. **Thread escape.** The points-to analysis names the abstract cells
//!    each access touches; an origin touched from two different contexts
//!    (or twice from one multiply-spawned context) is shared.
//! 3. **Locksets.** A flow-sensitive, interprocedural analysis computes
//!    the set of mutexes certainly held before every access: `lock` adds
//!    the mutex's abstract cells, `unlock` removes them, control-flow
//!    joins intersect, and a callee starts with the intersection of its
//!    call sites' locksets.
//! 4. **Conflicts.** Two accesses on overlapping shared cells, from
//!    different-able contexts, at least one a write or free, with
//!    *disjoint* locksets, form a [`RaceCandidate`]. Candidates are ranked
//!    by a suspiciousness score (heap cells, inconsistent locking, exact
//!    cell overlap, frees, and write-write pairs score highest).
//!
//! The ranking is what downstream consumers use: the watchpoint planner
//! arms the four debug registers at the highest-ranked accesses first, and
//! the Gist server seeds the first AsT iteration with candidate statements
//! so root-cause accesses outside the alias-free slice (a racing `free`,
//! say) are tracked from the first recurrence.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use gist_ir::icfg::{Icfg, Ticfg};
use gist_ir::{BlockId, FuncId, InstrId, Op, Program, SrcLoc, Terminator};

use crate::diag::Diagnostic;
use crate::pass::{AnalysisCtx, Pass};
use crate::points_to::{Loc, MemOrigin, PointsTo};

/// A set of abstract mutex cells held at a program point.
pub type Lockset = BTreeSet<Loc>;

/// Lockset intersection — the join of the lockset lattice (paper-style
/// "locks certainly held"). Exposed for property testing.
pub fn lockset_intersect(a: &Lockset, b: &Lockset) -> Lockset {
    a.intersection(b).copied().collect()
}

/// The thread that may execute a statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ThreadCtx {
    /// The main thread.
    Main,
    /// A thread created at the given `spawn` site.
    Spawned(InstrId),
}

/// How a statement touches memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// A `load`.
    Read,
    /// A `store`.
    Write,
    /// A `free` (conflicts with everything on the origin).
    Free,
    /// A `lock`/`unlock` on the cell itself (use-after-free fodder).
    Sync,
}

impl AccessKind {
    fn is_write(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Free)
    }

    /// Short lower-case label for tables.
    pub fn label(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Free => "free",
            AccessKind::Sync => "sync",
        }
    }
}

/// One side of a race candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceEndpoint {
    /// The accessing statement.
    pub stmt: InstrId,
    /// How it accesses the cell.
    pub kind: AccessKind,
    /// Locks certainly held at the access.
    pub lockset: Lockset,
}

/// A ranked pair of accesses that may race.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceCandidate {
    /// The shared allocation the pair collides on.
    pub origin: MemOrigin,
    /// The common concrete cell offset, when both sides pin one down.
    pub offset: Option<i64>,
    /// The endpoint with the smaller statement id.
    pub first: RaceEndpoint,
    /// The endpoint with the larger statement id.
    pub second: RaceEndpoint,
    /// Suspiciousness score (higher = ranked earlier).
    pub score: i32,
}

impl RaceCandidate {
    /// Both statements of the pair.
    pub fn stmts(&self) -> [InstrId; 2] {
        [self.first.stmt, self.second.stmt]
    }
}

/// The race detector's output: candidates sorted best-first.
#[derive(Clone, Debug, Default)]
pub struct RaceAnalysis {
    /// Ranked candidates (best first).
    pub candidates: Vec<RaceCandidate>,
}

impl RaceAnalysis {
    /// True if no candidate was found (e.g. a sequential program).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Candidate statements in rank order, deduplicated: the seed set for
    /// Adaptive Slice Tracking and the priority order for watchpoints.
    pub fn ranked_stmts(&self) -> Vec<InstrId> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for c in &self.candidates {
            for s in c.stmts() {
                if seen.insert(s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Renders the ranked candidate table shown by `repro -- races`.
    pub fn render_table(&self, program: &Program) -> String {
        if self.candidates.is_empty() {
            return "  (no race candidates)\n".to_owned();
        }
        let mut out = String::new();
        for (i, c) in self.candidates.iter().enumerate() {
            let cell = match c.offset {
                Some(o) => format!("{}[{o}]", c.origin.display(program)),
                None => c.origin.display(program),
            };
            out.push_str(&format!(
                "  #{:<2} score {:>2}  {cell}\n      {}  <->  {}\n",
                i + 1,
                c.score,
                render_endpoint(program, &c.first),
                render_endpoint(program, &c.second),
            ));
        }
        out
    }
}

fn render_endpoint(program: &Program, e: &RaceEndpoint) -> String {
    let where_ = program
        .stmt_loc(e.stmt)
        .map(|l| program.source_map.display(l))
        .unwrap_or_else(|| e.stmt.to_string());
    let locks = if e.lockset.is_empty() {
        "{}".to_owned()
    } else {
        let names: Vec<String> = e
            .lockset
            .iter()
            .map(|l| l.origin.display(program))
            .collect();
        format!("{{{}}}", names.join(", "))
    };
    format!("{where_} {} {locks}", e.kind.label())
}

/// Runs the race detector, building a fresh TICFG.
pub fn analyze(program: &Program) -> RaceAnalysis {
    let ticfg = Icfg::build_ticfg(program);
    analyze_with(program, &ticfg)
}

/// Runs the race detector against a prebuilt TICFG.
pub fn analyze_with(program: &Program, ticfg: &Ticfg) -> RaceAnalysis {
    Detector::new(program, ticfg).run()
}

/// Runs only the flow-sensitive lockset stage and returns the lockset
/// held before each statement, plus the points-to result used to name
/// mutex cells. This is the input the lock-order deadlock detector
/// ([`crate::deadlock`]) builds its acquisition graph from.
pub fn locksets_with(program: &Program, ticfg: &Ticfg) -> (BTreeMap<InstrId, Lockset>, PointsTo) {
    let mut d = Detector::new(program, ticfg);
    d.find_contexts();
    d.compute_locksets();
    (d.stmt_ls, d.pts)
}

/// Memory origins accessible from more than one thread context (or from a
/// multiply-spawned one) — the cells where cross-thread aliasing matters.
///
/// The alias-aware slicer restricts its may-alias write pulling to these
/// origins: same-thread heap flows are already captured by def-use chains
/// and runtime watchpoints, so pulling every aliasing write in a
/// sequential program would only inflate the slice (the §3.1 blow-up).
/// Single-threaded programs have no shared origins. Pre-spawn suppression
/// is deliberately *not* applied here: initialization writes to a cell
/// that later escapes still belong in the slice.
pub fn shared_origins_with(program: &Program, ticfg: &Ticfg) -> BTreeSet<MemOrigin> {
    let mut d = Detector::new(program, ticfg);
    d.find_contexts();
    let accesses = d.collect_accesses();
    d.shared_origins(&accesses)
}

/// One shared-memory access, annotated with everything the pairing step
/// needs.
struct AccessRec {
    stmt: InstrId,
    kind: AccessKind,
    locs: BTreeSet<Loc>,
    ctxs: BTreeSet<ThreadCtx>,
    lockset: Lockset,
}

struct Detector<'a> {
    program: &'a Program,
    ticfg: &'a Ticfg,
    pts: PointsTo,
    /// All spawn sites with their containing function.
    spawn_sites: Vec<(InstrId, FuncId)>,
    /// Spawn sites that may execute more than once (loops).
    multi_spawns: BTreeSet<InstrId>,
    /// Which contexts may execute each function.
    func_ctxs: BTreeMap<FuncId, BTreeSet<ThreadCtx>>,
    /// Functions only ever called before the first spawn (init code).
    pre_spawn_funcs: BTreeSet<FuncId>,
    /// Whether pre-spawn suppression applies (all spawns are in `main`).
    suppression: bool,
    /// Lockset before each statement.
    stmt_ls: BTreeMap<InstrId, Lockset>,
}

impl<'a> Detector<'a> {
    fn new(program: &'a Program, ticfg: &'a Ticfg) -> Self {
        let pts = PointsTo::compute(program, ticfg);
        Detector {
            program,
            ticfg,
            pts,
            spawn_sites: Vec::new(),
            multi_spawns: BTreeSet::new(),
            func_ctxs: BTreeMap::new(),
            pre_spawn_funcs: BTreeSet::new(),
            suppression: false,
            stmt_ls: BTreeMap::new(),
        }
    }

    fn run(mut self) -> RaceAnalysis {
        self.find_contexts();
        self.find_pre_spawn_region();
        self.compute_locksets();
        let accesses = self.collect_accesses();
        let shared = self.shared_origins(&accesses);
        self.pair_up(&accesses, &shared)
    }

    /// Functions reachable from `roots` over plain call edges (spawn edges
    /// open their own context, so they are excluded here).
    fn call_reach(&self, roots: impl IntoIterator<Item = FuncId>) -> BTreeSet<FuncId> {
        let mut seen: BTreeSet<FuncId> = roots.into_iter().collect();
        let mut queue: VecDeque<FuncId> = seen.iter().copied().collect();
        while let Some(f) = queue.pop_front() {
            let func = self.program.function(f);
            for b in &func.blocks {
                for instr in &b.instrs {
                    if !matches!(instr.op, Op::Call { .. }) {
                        continue;
                    }
                    for &t in self
                        .ticfg
                        .call_targets
                        .get(&instr.id)
                        .map_or(&[][..], Vec::as_slice)
                    {
                        if seen.insert(t) {
                            queue.push_back(t);
                        }
                    }
                }
            }
        }
        seen
    }

    fn find_contexts(&mut self) {
        for f in &self.program.functions {
            for b in &f.blocks {
                for instr in &b.instrs {
                    if matches!(instr.op, Op::ThreadCreate { .. }) {
                        self.spawn_sites.push((instr.id, f.id));
                        if self.block_in_cycle(f.id, b.id) {
                            self.multi_spawns.insert(instr.id);
                        }
                    }
                }
            }
        }
        let add_ctx = |funcs: BTreeSet<FuncId>,
                       ctx: ThreadCtx,
                       map: &mut BTreeMap<FuncId, BTreeSet<ThreadCtx>>| {
            for f in funcs {
                map.entry(f).or_default().insert(ctx);
            }
        };
        let mut map = BTreeMap::new();
        add_ctx(
            self.call_reach([self.program.entry]),
            ThreadCtx::Main,
            &mut map,
        );
        for &(site, _) in &self.spawn_sites {
            let routines: Vec<FuncId> = self
                .ticfg
                .call_targets
                .get(&site)
                .cloned()
                .unwrap_or_default();
            add_ctx(
                self.call_reach(routines),
                ThreadCtx::Spawned(site),
                &mut map,
            );
        }
        self.func_ctxs = map;
    }

    /// True if `block` sits on a CFG cycle within its function.
    fn block_in_cycle(&self, func: FuncId, block: BlockId) -> bool {
        let cfg = &self.ticfg.cfgs[func.index()];
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<BlockId> = cfg.succs[block.index()].iter().copied().collect();
        while let Some(b) = queue.pop_front() {
            if b == block {
                return true;
            }
            if seen.insert(b) {
                queue.extend(cfg.succs[b.index()].iter().copied());
            }
        }
        false
    }

    /// Computes the pre-spawn (initialization) region of the main thread:
    /// statements in `main` that dominate every spawn site, plus functions
    /// called only from there. Bails out (suppresses nothing) when spawns
    /// happen outside `main`.
    fn find_pre_spawn_region(&mut self) {
        if self.spawn_sites.is_empty() {
            return;
        }
        let entry = self.program.entry;
        self.suppression = self.spawn_sites.iter().all(|&(_, f)| f == entry);
        if !self.suppression {
            return;
        }
        // Functions reachable from any spawned context can run concurrently
        // no matter where they're called from.
        let mut spawn_reach: BTreeSet<FuncId> = BTreeSet::new();
        for (f, ctxs) in &self.func_ctxs {
            if ctxs.iter().any(|c| matches!(c, ThreadCtx::Spawned(_))) {
                spawn_reach.insert(*f);
            }
        }
        let main_reach = self.call_reach([entry]);
        let mut pre: BTreeSet<FuncId> = main_reach
            .iter()
            .copied()
            .filter(|f| *f != entry && !spawn_reach.contains(f))
            .collect();
        // Greatest fixpoint: a function stays "pre-spawn" only while every
        // main-thread call site into it is itself pre-spawn.
        loop {
            let mut evict: Vec<FuncId> = Vec::new();
            for &f in &pre {
                let callers = self.ticfg.callers.get(&f).map_or(&[][..], Vec::as_slice);
                let all_pre = callers
                    .iter()
                    .all(|&site| match self.program.stmt_func(site) {
                        Some(g) if g == entry => self.stmt_is_pre_spawn(site),
                        Some(g) => !main_reach.contains(&g) || pre.contains(&g),
                        None => true,
                    });
                if !all_pre {
                    evict.push(f);
                }
            }
            if evict.is_empty() {
                break;
            }
            for f in evict {
                pre.remove(&f);
            }
        }
        self.pre_spawn_funcs = pre;
    }

    /// True if a statement in `main` executes before every spawn site.
    fn stmt_is_pre_spawn(&self, stmt: InstrId) -> bool {
        let entry = self.program.entry;
        let Some(pos) = self.program.stmt_pos(stmt) else {
            return false;
        };
        debug_assert_eq!(pos.func, entry);
        let dom = &self.ticfg.doms[entry.index()];
        self.spawn_sites.iter().all(|&(site, _)| {
            let Some(spos) = self.program.stmt_pos(site) else {
                return false;
            };
            if pos.block == spos.block {
                pos.index < spos.index
            } else {
                dom.strictly_dominates(pos.block, spos.block)
            }
        })
    }

    /// Whether an access sheds its main-thread membership (init code).
    fn suppressed_in_main(&self, stmt: InstrId, func: FuncId) -> bool {
        if !self.suppression {
            return false;
        }
        if func == self.program.entry {
            self.stmt_is_pre_spawn(stmt)
        } else {
            self.pre_spawn_funcs.contains(&func)
        }
    }

    /// Flow-sensitive, interprocedural lockset analysis. Fills
    /// `self.stmt_ls` with the locks certainly held before each statement.
    fn compute_locksets(&mut self) {
        let program = self.program;
        // None = not yet observed (top of the "intersection of call sites"
        // lattice). The entry and all spawn routines start lock-free.
        let mut entry_ls: BTreeMap<FuncId, Option<Lockset>> = BTreeMap::new();
        entry_ls.insert(program.entry, Some(Lockset::new()));
        for &(site, _) in &self.spawn_sites {
            for &t in self
                .ticfg
                .call_targets
                .get(&site)
                .map_or(&[][..], Vec::as_slice)
            {
                entry_ls.insert(t, Some(Lockset::new()));
            }
        }
        // Locks a function certainly still holds at return, beyond what it
        // was entered with.
        let mut gains: BTreeMap<FuncId, Lockset> = BTreeMap::new();

        for _round in 0..32 {
            let mut changed = false;
            for f in &program.functions {
                if f.blocks.is_empty() {
                    continue;
                }
                let Some(Some(entry_set)) = entry_ls.get(&f.id).cloned() else {
                    continue;
                };
                // Per-block dataflow with intersection joins.
                let nblocks = f.blocks.len();
                let mut ins: Vec<Option<Lockset>> = vec![None; nblocks];
                ins[0] = Some(entry_set.clone());
                let mut worklist: VecDeque<usize> = VecDeque::from([0]);
                let mut ret_ls: Vec<Lockset> = Vec::new();
                let mut callee_updates: Vec<(FuncId, Lockset)> = Vec::new();
                let mut iterations = 0usize;
                while let Some(bi) = worklist.pop_front() {
                    iterations += 1;
                    if iterations > nblocks * 64 {
                        break; // defensive bound
                    }
                    let Some(mut ls) = ins[bi].clone() else {
                        continue;
                    };
                    let b = &f.blocks[bi];
                    for instr in &b.instrs {
                        self.stmt_ls.insert(instr.id, ls.clone());
                        match &instr.op {
                            Op::MutexLock { addr } => {
                                ls.extend(self.pts.operand_origins(f.id, *addr));
                            }
                            Op::MutexUnlock { addr } => {
                                for loc in self.pts.operand_origins(f.id, *addr) {
                                    ls.remove(&loc);
                                }
                            }
                            Op::Call { .. } => {
                                for &t in self
                                    .ticfg
                                    .call_targets
                                    .get(&instr.id)
                                    .map_or(&[][..], Vec::as_slice)
                                {
                                    callee_updates.push((t, ls.clone()));
                                    ls.extend(gains.get(&t).cloned().unwrap_or_default());
                                }
                            }
                            _ => {}
                        }
                    }
                    self.stmt_ls.insert(b.term.id(), ls.clone());
                    if matches!(b.term, Terminator::Ret { .. }) {
                        ret_ls.push(ls.difference(&entry_set).copied().collect());
                    }
                    for succ in b.term.successors() {
                        if succ.index() >= nblocks {
                            continue;
                        }
                        let merged = match &ins[succ.index()] {
                            None => ls.clone(),
                            Some(prev) => lockset_intersect(prev, &ls),
                        };
                        if ins[succ.index()].as_ref() != Some(&merged) {
                            ins[succ.index()] = Some(merged);
                            worklist.push_back(succ.index());
                        }
                    }
                }
                // Net lock gain: held at every return.
                let gain = ret_ls
                    .into_iter()
                    .reduce(|a, b| lockset_intersect(&a, &b))
                    .unwrap_or_default();
                if gains.get(&f.id) != Some(&gain) {
                    gains.insert(f.id, gain);
                    changed = true;
                }
                // Callee entry locksets: intersection over call sites.
                for (t, ls) in callee_updates {
                    let next = match entry_ls.get(&t) {
                        Some(Some(prev)) => lockset_intersect(prev, &ls),
                        _ => ls,
                    };
                    if entry_ls.get(&t) != Some(&Some(next.clone())) {
                        entry_ls.insert(t, Some(next));
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    fn collect_accesses(&self) -> Vec<AccessRec> {
        let mut out = Vec::new();
        for f in &self.program.functions {
            let Some(ctxs) = self.func_ctxs.get(&f.id) else {
                continue;
            };
            for b in &f.blocks {
                for instr in &b.instrs {
                    let kind = match &instr.op {
                        Op::Load { .. } => AccessKind::Read,
                        Op::Store { .. } => AccessKind::Write,
                        Op::Free { .. } => AccessKind::Free,
                        Op::MutexLock { .. } | Op::MutexUnlock { .. } => AccessKind::Sync,
                        _ => continue,
                    };
                    let Some(addr) = instr.op.access_addr() else {
                        continue;
                    };
                    let mut locs = self.pts.operand_origins(f.id, addr);
                    if kind == AccessKind::Free {
                        // A free invalidates the whole origin.
                        locs = locs.into_iter().map(|l| Loc::anywhere(l.origin)).collect();
                    }
                    if locs.is_empty() {
                        continue;
                    }
                    let mut my_ctxs = ctxs.clone();
                    if self.suppressed_in_main(instr.id, f.id) {
                        my_ctxs.remove(&ThreadCtx::Main);
                    }
                    if my_ctxs.is_empty() {
                        continue;
                    }
                    out.push(AccessRec {
                        stmt: instr.id,
                        kind,
                        locs,
                        ctxs: my_ctxs,
                        lockset: self.stmt_ls.get(&instr.id).cloned().unwrap_or_default(),
                    });
                }
            }
        }
        out
    }

    /// Origins reachable from at least two different-able thread contexts.
    fn shared_origins(&self, accesses: &[AccessRec]) -> BTreeSet<MemOrigin> {
        let mut origin_ctxs: BTreeMap<MemOrigin, BTreeSet<ThreadCtx>> = BTreeMap::new();
        for a in accesses {
            for loc in &a.locs {
                origin_ctxs
                    .entry(loc.origin)
                    .or_default()
                    .extend(a.ctxs.iter().copied());
            }
        }
        origin_ctxs
            .into_iter()
            .filter(|(_, ctxs)| {
                ctxs.len() >= 2
                    || ctxs.iter().any(
                        |c| matches!(c, ThreadCtx::Spawned(s) if self.multi_spawns.contains(s)),
                    )
            })
            .map(|(o, _)| o)
            .collect()
    }

    fn pair_up(&self, accesses: &[AccessRec], shared: &BTreeSet<MemOrigin>) -> RaceAnalysis {
        // (min stmt, max stmt) -> best candidate for the pair.
        let mut best: BTreeMap<(InstrId, InstrId), RaceCandidate> = BTreeMap::new();
        for (i, a) in accesses.iter().enumerate() {
            for b in accesses.iter().skip(i + 1) {
                if !kind_pair_ok(a.kind, b.kind) {
                    continue;
                }
                if !self.ctx_pair_ok(&a.ctxs, &b.ctxs) {
                    continue;
                }
                if !lockset_intersect(&a.lockset, &b.lockset).is_empty() {
                    continue;
                }
                let Some((origin, offset, score)) = self.best_collision(a, b, shared) else {
                    continue;
                };
                let (first, second) = if a.stmt <= b.stmt { (a, b) } else { (b, a) };
                let cand = RaceCandidate {
                    origin,
                    offset,
                    first: endpoint(first),
                    second: endpoint(second),
                    score,
                };
                let key = (first.stmt, second.stmt);
                match best.get(&key) {
                    Some(prev) if prev.score >= cand.score => {}
                    _ => {
                        best.insert(key, cand);
                    }
                }
            }
        }
        let mut candidates: Vec<RaceCandidate> = best.into_values().collect();
        candidates.sort_by(|a, b| {
            b.score
                .cmp(&a.score)
                .then(a.first.stmt.cmp(&b.first.stmt))
                .then(a.second.stmt.cmp(&b.second.stmt))
        });
        RaceAnalysis { candidates }
    }

    /// The highest-scoring shared origin both accesses may collide on.
    fn best_collision(
        &self,
        a: &AccessRec,
        b: &AccessRec,
        shared: &BTreeSet<MemOrigin>,
    ) -> Option<(MemOrigin, Option<i64>, i32)> {
        let mut best: Option<(MemOrigin, Option<i64>, i32)> = None;
        let a_origins: BTreeSet<MemOrigin> = a.locs.iter().map(|l| l.origin).collect();
        for origin in a_origins {
            if !shared.contains(&origin) {
                continue;
            }
            let a_offs: Vec<Option<i64>> = a
                .locs
                .iter()
                .filter(|l| l.origin == origin)
                .map(|l| l.offset)
                .collect();
            let b_offs: Vec<Option<i64>> = b
                .locs
                .iter()
                .filter(|l| l.origin == origin)
                .map(|l| l.offset)
                .collect();
            if b_offs.is_empty() {
                continue;
            }
            let mut concrete: Option<i64> = None;
            let mut overlaps = false;
            for &oa in &a_offs {
                for &ob in &b_offs {
                    match (oa, ob) {
                        (Some(x), Some(y)) if x == y => {
                            overlaps = true;
                            concrete = Some(x);
                        }
                        (None, _) | (_, None) => overlaps = true,
                        _ => {}
                    }
                }
            }
            if !overlaps {
                continue;
            }
            let score = score_pair(origin, concrete.is_some(), a, b);
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((origin, concrete, score));
            }
        }
        best
    }

    /// Two context sets can race if they contain different contexts, or
    /// share only a context whose spawn site runs more than once.
    fn ctx_pair_ok(&self, a: &BTreeSet<ThreadCtx>, b: &BTreeSet<ThreadCtx>) -> bool {
        if a.len() == 1 && b.len() == 1 && a == b {
            return a
                .iter()
                .any(|c| matches!(c, ThreadCtx::Spawned(s) if self.multi_spawns.contains(s)));
        }
        !a.is_empty() && !b.is_empty()
    }
}

fn endpoint(a: &AccessRec) -> RaceEndpoint {
    RaceEndpoint {
        stmt: a.stmt,
        kind: a.kind,
        lockset: a.lockset.clone(),
    }
}

fn kind_pair_ok(a: AccessKind, b: AccessKind) -> bool {
    use AccessKind::*;
    match (a, b) {
        (Sync, Sync) => false,
        (Sync, k) | (k, Sync) => k.is_write(),
        (Read, Read) => false,
        (x, y) => x.is_write() || y.is_write(),
    }
}

/// The suspiciousness score of a colliding pair. Heap cells, inconsistent
/// locking, exact cell overlap, frees, and double-writes are the signals
/// that correlate with the bugbase's real root causes.
fn score_pair(origin: MemOrigin, same_concrete_cell: bool, a: &AccessRec, b: &AccessRec) -> i32 {
    let mut s = 0;
    if matches!(origin, MemOrigin::Heap(_)) {
        s += 4;
    }
    // Inconsistent locking: one side holds a lock the other does not. A lock
    // on the raced cell itself (e.g. holding a mutex while it is freed under
    // us) does not count — that is a lifetime bug, not a locking-discipline
    // signal, and the free endpoint already earns its own bonus.
    let foreign_lock = |r: &AccessRec| r.lockset.iter().any(|l| l.origin != origin);
    if foreign_lock(a) || foreign_lock(b) {
        s += 3;
    }
    if same_concrete_cell {
        s += 3;
    }
    if a.kind == AccessKind::Free || b.kind == AccessKind::Free {
        s += 2;
    }
    if a.kind.is_write() && b.kind.is_write() {
        s += 2;
    }
    if (a.kind.is_write() && b.kind == AccessKind::Read)
        || (a.kind == AccessKind::Read && b.kind.is_write())
    {
        s += 1;
    }
    s
}

/// The race detector packaged as a lint [`Pass`]: the top candidates are
/// reported as `GA010` warnings.
#[derive(Default)]
pub struct RaceLintPass {
    /// Cap on reported candidates (default 5).
    pub limit: Option<usize>,
}

impl Pass for RaceLintPass {
    fn name(&self) -> &'static str {
        "race-lint"
    }

    fn run(&self, cx: &mut AnalysisCtx<'_>) -> Vec<Diagnostic> {
        let program = cx.program;
        let analysis = analyze_with(program, cx.ticfg());
        let limit = self.limit.unwrap_or(5);
        analysis
            .candidates
            .iter()
            .take(limit)
            .map(|c| {
                let loc = program.stmt_loc(c.first.stmt).unwrap_or(SrcLoc::UNKNOWN);
                Diagnostic::warning(
                    "GA010",
                    format!(
                        "possible data race on {}: {} {} vs {} {}",
                        c.origin.display(program),
                        program
                            .stmt_loc(c.first.stmt)
                            .map(|l| program.source_map.display(l))
                            .unwrap_or_default(),
                        c.first.kind.label(),
                        program
                            .stmt_loc(c.second.stmt)
                            .map(|l| program.source_map.display(l))
                            .unwrap_or_default(),
                        c.second.kind.label(),
                    ),
                )
                .at(loc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::builder::ProgramBuilder;
    use gist_ir::{Callee, Operand};

    /// The builder leaves `entry` at fn0; point it at `main` (tests here
    /// define worker routines first).
    fn finish_with_main(pb: ProgramBuilder) -> Program {
        let mut p = pb.finish().unwrap();
        if let Some(main) = p.function_by_name("main") {
            p.entry = main.id;
        }
        p
    }

    /// main spawns a worker; both touch `counter`. `guard` selects which
    /// sides take the lock.
    fn racy(guard_main: bool, guard_worker: bool) -> Program {
        let mut pb = ProgramBuilder::new("racy");
        let counter = pb.global("counter", 0);
        let lk = pb.global("lk", 0);
        let worker = {
            let mut w = pb.function("worker", &["arg"]);
            if guard_worker {
                w.lock(Operand::Global(lk));
            }
            w.load("v", Operand::Global(counter));
            if guard_worker {
                w.unlock(Operand::Global(lk));
            }
            w.ret(None);
            w.finish()
        };
        let mut f = pb.function("main", &[]);
        let t = f
            .spawn(Some("t"), Callee::Direct(worker), Operand::Const(0))
            .unwrap();
        if guard_main {
            f.lock(Operand::Global(lk));
        }
        f.store(Operand::Global(counter), Operand::Const(1));
        if guard_main {
            f.unlock(Operand::Global(lk));
        }
        f.join(t.into());
        f.ret(None);
        f.finish();
        finish_with_main(pb)
    }

    #[test]
    fn unguarded_store_load_pair_is_found() {
        let analysis = analyze(&racy(false, false));
        assert!(!analysis.is_empty(), "expected a candidate");
        let top = &analysis.candidates[0];
        assert_eq!(top.first.kind, AccessKind::Read);
        assert_eq!(top.second.kind, AccessKind::Write);
        assert!(matches!(top.origin, MemOrigin::Global(_)));
        assert_eq!(analysis.ranked_stmts().len(), 2);
    }

    #[test]
    fn consistent_locking_silences_the_pair() {
        let analysis = analyze(&racy(true, true));
        assert!(
            analysis.is_empty(),
            "consistently guarded accesses must not race: {:?}",
            analysis.candidates
        );
    }

    #[test]
    fn inconsistent_locking_ranks_above_no_locking() {
        let none = analyze(&racy(false, false));
        let one_side = analyze(&racy(false, true));
        assert!(!one_side.is_empty());
        assert!(
            one_side.candidates[0].score > none.candidates[0].score,
            "lock held on one side only is the classic lockset violation"
        );
    }

    #[test]
    fn init_writes_before_spawn_are_suppressed() {
        // main initializes `counter` before spawning; only the post-spawn
        // store may race with the worker's load.
        let mut pb = ProgramBuilder::new("init");
        let counter = pb.global("counter", 0);
        let worker = {
            let mut w = pb.function("worker", &["arg"]);
            w.load("v", Operand::Global(counter));
            w.ret(None);
            w.finish()
        };
        let mut f = pb.function("main", &[]);
        f.store(Operand::Global(counter), Operand::Const(7)); // init
        let t = f
            .spawn(Some("t"), Callee::Direct(worker), Operand::Const(0))
            .unwrap();
        f.store(Operand::Global(counter), Operand::Const(1)); // racy
        f.join(t.into());
        f.ret(None);
        f.finish();
        let program = finish_with_main(pb);
        let init_store = program.functions[1].blocks[0].instrs[0].id;
        let analysis = analyze(&program);
        assert!(!analysis.is_empty());
        for c in &analysis.candidates {
            assert!(
                !c.stmts().contains(&init_store),
                "pre-spawn init store must not be reported: {c:?}"
            );
        }
    }

    #[test]
    fn free_during_use_is_the_top_candidate() {
        // main allocates a cell, publishes it, spawns a worker that locks
        // through it, then frees it while the worker may still be running.
        let mut pb = ProgramBuilder::new("uaf");
        let slot = pb.global("slot", 0);
        let worker = {
            let mut w = pb.function("worker", &["arg"]);
            let m = w.load("m", Operand::Global(slot));
            w.lock(m.into());
            w.unlock(m.into());
            w.ret(None);
            w.finish()
        };
        let mut f = pb.function("main", &[]);
        let m = f.alloc("m", Operand::Const(1));
        f.store(Operand::Global(slot), m.into());
        f.spawn(Some("t"), Callee::Direct(worker), Operand::Const(0));
        f.free(m.into());
        f.ret(None);
        f.finish();
        let program = finish_with_main(pb);
        let analysis = analyze(&program);
        assert!(!analysis.is_empty());
        let top = &analysis.candidates[0];
        assert!(
            matches!(top.origin, MemOrigin::Heap(_)),
            "use-after-free on the heap cell should rank first: {top:?}"
        );
        assert!(top.first.kind == AccessKind::Free || top.second.kind == AccessKind::Free);
    }

    #[test]
    fn sequential_programs_have_no_candidates() {
        let mut pb = ProgramBuilder::new("seq");
        let g = pb.global("g", 0);
        let mut f = pb.function("main", &[]);
        f.store(Operand::Global(g), Operand::Const(1));
        f.load("v", Operand::Global(g));
        f.ret(None);
        f.finish();
        let analysis = analyze(&finish_with_main(pb));
        assert!(analysis.is_empty());
    }

    #[test]
    fn lockset_intersection_basics() {
        let o = MemOrigin::Global(gist_ir::GlobalId(0));
        let a: Lockset = [Loc::at(o, 0), Loc::at(o, 1)].into_iter().collect();
        let b: Lockset = [Loc::at(o, 1)].into_iter().collect();
        assert_eq!(lockset_intersect(&a, &b), b);
        assert_eq!(lockset_intersect(&a, &a), a);
        assert_eq!(lockset_intersect(&b, &a), lockset_intersect(&a, &b));
    }

    #[test]
    fn table_renders_ranked_rows() {
        let program = racy(false, false);
        let analysis = analyze(&program);
        let table = analysis.render_table(&program);
        assert!(table.contains("#1"), "{table}");
        assert!(table.contains("global `counter`"), "{table}");
    }
}
