//! Flow-insensitive, field-sensitive points-to analysis.
//!
//! The race detector needs to know, for every memory access, *which*
//! abstract cells the address operand may denote. MiniC pointers come from
//! three places — globals, `alloc` sites, and `stack_alloc` sites — so an
//! abstract location ([`Loc`]) is an allocation origin ([`MemOrigin`]) plus
//! an optional concrete cell offset (`None` = any offset, the analysis'
//! top). The analysis is a classic Andersen-style inclusion fixpoint:
//!
//! * allocation instructions generate `{(site, offset 0)}`,
//! * `gep` shifts offsets (constant offsets stay precise, variable ones
//!   widen to `None`),
//! * stores write the value's points-to set into the pointed-to cells,
//!   loads read it back, and
//! * calls, spawns, and returns copy sets between argument and parameter
//!   registers interprocedurally, using the TICFG's call-target resolution
//!   (which also resolves indirect calls and thread start routines).
//!
//! It deliberately mirrors what the paper's prototype gets from LLVM's
//! data-structure analysis when resolving `pthread_create` targets: cheap,
//! conservative, and good enough to name the shared cells.

use std::collections::{BTreeMap, BTreeSet};

use gist_ir::icfg::Ticfg;
use gist_ir::{BinKind, FuncId, GlobalId, InstrId, Op, Operand, Program, Terminator, VarId};

/// Where an abstract memory cell was allocated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemOrigin {
    /// A global variable.
    Global(GlobalId),
    /// A heap allocation, named by its `alloc` instruction.
    Heap(InstrId),
    /// A stack allocation, named by its `stack_alloc` instruction.
    Stack(InstrId),
}

impl MemOrigin {
    /// Renders the origin with source names, e.g. `` global `queue` `` or
    /// `heap@pbzip2.c:1060`.
    pub fn display(&self, program: &Program) -> String {
        match self {
            MemOrigin::Global(g) => format!("global `{}`", program.globals[g.index()].name),
            MemOrigin::Heap(site) => format!(
                "heap@{}",
                program
                    .stmt_loc(*site)
                    .map(|l| program.source_map.display(l))
                    .unwrap_or_else(|| site.to_string())
            ),
            MemOrigin::Stack(site) => format!(
                "stack@{}",
                program
                    .stmt_loc(*site)
                    .map(|l| program.source_map.display(l))
                    .unwrap_or_else(|| site.to_string())
            ),
        }
    }
}

/// An abstract memory location: an origin plus an optional cell offset.
/// `offset == None` means "some cell of this origin" (unknown offset).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// The allocation the cell belongs to.
    pub origin: MemOrigin,
    /// The concrete cell index, when statically known.
    pub offset: Option<i64>,
}

impl Loc {
    /// A location at a known offset.
    pub fn at(origin: MemOrigin, offset: i64) -> Self {
        Loc {
            origin,
            offset: Some(offset),
        }
    }

    /// A location at an unknown offset within its origin.
    pub fn anywhere(origin: MemOrigin) -> Self {
        Loc {
            origin,
            offset: None,
        }
    }

    /// True if two locations may denote the same cell: same origin and
    /// equal concrete offsets, or either offset unknown.
    pub fn overlaps(&self, other: &Loc) -> bool {
        self.origin == other.origin
            && match (self.offset, other.offset) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            }
    }
}

/// A set of abstract locations.
pub type LocSet = BTreeSet<Loc>;

/// Offsets beyond this magnitude widen to `None`: a termination guard for
/// offset chains grown through recursive calls.
const OFFSET_LIMIT: i64 = 1 << 16;

/// The result of the points-to fixpoint.
#[derive(Debug, Default)]
pub struct PointsTo {
    /// Register points-to sets, per function.
    vars: BTreeMap<(FuncId, VarId), LocSet>,
    /// Contents of abstract cells (what a load from the cell may yield).
    cells: BTreeMap<Loc, LocSet>,
    /// What each function's `ret <value>` may return.
    rets: BTreeMap<FuncId, LocSet>,
}

impl PointsTo {
    /// Runs the fixpoint over `program` using `ticfg` for call resolution.
    pub fn compute(program: &Program, ticfg: &Ticfg) -> PointsTo {
        let mut pt = PointsTo::default();
        loop {
            let mut changed = false;
            for f in &program.functions {
                for b in &f.blocks {
                    for instr in &b.instrs {
                        changed |= pt.transfer(program, ticfg, f.id, instr.id, &instr.op);
                    }
                    if let Terminator::Ret {
                        value: Some(op), ..
                    } = &b.term
                    {
                        let set = pt.operand_origins(f.id, *op);
                        changed |= union_into(pt.rets.entry(f.id).or_default(), set);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        pt
    }

    /// Applies one instruction's transfer function; returns true if any
    /// set grew.
    fn transfer(
        &mut self,
        program: &Program,
        ticfg: &Ticfg,
        func: FuncId,
        id: InstrId,
        op: &Op,
    ) -> bool {
        match op {
            Op::Alloc { dst, .. } => self.add_var(
                func,
                *dst,
                [Loc::at(MemOrigin::Heap(id), 0)].into_iter().collect(),
            ),
            Op::StackAlloc { dst, .. } => self.add_var(
                func,
                *dst,
                [Loc::at(MemOrigin::Stack(id), 0)].into_iter().collect(),
            ),
            Op::Gep { dst, base, offset } => {
                let base_set = self.operand_origins(func, *base);
                let shifted: LocSet = base_set
                    .into_iter()
                    .map(|loc| match *offset {
                        Operand::Const(c) => shift_loc(loc, c),
                        _ => Loc::anywhere(loc.origin),
                    })
                    .collect();
                self.add_var(func, *dst, shifted)
            }
            Op::Bin { dst, kind, a, b } => {
                // Pointer arithmetic through plain arithmetic. Adding or
                // subtracting a constant is just a `gep` spelled
                // differently, so precise offsets shift instead of
                // widening — otherwise a later constant-offset `gep` on
                // the result would stay widened even though every source
                // is precise. Anything else loses the offsets.
                let delta = |ptr: &Operand, off: &Operand, negate: bool| -> Option<(LocSet, i64)> {
                    if let Operand::Const(c) = *off {
                        let set = self.operand_origins(func, *ptr);
                        if !set.is_empty() {
                            return Some((set, if negate { -c } else { c }));
                        }
                    }
                    None
                };
                let shifted = match kind {
                    BinKind::Add => delta(a, b, false).or_else(|| delta(b, a, false)),
                    // `const - ptr` is not an address; only `ptr - const`
                    // keeps its origin.
                    BinKind::Sub => delta(a, b, true),
                    _ => None,
                };
                let out: LocSet = match shifted {
                    Some((set, d)) => set.into_iter().map(|loc| shift_loc(loc, d)).collect(),
                    None => {
                        let mut widened: LocSet = BTreeSet::new();
                        for operand in [a, b] {
                            for loc in self.operand_origins(func, *operand) {
                                widened.insert(Loc::anywhere(loc.origin));
                            }
                        }
                        widened
                    }
                };
                self.add_var(func, *dst, out)
            }
            Op::Load { dst, addr } => {
                let mut contents: LocSet = BTreeSet::new();
                for loc in self.operand_origins(func, *addr) {
                    contents.extend(self.cell_contents(&loc));
                }
                self.add_var(func, *dst, contents)
            }
            Op::Store { addr, value } => {
                let targets = self.operand_origins(func, *addr);
                let vals = self.operand_origins(func, *value);
                let mut changed = false;
                for loc in targets {
                    changed |= union_into(self.cells.entry(loc).or_default(), vals.clone());
                }
                changed
            }
            Op::Call { dst, args, .. } => {
                let mut changed = false;
                for &target in ticfg.call_targets.get(&id).map_or(&[][..], Vec::as_slice) {
                    let params = program.function(target).params.clone();
                    for (param, arg) in params.iter().zip(args) {
                        let set = self.operand_origins(func, *arg);
                        changed |= self.add_var(target, *param, set);
                    }
                    if let Some(d) = dst {
                        let ret = self.rets.get(&target).cloned().unwrap_or_default();
                        changed |= self.add_var(func, *d, ret);
                    }
                }
                changed
            }
            Op::ThreadCreate { arg, .. } => {
                let mut changed = false;
                for &target in ticfg.call_targets.get(&id).map_or(&[][..], Vec::as_slice) {
                    if let Some(&param) = program.function(target).params.first() {
                        let set = self.operand_origins(func, *arg);
                        changed |= self.add_var(target, param, set);
                    }
                }
                changed
            }
            _ => false,
        }
    }

    fn add_var(&mut self, func: FuncId, var: VarId, set: LocSet) -> bool {
        if set.is_empty() {
            return false;
        }
        union_into(self.vars.entry((func, var)).or_default(), set)
    }

    /// The abstract locations an operand may denote when used as an
    /// address. A global operand evaluates to the global's base address.
    pub fn operand_origins(&self, func: FuncId, op: Operand) -> LocSet {
        match op {
            Operand::Global(g) => [Loc::at(MemOrigin::Global(g), 0)].into_iter().collect(),
            Operand::Var(v) => self.vars.get(&(func, v)).cloned().unwrap_or_default(),
            Operand::Const(_) => BTreeSet::new(),
        }
    }

    /// True if two address operands (in possibly different functions) may
    /// denote the same memory cell: the slicer's alias oracle.
    pub fn may_alias(&self, fa: FuncId, a: Operand, fb: FuncId, b: Operand) -> bool {
        let sa = self.operand_origins(fa, a);
        if sa.is_empty() {
            return false;
        }
        let sb = self.operand_origins(fb, b);
        sa.iter().any(|la| sb.iter().any(|lb| la.overlaps(lb)))
    }

    /// What a load through `loc` may yield: the contents of the matching
    /// concrete cell plus any unknown-offset writes to the same origin (and
    /// everything, when the load offset itself is unknown).
    fn cell_contents(&self, loc: &Loc) -> LocSet {
        self.cells
            .iter()
            .filter(|(cell, _)| cell.overlaps(loc))
            .flat_map(|(_, contents)| contents.iter().copied())
            .collect()
    }
}

/// Shifts a location by a constant cell delta. Widened locations stay
/// widened (an unknown offset plus a constant is still unknown), and
/// offsets past [`OFFSET_LIMIT`] widen so recursive shift chains converge.
fn shift_loc(loc: Loc, delta: i64) -> Loc {
    match loc.offset {
        Some(o) => {
            let n = o.saturating_add(delta);
            if n.abs() > OFFSET_LIMIT {
                Loc::anywhere(loc.origin)
            } else {
                Loc::at(loc.origin, n)
            }
        }
        None => Loc::anywhere(loc.origin),
    }
}

fn union_into(dst: &mut LocSet, src: LocSet) -> bool {
    let before = dst.len();
    dst.extend(src);
    dst.len() != before
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::builder::ProgramBuilder;
    use gist_ir::icfg::Icfg;
    use gist_ir::Callee;

    #[test]
    fn alloc_flows_through_store_load_and_calls() {
        // main: p = alloc 2; store $cell, p; worker(x): q = load $cell.
        let mut pb = ProgramBuilder::new("t");
        let cell = pb.global("cell", 0);
        let worker = {
            let mut w = pb.function("worker", &["x"]);
            w.load("q", Operand::Global(cell));
            w.ret(None);
            w.finish()
        };
        let mut f = pb.function("main", &[]);
        let p = f.alloc("p", Operand::Const(2));
        f.store(Operand::Global(cell), p.into());
        f.call(None, Callee::Direct(worker), &[Operand::Const(0)]);
        f.ret(None);
        f.finish();
        let prog = pb.finish().unwrap();
        let ticfg = Icfg::build_ticfg(&prog);
        let pt = PointsTo::compute(&prog, &ticfg);

        let alloc_id = prog.functions[1].blocks[0].instrs[0].id;
        let q = prog.functions[0]
            .var_names
            .iter()
            .position(|n| n == "q")
            .map(|i| VarId(i as u32))
            .unwrap();
        let q_set = pt.vars.get(&(worker, q)).cloned().unwrap_or_default();
        assert!(
            q_set.contains(&Loc::at(MemOrigin::Heap(alloc_id), 0)),
            "load in worker must see main's allocation, got {q_set:?}"
        );
    }

    #[test]
    fn gep_shifts_constant_offsets_and_widens_variable_ones() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.function("main", &[]);
        let p = f.alloc("p", Operand::Const(4));
        f.gep("q", p.into(), Operand::Const(3));
        let i = f.read_input("i", 0);
        f.gep("r", p.into(), i.into());
        f.ret(None);
        f.finish();
        let prog = pb.finish().unwrap();
        let ticfg = Icfg::build_ticfg(&prog);
        let pt = PointsTo::compute(&prog, &ticfg);
        let main = prog.entry;
        let var = |name: &str| {
            let idx = prog.functions[main.index()]
                .var_names
                .iter()
                .position(|n| n == name)
                .unwrap();
            VarId(idx as u32)
        };
        let alloc_id = prog.functions[main.index()].blocks[0].instrs[0].id;
        let q = pt.vars.get(&(main, var("q"))).unwrap();
        assert!(q.contains(&Loc::at(MemOrigin::Heap(alloc_id), 3)));
        let r = pt.vars.get(&(main, var("r"))).unwrap();
        assert!(r.contains(&Loc::anywhere(MemOrigin::Heap(alloc_id))));
    }

    #[test]
    fn spawn_arg_reaches_routine_param() {
        let mut pb = ProgramBuilder::new("t");
        let routine = {
            let mut w = pb.function("worker", &["arg"]);
            w.load("v", Operand::Var(VarId(0)));
            w.ret(None);
            w.finish()
        };
        let mut f = pb.function("main", &[]);
        let p = f.alloc("p", Operand::Const(1));
        f.spawn(None, Callee::Direct(routine), p.into());
        f.ret(None);
        f.finish();
        let prog = pb.finish().unwrap();
        let ticfg = Icfg::build_ticfg(&prog);
        let pt = PointsTo::compute(&prog, &ticfg);
        let arg_set = pt
            .vars
            .get(&(routine, VarId(0)))
            .cloned()
            .unwrap_or_default();
        assert_eq!(arg_set.len(), 1, "routine param points at the allocation");
        assert!(matches!(
            arg_set.iter().next().unwrap().origin,
            MemOrigin::Heap(_)
        ));
    }

    #[test]
    fn constant_gep_on_arithmetic_derived_pointer_stays_precise() {
        // q = p add 2 is pointer arithmetic with a constant: it used to
        // widen q's offset, and the constant-offset gep on q then stayed
        // widened even though every source was precise. Both must now
        // track exact cells.
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.function("main", &[]);
        let p = f.alloc("p", Operand::Const(8));
        let q = f.add("q", p.into(), Operand::Const(2));
        f.gep("r", q.into(), Operand::Const(1));
        f.sub("s", q.into(), Operand::Const(2));
        f.ret(None);
        f.finish();
        let prog = pb.finish().unwrap();
        let ticfg = Icfg::build_ticfg(&prog);
        let pt = PointsTo::compute(&prog, &ticfg);
        let main = prog.entry;
        let alloc_id = prog.functions[main.index()].blocks[0].instrs[0].id;
        let var = |name: &str| {
            let idx = prog.functions[main.index()]
                .var_names
                .iter()
                .position(|n| n == name)
                .unwrap();
            VarId(idx as u32)
        };
        let h = MemOrigin::Heap(alloc_id);
        assert_eq!(
            pt.vars.get(&(main, var("q"))).unwrap(),
            &[Loc::at(h, 2)].into_iter().collect::<LocSet>(),
            "p add 2 keeps the precise offset"
        );
        assert_eq!(
            pt.vars.get(&(main, var("r"))).unwrap(),
            &[Loc::at(h, 3)].into_iter().collect::<LocSet>(),
            "gep on the arithmetic-derived pointer stays precise"
        );
        assert_eq!(
            pt.vars.get(&(main, var("s"))).unwrap(),
            &[Loc::at(h, 0)].into_iter().collect::<LocSet>(),
            "ptr sub const shifts back"
        );
    }

    #[test]
    fn non_constant_arithmetic_still_widens() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.function("main", &[]);
        let p = f.alloc("p", Operand::Const(4));
        let i = f.read_input("i", 0);
        f.add("q", p.into(), i.into());
        f.sub("t", Operand::Const(9), p.into());
        f.ret(None);
        f.finish();
        let prog = pb.finish().unwrap();
        let ticfg = Icfg::build_ticfg(&prog);
        let pt = PointsTo::compute(&prog, &ticfg);
        let main = prog.entry;
        let var = |name: &str| {
            let idx = prog.functions[main.index()]
                .var_names
                .iter()
                .position(|n| n == name)
                .unwrap();
            VarId(idx as u32)
        };
        for name in ["q", "t"] {
            let set = pt.vars.get(&(main, var(name))).unwrap();
            assert!(
                set.iter().all(|l| l.offset.is_none()),
                "{name} must be widened, got {set:?}"
            );
        }
    }

    #[test]
    fn overlap_respects_offsets() {
        let o = MemOrigin::Global(GlobalId(0));
        assert!(Loc::at(o, 1).overlaps(&Loc::at(o, 1)));
        assert!(!Loc::at(o, 1).overlaps(&Loc::at(o, 2)));
        assert!(Loc::at(o, 1).overlaps(&Loc::anywhere(o)));
        assert!(!Loc::at(o, 1).overlaps(&Loc::at(MemOrigin::Global(GlobalId(1)), 1)));
    }
}
