//! The analyses against every bugbase program: the verifier must accept
//! them all, and for the three bugs whose root cause is a textbook racing
//! pair, the detector must rank that pair first.

use std::collections::BTreeSet;

use gist_analysis::{analyze, verify};
use gist_bugbase::all_bugs;

/// Maps a candidate's statements to `(file, line)` pairs.
fn stmt_lines(bug: &gist_bugbase::BugSpec, stmts: &[gist_ir::InstrId]) -> BTreeSet<(String, u32)> {
    stmts
        .iter()
        .filter_map(|&s| bug.program.stmt_loc(s))
        .filter(|l| !l.is_unknown())
        .map(|l| (bug.program.source_map.file_name(l.file).to_owned(), l.line))
        .collect()
}

#[test]
fn verifier_accepts_every_bugbase_program() {
    for bug in all_bugs() {
        let diags = verify(&bug.program);
        let errors: Vec<_> = diags.iter().filter(|d| d.is_error()).collect();
        assert!(
            errors.is_empty(),
            "{}: verifier rejected a shipping program:\n{}",
            bug.name,
            gist_analysis::render_report(Some(&bug.program), &diags)
        );
    }
}

#[test]
fn race_detector_runs_on_every_bug() {
    for bug in all_bugs() {
        let analysis = analyze(&bug.program);
        // Sequential programs legitimately produce no candidates; the
        // detector must simply not panic and must produce a table.
        let table = analysis.render_table(&bug.program);
        assert!(!table.is_empty(), "{}: empty table", bug.name);
        println!("== {} ==", bug.name);
        print!("{table}");
    }
}

#[test]
fn known_racing_pairs_rank_first() {
    for name in ["pbzip2-1", "apache-21287", "memcached-127"] {
        let bug = gist_bugbase::bug_by_name(name).unwrap();
        let analysis = analyze(&bug.program);
        assert!(!analysis.is_empty(), "{name}: no candidates");
        let top = &analysis.candidates[0];
        let lines = stmt_lines(&bug, &top.stmts());
        let ideal: BTreeSet<(String, u32)> = bug
            .ideal_lines
            .iter()
            .map(|&(f, l)| (f.to_owned(), l))
            .collect();
        let root: BTreeSet<(String, u32)> = bug
            .root_cause_lines
            .iter()
            .map(|&(f, l)| (f.to_owned(), l))
            .collect();
        assert!(
            lines.is_subset(&ideal),
            "{name}: top pair {lines:?} strays outside the ideal sketch {ideal:?}\n{}",
            analysis.render_table(&bug.program)
        );
        assert!(
            lines.intersection(&root).next().is_some(),
            "{name}: top pair {lines:?} misses the root cause {root:?}\n{}",
            analysis.render_table(&bug.program)
        );
    }
}
