//! Wall-clock span timers with RAII guards and hierarchical naming.

use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(not(feature = "metrics-off"))]
use std::cell::RefCell;
#[cfg(not(feature = "metrics-off"))]
use std::time::Instant;

use crate::snapshot::TimerSnapshot;

/// Accumulated wall-clock time for one span path.
///
/// Timers measure real time and are therefore *excluded* from the
/// determinism contract: they appear in [`crate::MetricsSnapshot::to_json`]
/// but never in [`crate::MetricsSnapshot::deterministic_json`].
#[derive(Debug, Default)]
pub struct Timer {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Timer {
    /// Creates an empty timer.
    pub const fn new() -> Self {
        Timer {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one span of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Copies the current contents out.
    pub fn snapshot(&self) -> TimerSnapshot {
        TimerSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }

    #[cfg_attr(feature = "metrics-off", allow(dead_code))]
    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(not(feature = "metrics-off"))]
thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`span`]; records the elapsed time against the
/// span's stack path when dropped.
#[must_use = "a span records its duration when the guard is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(not(feature = "metrics-off"))]
    start: Instant,
    #[cfg(not(feature = "metrics-off"))]
    path: String,
}

/// Opens a span named `name`, nested under any spans already open on this
/// thread.
///
/// The timer key is the `/`-joined stack of open span names, so
/// `span("diagnose")` followed by `span("collect")` records under
/// `"diagnose"` and `"diagnose/collect"`. Guards must be dropped in LIFO
/// order (the natural scoping order) for paths to stay well-formed. Work
/// handed to another thread starts from an empty stack there.
///
/// With `metrics-off` this never reads the clock and records nothing.
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(not(feature = "metrics-off"))]
    {
        let path = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            s.join("/")
        });
        SpanGuard {
            start: Instant::now(),
            path,
        }
    }
    #[cfg(feature = "metrics-off")]
    {
        let _ = name;
        SpanGuard {}
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(not(feature = "metrics-off"))]
        {
            let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            crate::registry::timer_by_path(&self.path).record_ns(ns);
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}
