//! Wall-clock span timers with RAII guards and hierarchical naming.

use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(not(feature = "metrics-off"))]
use std::cell::RefCell;
#[cfg(not(feature = "metrics-off"))]
use std::time::Instant;

use crate::snapshot::TimerSnapshot;

/// Accumulated wall-clock time for one span path.
///
/// Timers measure real time and are therefore *excluded* from the
/// determinism contract: they appear in [`crate::MetricsSnapshot::to_json`]
/// but never in [`crate::MetricsSnapshot::deterministic_json`].
#[derive(Debug, Default)]
pub struct Timer {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Timer {
    /// Creates an empty timer.
    pub const fn new() -> Self {
        Timer {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one span of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Copies the current contents out.
    pub fn snapshot(&self) -> TimerSnapshot {
        TimerSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }

    #[cfg_attr(feature = "metrics-off", allow(dead_code))]
    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(not(feature = "metrics-off"))]
thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`span`]; records the elapsed time against the
/// span's stack path when dropped.
#[must_use = "a span records its duration when the guard is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(not(feature = "metrics-off"))]
    start: Instant,
    #[cfg(not(feature = "metrics-off"))]
    path: String,
}

/// Opens a span named `name`, nested under any spans already open on this
/// thread.
///
/// The timer key is the `/`-joined stack of open span names, so
/// `span("diagnose")` followed by `span("collect")` records under
/// `"diagnose"` and `"diagnose/collect"`. Guards must be dropped in LIFO
/// order (the natural scoping order) for paths to stay well-formed. Work
/// handed to another thread starts from an empty stack there.
///
/// With `metrics-off` this never reads the clock and records nothing.
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(not(feature = "metrics-off"))]
    {
        push_segment(name.to_owned())
    }
    #[cfg(feature = "metrics-off")]
    {
        let _ = name;
        SpanGuard {}
    }
}

#[cfg(not(feature = "metrics-off"))]
fn push_segment(segment: String) -> SpanGuard {
    let path = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(segment);
        s.join("/")
    });
    // Mirror the span into the flight-recorder journal so the Chrome
    // export can show it as a B/E duration pair. Journaled *before* the
    // clock read so the recording cost is outside the measured span.
    crate::journal::record(crate::event::EventKind::SpanBegin { path: path.clone() });
    SpanGuard {
        start: Instant::now(),
        path,
    }
}

/// A cheap, sendable token naming an open span's full path.
///
/// Spans nest per *thread*: work handed to a worker thread starts from an
/// empty span stack there, so its spans would surface at the top level of
/// the timing report even though, logically, they run inside the span that
/// dispatched them. Capture a handle with [`current_span_handle`] on the
/// dispatching thread, send it (it is `Send + Sync`), and open worker
/// spans with [`span_under`] to parent them explicitly.
#[derive(Clone, Debug, Default)]
pub struct SpanHandle {
    #[cfg(not(feature = "metrics-off"))]
    path: String,
}

/// Captures the calling thread's current span path as a [`SpanHandle`].
///
/// With no spans open (or under `metrics-off`) the handle is empty and
/// [`span_under`] degrades to a plain top-level [`span`].
pub fn current_span_handle() -> SpanHandle {
    #[cfg(not(feature = "metrics-off"))]
    {
        SpanHandle {
            path: SPAN_STACK.with(|s| s.borrow().join("/")),
        }
    }
    #[cfg(feature = "metrics-off")]
    {
        SpanHandle {}
    }
}

/// Opens a span named `name` nested under `parent` — a handle captured on
/// the dispatching thread. Further plain [`span`] calls on this thread
/// nest inside it.
///
/// If this thread already has spans open (the dispatch-thread case, where
/// `parent` describes exactly those spans), the parent is redundant and
/// the span nests under the local stack instead — so the same call site
/// produces the same path whether the work ran inline or on a worker.
///
/// With `metrics-off` this never reads the clock and records nothing.
pub fn span_under(parent: &SpanHandle, name: &'static str) -> SpanGuard {
    #[cfg(not(feature = "metrics-off"))]
    {
        let local_open = SPAN_STACK.with(|s| !s.borrow().is_empty());
        if local_open || parent.path.is_empty() {
            push_segment(name.to_owned())
        } else {
            push_segment(format!("{}/{}", parent.path, name))
        }
    }
    #[cfg(feature = "metrics-off")]
    {
        let _ = (parent, name);
        SpanGuard {}
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(not(feature = "metrics-off"))]
        {
            let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            crate::registry::timer_by_path(&self.path).record_ns(ns);
            crate::journal::record(crate::event::EventKind::SpanEnd {
                path: std::mem::take(&mut self.path),
            });
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}
