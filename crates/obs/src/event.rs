//! Structured flight-recorder events.
//!
//! Every decision the diagnosis pipeline makes — a slice computed, a
//! statement promoted into tracking, a watchpoint hit, a sketch step
//! emitted — is recorded as one typed [`EventKind`] wrapped in an
//! [`EventRecord`] carrying a globally monotonic sequence number and the
//! current diagnosis trace id. Records are purely *logical*: no wall-clock
//! field exists, so the drained journal is byte-identical across same-seed
//! runs (the same contract counters obey; see the crate docs).
//!
//! Kind strings follow the metric naming scheme, `<layer>.<noun>`:
//! `trace.start`, `slice.computed`, `ast.promoted`, `run.finish`,
//! `watch.hit`, `pt.decoded`, `sketch.step`, `span.begin`, …

use crate::json::Json;

/// The typed payload of one flight-recorder event.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A diagnosis began; `label` is the sketch title (one trace id per
    /// diagnosis, all events until [`crate::journal::end_trace`] nest
    /// under it).
    TraceStarted {
        /// Human-readable diagnosis label (the sketch title).
        label: String,
    },
    /// The diagnosis finished.
    TraceFinished {
        /// AsT iterations performed.
        iterations: u64,
        /// Failure recurrences consumed.
        recurrences: u64,
    },
    /// The static slice backing the diagnosis was computed.
    SliceComputed {
        /// Slice criterion (the failing statement's `InstrId`).
        criterion: u32,
        /// Slice size in IR statements.
        len: u64,
        /// Whether alias-aware slicing was enabled.
        alias: bool,
    },
    /// An AsT iteration began.
    IterationStarted {
        /// 1-based iteration number.
        iteration: u64,
        /// Current σ (tracked-portion size).
        sigma: u64,
        /// Statements tracked this iteration (σ-portion + seeds +
        /// discoveries).
        tracked: u64,
    },
    /// A statement joined the tracked set beyond the σ-portion.
    StmtPromoted {
        /// The promoted statement.
        iid: u32,
        /// Why: `"race-seed"` (static race detector) or
        /// `"watch-discovery"` (a watchpoint hit revealed it).
        reason: &'static str,
        /// The event seq that justified the promotion (the discovering
        /// `watch.hit`, or the `slice.computed` event for race seeds).
        via: u64,
        /// σ at promotion time (the AsT input of the decision).
        sigma: u64,
    },
    /// A tracked statement was demoted (refinement proved it never
    /// executes in failing runs).
    StmtDemoted {
        /// The demoted statement.
        iid: u32,
        /// Why the statement left tracking.
        reason: &'static str,
        /// σ at demotion time.
        sigma: u64,
    },
    /// A fleet production run was dispatched.
    RunStarted {
        /// Monotonic run id.
        run: u64,
        /// Workload seed.
        seed: u64,
    },
    /// A fleet production run completed.
    RunFinished {
        /// Monotonic run id.
        run: u64,
        /// Whether the run failed.
        failing: bool,
        /// Statements the run retired.
        retired: u64,
        /// Watchpoint hits the run collected.
        hits: u64,
    },
    /// The planner produced an instrumentation patch.
    PatchPlanned {
        /// Tracked statements in the patch.
        tracked: u64,
        /// Watchpoint access sites in this cooperative group.
        watch: u64,
        /// Cooperative watch-group index.
        group: u64,
        /// Serialized patch size in bytes.
        bytes: u64,
    },
    /// A hardware watchpoint was armed.
    WatchArmed {
        /// Watched address.
        addr: u64,
        /// Debug-register slot used.
        slot: u64,
    },
    /// A watchpoint hit was attributed to a run (hit attribution happens
    /// when the tracker packages the run's trace).
    WatchHit {
        /// The accessing statement.
        iid: u32,
        /// Accessed address.
        addr: u64,
        /// Observed value.
        value: i64,
        /// The VM's global access sequence number (total order).
        hit_seq: u64,
        /// The accessing thread.
        hit_tid: u32,
        /// True if the statement was *not* tracked — a discovery that
        /// closes the static alias-analysis gap.
        discovered: bool,
    },
    /// One per-core PT buffer segment was decoded. Identical whether the
    /// decode came from the cross-run cache or a cold decode (the cache is
    /// determinism-invisible).
    PtSegmentDecoded {
        /// Core (trace buffer) id.
        core: u32,
        /// Segment index within the decode (= core index today).
        segment: u64,
        /// Encoded bytes in the segment.
        bytes: u64,
        /// Statements decoded from the segment.
        stmts: u64,
    },
    /// A whole run's PT trace finished decoding.
    TraceDecoded {
        /// Total statements decoded.
        stmts: u64,
        /// Branch outcomes recovered.
        branches: u64,
        /// Total encoded PT bytes.
        bytes: u64,
    },
    /// A failure predictor placed in the per-iteration ranking.
    PredictorRanked {
        /// Predictor category (`order` / `branch` / `value`).
        category: String,
        /// 1-based rank within the iteration.
        rank: u64,
        /// Fβ measure ×1000 (integer so the journal stays exact).
        f_milli: u64,
        /// The predictor's primary statement.
        iid: u32,
    },
    /// A sketch step was emitted, with its provenance chain: the event
    /// seq-nos (hit → decode → promotion → slice criterion) that explain
    /// why the step is in the sketch.
    SketchStepEmitted {
        /// 1-based step number within the sketch.
        step: u64,
        /// The step's statement.
        iid: u32,
        /// Event seq-nos justifying the step, most specific first.
        provenance: Vec<u64>,
    },
    /// A span timer opened (`/`-joined path). Journal counterpart of the
    /// wall-clock span; carries no time — the Chrome export synthesizes
    /// timestamps from seq order.
    SpanBegin {
        /// Full `/`-joined span path.
        path: String,
    },
    /// A span timer closed.
    SpanEnd {
        /// Full `/`-joined span path.
        path: String,
    },
}

impl EventKind {
    /// The stable kind string (`<layer>.<noun>`) used in the journal and
    /// by `gist-trace grep`.
    pub fn kind_str(&self) -> &'static str {
        match self {
            EventKind::TraceStarted { .. } => "trace.start",
            EventKind::TraceFinished { .. } => "trace.finish",
            EventKind::SliceComputed { .. } => "slice.computed",
            EventKind::IterationStarted { .. } => "ast.iteration",
            EventKind::StmtPromoted { .. } => "ast.promoted",
            EventKind::StmtDemoted { .. } => "ast.demoted",
            EventKind::RunStarted { .. } => "run.start",
            EventKind::RunFinished { .. } => "run.finish",
            EventKind::PatchPlanned { .. } => "tracking.plan",
            EventKind::WatchArmed { .. } => "watch.armed",
            EventKind::WatchHit { .. } => "watch.hit",
            EventKind::PtSegmentDecoded { .. } => "pt.segment",
            EventKind::TraceDecoded { .. } => "pt.decoded",
            EventKind::PredictorRanked { .. } => "predictor.ranked",
            EventKind::SketchStepEmitted { .. } => "sketch.step",
            EventKind::SpanBegin { .. } => "span.begin",
            EventKind::SpanEnd { .. } => "span.end",
        }
    }

    /// The payload as a JSON object (member order fixed per kind, so the
    /// rendered journal is byte-stable).
    pub fn data_value(&self) -> Json {
        let u = Json::U64;
        match self {
            EventKind::TraceStarted { label } => {
                Json::Obj(vec![("label".into(), Json::Str(label.clone()))])
            }
            EventKind::TraceFinished {
                iterations,
                recurrences,
            } => Json::Obj(vec![
                ("iterations".into(), u(*iterations)),
                ("recurrences".into(), u(*recurrences)),
            ]),
            EventKind::SliceComputed {
                criterion,
                len,
                alias,
            } => Json::Obj(vec![
                ("criterion".into(), u(u64::from(*criterion))),
                ("len".into(), u(*len)),
                ("alias".into(), Json::Bool(*alias)),
            ]),
            EventKind::IterationStarted {
                iteration,
                sigma,
                tracked,
            } => Json::Obj(vec![
                ("iteration".into(), u(*iteration)),
                ("sigma".into(), u(*sigma)),
                ("tracked".into(), u(*tracked)),
            ]),
            EventKind::StmtPromoted {
                iid,
                reason,
                via,
                sigma,
            } => Json::Obj(vec![
                ("iid".into(), u(u64::from(*iid))),
                ("reason".into(), Json::Str((*reason).to_owned())),
                ("via".into(), u(*via)),
                ("sigma".into(), u(*sigma)),
            ]),
            EventKind::StmtDemoted { iid, reason, sigma } => Json::Obj(vec![
                ("iid".into(), u(u64::from(*iid))),
                ("reason".into(), Json::Str((*reason).to_owned())),
                ("sigma".into(), u(*sigma)),
            ]),
            EventKind::RunStarted { run, seed } => {
                Json::Obj(vec![("run".into(), u(*run)), ("seed".into(), u(*seed))])
            }
            EventKind::RunFinished {
                run,
                failing,
                retired,
                hits,
            } => Json::Obj(vec![
                ("run".into(), u(*run)),
                ("failing".into(), Json::Bool(*failing)),
                ("retired".into(), u(*retired)),
                ("hits".into(), u(*hits)),
            ]),
            EventKind::PatchPlanned {
                tracked,
                watch,
                group,
                bytes,
            } => Json::Obj(vec![
                ("tracked".into(), u(*tracked)),
                ("watch".into(), u(*watch)),
                ("group".into(), u(*group)),
                ("bytes".into(), u(*bytes)),
            ]),
            EventKind::WatchArmed { addr, slot } => {
                Json::Obj(vec![("addr".into(), u(*addr)), ("slot".into(), u(*slot))])
            }
            EventKind::WatchHit {
                iid,
                addr,
                value,
                hit_seq,
                hit_tid,
                discovered,
            } => Json::Obj(vec![
                ("iid".into(), u(u64::from(*iid))),
                ("addr".into(), u(*addr)),
                ("value".into(), Json::I64(*value)),
                ("hit_seq".into(), u(*hit_seq)),
                ("hit_tid".into(), u(u64::from(*hit_tid))),
                ("discovered".into(), Json::Bool(*discovered)),
            ]),
            EventKind::PtSegmentDecoded {
                core,
                segment,
                bytes,
                stmts,
            } => Json::Obj(vec![
                ("core".into(), u(u64::from(*core))),
                ("segment".into(), u(*segment)),
                ("bytes".into(), u(*bytes)),
                ("stmts".into(), u(*stmts)),
            ]),
            EventKind::TraceDecoded {
                stmts,
                branches,
                bytes,
            } => Json::Obj(vec![
                ("stmts".into(), u(*stmts)),
                ("branches".into(), u(*branches)),
                ("bytes".into(), u(*bytes)),
            ]),
            EventKind::PredictorRanked {
                category,
                rank,
                f_milli,
                iid,
            } => Json::Obj(vec![
                ("category".into(), Json::Str(category.clone())),
                ("rank".into(), u(*rank)),
                ("f_milli".into(), u(*f_milli)),
                ("iid".into(), u(u64::from(*iid))),
            ]),
            EventKind::SketchStepEmitted {
                step,
                iid,
                provenance,
            } => Json::Obj(vec![
                ("step".into(), u(*step)),
                ("iid".into(), u(u64::from(*iid))),
                (
                    "provenance".into(),
                    Json::Arr(provenance.iter().map(|&s| u(s)).collect()),
                ),
            ]),
            EventKind::SpanBegin { path } => {
                Json::Obj(vec![("path".into(), Json::Str(path.clone()))])
            }
            EventKind::SpanEnd { path } => {
                Json::Obj(vec![("path".into(), Json::Str(path.clone()))])
            }
        }
    }
}

/// One recorded event: a typed payload plus the journal bookkeeping.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Globally monotonic sequence number (1-based; 0 is the "not
    /// journaled" sentinel returned when recording is off or capped).
    pub seq: u64,
    /// The diagnosis trace id active when the event fired (0 = none).
    pub trace: u64,
    /// Journal-assigned thread index (0 = first recording thread after a
    /// reset; deterministic under sequential execution).
    pub tid: u32,
    /// The typed payload.
    pub kind: EventKind,
}

impl EventRecord {
    /// The record as one JSON journal line value.
    pub fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("seq".into(), Json::U64(self.seq)),
            ("trace".into(), Json::U64(self.trace)),
            ("tid".into(), Json::U64(u64::from(self.tid))),
            ("kind".into(), Json::Str(self.kind.kind_str().to_owned())),
            ("data".into(), self.kind.data_value()),
        ])
    }

    /// The record in the parsed (schema-level) representation.
    pub fn to_event(&self) -> JournalEvent {
        JournalEvent {
            seq: self.seq,
            trace: self.trace,
            tid: self.tid,
            kind: self.kind.kind_str().to_owned(),
            data: self.kind.data_value(),
        }
    }
}

/// The schema-level view of one journal line: what `gist-trace` works
/// with after parsing a JSONL journal (typed in-process records convert
/// via [`EventRecord::to_event`]).
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEvent {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Diagnosis trace id (0 = none).
    pub trace: u64,
    /// Journal-assigned thread index.
    pub tid: u32,
    /// Kind string (`watch.hit`, `sketch.step`, …).
    pub kind: String,
    /// Kind-specific payload object.
    pub data: Json,
}

impl JournalEvent {
    /// Fetches a field from the payload object.
    pub fn field<'a>(&'a self, name: &str) -> Option<&'a Json> {
        match &self.data {
            Json::Obj(members) => members.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Fetches an unsigned integer field from the payload.
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        match self.field(name) {
            Some(Json::U64(n)) => Some(*n),
            Some(Json::I64(n)) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Fetches a string field from the payload.
    pub fn field_str(&self, name: &str) -> Option<&str> {
        match self.field(name) {
            Some(Json::Str(s)) => Some(s),
            _ => None,
        }
    }
}
