//! Monotonic atomic counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// Increments use [`Ordering::Relaxed`]: each addition is atomic and never
/// lost, but no ordering is implied relative to other metrics. Addition is
/// commutative, so totals are independent of thread interleaving — the
/// property the determinism contract relies on. With the `metrics-off`
/// feature the mutating methods compile to empty bodies.
///
/// Recording takes `&'static self` (registry counters are leaked, so every
/// resolved reference qualifies): a thread under [`crate::defer_metrics`]
/// buffers additions locally and applies them at flush, which needs the
/// reference to outlive the buffer.
#[derive(Debug, Default)]
pub struct Counter {
    cell: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero, usable in `static` items.
    pub const fn new() -> Self {
        Counter {
            cell: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&'static self, n: u64) {
        #[cfg(not(feature = "metrics-off"))]
        if !crate::defer::try_defer_add(self, n) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(feature = "metrics-off")]
        let _ = n;
    }

    /// Applies an addition directly to the shared cell, bypassing any
    /// active deferral (the flush path).
    #[cfg_attr(feature = "metrics-off", allow(dead_code))]
    #[inline]
    pub(crate) fn add_now(&self, n: u64) {
        #[cfg(not(feature = "metrics-off"))]
        self.cell.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "metrics-off")]
        let _ = n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    #[cfg_attr(feature = "metrics-off", allow(dead_code))]
    pub(crate) fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}
