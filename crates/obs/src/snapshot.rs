//! Point-in-time metric snapshots with deterministic ordering.

use std::collections::BTreeMap;

use crate::json::Json;

/// Snapshot of one [`crate::Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    /// `(bucket lower bound, samples in bucket)`, ascending, non-empty
    /// buckets only.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Renders as a `{count, sum, max, buckets}` [`Json`] object.
    pub fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::U64(self.count)),
            ("sum".into(), Json::U64(self.sum)),
            ("max".into(), Json::U64(self.max)),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(floor, n)| Json::Arr(vec![Json::U64(floor), Json::U64(n)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Snapshot of one span [`crate::Timer`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimerSnapshot {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall-clock nanoseconds across spans.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

impl TimerSnapshot {
    /// Mean span duration in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64 / 1e6
        }
    }

    fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::U64(self.count)),
            ("total_ms".into(), Json::F64(self.total_ns as f64 / 1e6)),
            ("mean_ms".into(), Json::F64(self.mean_ms())),
            ("max_ms".into(), Json::F64(self.max_ns as f64 / 1e6)),
        ])
    }
}

/// A point-in-time copy of every registered metric, keyed by name in sorted
/// ([`BTreeMap`]) order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values. Deterministic under fixed seeds.
    pub counters: BTreeMap<String, u64>,
    /// Histogram contents. Deterministic under fixed seeds.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span timers keyed by `/`-joined span path. Wall-clock — excluded from
    /// the determinism contract.
    pub timers: BTreeMap<String, TimerSnapshot>,
}

impl MetricsSnapshot {
    /// The deterministic portion (counters and histograms, no timers) as a
    /// [`Json`] value with sorted keys.
    pub fn deterministic_value(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::U64(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_value()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Timers only, as a [`Json`] value with sorted keys.
    pub fn timers_value(&self) -> Json {
        Json::Obj(
            self.timers
                .iter()
                .map(|(k, t)| (k.clone(), t.to_value()))
                .collect(),
        )
    }

    /// Compact JSON for the deterministic portion. Byte-identical across
    /// runs with the same seeds.
    pub fn deterministic_json(&self) -> String {
        self.deterministic_value().render()
    }

    /// Compact JSON for everything, timers included.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("deterministic".into(), self.deterministic_value()),
            ("timers".into(), self.timers_value()),
        ])
        .render()
    }
}
