//! Per-worker deferred metric accumulation.
//!
//! Relaxed atomics are lock-free but not contention-free: a fleet of
//! worker threads bumping the same counter cache lines serializes the hot
//! loop on cache-coherence traffic. A worker that expects to record many
//! metrics installs a thread-local accumulator with [`defer_metrics`];
//! while it is active, [`crate::Counter::add`] and
//! [`crate::Histogram::record`] buffer into plain (non-atomic)
//! thread-local storage instead of touching the shared cells. The buffer
//! drains into the real atomics at [`flush_deferred`] (fleet workers call
//! it at the end of every batch) and when the guard drops.
//!
//! Totals are exact: every deferred add is applied before the guard is
//! released, and addition is commutative, so a quiescent
//! [`crate::snapshot`] sees the same values as undeferred recording —
//! deferral changes *when* the atomics are written, never *what* they
//! accumulate. The determinism contract is unaffected.
//!
//! With `metrics-off` the entire module compiles to no-ops.

#[cfg(not(feature = "metrics-off"))]
use std::cell::RefCell;

#[cfg(not(feature = "metrics-off"))]
use crate::counter::Counter;
#[cfg(not(feature = "metrics-off"))]
use crate::histogram::Histogram;

/// Deferred-sample cap: past this many buffered histogram samples the
/// buffer self-flushes (correctness never depends on batch-end flushes).
#[cfg(not(feature = "metrics-off"))]
const SAMPLE_CAP: usize = 4096;

#[cfg(not(feature = "metrics-off"))]
#[derive(Default)]
struct DeferBuf {
    /// Per-counter accumulated additions; a linear pointer scan — worker
    /// hot paths touch only a handful of distinct counters.
    counters: Vec<(&'static Counter, u64)>,
    /// Raw histogram samples, replayed on flush (buckets and max need the
    /// individual values, not a sum).
    samples: Vec<(&'static Histogram, u64)>,
}

#[cfg(not(feature = "metrics-off"))]
impl DeferBuf {
    fn flush(&mut self) {
        for (c, n) in self.counters.drain(..) {
            c.add_now(n);
        }
        for (h, v) in self.samples.drain(..) {
            h.record_now(v);
        }
    }
}

#[cfg(not(feature = "metrics-off"))]
thread_local! {
    static DEFER: RefCell<Option<DeferBuf>> = const { RefCell::new(None) };
}

/// RAII guard returned by [`defer_metrics`]; flushes and disables deferral
/// on this thread when dropped.
#[must_use = "deferral ends (and flushes) when the guard is dropped"]
#[derive(Debug)]
pub struct DeferGuard {
    /// False when deferral was already active on this thread (the guard is
    /// then inert and the outer guard keeps ownership).
    active: bool,
}

/// Enables deferred metric accumulation on the calling thread until the
/// returned guard drops. Nested calls return an inert guard.
pub fn defer_metrics() -> DeferGuard {
    #[cfg(not(feature = "metrics-off"))]
    {
        DEFER.with(|d| {
            let mut d = d.borrow_mut();
            if d.is_some() {
                DeferGuard { active: false }
            } else {
                *d = Some(DeferBuf::default());
                DeferGuard { active: true }
            }
        })
    }
    #[cfg(feature = "metrics-off")]
    DeferGuard { active: false }
}

/// Drains the calling thread's deferred buffer into the shared atomics.
/// No-op when deferral is inactive. Fleet workers call this at batch end,
/// *before* reporting the batch complete, so arm-boundary counter reads
/// (e.g. `vm.instr_retired` deltas) are exact.
pub fn flush_deferred() {
    #[cfg(not(feature = "metrics-off"))]
    {
        let _ = DEFER.try_with(|d| {
            if let Some(buf) = d.borrow_mut().as_mut() {
                buf.flush();
            }
        });
    }
}

impl Drop for DeferGuard {
    fn drop(&mut self) {
        #[cfg(not(feature = "metrics-off"))]
        if self.active {
            let _ = DEFER.try_with(|d| {
                let mut d = d.borrow_mut();
                if let Some(buf) = d.as_mut() {
                    buf.flush();
                }
                *d = None;
            });
        }
        #[cfg(feature = "metrics-off")]
        let _ = self.active;
    }
}

/// Buffers a counter addition if deferral is active. Returns false when
/// the caller should apply the add directly.
#[cfg(not(feature = "metrics-off"))]
#[inline]
pub(crate) fn try_defer_add(c: &'static Counter, n: u64) -> bool {
    DEFER
        .try_with(|d| {
            let mut d = d.borrow_mut();
            match d.as_mut() {
                Some(buf) => {
                    for (pc, pn) in buf.counters.iter_mut() {
                        if std::ptr::eq(*pc, c) {
                            *pn += n;
                            return true;
                        }
                    }
                    buf.counters.push((c, n));
                    true
                }
                None => false,
            }
        })
        .unwrap_or(false)
}

/// Buffers a histogram sample if deferral is active. Returns false when
/// the caller should record directly.
#[cfg(not(feature = "metrics-off"))]
#[inline]
pub(crate) fn try_defer_sample(h: &'static Histogram, v: u64) -> bool {
    DEFER
        .try_with(|d| {
            let mut d = d.borrow_mut();
            match d.as_mut() {
                Some(buf) => {
                    buf.samples.push((h, v));
                    if buf.samples.len() >= SAMPLE_CAP {
                        buf.flush();
                    }
                    true
                }
                None => false,
            }
        })
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deferred_adds_flush_exactly_once() {
        let c = crate::counter_by_name("obs_test.defer_counter");
        let h = crate::histogram_by_name("obs_test.defer_histogram");
        let before = c.get();
        {
            let _g = defer_metrics();
            c.add(3);
            c.add(4);
            h.record(5);
            if cfg!(not(feature = "metrics-off")) {
                assert_eq!(c.get(), before, "adds deferred, atomics untouched");
            }
            flush_deferred();
            if cfg!(not(feature = "metrics-off")) {
                assert_eq!(c.get(), before + 7, "flush applies the exact total");
            }
            c.add(1);
        }
        if cfg!(not(feature = "metrics-off")) {
            assert_eq!(c.get(), before + 8, "guard drop flushes the remainder");
            assert_eq!(h.snapshot().max, 5);
        }
    }

    #[test]
    fn nested_guard_is_inert() {
        let c = crate::counter_by_name("obs_test.defer_nested");
        let before = c.get();
        let _outer = defer_metrics();
        {
            let _inner = defer_metrics();
            c.add(2);
        }
        // The inner guard must not flush or disable the outer deferral.
        if cfg!(not(feature = "metrics-off")) {
            assert_eq!(c.get(), before, "outer deferral still active");
        }
        drop(_outer);
        if cfg!(not(feature = "metrics-off")) {
            assert_eq!(c.get(), before + 2);
        }
    }
}
