//! Per-call-site cached handles, so hot paths resolve a metric name against
//! the registry exactly once.

use std::sync::OnceLock;

use crate::counter::Counter;
use crate::histogram::Histogram;

/// A lazily resolved handle to a named [`Counter`], usable in `static`
/// items. The registry lookup happens on first [`CounterHandle::get`] and is
/// cached; subsequent calls are a single atomic load.
#[derive(Debug)]
pub struct CounterHandle {
    name: &'static str,
    slot: OnceLock<&'static Counter>,
}

impl CounterHandle {
    /// Creates an unresolved handle.
    pub const fn new(name: &'static str) -> Self {
        CounterHandle {
            name,
            slot: OnceLock::new(),
        }
    }

    /// Resolves (once) and returns the underlying counter.
    #[inline]
    pub fn get(&self) -> &'static Counter {
        self.slot
            .get_or_init(|| crate::registry::counter_by_name(self.name))
    }
}

/// A lazily resolved handle to a named [`Histogram`]; see [`CounterHandle`].
#[derive(Debug)]
pub struct HistogramHandle {
    name: &'static str,
    slot: OnceLock<&'static Histogram>,
}

impl HistogramHandle {
    /// Creates an unresolved handle.
    pub const fn new(name: &'static str) -> Self {
        HistogramHandle {
            name,
            slot: OnceLock::new(),
        }
    }

    /// Resolves (once) and returns the underlying histogram.
    #[inline]
    pub fn get(&self) -> &'static Histogram {
        self.slot
            .get_or_init(|| crate::registry::histogram_by_name(self.name))
    }
}

/// Returns the process-wide [`Counter`] named `$name`, caching the registry
/// lookup in a per-call-site `static`.
///
/// ```
/// gist_obs::counter!("vm.runs").inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: $crate::CounterHandle = $crate::CounterHandle::new($name);
        HANDLE.get()
    }};
}

/// Returns the process-wide [`Histogram`] named `$name`, caching the
/// registry lookup in a per-call-site `static`.
///
/// ```
/// gist_obs::histogram!("tracking.patch_bytes").record(128);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: $crate::HistogramHandle = $crate::HistogramHandle::new($name);
        HANDLE.get()
    }};
}
