//! The flight-recorder journal: lock-free-per-thread buffering of
//! [`EventRecord`]s over a bounded ring of binary frames, drained either
//! wholesale (batch exports) or incrementally through stable cursors
//! (live tailing), with JSONL and Chrome `trace_event` as export formats.
//!
//! # Architecture
//!
//! ```text
//! record()  ──► thread-local Vec (no lock)
//!                  │ every FLUSH_EVERY events / flush_local() / thread exit
//!                  ▼ encode to wire frames (varint, ~10–30 B/event)
//!              bounded global ring of frames (brief mutex push)
//!                  │                          │
//!            drain() / drain_with_stats()   drain_since(cursor)
//!            take-and-clear, seq-sorted     incremental tail, no clear
//! ```
//!
//! The ring is **bounded** ([`DEFAULT_RING_CAPACITY`] frames): when full,
//! the oldest frames are overwritten and counted — a runaway loop costs
//! bounded memory and an explicit `events_overwritten` tally (surfaced by
//! [`drain_with_stats`], the binary journal's meta frame, and the
//! `gist-trace summary` gap warning) instead of either unbounded growth
//! or the old silent `MAX_EVENTS` drop-to-0-sentinel behavior.
//!
//! # Ordering and determinism
//!
//! Sequence numbers come from one process-global relaxed atomic, so the
//! drained journal (sorted by seq) is totally ordered. Records carry *no*
//! wall-clock field: under fixed seeds and sequential execution (fleet
//! batch = 1, the deterministic bench configuration) the journal — binary
//! frames and JSONL export alike — is **byte-identical** across runs.
//! Under parallel execution (batch > 1) events still record safely, but
//! interleaving makes seq assignment racy, which is why the bench drains
//! the journal *before* its throughput section.
//!
//! # Streaming drains
//!
//! [`drain_since`] reads the ring without clearing it and returns a new
//! [`Cursor`]. Cursors index the ring's monotonic *arrival order* (not
//! seq watermarks — cross-thread flushes arrive out of seq order, and a
//! watermark would drop late arrivals), so a consumer polling
//! `drain_since` sees every frame **exactly once**: no duplicates, no
//! drops, except frames overwritten before the consumer reached them,
//! which are counted in [`DrainChunk::overwritten`]. This is what
//! `gist-trace follow` and the journal_stream test tail.
//!
//! # `metrics-off`
//!
//! Every recording entry point compiles to a no-op returning the 0
//! sentinel; the [`crate::event!`] macro takes the payload as a closure,
//! so payload construction itself is compiled away. The pure
//! encode/decode/export functions remain available in both modes.

#[cfg(not(feature = "metrics-off"))]
use std::cell::RefCell;
#[cfg(not(feature = "metrics-off"))]
use std::collections::VecDeque;
#[cfg(not(feature = "metrics-off"))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "metrics-off"))]
use std::sync::{Mutex, OnceLock};

pub use crate::event::{EventKind, EventRecord, JournalEvent};
use crate::json::Json;
pub use crate::wire::JournalStats;

/// Default ring capacity in frames. At typical frame sizes (10–30 bytes)
/// a full ring costs ~20–30 MB; the full-bugbase bench records ~25k
/// events, so overwrite only triggers on runaway loops — which now lose
/// the *oldest* events with accounting instead of silently dropping the
/// newest.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

/// Thread-local buffer length that triggers a flush to the global ring.
#[cfg(not(feature = "metrics-off"))]
const FLUSH_EVERY: usize = 256;

#[cfg(not(feature = "metrics-off"))]
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);
#[cfg(not(feature = "metrics-off"))]
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
#[cfg(not(feature = "metrics-off"))]
static CURRENT_TRACE: AtomicU64 = AtomicU64::new(0);
/// Reset epoch: bumped by [`reset`] so stale thread-local buffers (and
/// their cached thread indices) are discarded lazily, and so cursors from
/// before a reset read as "start over" instead of aliasing new positions.
#[cfg(not(feature = "metrics-off"))]
static GENERATION: AtomicU64 = AtomicU64::new(0);
#[cfg(not(feature = "metrics-off"))]
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
/// Cumulative nanoseconds spent encoding events to wire frames (the
/// journal's per-flush cost); read by [`encode_nanos`] for the bench
/// report's `encode_ms` split.
#[cfg(not(feature = "metrics-off"))]
static ENCODE_NANOS: AtomicU64 = AtomicU64::new(0);

/// Inline capacity of a ring frame. Typical frames run 10–30 bytes
/// (varints), so nearly every frame stores inline and the ring makes no
/// per-event heap allocation; long labels/paths spill to a box.
#[cfg(not(feature = "metrics-off"))]
const FRAME_INLINE: usize = 30;

/// Frame byte storage: inline for the common small frame, boxed beyond
/// [`FRAME_INLINE`].
#[cfg(not(feature = "metrics-off"))]
enum FrameBytes {
    Inline { len: u8, buf: [u8; FRAME_INLINE] },
    Spilled(Box<[u8]>),
}

#[cfg(not(feature = "metrics-off"))]
impl FrameBytes {
    fn copy_from(bytes: &[u8]) -> FrameBytes {
        if bytes.len() <= FRAME_INLINE {
            let mut buf = [0u8; FRAME_INLINE];
            buf[..bytes.len()].copy_from_slice(bytes);
            FrameBytes::Inline {
                len: bytes.len() as u8,
                buf,
            }
        } else {
            FrameBytes::Spilled(bytes.into())
        }
    }

    fn as_slice(&self) -> &[u8] {
        match self {
            FrameBytes::Inline { len, buf } => &buf[..usize::from(*len)],
            FrameBytes::Spilled(b) => b,
        }
    }
}

/// One encoded event held by the ring: the frame bytes plus the seq
/// (kept unencoded for sorting/accounting without a decode).
#[cfg(not(feature = "metrics-off"))]
struct Frame {
    seq: u64,
    bytes: FrameBytes,
}

/// The bounded global ring of encoded frames, in arrival (push) order.
#[cfg(not(feature = "metrics-off"))]
struct Ring {
    frames: VecDeque<Frame>,
    /// Arrival index of `frames[0]`.
    start_pos: u64,
    /// Arrival index the next push will get.
    end_pos: u64,
    /// Frames overwritten this epoch.
    overwritten: u64,
    capacity: usize,
}

#[cfg(not(feature = "metrics-off"))]
impl Ring {
    fn push(&mut self, frame: Frame) {
        if self.frames.len() >= self.capacity.max(1) {
            self.frames.pop_front();
            self.start_pos += 1;
            self.overwritten += 1;
        }
        self.frames.push_back(frame);
        self.end_pos += 1;
    }

    /// The oldest seq still present (0 when empty). An O(n) scan: frames
    /// arrive roughly seq-ordered but cross-thread flushes interleave, so
    /// the front frame is not necessarily the minimum.
    fn oldest_seq(&self) -> u64 {
        self.frames.iter().map(|f| f.seq).min().unwrap_or(0)
    }
}

#[cfg(not(feature = "metrics-off"))]
fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            frames: VecDeque::new(),
            start_pos: 0,
            end_pos: 0,
            overwritten: 0,
            capacity: DEFAULT_RING_CAPACITY,
        })
    })
}

#[cfg(not(feature = "metrics-off"))]
fn lock_ring() -> std::sync::MutexGuard<'static, Ring> {
    ring().lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(not(feature = "metrics-off"))]
struct LocalBuf {
    generation: u64,
    tid: u32,
    events: Vec<EventRecord>,
}

#[cfg(not(feature = "metrics-off"))]
impl LocalBuf {
    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        // Events from a stale epoch must not leak into the new journal.
        if self.generation == GENERATION.load(Ordering::Relaxed) {
            // Encode outside the ring lock: only the pushes serialize.
            // Scratch buffers are reused across the whole flush, so small
            // frames (the overwhelming majority) allocate nothing.
            let t0 = std::time::Instant::now();
            let mut body = Vec::with_capacity(40);
            let mut frame = Vec::with_capacity(48);
            let frames: Vec<Frame> = self
                .events
                .drain(..)
                .map(|e| {
                    frame.clear();
                    crate::wire::encode_event_into(&e, &mut body, &mut frame);
                    Frame {
                        seq: e.seq,
                        bytes: FrameBytes::copy_from(&frame),
                    }
                })
                .collect();
            ENCODE_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let mut ring = lock_ring();
            for f in frames {
                ring.push(f);
            }
        } else {
            self.events.clear();
        }
    }
}

#[cfg(not(feature = "metrics-off"))]
impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(not(feature = "metrics-off"))]
thread_local! {
    static LOCAL: RefCell<LocalBuf> = const {
        RefCell::new(LocalBuf {
            generation: u64::MAX,
            tid: 0,
            events: Vec::new(),
        })
    };
}

/// A stable position in the journal's arrival order, for incremental
/// drains via [`drain_since`]. `Cursor::default()` reads from the
/// beginning. Cursors survive across polls; a [`reset`] invalidates them
/// (the generation mismatch makes the next drain start over).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cursor {
    generation: u64,
    pos: u64,
}

/// One incremental drain result: the newly arrived events (sorted by seq
/// within the chunk), how many frames the consumer *missed* (overwritten
/// before this poll reached them), and the cursor to pass to the next
/// [`drain_since`] call.
#[derive(Clone, Debug, Default)]
pub struct DrainChunk {
    /// Events that arrived since the cursor, sorted by seq.
    pub events: Vec<EventRecord>,
    /// Frames lost between the cursor and the oldest retained frame:
    /// non-zero only when the ring overwrote faster than the consumer
    /// polled (or a full [`drain`] consumed frames out from under it).
    pub overwritten: u64,
    /// Position after this chunk; pass to the next [`drain_since`].
    pub cursor: Cursor,
}

/// Records one event, returning its sequence number (0 = not recorded:
/// `metrics-off` or during thread teardown).
///
/// Prefer the [`crate::event!`] macro, which defers payload construction
/// so `metrics-off` builds compile it away entirely.
pub fn record(kind: EventKind) -> u64 {
    #[cfg(not(feature = "metrics-off"))]
    {
        let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
        let trace = CURRENT_TRACE.load(Ordering::Relaxed);
        LOCAL
            .try_with(|l| {
                let mut l = l.borrow_mut();
                let generation = GENERATION.load(Ordering::Relaxed);
                if l.generation != generation {
                    l.events.clear();
                    l.generation = generation;
                    l.tid = NEXT_TID.fetch_add(1, Ordering::Relaxed) as u32;
                }
                let tid = l.tid;
                l.events.push(EventRecord {
                    seq,
                    trace,
                    tid,
                    kind,
                });
                if l.events.len() >= FLUSH_EVERY {
                    l.flush();
                }
                seq
            })
            .unwrap_or(0)
    }
    #[cfg(feature = "metrics-off")]
    {
        let _ = kind;
        0
    }
}

/// Records the event produced by `f`, returning its sequence number.
/// Under `metrics-off` `f` is never called.
#[inline]
pub fn record_with(f: impl FnOnce() -> EventKind) -> u64 {
    #[cfg(not(feature = "metrics-off"))]
    {
        record(f())
    }
    #[cfg(feature = "metrics-off")]
    {
        let _ = f;
        0
    }
}

/// Starts a diagnosis trace: allocates the next trace id, makes it
/// current (all events until [`end_trace`] carry it — including events
/// from fleet worker threads), and records a `trace.start` event carrying
/// `label`. Returns the trace id (0 under `metrics-off`).
pub fn begin_trace(label: &str) -> u64 {
    #[cfg(not(feature = "metrics-off"))]
    {
        let id = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
        CURRENT_TRACE.store(id, Ordering::Relaxed);
        record(EventKind::TraceStarted {
            label: label.to_owned(),
        });
        id
    }
    #[cfg(feature = "metrics-off")]
    {
        let _ = label;
        0
    }
}

/// Ends the current diagnosis trace: records `trace.finish` and clears
/// the current trace id.
pub fn end_trace(iterations: u64, recurrences: u64) {
    #[cfg(not(feature = "metrics-off"))]
    {
        record(EventKind::TraceFinished {
            iterations,
            recurrences,
        });
        CURRENT_TRACE.store(0, Ordering::Relaxed);
    }
    #[cfg(feature = "metrics-off")]
    {
        let _ = (iterations, recurrences);
    }
}

/// Flushes the calling thread's buffered events into the global ring
/// without draining it. Thread-local buffers otherwise flush every
/// [`FLUSH_EVERY`] events and at thread exit — persistent worker threads
/// call this at batch end, and the core server calls it at each AsT
/// iteration boundary, so streaming consumers ([`drain_since`]) see
/// events at those checkpoints rather than [`FLUSH_EVERY`] granularity.
pub fn flush_local() {
    #[cfg(not(feature = "metrics-off"))]
    {
        let _ = LOCAL.try_with(|l| l.borrow_mut().flush());
    }
}

/// Flushes the calling thread's buffer and takes every buffered event,
/// sorted by sequence number. The journal is empty afterwards (recording
/// continues; seq numbers keep growing until [`reset`]).
pub fn drain() -> Vec<EventRecord> {
    drain_with_stats().0
}

/// [`drain`] plus the epoch's overwrite accounting: how many events the
/// bounded ring discarded, and the oldest seq that survived. The stats
/// feed the binary journal's meta frame (see [`to_binary`]) and the bench
/// report's `journal` section.
pub fn drain_with_stats() -> (Vec<EventRecord>, JournalStats) {
    let (binary, stats) = drain_binary();
    let (events, _) = crate::wire::parse_binary(&binary).expect("ring frames decode");
    (events, stats)
}

/// Takes the whole journal as a complete **binary journal** — header, all
/// frames sorted by seq, trailing meta frame — without decoding anything:
/// the ring already holds wire-encoded frames, so this is a sort plus one
/// concatenation. Byte-identical to `to_binary(&drain(), &stats)` and the
/// cheapest way to persist the journal (what `repro -- bench` writes).
/// The journal is empty afterwards, like [`drain`].
pub fn drain_binary() -> (Vec<u8>, JournalStats) {
    #[cfg(not(feature = "metrics-off"))]
    {
        let _ = LOCAL.try_with(|l| l.borrow_mut().flush());
        let (frames, overwritten) = {
            let mut ring = lock_ring();
            ring.start_pos = ring.end_pos;
            (std::mem::take(&mut ring.frames), ring.overwritten)
        };
        let mut frames: Vec<Frame> = frames.into();
        frames.sort_unstable_by_key(|f| f.seq);
        let stats = JournalStats {
            events_overwritten: overwritten,
            oldest_seq: frames.first().map_or(0, |f| f.seq),
        };
        let total: usize = frames.iter().map(|f| f.bytes.as_slice().len()).sum();
        let mut out = Vec::with_capacity(total + 24);
        out.extend_from_slice(&crate::wire::MAGIC);
        crate::wire::put_varint(crate::wire::VERSION, &mut out);
        for f in &frames {
            out.extend_from_slice(f.bytes.as_slice());
        }
        crate::wire::encode_meta(&stats, &mut out);
        (out, stats)
    }
    #[cfg(feature = "metrics-off")]
    {
        // A valid, empty binary journal (header + meta frame only).
        let stats = JournalStats::default();
        (crate::wire::to_binary(&[], &stats), stats)
    }
}

/// Incremental drain: every frame that arrived since `cursor`, without
/// clearing the ring. See the module docs for the exactly-once guarantee.
/// Flushes the calling thread first, so a single-threaded recorder can
/// tail itself; events from *other* threads appear once those threads
/// flush (fleet batch boundaries, server iteration boundaries, or thread
/// exit).
pub fn drain_since(cursor: Cursor) -> DrainChunk {
    #[cfg(not(feature = "metrics-off"))]
    {
        let _ = LOCAL.try_with(|l| l.borrow_mut().flush());
        let ring = lock_ring();
        let generation = GENERATION.load(Ordering::Relaxed);
        // A cursor from another epoch restarts from the beginning.
        let pos = if cursor.generation == generation {
            cursor.pos.min(ring.end_pos)
        } else {
            0
        };
        let start = pos.max(ring.start_pos);
        let mut events: Vec<EventRecord> = ring
            .frames
            .iter()
            .skip((start - ring.start_pos) as usize)
            .map(|f| crate::wire::decode_event(f.bytes.as_slice()).expect("ring frame decodes"))
            .collect();
        events.sort_by_key(|e| e.seq);
        DrainChunk {
            events,
            overwritten: start - pos,
            cursor: Cursor {
                generation,
                pos: ring.end_pos,
            },
        }
    }
    #[cfg(feature = "metrics-off")]
    {
        let _ = cursor;
        DrainChunk::default()
    }
}

/// Current overwrite accounting without draining: events overwritten this
/// epoch and the oldest seq still held by the ring.
pub fn stats() -> JournalStats {
    #[cfg(not(feature = "metrics-off"))]
    {
        let ring = lock_ring();
        JournalStats {
            events_overwritten: ring.overwritten,
            oldest_seq: ring.oldest_seq(),
        }
    }
    #[cfg(feature = "metrics-off")]
    {
        JournalStats::default()
    }
}

/// Cumulative milliseconds spent encoding events into wire frames this
/// epoch — the journal's amortized recording cost, reported as
/// `encode_ms` in the bench's `timing.journal` section.
pub fn encode_ms() -> f64 {
    #[cfg(not(feature = "metrics-off"))]
    {
        ENCODE_NANOS.load(Ordering::Relaxed) as f64 / 1e6
    }
    #[cfg(feature = "metrics-off")]
    {
        0.0
    }
}

/// Overrides the ring capacity (in frames), trimming immediately if the
/// ring already holds more. The capacity persists across [`reset`] calls;
/// tests that shrink it must restore [`DEFAULT_RING_CAPACITY`].
pub fn set_ring_capacity(capacity: usize) {
    #[cfg(not(feature = "metrics-off"))]
    {
        let mut ring = lock_ring();
        ring.capacity = capacity.max(1);
        while ring.frames.len() > ring.capacity {
            ring.frames.pop_front();
            ring.start_pos += 1;
            ring.overwritten += 1;
        }
    }
    #[cfg(feature = "metrics-off")]
    {
        let _ = capacity;
    }
}

/// Resets the journal: clears the ring and its accounting, restarts seq
/// and trace-id counters at 1, and bumps the epoch so stale thread-local
/// buffers and pre-reset cursors are discarded. Called from
/// [`crate::reset`].
pub fn reset() {
    #[cfg(not(feature = "metrics-off"))]
    {
        GENERATION.fetch_add(1, Ordering::Relaxed);
        NEXT_TID.store(0, Ordering::Relaxed);
        NEXT_SEQ.store(1, Ordering::Relaxed);
        NEXT_TRACE.store(1, Ordering::Relaxed);
        CURRENT_TRACE.store(0, Ordering::Relaxed);
        ENCODE_NANOS.store(0, Ordering::Relaxed);
        {
            let mut ring = lock_ring();
            ring.frames.clear();
            ring.start_pos = 0;
            ring.end_pos = 0;
            ring.overwritten = 0;
        }
        let _ = LOCAL.try_with(|l| l.borrow_mut().events.clear());
    }
}

/// Assembles the canonical binary journal from drained records: wire
/// header, one frame per event (callers pass the seq-sorted [`drain`]
/// output), and a trailing meta frame carrying the overwrite accounting.
/// Deterministic: equal inputs produce byte-identical journals.
pub fn to_binary(events: &[EventRecord], stats: &JournalStats) -> Vec<u8> {
    crate::wire::to_binary(events, stats)
}

/// Parses a binary journal produced by [`to_binary`] back into records
/// plus its meta-frame accounting.
pub fn parse_binary(bytes: &[u8]) -> Result<(Vec<EventRecord>, JournalStats), String> {
    crate::wire::parse_binary(bytes)
}

/// Renders drained records as the deterministic JSONL **export**: one
/// compact JSON object per line, sorted by seq, no wall-clock fields.
/// JSONL is an export format; [`to_binary`] is the canonical journal.
pub fn to_jsonl(events: &[EventRecord]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_value().render());
        out.push('\n');
    }
    out
}

/// Converts drained records to the schema-level representation used by
/// journal consumers ([`chrome_trace`], `gist-trace`).
pub fn to_events(events: &[EventRecord]) -> Vec<JournalEvent> {
    events.iter().map(EventRecord::to_event).collect()
}

/// Parses a JSONL journal back into events. Lines that are not objects
/// with the journal schema are rejected with a line-numbered error.
pub fn parse_jsonl(text: &str) -> Result<Vec<JournalEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let get = |name: &str| match &v {
            Json::Obj(members) => members
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone()),
            _ => None,
        };
        let num = |name: &str| match get(name) {
            Some(Json::U64(n)) => Ok(n),
            _ => Err(format!("line {}: missing numeric `{name}`", i + 1)),
        };
        let kind = match get("kind") {
            Some(Json::Str(s)) => s,
            _ => return Err(format!("line {}: missing `kind`", i + 1)),
        };
        events.push(JournalEvent {
            seq: num("seq")?,
            trace: num("trace")?,
            tid: num("tid")? as u32,
            kind,
            data: get("data").unwrap_or(Json::Null),
        });
    }
    Ok(events)
}

/// Builds a Chrome `trace_event` export (the `chrome://tracing` /
/// Perfetto JSON format) from journal events.
///
/// `span.begin` / `span.end` become `B` / `E` duration events; everything
/// else becomes a thread-scoped instant (`i`) event carrying its payload
/// as `args`. The journal has no wall-clock, so timestamps are synthesized
/// from sequence numbers (1 seq = 1 µs): relative ordering and nesting are
/// faithful, durations are logical.
///
/// The export is well-formed for *any* input — including unbalanced
/// spans (a guard still open at drain time, or an `E` whose `B` predates
/// a reset): an `E` without a matching open `B` on its thread is dropped,
/// an `E` that closes an outer span first closes the inner ones, and
/// spans still open at the end are closed with synthetic `E` events.
pub fn chrome_trace(events: &[JournalEvent]) -> Json {
    let mut out: Vec<Json> = Vec::new();
    // Per-tid stack of open span names.
    let mut open: std::collections::BTreeMap<u32, Vec<String>> = std::collections::BTreeMap::new();
    let mut max_ts = 0u64;
    let base = |e: &JournalEvent, ph: &str, name: &str, ts: u64| -> Vec<(String, Json)> {
        vec![
            ("name".into(), Json::Str(name.to_owned())),
            ("ph".into(), Json::Str(ph.to_owned())),
            ("ts".into(), Json::U64(ts)),
            ("pid".into(), Json::U64(1)),
            ("tid".into(), Json::U64(u64::from(e.tid))),
        ]
    };
    for e in events {
        max_ts = max_ts.max(e.seq);
        match e.kind.as_str() {
            "span.begin" => {
                let path = e.field_str("path").unwrap_or("span").to_owned();
                out.push(Json::Obj(base(e, "B", &path, e.seq)));
                open.entry(e.tid).or_default().push(path);
            }
            "span.end" => {
                let path = e.field_str("path").unwrap_or("span");
                let stack = open.entry(e.tid).or_default();
                let Some(pos) = stack.iter().rposition(|p| p == path) else {
                    continue; // no matching B on this thread: drop
                };
                // Close inner spans first so B/E stay properly nested.
                while stack.len() > pos {
                    let inner = stack.pop().expect("stack non-empty");
                    out.push(Json::Obj(base(e, "E", &inner, e.seq)));
                }
            }
            _ => {
                let mut members = base(e, "i", &e.kind, e.seq);
                members.push(("s".into(), Json::Str("t".into())));
                members.push(("args".into(), e.data.clone()));
                out.push(Json::Obj(members));
            }
        }
    }
    // Close spans still open at drain time, innermost first.
    for (tid, stack) in &mut open {
        while let Some(inner) = stack.pop() {
            max_ts += 1;
            out.push(Json::Obj(vec![
                ("name".into(), Json::Str(inner)),
                ("ph".into(), Json::Str("E".into())),
                ("ts".into(), Json::U64(max_ts)),
                ("pid".into(), Json::U64(1)),
                ("tid".into(), Json::U64(u64::from(*tid))),
            ]));
        }
    }
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(out)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
    ])
}

/// Records the flight-recorder event built by the given [`EventKind`]
/// constructor expression, returning its journal sequence number (0 when
/// not recorded).
///
/// The payload is passed as a closure to [`journal::record_with`], so a
/// `gist-obs` built with `metrics-off` compiles both the recording *and*
/// the payload construction away (instrumented crates forward their own
/// `metrics-off` feature to `gist-obs/metrics-off`).
///
/// ```
/// let seq = gist_obs::event!(RunStarted { run: 1, seed: 42 });
/// # let _ = seq;
/// ```
///
/// [`journal::record_with`]: crate::journal::record_with
#[macro_export]
macro_rules! event {
    ($($kind:tt)+) => {
        $crate::journal::record_with(|| $crate::journal::EventKind::$($kind)+)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the journal is process-global; these tests run in one binary
    // alongside the metric tests, so they only assert properties robust
    // to interleaving (or run single-threaded logic on owned data).
    // Ring-capacity and cursor exactly-once behavior live in the
    // single-test integration binary tests/journal_stream.rs.

    #[test]
    fn record_and_drain_round_trip() {
        let seq = record(EventKind::RunStarted { run: 7, seed: 9 });
        if cfg!(feature = "metrics-off") {
            assert_eq!(seq, 0);
            assert!(drain().is_empty());
            return;
        }
        assert!(seq > 0);
        let events = drain();
        let mine: Vec<_> = events.iter().filter(|e| e.seq == seq).collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(
            mine[0].kind,
            EventKind::RunStarted { run: 7, seed: 9 },
            "payload survives buffering and the frame encode/decode"
        );
        // Drained output is sorted by seq.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn drain_since_does_not_duplicate_own_events() {
        if cfg!(feature = "metrics-off") {
            let chunk = drain_since(Cursor::default());
            assert!(chunk.events.is_empty());
            return;
        }
        let seq = record(EventKind::WatchArmed {
            addr: 0x10,
            slot: 1,
        });
        // A sibling test's full drain() can steal the event between our
        // flush and read, so presence in the first chunk is not asserted;
        // exactly-once (no re-delivery) always is.
        let chunk = drain_since(Cursor::default());
        let next = drain_since(chunk.cursor);
        assert!(
            next.events.iter().all(|e| e.seq != seq),
            "cursor re-delivered an event"
        );
    }

    #[test]
    fn binary_round_trips_and_is_compact() {
        let records = vec![
            EventRecord {
                seq: 1,
                trace: 1,
                tid: 0,
                kind: EventKind::TraceStarted {
                    label: "Failure Sketch for t \"quoted\"".into(),
                },
            },
            EventRecord {
                seq: 2,
                trace: 1,
                tid: 0,
                kind: EventKind::WatchHit {
                    iid: 5,
                    addr: 0x1000,
                    value: -3,
                    hit_seq: 44,
                    hit_tid: 1,
                    discovered: true,
                },
            },
        ];
        let stats = JournalStats {
            events_overwritten: 7,
            oldest_seq: 1,
        };
        let bin = to_binary(&records, &stats);
        let (decoded, got) = parse_binary(&bin).expect("parses");
        assert_eq!(decoded, records);
        assert_eq!(got, stats);
        assert!(
            bin.len() * 2 < to_jsonl(&records).len(),
            "binary should be far smaller than the JSONL export"
        );
    }

    #[test]
    fn jsonl_round_trips_through_parse() {
        let records = vec![
            EventRecord {
                seq: 1,
                trace: 1,
                tid: 0,
                kind: EventKind::TraceStarted {
                    label: "Failure Sketch for t \"quoted\"".into(),
                },
            },
            EventRecord {
                seq: 2,
                trace: 1,
                tid: 0,
                kind: EventKind::WatchHit {
                    iid: 5,
                    addr: 0x1000,
                    value: -3,
                    hit_seq: 44,
                    hit_tid: 1,
                    discovered: true,
                },
            },
        ];
        let jsonl = to_jsonl(&records);
        let parsed = parse_jsonl(&jsonl).expect("parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].kind, "trace.start");
        assert_eq!(
            parsed[0].field_str("label"),
            Some("Failure Sketch for t \"quoted\"")
        );
        assert_eq!(parsed[1].field_u64("hit_seq"), Some(44));
        assert_eq!(parsed[1].field("value"), Some(&Json::I64(-3)));
        assert_eq!(parsed, to_events(&records));
    }

    #[test]
    fn chrome_trace_balances_unmatched_spans() {
        let ev = |seq, tid, kind: &str, path: &str| JournalEvent {
            seq,
            trace: 0,
            tid,
            kind: kind.into(),
            data: Json::Obj(vec![("path".into(), Json::Str(path.into()))]),
        };
        // tid 0: orphan end, then an open begin never closed;
        // tid 1: end closes the outer span while inner is open.
        let events = vec![
            ev(1, 0, "span.end", "orphan"),
            ev(2, 0, "span.begin", "open"),
            ev(3, 1, "span.begin", "outer"),
            ev(4, 1, "span.begin", "outer/inner"),
            ev(5, 1, "span.end", "outer"),
        ];
        let chrome = chrome_trace(&events);
        let Json::Obj(members) = &chrome else {
            panic!("chrome export is an object")
        };
        let Json::Arr(items) = &members[0].1 else {
            panic!("traceEvents is an array")
        };
        // Per-tid stack discipline over the output.
        let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
        for item in items {
            let Json::Obj(f) = item else { panic!() };
            let get = |n: &str| f.iter().find(|(k, _)| k == n).map(|(_, v)| v.clone());
            let Some(Json::Str(ph)) = get("ph") else {
                panic!()
            };
            let Some(Json::Str(name)) = get("name") else {
                panic!()
            };
            let Some(Json::U64(tid)) = get("tid") else {
                panic!()
            };
            match ph.as_str() {
                "B" => stacks.entry(tid).or_default().push(name),
                "E" => assert_eq!(
                    stacks.entry(tid).or_default().pop().as_deref(),
                    Some(name.as_str()),
                    "E must close the innermost open B"
                ),
                _ => {}
            }
        }
        for (tid, stack) in stacks {
            assert!(stack.is_empty(), "tid {tid} left spans open: {stack:?}");
        }
    }

    #[test]
    fn event_macro_returns_seq() {
        let seq = crate::event!(PatchPlanned {
            tracked: 4,
            watch: 2,
            group: 0,
            bytes: 64,
        });
        if cfg!(feature = "metrics-off") {
            assert_eq!(seq, 0);
        } else {
            assert!(seq > 0);
        }
        let _ = drain();
    }
}
