//! The flight-recorder journal: lock-free-per-thread buffering of
//! [`EventRecord`]s, drained into a deterministic JSONL journal and a
//! Chrome `trace_event` export.
//!
//! # Ordering and determinism
//!
//! Sequence numbers come from one process-global relaxed atomic, so the
//! drained journal (sorted by seq) is totally ordered. Records carry *no*
//! wall-clock field: under fixed seeds and sequential execution (fleet
//! batch = 1, the deterministic bench configuration) the journal is
//! **byte-identical** across runs. Under parallel execution (batch > 1)
//! events still record safely — per-thread buffers flush into a global
//! sink under a mutex — but interleaving makes seq assignment racy, which
//! is why the bench drains the journal *before* its throughput section.
//!
//! # Buffering
//!
//! [`record`] pushes into a thread-local `Vec` (no lock, no allocation
//! beyond amortized growth) and flushes to the global sink every
//! [`FLUSH_EVERY`] events and at thread exit. [`drain`] flushes the
//! calling thread, takes the sink, and sorts by seq; worker threads joined
//! before the drain (the fleet uses scoped threads) have already flushed
//! via their thread-local destructor.
//!
//! # `metrics-off`
//!
//! Every entry point compiles to a no-op returning the 0 sentinel; the
//! [`crate::event!`] macro takes the payload as a closure, so payload
//! construction itself is compiled away.

#[cfg(not(feature = "metrics-off"))]
use std::cell::RefCell;
#[cfg(not(feature = "metrics-off"))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "metrics-off"))]
use std::sync::{Mutex, OnceLock};

pub use crate::event::{EventKind, EventRecord, JournalEvent};
use crate::json::Json;

/// Hard cap on journal size per reset epoch: a runaway loop stops
/// journaling (events past the cap return the 0 sentinel and bump the
/// `journal.events_dropped` counter) instead of exhausting memory.
pub const MAX_EVENTS: u64 = 1_000_000;

/// Thread-local buffer length that triggers a flush to the global sink.
#[cfg(not(feature = "metrics-off"))]
const FLUSH_EVERY: usize = 256;

#[cfg(not(feature = "metrics-off"))]
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);
#[cfg(not(feature = "metrics-off"))]
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
#[cfg(not(feature = "metrics-off"))]
static CURRENT_TRACE: AtomicU64 = AtomicU64::new(0);
/// Reset epoch: bumped by [`reset`] so stale thread-local buffers (and
/// their cached thread indices) are discarded lazily.
#[cfg(not(feature = "metrics-off"))]
static GENERATION: AtomicU64 = AtomicU64::new(0);
#[cfg(not(feature = "metrics-off"))]
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

#[cfg(not(feature = "metrics-off"))]
fn sink() -> &'static Mutex<Vec<EventRecord>> {
    static SINK: OnceLock<Mutex<Vec<EventRecord>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

#[cfg(not(feature = "metrics-off"))]
struct LocalBuf {
    generation: u64,
    tid: u32,
    events: Vec<EventRecord>,
}

#[cfg(not(feature = "metrics-off"))]
impl LocalBuf {
    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        // Events from a stale epoch must not leak into the new journal.
        if self.generation == GENERATION.load(Ordering::Relaxed) {
            let mut sink = sink().lock().unwrap_or_else(|e| e.into_inner());
            sink.append(&mut self.events);
        } else {
            self.events.clear();
        }
    }
}

#[cfg(not(feature = "metrics-off"))]
impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(not(feature = "metrics-off"))]
thread_local! {
    static LOCAL: RefCell<LocalBuf> = const {
        RefCell::new(LocalBuf {
            generation: u64::MAX,
            tid: 0,
            events: Vec::new(),
        })
    };
}

/// Records one event, returning its sequence number (0 = not recorded:
/// `metrics-off`, past [`MAX_EVENTS`], or during thread teardown).
///
/// Prefer the [`crate::event!`] macro, which defers payload construction
/// so `metrics-off` builds compile it away entirely.
pub fn record(kind: EventKind) -> u64 {
    #[cfg(not(feature = "metrics-off"))]
    {
        let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
        if seq > MAX_EVENTS {
            crate::counter!("journal.events_dropped").inc();
            return 0;
        }
        let trace = CURRENT_TRACE.load(Ordering::Relaxed);
        LOCAL
            .try_with(|l| {
                let mut l = l.borrow_mut();
                let generation = GENERATION.load(Ordering::Relaxed);
                if l.generation != generation {
                    l.events.clear();
                    l.generation = generation;
                    l.tid = NEXT_TID.fetch_add(1, Ordering::Relaxed) as u32;
                }
                let tid = l.tid;
                l.events.push(EventRecord {
                    seq,
                    trace,
                    tid,
                    kind,
                });
                if l.events.len() >= FLUSH_EVERY {
                    l.flush();
                }
                seq
            })
            .unwrap_or(0)
    }
    #[cfg(feature = "metrics-off")]
    {
        let _ = kind;
        0
    }
}

/// Records the event produced by `f`, returning its sequence number.
/// Under `metrics-off` `f` is never called.
#[inline]
pub fn record_with(f: impl FnOnce() -> EventKind) -> u64 {
    #[cfg(not(feature = "metrics-off"))]
    {
        record(f())
    }
    #[cfg(feature = "metrics-off")]
    {
        let _ = f;
        0
    }
}

/// Starts a diagnosis trace: allocates the next trace id, makes it
/// current (all events until [`end_trace`] carry it — including events
/// from fleet worker threads), and records a `trace.start` event carrying
/// `label`. Returns the trace id (0 under `metrics-off`).
pub fn begin_trace(label: &str) -> u64 {
    #[cfg(not(feature = "metrics-off"))]
    {
        let id = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
        CURRENT_TRACE.store(id, Ordering::Relaxed);
        record(EventKind::TraceStarted {
            label: label.to_owned(),
        });
        id
    }
    #[cfg(feature = "metrics-off")]
    {
        let _ = label;
        0
    }
}

/// Ends the current diagnosis trace: records `trace.finish` and clears
/// the current trace id.
pub fn end_trace(iterations: u64, recurrences: u64) {
    #[cfg(not(feature = "metrics-off"))]
    {
        record(EventKind::TraceFinished {
            iterations,
            recurrences,
        });
        CURRENT_TRACE.store(0, Ordering::Relaxed);
    }
    #[cfg(feature = "metrics-off")]
    {
        let _ = (iterations, recurrences);
    }
}

/// Flushes the calling thread's buffered events into the global sink
/// without draining it. Thread-local buffers otherwise flush every
/// [`FLUSH_EVERY`] events and at thread exit — persistent worker threads
/// (which outlive many batches) call this at batch end so a subsequent
/// [`drain`] from the dispatching thread sees their events.
pub fn flush_local() {
    #[cfg(not(feature = "metrics-off"))]
    {
        let _ = LOCAL.try_with(|l| l.borrow_mut().flush());
    }
}

/// Flushes the calling thread's buffer and takes every buffered event,
/// sorted by sequence number. The journal is empty afterwards (recording
/// continues; seq numbers keep growing until [`reset`]).
pub fn drain() -> Vec<EventRecord> {
    #[cfg(not(feature = "metrics-off"))]
    {
        let _ = LOCAL.try_with(|l| l.borrow_mut().flush());
        let mut events = std::mem::take(&mut *sink().lock().unwrap_or_else(|e| e.into_inner()));
        events.sort_by_key(|e| e.seq);
        events
    }
    #[cfg(feature = "metrics-off")]
    {
        Vec::new()
    }
}

/// Resets the journal: clears all buffers, restarts seq and trace-id
/// counters at 1, and bumps the epoch so stale thread-local buffers are
/// discarded. Called from [`crate::reset`].
pub fn reset() {
    #[cfg(not(feature = "metrics-off"))]
    {
        GENERATION.fetch_add(1, Ordering::Relaxed);
        NEXT_TID.store(0, Ordering::Relaxed);
        NEXT_SEQ.store(1, Ordering::Relaxed);
        NEXT_TRACE.store(1, Ordering::Relaxed);
        CURRENT_TRACE.store(0, Ordering::Relaxed);
        sink().lock().unwrap_or_else(|e| e.into_inner()).clear();
        let _ = LOCAL.try_with(|l| l.borrow_mut().events.clear());
    }
}

/// Renders drained records as the deterministic JSONL journal: one
/// compact JSON object per line, sorted by seq, no wall-clock fields.
pub fn to_jsonl(events: &[EventRecord]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_value().render());
        out.push('\n');
    }
    out
}

/// Converts drained records to the schema-level representation used by
/// journal consumers ([`chrome_trace`], `gist-trace`).
pub fn to_events(events: &[EventRecord]) -> Vec<JournalEvent> {
    events.iter().map(EventRecord::to_event).collect()
}

/// Parses a JSONL journal back into events. Lines that are not objects
/// with the journal schema are rejected with a line-numbered error.
pub fn parse_jsonl(text: &str) -> Result<Vec<JournalEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let get = |name: &str| match &v {
            Json::Obj(members) => members
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone()),
            _ => None,
        };
        let num = |name: &str| match get(name) {
            Some(Json::U64(n)) => Ok(n),
            _ => Err(format!("line {}: missing numeric `{name}`", i + 1)),
        };
        let kind = match get("kind") {
            Some(Json::Str(s)) => s,
            _ => return Err(format!("line {}: missing `kind`", i + 1)),
        };
        events.push(JournalEvent {
            seq: num("seq")?,
            trace: num("trace")?,
            tid: num("tid")? as u32,
            kind,
            data: get("data").unwrap_or(Json::Null),
        });
    }
    Ok(events)
}

/// Builds a Chrome `trace_event` export (the `chrome://tracing` /
/// Perfetto JSON format) from journal events.
///
/// `span.begin` / `span.end` become `B` / `E` duration events; everything
/// else becomes a thread-scoped instant (`i`) event carrying its payload
/// as `args`. The journal has no wall-clock, so timestamps are synthesized
/// from sequence numbers (1 seq = 1 µs): relative ordering and nesting are
/// faithful, durations are logical.
///
/// The export is well-formed for *any* input — including unbalanced
/// spans (a guard still open at drain time, or an `E` whose `B` predates
/// a reset): an `E` without a matching open `B` on its thread is dropped,
/// an `E` that closes an outer span first closes the inner ones, and
/// spans still open at the end are closed with synthetic `E` events.
pub fn chrome_trace(events: &[JournalEvent]) -> Json {
    let mut out: Vec<Json> = Vec::new();
    // Per-tid stack of open span names.
    let mut open: std::collections::BTreeMap<u32, Vec<String>> = std::collections::BTreeMap::new();
    let mut max_ts = 0u64;
    let base = |e: &JournalEvent, ph: &str, name: &str, ts: u64| -> Vec<(String, Json)> {
        vec![
            ("name".into(), Json::Str(name.to_owned())),
            ("ph".into(), Json::Str(ph.to_owned())),
            ("ts".into(), Json::U64(ts)),
            ("pid".into(), Json::U64(1)),
            ("tid".into(), Json::U64(u64::from(e.tid))),
        ]
    };
    for e in events {
        max_ts = max_ts.max(e.seq);
        match e.kind.as_str() {
            "span.begin" => {
                let path = e.field_str("path").unwrap_or("span").to_owned();
                out.push(Json::Obj(base(e, "B", &path, e.seq)));
                open.entry(e.tid).or_default().push(path);
            }
            "span.end" => {
                let path = e.field_str("path").unwrap_or("span");
                let stack = open.entry(e.tid).or_default();
                let Some(pos) = stack.iter().rposition(|p| p == path) else {
                    continue; // no matching B on this thread: drop
                };
                // Close inner spans first so B/E stay properly nested.
                while stack.len() > pos {
                    let inner = stack.pop().expect("stack non-empty");
                    out.push(Json::Obj(base(e, "E", &inner, e.seq)));
                }
            }
            _ => {
                let mut members = base(e, "i", &e.kind, e.seq);
                members.push(("s".into(), Json::Str("t".into())));
                members.push(("args".into(), e.data.clone()));
                out.push(Json::Obj(members));
            }
        }
    }
    // Close spans still open at drain time, innermost first.
    for (tid, stack) in &mut open {
        while let Some(inner) = stack.pop() {
            max_ts += 1;
            out.push(Json::Obj(vec![
                ("name".into(), Json::Str(inner)),
                ("ph".into(), Json::Str("E".into())),
                ("ts".into(), Json::U64(max_ts)),
                ("pid".into(), Json::U64(1)),
                ("tid".into(), Json::U64(u64::from(*tid))),
            ]));
        }
    }
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(out)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
    ])
}

/// Records the flight-recorder event built by the given [`EventKind`]
/// constructor expression, returning its journal sequence number (0 when
/// not recorded).
///
/// The payload is passed as a closure to [`journal::record_with`], so a
/// `gist-obs` built with `metrics-off` compiles both the recording *and*
/// the payload construction away (instrumented crates forward their own
/// `metrics-off` feature to `gist-obs/metrics-off`).
///
/// ```
/// let seq = gist_obs::event!(RunStarted { run: 1, seed: 42 });
/// # let _ = seq;
/// ```
///
/// [`journal::record_with`]: crate::journal::record_with
#[macro_export]
macro_rules! event {
    ($($kind:tt)+) => {
        $crate::journal::record_with(|| $crate::journal::EventKind::$($kind)+)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the journal is process-global; these tests run in one binary
    // alongside the metric tests, so they only assert properties robust
    // to interleaving (or run single-threaded logic on owned data).

    #[test]
    fn record_and_drain_round_trip() {
        let seq = record(EventKind::RunStarted { run: 7, seed: 9 });
        if cfg!(feature = "metrics-off") {
            assert_eq!(seq, 0);
            assert!(drain().is_empty());
            return;
        }
        assert!(seq > 0);
        let events = drain();
        let mine: Vec<_> = events.iter().filter(|e| e.seq == seq).collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(
            mine[0].kind,
            EventKind::RunStarted { run: 7, seed: 9 },
            "payload survives buffering"
        );
        // Drained output is sorted by seq.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn jsonl_round_trips_through_parse() {
        let records = vec![
            EventRecord {
                seq: 1,
                trace: 1,
                tid: 0,
                kind: EventKind::TraceStarted {
                    label: "Failure Sketch for t \"quoted\"".into(),
                },
            },
            EventRecord {
                seq: 2,
                trace: 1,
                tid: 0,
                kind: EventKind::WatchHit {
                    iid: 5,
                    addr: 0x1000,
                    value: -3,
                    hit_seq: 44,
                    hit_tid: 1,
                    discovered: true,
                },
            },
        ];
        let jsonl = to_jsonl(&records);
        let parsed = parse_jsonl(&jsonl).expect("parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].kind, "trace.start");
        assert_eq!(
            parsed[0].field_str("label"),
            Some("Failure Sketch for t \"quoted\"")
        );
        assert_eq!(parsed[1].field_u64("hit_seq"), Some(44));
        assert_eq!(parsed[1].field("value"), Some(&Json::I64(-3)));
        assert_eq!(parsed, to_events(&records));
    }

    #[test]
    fn chrome_trace_balances_unmatched_spans() {
        let ev = |seq, tid, kind: &str, path: &str| JournalEvent {
            seq,
            trace: 0,
            tid,
            kind: kind.into(),
            data: Json::Obj(vec![("path".into(), Json::Str(path.into()))]),
        };
        // tid 0: orphan end, then an open begin never closed;
        // tid 1: end closes the outer span while inner is open.
        let events = vec![
            ev(1, 0, "span.end", "orphan"),
            ev(2, 0, "span.begin", "open"),
            ev(3, 1, "span.begin", "outer"),
            ev(4, 1, "span.begin", "outer/inner"),
            ev(5, 1, "span.end", "outer"),
        ];
        let chrome = chrome_trace(&events);
        let Json::Obj(members) = &chrome else {
            panic!("chrome export is an object")
        };
        let Json::Arr(items) = &members[0].1 else {
            panic!("traceEvents is an array")
        };
        // Per-tid stack discipline over the output.
        let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
        for item in items {
            let Json::Obj(f) = item else { panic!() };
            let get = |n: &str| f.iter().find(|(k, _)| k == n).map(|(_, v)| v.clone());
            let Some(Json::Str(ph)) = get("ph") else {
                panic!()
            };
            let Some(Json::Str(name)) = get("name") else {
                panic!()
            };
            let Some(Json::U64(tid)) = get("tid") else {
                panic!()
            };
            match ph.as_str() {
                "B" => stacks.entry(tid).or_default().push(name),
                "E" => assert_eq!(
                    stacks.entry(tid).or_default().pop().as_deref(),
                    Some(name.as_str()),
                    "E must close the innermost open B"
                ),
                _ => {}
            }
        }
        for (tid, stack) in stacks {
            assert!(stack.is_empty(), "tid {tid} left spans open: {stack:?}");
        }
    }

    #[test]
    fn event_macro_returns_seq() {
        let seq = crate::event!(PatchPlanned {
            tracked: 4,
            watch: 2,
            group: 0,
            bytes: 64,
        });
        if cfg!(feature = "metrics-off") {
            assert_eq!(seq, 0);
        } else {
            assert!(seq > 0);
        }
        let _ = drain();
    }
}
