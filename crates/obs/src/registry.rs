//! The process-global metric registry.
//!
//! Metric storage is allocated once per name and leaked ([`Box::leak`]), so
//! resolved `&'static` references stay valid forever and the hot path never
//! takes a lock — only first-time resolution does. [`crate::reset`] zeroes
//! values but keeps registrations.

#[cfg(not(feature = "metrics-off"))]
use std::collections::BTreeMap;
#[cfg(not(feature = "metrics-off"))]
use std::sync::{Mutex, OnceLock};

use crate::counter::Counter;
use crate::histogram::Histogram;
use crate::snapshot::MetricsSnapshot;
#[cfg(not(feature = "metrics-off"))]
use crate::timer::Timer;

#[cfg(not(feature = "metrics-off"))]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    timers: Mutex<BTreeMap<String, &'static Timer>>,
}

#[cfg(not(feature = "metrics-off"))]
fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        timers: Mutex::new(BTreeMap::new()),
    })
}

/// Returns the process-wide counter named `name`, registering it on first
/// use. Prefer the [`crate::counter!`] macro on hot paths — it caches the
/// lookup per call site.
pub fn counter_by_name(name: &'static str) -> &'static Counter {
    #[cfg(not(feature = "metrics-off"))]
    {
        let mut map = registry().counters.lock().unwrap();
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Counter::new())))
    }
    #[cfg(feature = "metrics-off")]
    {
        let _ = name;
        static DUMMY: Counter = Counter::new();
        &DUMMY
    }
}

/// Returns the process-wide histogram named `name`, registering it on first
/// use. Prefer the [`crate::histogram!`] macro on hot paths.
pub fn histogram_by_name(name: &'static str) -> &'static Histogram {
    #[cfg(not(feature = "metrics-off"))]
    {
        let mut map = registry().histograms.lock().unwrap();
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
    }
    #[cfg(feature = "metrics-off")]
    {
        let _ = name;
        static DUMMY: Histogram = Histogram::new();
        &DUMMY
    }
}

/// Returns the timer for a `/`-joined span path (dynamic key: paths are
/// built from the per-thread span stack).
#[cfg(not(feature = "metrics-off"))]
pub(crate) fn timer_by_path(path: &str) -> &'static Timer {
    let mut map = registry().timers.lock().unwrap();
    if let Some(t) = map.get(path) {
        return t;
    }
    let t: &'static Timer = Box::leak(Box::new(Timer::new()));
    map.insert(path.to_owned(), t);
    t
}

pub(crate) fn snapshot_all() -> MetricsSnapshot {
    #[cfg(not(feature = "metrics-off"))]
    {
        let reg = registry();
        let mut snap = MetricsSnapshot::default();
        for (name, c) in reg.counters.lock().unwrap().iter() {
            snap.counters.insert((*name).to_owned(), c.get());
        }
        for (name, h) in reg.histograms.lock().unwrap().iter() {
            snap.histograms.insert((*name).to_owned(), h.snapshot());
        }
        for (path, t) in reg.timers.lock().unwrap().iter() {
            snap.timers.insert(path.clone(), t.snapshot());
        }
        snap
    }
    #[cfg(feature = "metrics-off")]
    MetricsSnapshot::default()
}

pub(crate) fn reset_all() {
    #[cfg(not(feature = "metrics-off"))]
    {
        let reg = registry();
        for c in reg.counters.lock().unwrap().values() {
            c.reset();
        }
        for h in reg.histograms.lock().unwrap().values() {
            h.reset();
        }
        for t in reg.timers.lock().unwrap().values() {
            t.reset();
        }
    }
}
