//! A minimal JSON value and encoder.
//!
//! The build environment has no registry access, so the repo policy is
//! hand-rolled encoding everywhere (see `gist-tracking`'s patch wire
//! format). Output is fully determined by the value: object members render
//! in the order supplied, integers render exactly, and floats render with a
//! fixed three decimal places — which is what makes snapshot JSON
//! byte-comparable.

/// A JSON value.
///
/// Builders in this crate iterate `BTreeMap`s when constructing objects, so
/// member order — and therefore the rendered bytes — is sorted and
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// An unsigned integer, rendered exactly.
    U64(u64),
    /// A signed integer, rendered exactly. Used where payloads carry
    /// program values (`gist_ir::Value = i64`), e.g. watchpoint hits.
    I64(i64),
    /// A float, rendered with three decimal places (`1.500`). Non-finite
    /// values render as `null`.
    F64(f64),
    /// A string, escaped on render.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members render in the order given.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders human-readable JSON with two-space indentation. Equally
    /// deterministic — just easier to diff.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses a JSON document (the inverse of [`Json::render`]).
    ///
    /// A recursive-descent parser sized for journal lines and Chrome trace
    /// exports: full value grammar, string escapes including `\uXXXX`,
    /// trailing content rejected. Numbers parse to the narrowest variant —
    /// unsigned integer → [`Json::U64`], negative integer → [`Json::I64`],
    /// anything with a fraction or exponent → [`Json::F64`] — which matches
    /// how this crate's encoders pick variants, so `parse(render(v))`
    /// round-trips values those encoders produce.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Journal encoders only emit \u for control
                            // characters; surrogates render as U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is &str, so
                    // slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        out.push_str(&format!("{x:.3}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn parse_round_trips_rendered_values() {
        let v = Json::Obj(vec![
            ("s".into(), Json::Str("a\"b\\c\nd\u{1}é".into())),
            ("n".into(), Json::U64(u64::MAX)),
            ("i".into(), Json::I64(-42)),
            ("b".into(), Json::Bool(true)),
            ("arr".into(), Json::Arr(vec![Json::Null, Json::U64(0)])),
            ("o".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&v.render()), Ok(v.clone()));
        assert_eq!(Json::parse(&v.pretty()), Ok(v));
    }

    #[test]
    fn parse_picks_narrowest_number_variant() {
        assert_eq!(Json::parse("7"), Ok(Json::U64(7)));
        assert_eq!(Json::parse("-7"), Ok(Json::I64(-7)));
        assert_eq!(Json::parse("1.500"), Ok(Json::F64(1.5)));
        assert_eq!(Json::parse("-2.5e1"), Ok(Json::F64(-25.0)));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
