//! A minimal JSON value and encoder.
//!
//! The build environment has no registry access, so the repo policy is
//! hand-rolled encoding everywhere (see `gist-tracking`'s patch wire
//! format). Output is fully determined by the value: object members render
//! in the order supplied, integers render exactly, and floats render with a
//! fixed three decimal places — which is what makes snapshot JSON
//! byte-comparable.

/// A JSON value.
///
/// Builders in this crate iterate `BTreeMap`s when constructing objects, so
/// member order — and therefore the rendered bytes — is sorted and
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// An unsigned integer, rendered exactly.
    U64(u64),
    /// A float, rendered with three decimal places (`1.500`). Non-finite
    /// values render as `null`.
    F64(f64),
    /// A string, escaped on render.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members render in the order given.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders human-readable JSON with two-space indentation. Equally
    /// deterministic — just easier to diff.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        out.push_str(&format!("{x:.3}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
