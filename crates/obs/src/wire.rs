//! The flight-recorder binary wire format.
//!
//! The journal's hot path stores *encoded frames*, not JSON: one compact,
//! schema-versioned binary frame per [`EventRecord`], varint-packed so a
//! typical event costs 10–30 bytes instead of ~110 bytes of JSONL. JSONL
//! is an **export format only** (see [`crate::journal::to_jsonl`]); the
//! binary journal is the canonical on-disk and in-ring representation.
//!
//! # File layout
//!
//! ```text
//! magic   "GSTJ"            4 bytes
//! version varint            currently 1
//! frame*                    event frames, sorted by seq at export time
//! meta                      one accounting frame (tag 255), appended last
//! ```
//!
//! # Frame layout
//!
//! Every frame — event or meta — is length-prefixed and self-contained:
//!
//! ```text
//! body_len varint           bytes in the body that follows
//! seq      varint           0 for the meta frame
//! trace    varint
//! tid      varint
//! tag      1 byte           EventKind discriminant (0–16) or 255 = meta
//! fields…                   tag-specific, in declaration order
//! ```
//!
//! Field encodings: `u64` → LEB128 varint; `i64` → zigzag varint; `bool` →
//! one byte (0/1); `str` → varint length + UTF-8 bytes; `Vec<u64>` →
//! varint count + varints. The meta frame body is `events_overwritten,
//! oldest_seq` (both varint) and records the ring's overwrite accounting
//! at drain time.
//!
//! # Versioning rules
//!
//! * The version varint bumps only on *incompatible* layout changes;
//!   readers reject versions newer than [`VERSION`].
//! * New event kinds append new tags. Readers **skip frames with unknown
//!   tags** (the length prefix makes every frame skippable), so old
//!   readers tolerate journals from newer writers of the same version.
//! * Encoding is canonical (minimal-length varints, fields in declaration
//!   order), so equal event sequences produce byte-identical journals —
//!   the same-seed determinism contract extends to the binary format.

use crate::event::{EventKind, EventRecord};

/// File magic: the first four bytes of every binary journal.
pub const MAGIC: [u8; 4] = *b"GSTJ";

/// Current wire-format version.
pub const VERSION: u64 = 1;

/// Frame tag reserved for the journal-accounting meta frame.
pub const META_TAG: u8 = 255;

/// Journal-level overwrite accounting, carried by the meta frame and
/// surfaced by [`crate::journal::drain_with_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Events overwritten (lost to the bounded ring) this epoch. Non-zero
    /// means the journal has a gap at its oldest end.
    pub events_overwritten: u64,
    /// The oldest sequence number still present (0 when the journal is
    /// empty). `oldest_seq > 1` together with `events_overwritten > 0`
    /// locates the gap.
    pub oldest_seq: u64,
}

/// Appends a LEB128 varint.
pub fn put_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v != 0 {
            out.push(byte | 0x80);
        } else {
            out.push(byte);
            break;
        }
    }
}

/// Reads a LEB128 varint at `*pos`, advancing it. `None` when the buffer
/// ends mid-varint (the streaming decoder's "wait for more bytes" case);
/// an error when the encoding overflows 64 bits.
fn get_varint(buf: &[u8], pos: &mut usize) -> Result<Option<u64>, String> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Ok(None);
        };
        *pos += 1;
        if shift == 63 && byte > 0x01 {
            return Err(format!("varint overflows u64 at byte {}", *pos - 1));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(Some(v));
        }
        shift += 7;
        if shift > 63 {
            return Err(format!("varint longer than 10 bytes at byte {}", *pos));
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_str(s: &str, out: &mut Vec<u8>) {
    put_varint(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

/// The wire tag of an event kind (its declaration-order discriminant).
pub fn kind_tag(kind: &EventKind) -> u8 {
    match kind {
        EventKind::TraceStarted { .. } => 0,
        EventKind::TraceFinished { .. } => 1,
        EventKind::SliceComputed { .. } => 2,
        EventKind::IterationStarted { .. } => 3,
        EventKind::StmtPromoted { .. } => 4,
        EventKind::StmtDemoted { .. } => 5,
        EventKind::RunStarted { .. } => 6,
        EventKind::RunFinished { .. } => 7,
        EventKind::PatchPlanned { .. } => 8,
        EventKind::WatchArmed { .. } => 9,
        EventKind::WatchHit { .. } => 10,
        EventKind::PtSegmentDecoded { .. } => 11,
        EventKind::TraceDecoded { .. } => 12,
        EventKind::PredictorRanked { .. } => 13,
        EventKind::SketchStepEmitted { .. } => 14,
        EventKind::SpanBegin { .. } => 15,
        EventKind::SpanEnd { .. } => 16,
    }
}

fn encode_kind(kind: &EventKind, out: &mut Vec<u8>) {
    out.push(kind_tag(kind));
    match kind {
        EventKind::TraceStarted { label } => put_str(label, out),
        EventKind::TraceFinished {
            iterations,
            recurrences,
        } => {
            put_varint(*iterations, out);
            put_varint(*recurrences, out);
        }
        EventKind::SliceComputed {
            criterion,
            len,
            alias,
        } => {
            put_varint(u64::from(*criterion), out);
            put_varint(*len, out);
            out.push(u8::from(*alias));
        }
        EventKind::IterationStarted {
            iteration,
            sigma,
            tracked,
        } => {
            put_varint(*iteration, out);
            put_varint(*sigma, out);
            put_varint(*tracked, out);
        }
        EventKind::StmtPromoted {
            iid,
            reason,
            via,
            sigma,
        } => {
            put_varint(u64::from(*iid), out);
            put_str(reason, out);
            put_varint(*via, out);
            put_varint(*sigma, out);
        }
        EventKind::StmtDemoted { iid, reason, sigma } => {
            put_varint(u64::from(*iid), out);
            put_str(reason, out);
            put_varint(*sigma, out);
        }
        EventKind::RunStarted { run, seed } => {
            put_varint(*run, out);
            put_varint(*seed, out);
        }
        EventKind::RunFinished {
            run,
            failing,
            retired,
            hits,
        } => {
            put_varint(*run, out);
            out.push(u8::from(*failing));
            put_varint(*retired, out);
            put_varint(*hits, out);
        }
        EventKind::PatchPlanned {
            tracked,
            watch,
            group,
            bytes,
        } => {
            put_varint(*tracked, out);
            put_varint(*watch, out);
            put_varint(*group, out);
            put_varint(*bytes, out);
        }
        EventKind::WatchArmed { addr, slot } => {
            put_varint(*addr, out);
            put_varint(*slot, out);
        }
        EventKind::WatchHit {
            iid,
            addr,
            value,
            hit_seq,
            hit_tid,
            discovered,
        } => {
            put_varint(u64::from(*iid), out);
            put_varint(*addr, out);
            put_varint(zigzag(*value), out);
            put_varint(*hit_seq, out);
            put_varint(u64::from(*hit_tid), out);
            out.push(u8::from(*discovered));
        }
        EventKind::PtSegmentDecoded {
            core,
            segment,
            bytes,
            stmts,
        } => {
            put_varint(u64::from(*core), out);
            put_varint(*segment, out);
            put_varint(*bytes, out);
            put_varint(*stmts, out);
        }
        EventKind::TraceDecoded {
            stmts,
            branches,
            bytes,
        } => {
            put_varint(*stmts, out);
            put_varint(*branches, out);
            put_varint(*bytes, out);
        }
        EventKind::PredictorRanked {
            category,
            rank,
            f_milli,
            iid,
        } => {
            put_str(category, out);
            put_varint(*rank, out);
            put_varint(*f_milli, out);
            put_varint(u64::from(*iid), out);
        }
        EventKind::SketchStepEmitted {
            step,
            iid,
            provenance,
        } => {
            put_varint(*step, out);
            put_varint(u64::from(*iid), out);
            put_varint(provenance.len() as u64, out);
            for &p in provenance {
                put_varint(p, out);
            }
        }
        EventKind::SpanBegin { path } => put_str(path, out),
        EventKind::SpanEnd { path } => put_str(path, out),
    }
}

/// A cursor over one complete frame body, erroring (rather than waiting)
/// on truncation: the length prefix guaranteed the body is complete.
struct Body<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Body<'_> {
    fn u64(&mut self) -> Result<u64, String> {
        get_varint(self.buf, &mut self.pos)?.ok_or_else(|| "frame body truncated".to_owned())
    }

    fn u32(&mut self) -> Result<u32, String> {
        u32::try_from(self.u64()?).map_err(|_| "u32 field out of range".to_owned())
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(unzigzag(self.u64()?))
    }

    fn boolean(&mut self) -> Result<bool, String> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| "frame body truncated".to_owned())?;
        self.pos += 1;
        match b {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("bad bool byte {other}")),
        }
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u64()? as usize;
        let bytes = self
            .buf
            .get(self.pos..self.pos + len)
            .ok_or_else(|| "string field truncated".to_owned())?;
        self.pos += len;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string field is not UTF-8".to_owned())
    }
}

/// Statically-known promotion/demotion reasons: decoding re-interns onto
/// these so round-tripped records compare equal to the originals. Reasons
/// outside the table (possible only for journals from other writers) leak
/// one allocation each, which is acceptable for an offline decoder.
const KNOWN_REASONS: [&str; 3] = ["race-seed", "watch-discovery", "never-executed"];

fn intern_reason(s: String) -> &'static str {
    for known in KNOWN_REASONS {
        if known == s {
            return known;
        }
    }
    Box::leak(s.into_boxed_str())
}

fn decode_kind(tag: u8, b: &mut Body) -> Result<EventKind, String> {
    Ok(match tag {
        0 => EventKind::TraceStarted { label: b.str()? },
        1 => EventKind::TraceFinished {
            iterations: b.u64()?,
            recurrences: b.u64()?,
        },
        2 => EventKind::SliceComputed {
            criterion: b.u32()?,
            len: b.u64()?,
            alias: b.boolean()?,
        },
        3 => EventKind::IterationStarted {
            iteration: b.u64()?,
            sigma: b.u64()?,
            tracked: b.u64()?,
        },
        4 => EventKind::StmtPromoted {
            iid: b.u32()?,
            reason: intern_reason(b.str()?),
            via: b.u64()?,
            sigma: b.u64()?,
        },
        5 => EventKind::StmtDemoted {
            iid: b.u32()?,
            reason: intern_reason(b.str()?),
            sigma: b.u64()?,
        },
        6 => EventKind::RunStarted {
            run: b.u64()?,
            seed: b.u64()?,
        },
        7 => EventKind::RunFinished {
            run: b.u64()?,
            failing: b.boolean()?,
            retired: b.u64()?,
            hits: b.u64()?,
        },
        8 => EventKind::PatchPlanned {
            tracked: b.u64()?,
            watch: b.u64()?,
            group: b.u64()?,
            bytes: b.u64()?,
        },
        9 => EventKind::WatchArmed {
            addr: b.u64()?,
            slot: b.u64()?,
        },
        10 => EventKind::WatchHit {
            iid: b.u32()?,
            addr: b.u64()?,
            value: b.i64()?,
            hit_seq: b.u64()?,
            hit_tid: b.u32()?,
            discovered: b.boolean()?,
        },
        11 => EventKind::PtSegmentDecoded {
            core: b.u32()?,
            segment: b.u64()?,
            bytes: b.u64()?,
            stmts: b.u64()?,
        },
        12 => EventKind::TraceDecoded {
            stmts: b.u64()?,
            branches: b.u64()?,
            bytes: b.u64()?,
        },
        13 => EventKind::PredictorRanked {
            category: b.str()?,
            rank: b.u64()?,
            f_milli: b.u64()?,
            iid: b.u32()?,
        },
        14 => {
            let step = b.u64()?;
            let iid = b.u32()?;
            let n = b.u64()? as usize;
            let mut provenance = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                provenance.push(b.u64()?);
            }
            EventKind::SketchStepEmitted {
                step,
                iid,
                provenance,
            }
        }
        15 => EventKind::SpanBegin { path: b.str()? },
        16 => EventKind::SpanEnd { path: b.str()? },
        other => return Err(format!("unknown event tag {other}")),
    })
}

/// Encodes one record as a complete length-prefixed frame.
pub fn encode_event(rec: &EventRecord, out: &mut Vec<u8>) {
    let mut body = Vec::with_capacity(24);
    encode_event_into(rec, &mut body, out);
}

/// [`encode_event`] with a caller-provided body scratch buffer, so hot
/// flush loops encode thousands of events without per-event allocation.
pub(crate) fn encode_event_into(rec: &EventRecord, body: &mut Vec<u8>, out: &mut Vec<u8>) {
    body.clear();
    put_varint(rec.seq, body);
    put_varint(rec.trace, body);
    put_varint(u64::from(rec.tid), body);
    encode_kind(&rec.kind, body);
    put_varint(body.len() as u64, out);
    out.extend_from_slice(body);
}

pub(crate) fn encode_meta(stats: &JournalStats, out: &mut Vec<u8>) {
    let mut body = Vec::with_capacity(8);
    put_varint(0, &mut body); // seq
    put_varint(0, &mut body); // trace
    put_varint(0, &mut body); // tid
    body.push(META_TAG);
    put_varint(stats.events_overwritten, &mut body);
    put_varint(stats.oldest_seq, &mut body);
    put_varint(body.len() as u64, out);
    out.extend_from_slice(&body);
}

/// Decodes exactly one complete frame (as produced by [`encode_event`]).
/// Used by the ring, whose frames are complete by construction.
pub fn decode_event(frame: &[u8]) -> Result<EventRecord, String> {
    let mut pos = 0usize;
    let mut dec = StreamDecoder::past_header();
    match dec.next_frame(frame, &mut pos)? {
        Some(Decoded::Event(rec)) => Ok(rec),
        Some(_) => Err("expected an event frame".to_owned()),
        None => Err("incomplete frame".to_owned()),
    }
}

/// Assembles a complete binary journal: header, the given records as
/// frames (in the order given — callers pass seq-sorted slices), and the
/// trailing meta frame.
pub fn to_binary(events: &[EventRecord], stats: &JournalStats) -> Vec<u8> {
    // Typical frames run 10–30 bytes; 24 is a close fit that avoids
    // re-allocation churn without overshooting.
    let mut out = Vec::with_capacity(8 + events.len() * 24);
    out.extend_from_slice(&MAGIC);
    put_varint(VERSION, &mut out);
    for e in events {
        encode_event(e, &mut out);
    }
    encode_meta(stats, &mut out);
    out
}

/// Whether `bytes` start with the binary-journal magic.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// One decoded frame.
enum Decoded {
    Event(EventRecord),
    /// A meta frame; its accounting lands in [`StreamDecoder::stats`].
    Meta,
    /// A frame with an unknown tag, skipped per the versioning rules.
    Unknown,
}

/// Incremental frame decoder: feed it a growing buffer (a file being
/// appended to) and it consumes only *complete* frames, leaving `pos` at
/// the first incomplete one. This is what `gist-trace follow` uses to
/// tail a live binary journal.
pub struct StreamDecoder {
    header_seen: bool,
    /// Accounting from the latest meta frame seen.
    pub stats: JournalStats,
}

impl Default for StreamDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamDecoder {
    /// A decoder expecting the file header first.
    pub fn new() -> Self {
        StreamDecoder {
            header_seen: false,
            stats: JournalStats::default(),
        }
    }

    /// A decoder for headerless frame sequences (single-frame decode).
    fn past_header() -> Self {
        StreamDecoder {
            header_seen: true,
            stats: JournalStats::default(),
        }
    }

    /// Consumes the header if not yet seen. `Ok(false)` = need more bytes.
    fn consume_header(&mut self, buf: &[u8], pos: &mut usize) -> Result<bool, String> {
        if self.header_seen {
            return Ok(true);
        }
        if buf.len() < *pos + MAGIC.len() {
            return Ok(false);
        }
        if buf[*pos..*pos + MAGIC.len()] != MAGIC {
            return Err("not a binary journal (bad magic)".to_owned());
        }
        let mut p = *pos + MAGIC.len();
        let Some(version) = get_varint(buf, &mut p)? else {
            return Ok(false);
        };
        if version > VERSION {
            return Err(format!(
                "journal version {version} is newer than supported {VERSION}"
            ));
        }
        *pos = p;
        self.header_seen = true;
        Ok(true)
    }

    /// Decodes the next complete frame at `*pos`. `Ok(None)` = the buffer
    /// ends mid-frame; `*pos` is left unchanged so the caller can retry
    /// with more bytes.
    fn next_frame(&mut self, buf: &[u8], pos: &mut usize) -> Result<Option<Decoded>, String> {
        let mut p = *pos;
        let Some(len) = get_varint(buf, &mut p)? else {
            return Ok(None);
        };
        let len = len as usize;
        let Some(body) = buf.get(p..p + len) else {
            return Ok(None);
        };
        let mut b = Body { buf: body, pos: 0 };
        let seq = b.u64()?;
        let trace = b.u64()?;
        let tid = u32::try_from(b.u64()?).map_err(|_| "tid out of range".to_owned())?;
        let tag = *b
            .buf
            .get(b.pos)
            .ok_or_else(|| "frame body truncated".to_owned())?;
        b.pos += 1;
        *pos = p + len;
        if tag == META_TAG {
            let stats = JournalStats {
                events_overwritten: b.u64()?,
                oldest_seq: b.u64()?,
            };
            self.stats = stats;
            return Ok(Some(Decoded::Meta));
        }
        match decode_kind(tag, &mut b) {
            Ok(kind) => Ok(Some(Decoded::Event(EventRecord {
                seq,
                trace,
                tid,
                kind,
            }))),
            // Unknown tag: skip the frame (forward compatibility).
            Err(e) if e.starts_with("unknown event tag") => Ok(Some(Decoded::Unknown)),
            Err(e) => Err(e),
        }
    }

    /// Decodes every complete frame from `*pos` onward, advancing `*pos`
    /// past them. Returns the decoded events (meta/unknown frames update
    /// [`StreamDecoder::stats`] / are skipped).
    pub fn feed(&mut self, buf: &[u8], pos: &mut usize) -> Result<Vec<EventRecord>, String> {
        let mut events = Vec::new();
        if !self.consume_header(buf, pos)? {
            return Ok(events);
        }
        while let Some(frame) = self.next_frame(buf, pos)? {
            if let Decoded::Event(rec) = frame {
                events.push(rec);
            }
        }
        Ok(events)
    }
}

/// Parses a complete binary journal into records plus the accounting from
/// its meta frame. Frames with unknown tags are skipped (see the module
/// docs' versioning rules); a journal that ends mid-frame is rejected.
pub fn parse_binary(bytes: &[u8]) -> Result<(Vec<EventRecord>, JournalStats), String> {
    let mut dec = StreamDecoder::new();
    let mut pos = 0usize;
    let events = dec.feed(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(format!(
            "journal truncated: {} trailing bytes form no complete frame",
            bytes.len() - pos
        ));
    }
    Ok((events, dec.stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Ok(Some(v)));
            assert_eq!(pos, buf.len());
        }
        // Truncated varint: wait, don't error.
        let mut buf = Vec::new();
        put_varint(u64::MAX, &mut buf);
        buf.pop();
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), Ok(None));
        // Overflowing 10-byte varint: error.
        let bad = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut pos = 0;
        assert!(get_varint(&bad, &mut pos).is_err());
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn event_frames_round_trip() {
        let records = [
            EventRecord {
                seq: u64::MAX,
                trace: 7,
                tid: 3,
                kind: EventKind::TraceStarted {
                    label: "Failure Sketch \"quoted\" ünïcode".into(),
                },
            },
            EventRecord {
                seq: 1,
                trace: 0,
                tid: 0,
                kind: EventKind::WatchHit {
                    iid: 30,
                    addr: 0x40_0000,
                    value: i64::MIN,
                    hit_seq: 12345,
                    hit_tid: 2,
                    discovered: true,
                },
            },
            EventRecord {
                seq: 2,
                trace: 1,
                tid: 0,
                kind: EventKind::SketchStepEmitted {
                    step: 9,
                    iid: 4,
                    provenance: vec![],
                },
            },
            EventRecord {
                seq: 3,
                trace: 1,
                tid: 0,
                kind: EventKind::StmtPromoted {
                    iid: 5,
                    reason: "watch-discovery",
                    via: 2,
                    sigma: 4,
                },
            },
        ];
        for rec in &records {
            let mut buf = Vec::new();
            encode_event(rec, &mut buf);
            assert_eq!(&decode_event(&buf).expect("decodes"), rec);
        }
        let stats = JournalStats {
            events_overwritten: 42,
            oldest_seq: 43,
        };
        let bin = to_binary(&records, &stats);
        assert!(is_binary(&bin));
        let (decoded, got) = parse_binary(&bin).expect("parses");
        assert_eq!(decoded, records);
        assert_eq!(got, stats);
    }

    #[test]
    fn stream_decoder_waits_for_complete_frames() {
        let rec = EventRecord {
            seq: 300,
            trace: 1,
            tid: 0,
            kind: EventKind::RunStarted { run: 5, seed: 9 },
        };
        let bin = to_binary(std::slice::from_ref(&rec), &JournalStats::default());
        let mut dec = StreamDecoder::new();
        let mut pos = 0usize;
        // Feed byte by byte: events appear only once their frame completes,
        // and every prefix is either "wait" or yields the full record.
        let mut seen = Vec::new();
        for end in 0..=bin.len() {
            seen.extend(dec.feed(&bin[..end], &mut pos).expect("no error"));
        }
        assert_eq!(seen, vec![rec]);
        assert_eq!(pos, bin.len());
    }

    #[test]
    fn unknown_tags_are_skipped() {
        let rec = EventRecord {
            seq: 1,
            trace: 0,
            tid: 0,
            kind: EventKind::RunStarted { run: 1, seed: 2 },
        };
        let mut bin = Vec::new();
        bin.extend_from_slice(&MAGIC);
        put_varint(VERSION, &mut bin);
        // A frame with tag 200 (unknown) and arbitrary body bytes.
        let mut body = Vec::new();
        put_varint(9, &mut body);
        put_varint(0, &mut body);
        put_varint(0, &mut body);
        body.push(200);
        body.extend_from_slice(&[1, 2, 3]);
        put_varint(body.len() as u64, &mut bin);
        bin.extend_from_slice(&body);
        encode_event(&rec, &mut bin);
        let (events, _) = parse_binary(&bin).expect("skips unknown tag");
        assert_eq!(events, vec![rec]);
    }

    #[test]
    fn newer_version_is_rejected() {
        let mut bin = Vec::new();
        bin.extend_from_slice(&MAGIC);
        put_varint(VERSION + 1, &mut bin);
        assert!(parse_binary(&bin).is_err());
        assert!(parse_binary(b"not a journal").is_err());
    }
}
