//! `gist-obs` — zero-dependency observability for the Gist pipeline.
//!
//! The paper's pitch is *low-overhead, always-on* in-production diagnosis
//! (§5.3 measures per-stage runtime cost), so the reproduction needs a way to
//! measure itself that is cheap enough to leave enabled. This crate provides
//! exactly three primitives, all process-global and lock-free on the hot
//! path:
//!
//! * [`Counter`] — a monotonic relaxed [`std::sync::atomic::AtomicU64`].
//! * [`Histogram`] — log₂-bucketed sample distribution (65 buckets cover the
//!   full `u64` range) with count / sum / max.
//! * span timers — [`span`] returns an RAII guard; nested guards on one
//!   thread form a `/`-joined path (`"diagnose/collect/pt.decode"`), and the
//!   elapsed wall-clock time is recorded against that path on drop. Work
//!   dispatched to other threads parents explicitly: capture a
//!   [`SpanHandle`] with [`current_span_handle`] before dispatch and open
//!   worker spans with [`span_under`], so (for example) fleet worker spans
//!   nest under `server.collect` instead of surfacing at the top level.
//!
//! # Naming scheme
//!
//! Metric names are `<layer>.<noun>` in `snake_case` — `vm.instr_retired`,
//! `pt.buffer_overflows`, `watch.traps`, `tracking.patch_bytes`,
//! `server.iterations`, `fleet.runs_dispatched`. Span names reuse the layer
//! prefix (`"server.collect"`); the recorded timer key is the full stack
//! path, so one leaf can appear under several parents.
//!
//! # Determinism contract
//!
//! Counters and histograms observe only *logical* events (instructions
//! retired, packets encoded, watchpoints hit), so under fixed seeds their
//! [`MetricsSnapshot`] content — and the byte output of
//! [`MetricsSnapshot::deterministic_json`] — is identical run-to-run and
//! independent of thread interleaving. Timers measure wall-clock and are
//! explicitly excluded; they appear only in [`MetricsSnapshot::to_json`].
//! Anything whose value depends on execution *shape* rather than logical
//! work (e.g. fleet batch occupancy) must be recorded as a histogram, never
//! a counter, so counter snapshots stay comparable across batch sizes.
//!
//! Worker threads that record heavily can install a thread-local
//! accumulator with [`defer_metrics`]; recording then buffers locally and
//! drains into the shared atomics at [`flush_deferred`] or guard drop.
//! Because addition is commutative and every buffered add is applied before
//! the guard releases, quiescent snapshots are unaffected — deferral moves
//! contention off the hot path without changing totals.
//!
//! # `metrics-off`
//!
//! With the `metrics-off` cargo feature every recording operation compiles
//! to an empty body, [`span`] never reads the clock, and [`snapshot`]
//! returns an empty snapshot. This is the baseline against which the
//! enabled-build overhead is bounded (<5% fleet throughput).

mod counter;
mod defer;
pub mod event;
mod handle;
mod histogram;
pub mod journal;
pub mod json;
mod registry;
mod snapshot;
mod timer;
pub mod wire;

pub use counter::Counter;
pub use defer::{defer_metrics, flush_deferred, DeferGuard};
pub use event::{EventKind, EventRecord, JournalEvent};
pub use handle::{CounterHandle, HistogramHandle};
pub use histogram::{bucket_floor, bucket_of, Histogram, NUM_BUCKETS};
pub use journal::{begin_trace, end_trace, Cursor, DrainChunk, JournalStats};
pub use registry::{counter_by_name, histogram_by_name};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot, TimerSnapshot};
pub use timer::{current_span_handle, span, span_under, SpanGuard, SpanHandle, Timer};

/// Returns a point-in-time copy of every registered metric, keyed by name
/// with [`std::collections::BTreeMap`] (sorted, deterministic) ordering.
pub fn snapshot() -> MetricsSnapshot {
    registry::snapshot_all()
}

/// Resets every registered metric to zero.
///
/// Registrations themselves are kept (metric storage is leaked by design),
/// so previously resolved handles stay valid. Benchmarks call this before a
/// measured section; tests that compare snapshots must run in their own
/// process (one `#[test]` per integration binary) because the registry is
/// process-global.
pub fn reset() {
    registry::reset_all();
    journal::reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handle_resolves_to_same_counter() {
        let a = counter!("obs_test.handle_identity");
        let b = counter_by_name("obs_test.handle_identity");
        a.inc();
        b.add(2);
        if cfg!(feature = "metrics-off") {
            assert_eq!(a.get(), 0);
        } else {
            assert_eq!(a.get(), 3);
            assert!(std::ptr::eq(a, b));
        }
    }

    #[test]
    fn histogram_counts_sum_and_max() {
        let h = histogram!("obs_test.histogram_basic");
        for v in [0, 1, 1, 7, 1024] {
            h.record(v);
        }
        let snap = h.snapshot();
        if cfg!(feature = "metrics-off") {
            assert_eq!(snap.count, 0);
            return;
        }
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1033);
        assert_eq!(snap.max, 1024);
        // value 0 -> bucket floor 0; 1,1 -> floor 1; 7 -> floor 4; 1024 -> floor 1024
        assert_eq!(snap.buckets, vec![(0, 1), (1, 2), (4, 1), (1024, 1)]);
    }

    #[test]
    fn bucket_math_covers_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(2), 2);
        assert_eq!(bucket_floor(3), 4);
        for v in [0u64, 1, 2, 3, 5, 100, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(bucket_floor(b) <= v);
            if b + 1 < NUM_BUCKETS {
                assert!(v < bucket_floor(b + 1));
            }
        }
    }

    #[test]
    fn span_paths_nest_per_thread() {
        {
            let _outer = span("obs_test.outer");
            let _inner = span("obs_test.inner");
        }
        let snap = snapshot();
        if cfg!(feature = "metrics-off") {
            assert!(snap.timers.is_empty());
            return;
        }
        assert!(snap.timers.contains_key("obs_test.outer"));
        assert!(snap.timers.contains_key("obs_test.outer/obs_test.inner"));
    }

    #[test]
    fn span_under_parents_across_threads() {
        {
            let _outer = span("obs_test.dispatch");
            let h = current_span_handle();
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _w = span_under(&h, "obs_test.worker");
                    let _leaf = span("obs_test.leaf");
                });
            });
        }
        let snap = snapshot();
        if cfg!(feature = "metrics-off") {
            assert!(snap.timers.is_empty());
            return;
        }
        assert!(snap
            .timers
            .contains_key("obs_test.dispatch/obs_test.worker"));
        assert!(snap
            .timers
            .contains_key("obs_test.dispatch/obs_test.worker/obs_test.leaf"));
        // The worker span must NOT also appear as a top-level path.
        assert!(!snap.timers.contains_key("obs_test.worker"));
    }

    #[test]
    fn snapshot_orders_names_and_renders_deterministically() {
        counter_by_name("obs_test.z_last").add(4);
        counter_by_name("obs_test.a_first").add(9);
        let snap = snapshot();
        if cfg!(feature = "metrics-off") {
            assert_eq!(snap.deterministic_json(), snap.deterministic_json());
            return;
        }
        let names: Vec<&String> = snap.counters.keys().collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        let json = snap.deterministic_json();
        assert!(json.find("obs_test.a_first").unwrap() < json.find("obs_test.z_last").unwrap());
        assert_eq!(json, snapshot().deterministic_json());
    }

    #[test]
    fn json_escapes_and_formats() {
        use json::Json;
        let v = Json::Obj(vec![
            ("s".into(), Json::Str("a\"b\\c\nd\u{1}".into())),
            ("n".into(), Json::U64(u64::MAX)),
            ("f".into(), Json::F64(1.5)),
            ("b".into(), Json::Bool(true)),
            ("arr".into(), Json::Arr(vec![Json::Null, Json::U64(0)])),
        ]);
        assert_eq!(
            v.render(),
            "{\"s\":\"a\\\"b\\\\c\\nd\\u0001\",\"n\":18446744073709551615,\"f\":1.500,\"b\":true,\"arr\":[null,0]}"
        );
        assert_eq!(Json::F64(f64::NAN).render(), "null");
    }
}
