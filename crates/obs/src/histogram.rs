//! Log₂-bucketed histograms.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::snapshot::HistogramSnapshot;

/// Number of buckets. Bucket 0 holds the value 0; bucket `i` (1..=64) holds
/// values in `[2^(i-1), 2^i)`, so the full `u64` range is covered.
pub const NUM_BUCKETS: usize = 65;

/// Index of the bucket `v` falls into.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A log₂-bucketed histogram of `u64` samples with count, sum and max.
///
/// All fields are relaxed atomics; recording is lock-free and commutative,
/// so contents under fixed seeds are thread-interleaving independent.
/// Snapshots are expected to be taken quiescently (no concurrent writers) —
/// a racing snapshot may see a sample in `count` but not yet in `sum`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram, usable in `static` items.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Takes `&'static self` so a thread under
    /// [`crate::defer_metrics`] can buffer the sample and replay it at
    /// flush (see [`Counter::add`](crate::Counter::add)).
    #[inline]
    pub fn record(&'static self, v: u64) {
        #[cfg(not(feature = "metrics-off"))]
        if !crate::defer::try_defer_sample(self, v) {
            self.record_now(v);
        }
        #[cfg(feature = "metrics-off")]
        let _ = v;
    }

    /// Records a sample directly into the shared cells, bypassing any
    /// active deferral (the flush path).
    #[cfg_attr(feature = "metrics-off", allow(dead_code))]
    #[inline]
    pub(crate) fn record_now(&self, v: u64) {
        #[cfg(not(feature = "metrics-off"))]
        {
            self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
        #[cfg(feature = "metrics-off")]
        let _ = v;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Copies the current contents out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((bucket_floor(i), n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    #[cfg_attr(feature = "metrics-off", allow(dead_code))]
    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}
