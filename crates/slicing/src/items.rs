//! Slice items and def/use indexing.
//!
//! Algorithm 1 operates on *items*: "an item is an arbitrary program
//! element; a source is an item that is either a global variable, a
//! function argument, a call, or a memory access". In MiniC, the dataflow
//! items are per-function registers and program globals; statements are
//! linked to the items they define and use.

use std::collections::HashMap;

use gist_ir::{FuncId, GlobalId, InstrId, Op, Operand, Program, VarId};

/// A dataflow item tracked by the slicer's work set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SliceItem {
    /// A local register of a function.
    Reg(FuncId, VarId),
    /// A global variable (tracked syntactically; pointer aliases are the
    /// runtime's job, per §3.1).
    Global(GlobalId),
}

/// Def/use indexes over a whole program.
#[derive(Debug, Default)]
pub struct DefUse {
    /// Statements that define each register.
    pub reg_defs: HashMap<(FuncId, VarId), Vec<InstrId>>,
    /// Statements that write each global (stores, locks/unlocks, frees
    /// through the global's name).
    pub global_writes: HashMap<GlobalId, Vec<InstrId>>,
    /// Statements that read each global.
    pub global_reads: HashMap<GlobalId, Vec<InstrId>>,
    /// Call/spawn statements per direct callee.
    pub callsites: HashMap<FuncId, Vec<InstrId>>,
}

impl DefUse {
    /// Builds the indexes.
    pub fn build(program: &Program) -> DefUse {
        let mut du = DefUse::default();
        for f in &program.functions {
            for b in &f.blocks {
                for i in &b.instrs {
                    if let Some(d) = i.op.def() {
                        du.reg_defs.entry((f.id, d)).or_default().push(i.id);
                    }
                    // Global writes/reads via syntactic global addressing.
                    if let Some(Operand::Global(g)) = i.op.access_addr() {
                        if i.op.is_memory_write() {
                            du.global_writes.entry(g).or_default().push(i.id);
                        } else {
                            du.global_reads.entry(g).or_default().push(i.id);
                        }
                    }
                    match &i.op {
                        Op::Call {
                            callee: gist_ir::Callee::Direct(t),
                            ..
                        } => du.callsites.entry(*t).or_default().push(i.id),
                        Op::ThreadCreate {
                            routine: gist_ir::Callee::Direct(t),
                            ..
                        } => du.callsites.entry(*t).or_default().push(i.id),
                        _ => {}
                    }
                }
            }
        }
        du
    }
}

/// The items used (read) by a statement.
pub fn stmt_uses(program: &Program, id: InstrId) -> Vec<SliceItem> {
    let func = match program.stmt_func(id) {
        Some(f) => f,
        None => return Vec::new(),
    };
    let operands = if let Some(i) = program.instr(id) {
        i.op.uses()
    } else if let Some(t) = program.terminator(id) {
        t.uses()
    } else {
        Vec::new()
    };
    operands
        .into_iter()
        .filter_map(|o| match o {
            Operand::Var(v) => Some(SliceItem::Reg(func, v)),
            Operand::Global(g) => Some(SliceItem::Global(g)),
            Operand::Const(_) => None,
        })
        .collect()
}

/// The item a statement defines (register writes), if any.
pub fn stmt_def(program: &Program, id: InstrId) -> Option<SliceItem> {
    let func = program.stmt_func(id)?;
    let instr = program.instr(id)?;
    instr.op.def().map(|v| SliceItem::Reg(func, v))
}

/// The global a statement writes through its own name, if any.
pub fn stmt_global_write(program: &Program, id: InstrId) -> Option<GlobalId> {
    let instr = program.instr(id)?;
    if !instr.op.is_memory_write() {
        return None;
    }
    match instr.op.access_addr() {
        Some(Operand::Global(g)) => Some(g),
        _ => None,
    }
}

/// Whether a statement is a *source* per Algorithm 1 (global access,
/// argument use, call, or memory access). Non-sources (pure arithmetic on
/// locals) still propagate dataflow but mirror the paper's distinction.
pub fn is_source(program: &Program, id: InstrId) -> bool {
    if let Some(i) = program.instr(id) {
        if i.op.is_memory_access() || i.op.is_call_like() {
            return true;
        }
        let func = program.function(program.stmt_func(id).expect("indexed"));
        let nparams = func.params.len() as u32;
        // Uses a global address or an argument register?
        i.op.uses().iter().any(|o| match o {
            Operand::Global(_) => true,
            Operand::Var(v) => v.0 < nparams,
            Operand::Const(_) => false,
        })
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::parser::parse_program;

    fn prog() -> Program {
        parse_program(
            "t",
            r#"
global g = 0
fn helper(x) {
entry:
  y = add x, 1
  store $g, y
  ret y
}
fn main() {
entry:
  a = const 5
  r = call helper(a)
  v = load $g
  print v
  ret
}
"#,
        )
        .unwrap()
    }

    #[test]
    fn def_use_indexes_registers_and_globals() {
        let p = prog();
        let du = DefUse::build(&p);
        let main = p.function_by_name("main").unwrap();
        let helper = p.function_by_name("helper").unwrap();
        // main: a, r, v are defined once each.
        let a = main.var_names.iter().position(|n| n == "a").unwrap() as u32;
        assert_eq!(du.reg_defs[&(main.id, VarId(a))].len(), 1);
        // helper writes $g; main reads it.
        let g = p.globals[0].id;
        assert_eq!(du.global_writes[&g].len(), 1);
        assert_eq!(du.global_reads[&g].len(), 1);
        // helper has one callsite.
        assert_eq!(du.callsites[&helper.id].len(), 1);
    }

    #[test]
    fn stmt_uses_maps_operands_to_items() {
        let p = prog();
        let helper = p.function_by_name("helper").unwrap();
        let store = helper.blocks[0].instrs[1].id;
        let uses = stmt_uses(&p, store);
        assert!(uses.contains(&SliceItem::Global(p.globals[0].id)));
        assert_eq!(uses.len(), 2, "global + y");
    }

    #[test]
    fn source_classification() {
        let p = prog();
        let helper = p.function_by_name("helper").unwrap();
        let add = helper.blocks[0].instrs[0].id; // uses argument x
        let store = helper.blocks[0].instrs[1].id; // memory access
        assert!(is_source(&p, add), "argument use is a source");
        assert!(is_source(&p, store), "memory access is a source");
        let main = p.function_by_name("main").unwrap();
        let konst = main.blocks[0].instrs[0].id;
        assert!(!is_source(&p, konst), "const is not a source");
        let call = main.blocks[0].instrs[1].id;
        assert!(is_source(&p, call), "call is a source");
    }
}
