//! Static backward slicing — the paper's Algorithm 1.
//!
//! Given a failure report, Gist "computes a backward slice by computing the
//! set of program statements that potentially affect the statement where
//! the failure occurs" (§3). The slicer here matches the paper's stated
//! design points:
//!
//! * **Interprocedural**: failure sketches span function boundaries; call
//!   sites feed callee parameters (`getArgValues`) and callee returns feed
//!   call results (`getRetValues`), and the walk crosses call, return, and
//!   thread-creation edges of the [TICFG](gist_ir::icfg).
//! * **Path-insensitive**: no per-path constraint solving; precise path
//!   information is recovered at runtime by Intel PT control-flow tracking
//!   (§3.2.2).
//! * **Flow-sensitive**: only statements that are backward-reachable from
//!   the failure location participate, and the slice is ordered by
//!   backward distance from the failure — the order in which Adaptive
//!   Slice Tracking extends its tracked window (§3.2.1).
//! * **No alias analysis** (§3.1): pointer-based stores are *not* matched
//!   to loads statically; the runtime watchpoint unit discovers the missed
//!   statements and refinement adds them (§3.2.3). Only syntactically
//!   evident matches (accesses naming the same global) are linked
//!   statically.
//! * **Control dependences** are included: a slice statement pulls in the
//!   conditional branches that decide its execution, which is what makes
//!   "branches taken" available as failure predictors (§3.3).

pub mod cdep;
pub mod items;
pub mod slicer;

pub use cdep::ControlDeps;
pub use items::SliceItem;
pub use slicer::{Slice, StaticSlicer};
