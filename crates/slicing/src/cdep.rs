//! Block-level control dependences via postdominators.
//!
//! A block `Y` is control-dependent on branch block `X` when `X` has a
//! successor `S` such that `Y` postdominates `S` but `Y` does not strictly
//! postdominate `X` (Ferrante/Ottenstein/Warren). The slicer uses this to
//! pull the controlling `condbr` statements of slice members into the
//! slice, which is what puts the `if (!obj->refcnt)` checks of the paper's
//! Fig. 8 into the Apache sketch.

use std::collections::HashMap;

use gist_ir::cfg::Cfg;
use gist_ir::dom::DomTree;
use gist_ir::{BlockId, FuncId, InstrId, Program};

/// Control-dependence lookup for a whole program.
#[derive(Debug, Default)]
pub struct ControlDeps {
    /// Per function: block -> controlling branch statements.
    deps: HashMap<FuncId, HashMap<BlockId, Vec<InstrId>>>,
}

impl ControlDeps {
    /// Computes control dependences for every function.
    pub fn build(program: &Program) -> ControlDeps {
        let mut out = ControlDeps::default();
        for f in &program.functions {
            let cfg = Cfg::build(f);
            let pdom = DomTree::postdominators(&cfg);
            let mut map: HashMap<BlockId, Vec<InstrId>> = HashMap::new();
            for b in &f.blocks {
                let succs = b.term.successors();
                if succs.len() < 2 {
                    continue;
                }
                let branch_stmt = b.term.id();
                for s in succs {
                    // Walk the postdominator chain from the successor up to
                    // (but not including) b's own postdominator parent; all
                    // blocks on the way are control-dependent on b.
                    let stop = pdom.idom(b.id);
                    let mut cur = Some(s);
                    let mut guard = 0;
                    while let Some(y) = cur {
                        if Some(y) == stop {
                            break;
                        }
                        map.entry(y).or_default().push(branch_stmt);
                        cur = pdom.idom(y);
                        guard += 1;
                        if guard > f.blocks.len() {
                            break;
                        }
                    }
                }
            }
            for v in map.values_mut() {
                v.sort_unstable();
                v.dedup();
            }
            out.deps.insert(f.id, map);
        }
        out
    }

    /// The branch statements that control whether `stmt` executes.
    pub fn controlling_branches(&self, program: &Program, stmt: InstrId) -> Vec<InstrId> {
        let pos = match program.stmt_pos(stmt) {
            Some(p) => p,
            None => return Vec::new(),
        };
        self.deps
            .get(&pos.func)
            .and_then(|m| m.get(&pos.block))
            .cloned()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::parser::parse_program;

    #[test]
    fn then_block_depends_on_branch() {
        let p = parse_program(
            "t",
            r#"
fn main() {
entry:
  c = const 1
  condbr c, then, exit
then:
  x = const 2
  br exit
exit:
  ret
}
"#,
        )
        .unwrap();
        let cd = ControlDeps::build(&p);
        let main = &p.functions[0];
        let branch = main.blocks[0].term.id();
        let x_stmt = main
            .blocks
            .iter()
            .find(|b| b.label == "then")
            .unwrap()
            .instrs[0]
            .id;
        assert_eq!(cd.controlling_branches(&p, x_stmt), vec![branch]);
        // The exit block postdominates entry: no control dependence.
        let ret_stmt = main
            .blocks
            .iter()
            .find(|b| b.label == "exit")
            .unwrap()
            .term
            .id();
        assert!(cd.controlling_branches(&p, ret_stmt).is_empty());
    }

    #[test]
    fn loop_body_depends_on_loop_branch() {
        let p = parse_program(
            "t",
            r#"
fn main() {
entry:
  n = const 5
  br head
head:
  c = cmp gt n, 0
  condbr c, body, exit
body:
  n = sub n, 1
  br head
exit:
  ret
}
"#,
        )
        .unwrap();
        let cd = ControlDeps::build(&p);
        let main = &p.functions[0];
        let head = main.blocks.iter().find(|b| b.label == "head").unwrap();
        let body = main.blocks.iter().find(|b| b.label == "body").unwrap();
        let deps = cd.controlling_branches(&p, body.instrs[0].id);
        assert_eq!(deps, vec![head.term.id()]);
        // The loop head is control-dependent on itself (it runs again only
        // if the branch takes the body edge).
        let head_deps = cd.controlling_branches(&p, head.instrs[0].id);
        assert_eq!(head_deps, vec![head.term.id()]);
    }

    #[test]
    fn nested_if_collects_both_branches() {
        let p = parse_program(
            "t",
            r#"
fn main() {
entry:
  a = const 1
  condbr a, outer, exit
outer:
  b = const 1
  condbr b, inner, exit
inner:
  x = const 9
  br exit
exit:
  ret
}
"#,
        )
        .unwrap();
        let cd = ControlDeps::build(&p);
        let main = &p.functions[0];
        let inner_x = main
            .blocks
            .iter()
            .find(|b| b.label == "inner")
            .unwrap()
            .instrs[0]
            .id;
        let deps = cd.controlling_branches(&p, inner_x);
        let entry_br = main.blocks[0].term.id();
        let outer_br = main
            .blocks
            .iter()
            .find(|b| b.label == "outer")
            .unwrap()
            .term
            .id();
        assert!(deps.contains(&outer_br), "direct controller");
        // entry's branch controls `outer` (transitive closure happens in
        // the slicer, which re-queries for each added branch).
        let outer_deps = cd.controlling_branches(
            &p,
            main.blocks
                .iter()
                .find(|b| b.label == "outer")
                .unwrap()
                .instrs[0]
                .id,
        );
        assert!(outer_deps.contains(&entry_br));
    }
}
