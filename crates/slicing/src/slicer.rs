//! The backward slicer (Algorithm 1) and the [`Slice`] it produces.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use gist_analysis::points_to::{Loc, LocSet, MemOrigin, PointsTo};
use gist_analysis::svfg::{Svfg, SvfgEdgeKind};
use gist_ir::icfg::Icfg;
use gist_ir::{InstrId, Op, Operand, Program, Terminator};

use crate::cdep::ControlDeps;
use crate::items::{stmt_uses, DefUse, SliceItem};

/// How the slicer resolves heap data dependences.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AliasMode {
    /// Consult the points-to analysis: a memory access pulls in the
    /// feasible stores/frees on may-aliasing cells (the default).
    PointsTo,
    /// No alias analysis at all: only syntactic global links (the PR-1
    /// behaviour, kept for the `--dataflow` ablation).
    None,
    /// Every pointer write may alias every pointer read (the blow-up the
    /// paper's §3.1 warns about, kept for the alias ablation).
    Crude,
}

/// A static backward slice: the statements that may affect the failing
/// statement, ordered by backward distance from it.
#[derive(Clone, Debug)]
pub struct Slice {
    /// The slicing criterion (the failing statement).
    pub criterion: InstrId,
    /// Slice statements sorted by distance from the criterion (the
    /// criterion itself first). AsT's σ-prefix tracks `ordered[..σ]`.
    pub ordered: Vec<InstrId>,
    members: HashSet<InstrId>,
}

impl Slice {
    /// Builds a slice from an unordered member set plus a distance metric.
    fn new(criterion: InstrId, members: HashSet<InstrId>, dist: &HashMap<InstrId, u64>) -> Slice {
        let mut ordered: Vec<InstrId> = members.iter().copied().collect();
        ordered.sort_by_key(|s| (dist.get(s).copied().unwrap_or(u64::MAX), s.0));
        Slice {
            criterion,
            ordered,
            members,
        }
    }

    /// Number of statements in the slice (IR unit of Table 1).
    pub fn len(&self) -> usize {
        self.ordered.len()
    }

    /// True if the slice is empty (cannot happen for a valid criterion).
    pub fn is_empty(&self) -> bool {
        self.ordered.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, id: InstrId) -> bool {
        self.members.contains(&id)
    }

    /// The first `sigma` statements backward from the failure — the portion
    /// AsT tracks in one iteration (§3.2.1).
    pub fn prefix(&self, sigma: usize) -> &[InstrId] {
        &self.ordered[..sigma.min(self.ordered.len())]
    }

    /// Distinct source lines covered (source-LOC unit of Table 1).
    pub fn source_loc_count(&self, program: &Program) -> usize {
        program.source_loc_count(self.ordered.iter())
    }

    /// Slice statements in program order (for display).
    pub fn in_program_order(&self) -> Vec<InstrId> {
        let mut v = self.ordered.clone();
        v.sort_unstable();
        v
    }
}

/// The static slicer. Holds the program-wide analyses so multiple slices
/// can be computed cheaply (Gist's server reuses them across failures).
pub struct StaticSlicer<'p> {
    program: &'p Program,
    ticfg: Icfg,
    defuse: DefUse,
    cdeps: ControlDeps,
    pts: PointsTo,
    /// Abstract cells written by each store/free, for alias-aware data
    /// dependences. Frees are widened to their whole origin.
    write_locs: BTreeMap<InstrId, LocSet>,
    /// Origins reachable from more than one thread context. Alias-aware
    /// pulling is restricted to these: same-thread heap flows are covered
    /// by def-use chains, and pulling every aliasing write in a sequential
    /// program is exactly the slice blow-up §3.1 warns about.
    shared_origins: std::collections::BTreeSet<MemOrigin>,
    /// The sparse value-flow graph: def-use chains with 1-CFA call/return
    /// binding and path-feasibility pruning. [`StaticSlicer::compute_with_svfg`]
    /// walks it instead of the flow-insensitive item worklist.
    svfg: Svfg,
}

impl<'p> StaticSlicer<'p> {
    /// Builds the slicer's analyses (TICFG, def/use, control deps,
    /// points-to).
    pub fn new(program: &'p Program) -> StaticSlicer<'p> {
        let ticfg = Icfg::build_ticfg(program);
        let pts = PointsTo::compute(program, &ticfg);
        let mut write_locs: BTreeMap<InstrId, LocSet> = BTreeMap::new();
        for f in &program.functions {
            for b in &f.blocks {
                for instr in &b.instrs {
                    let locs = match &instr.op {
                        Op::Store { addr, .. } => pts.operand_origins(f.id, *addr),
                        Op::Free { addr } => pts
                            .operand_origins(f.id, *addr)
                            .into_iter()
                            .map(|l| Loc::anywhere(l.origin))
                            .collect(),
                        _ => continue,
                    };
                    if !locs.is_empty() {
                        write_locs.insert(instr.id, locs);
                    }
                }
            }
        }
        let shared_origins = gist_analysis::shared_origins_with(program, &ticfg);
        let svfg = Svfg::build_with(program, &ticfg, &pts);
        StaticSlicer {
            program,
            ticfg,
            defuse: DefUse::build(program),
            cdeps: ControlDeps::build(program),
            pts,
            write_locs,
            shared_origins,
            svfg,
        }
    }

    /// The sparse value-flow graph (shared with the sketch engine for
    /// inter-thread provenance annotations).
    pub fn svfg(&self) -> &Svfg {
        &self.svfg
    }

    /// The abstract cells a slice statement may read (or, for a store,
    /// overwrite): the alias-aware counterpart of `stmt_uses`.
    fn access_locs(&self, id: InstrId) -> LocSet {
        let Some(func) = self.program.stmt_func(id) else {
            return LocSet::new();
        };
        let Some(instr) = self.program.instr(id) else {
            return LocSet::new();
        };
        match &instr.op {
            Op::Intrinsic { args, .. } => {
                let mut locs = LocSet::new();
                for a in args {
                    for l in self.pts.operand_origins(func, *a) {
                        locs.insert(Loc::anywhere(l.origin));
                    }
                }
                locs
            }
            op => op
                .access_addr()
                .map(|addr| self.pts.operand_origins(func, addr))
                .unwrap_or_default(),
        }
    }

    /// The TICFG (shared with the instrumentation planner).
    pub fn ticfg(&self) -> &Icfg {
        &self.ticfg
    }

    /// Computes the backward-feasible statement set and distances.
    ///
    /// Feasibility is backward reachability in the TICFG *plus* the
    /// concurrent extension: any statement forward-reachable from a spawn
    /// that is itself backward-reachable may interleave with the failing
    /// thread (this is what puts `main`'s `f->mut = NULL` into the pbzip2
    /// slice even though no TICFG path leads from it to the crash in
    /// `cons`). The TICFG "represents an overapproximation of all the
    /// possible dynamic control flow behaviors" (§3.1).
    fn feasible(&self, criterion: InstrId) -> HashMap<InstrId, u64> {
        let mut dist: HashMap<InstrId, u64> = HashMap::new();
        // Backward BFS.
        let mut q = VecDeque::new();
        dist.insert(criterion, 0);
        q.push_back(criterion);
        while let Some(s) = q.pop_front() {
            let d = dist[&s];
            for &(p, _) in self.ticfg.preds(s) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(p) {
                    e.insert(d + 1);
                    q.push_back(p);
                }
            }
        }
        // Concurrent extension: forward BFS from backward-reachable spawns.
        let spawns: Vec<(InstrId, u64)> = dist
            .iter()
            .filter(|(s, _)| {
                self.program
                    .instr(**s)
                    .map(|i| matches!(i.op, Op::ThreadCreate { .. }))
                    .unwrap_or(false)
            })
            .map(|(s, d)| (*s, *d))
            .collect();
        for (spawn, d0) in spawns {
            let mut fq = VecDeque::new();
            fq.push_back((spawn, d0));
            while let Some((s, d)) = fq.pop_front() {
                for &(n, _) in self.ticfg.succs(s) {
                    let nd = d + 1;
                    let better = dist.get(&n).map(|&old| nd < old).unwrap_or(true);
                    if better {
                        dist.insert(n, nd);
                        fq.push_back((n, nd));
                    }
                }
            }
        }
        dist
    }

    /// Computes the backward slice for a failing statement (Algorithm 1),
    /// with alias-aware data dependences: a memory access in the slice
    /// pulls in every feasible store/free on a may-aliasing cell, so heap
    /// writes through a *different pointer name* (the pbzip2 `store q, 0`
    /// / `free mu` shape) enter the slice natively instead of waiting for
    /// runtime watchpoints or race-detector seeding.
    pub fn compute(&self, criterion: InstrId) -> Slice {
        self.compute_inner(criterion, AliasMode::PointsTo)
    }

    /// Ablation: the alias-free slice (only syntactic global links). This
    /// was the default before the points-to integration; `repro dataflow`
    /// compares it against [`StaticSlicer::compute`].
    pub fn compute_without_alias(&self, criterion: InstrId) -> Slice {
        self.compute_inner(criterion, AliasMode::None)
    }

    /// Ablation: the slice a *crude may-alias analysis* would produce.
    ///
    /// The paper chose not to use static alias analysis because "in
    /// practice, it can be over 50% inaccurate, which would increase the
    /// static slice size that Gist would have to monitor at runtime"
    /// (§3.1). This variant models that choice's alternative: every
    /// pointer-based memory write in the feasible region may alias every
    /// pointer-based read that enters the slice, so all of them join the
    /// slice. Comparing `compute_with_crude_alias(c).len()` against
    /// `compute(c).len()` quantifies the monitoring blow-up a precision-
    /// free alias analysis would cost (bench: `repro ablations`).
    pub fn compute_with_crude_alias(&self, criterion: InstrId) -> Slice {
        self.compute_inner(criterion, AliasMode::Crude)
    }

    /// Computes the backward slice over the sparse value-flow graph.
    ///
    /// Instead of the flow-insensitive item worklist, this walks SVFG
    /// edges backward from the criterion with 1-CFA context binding
    /// (return edges record the call site; parameter edges only ascend to
    /// a matching one) plus the control-dependence closure. Every pull is
    /// a filtered version of what [`StaticSlicer::compute`] would pull —
    /// reaching-def filtering, path-feasibility pruning, and context
    /// matching only *remove* statements — so the SVFG slice is a subset
    /// of the legacy slice for the same criterion, and the distances are
    /// value-flow hops rather than raw TICFG steps (the re-ranking signal
    /// the instrumentation planner consumes).
    pub fn compute_with_svfg(&self, criterion: InstrId) -> Slice {
        let feasible = self.feasible(criterion);
        let mut dist: HashMap<InstrId, u64> = HashMap::new();
        let mut members: HashSet<InstrId> = HashSet::new();
        let mut seen: HashSet<(InstrId, Option<InstrId>)> = HashSet::new();
        let mut q: VecDeque<(InstrId, Option<InstrId>, u64)> = VecDeque::new();
        seen.insert((criterion, None));
        q.push_back((criterion, None, 0));
        while let Some((s, ctx, d)) = q.pop_front() {
            members.insert(s);
            let e = dist.entry(s).or_insert(d);
            if *e > d {
                *e = d;
            }
            for edge in self.svfg.edges_in(s) {
                let (next_ctx, ok) = match edge.kind {
                    // Descending into a callee: remember the call site.
                    SvfgEdgeKind::Ret(c) => (Some(c), true),
                    // Ascending to a caller: only through the call site we
                    // came in by (or any, if the walk started here).
                    SvfgEdgeKind::Param(c) => (None, ctx.is_none() || ctx == Some(c)),
                    _ => (ctx, true),
                };
                if !ok || !feasible.contains_key(&edge.def) {
                    continue;
                }
                if seen.insert((edge.def, next_ctx)) {
                    q.push_back((edge.def, next_ctx, d + 1));
                }
            }
            for br in self.cdeps.controlling_branches(self.program, s) {
                if feasible.contains_key(&br) && seen.insert((br, ctx)) {
                    q.push_back((br, ctx, d + 1));
                }
            }
        }
        Slice::new(criterion, members, &dist)
    }

    /// The control context of `stmts`: each statement's controlling
    /// branches plus the register defs feeding the branch conditions (via
    /// direct SVFG edges), restricted to members of `slice`.
    ///
    /// The sketch engine backfills these so a concise early-σ sketch still
    /// shows the branch that steered execution into the failure (the
    /// `if (!rc)` of the Apache sketch) even when adaptive tracking stops
    /// before σ grows past it.
    pub fn control_context(
        &self,
        stmts: impl IntoIterator<Item = InstrId>,
        slice: &Slice,
    ) -> std::collections::BTreeSet<InstrId> {
        let mut out = std::collections::BTreeSet::new();
        for s in stmts {
            for br in self.cdeps.controlling_branches(self.program, s) {
                if !slice.contains(br) {
                    continue;
                }
                out.insert(br);
                for edge in self.svfg.edges_in(br) {
                    if edge.kind == SvfgEdgeKind::Direct && slice.contains(edge.def) {
                        out.insert(edge.def);
                    }
                }
            }
        }
        out
    }

    fn compute_inner(&self, criterion: InstrId, alias: AliasMode) -> Slice {
        let feasible = self.feasible(criterion);
        let crude_alias = alias == AliasMode::Crude;
        // Crude alias mode: collect every pointer-based memory write once.
        let aliasing_writes: Vec<InstrId> = if crude_alias {
            self.program
                .all_stmt_ids()
                .filter(|&id| {
                    self.program
                        .instr(id)
                        .map(|i| {
                            i.op.is_memory_write()
                                && matches!(i.op.access_addr(), Some(Operand::Var(_)))
                        })
                        .unwrap_or(false)
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut alias_seeded = false;
        let mut slice: HashSet<InstrId> = HashSet::new();
        let mut item_q: VecDeque<SliceItem> = VecDeque::new();
        let mut seen_items: HashSet<SliceItem> = HashSet::new();
        let mut stmt_q: VecDeque<InstrId> = VecDeque::new();

        stmt_q.push_back(criterion);

        let push_item =
            |item: SliceItem, seen: &mut HashSet<SliceItem>, q: &mut VecDeque<SliceItem>| {
                if seen.insert(item) {
                    q.push_back(item);
                }
            };

        while !stmt_q.is_empty() || !item_q.is_empty() {
            // Drain newly added statements first: collect their items and
            // control dependences.
            while let Some(s) = stmt_q.pop_front() {
                if !slice.insert(s) {
                    continue;
                }
                for u in stmt_uses(self.program, s) {
                    push_item(u, &mut seen_items, &mut item_q);
                }
                // Alias-aware data dependences: a memory access in the
                // slice pulls in every feasible store/free on a
                // may-aliasing *thread-shared* cell. This is what puts
                // pbzip2's `store q, 0` and `free mu` — writes through
                // *different pointer names* than the criterion's read —
                // into the static slice without race-detector seeding.
                // Cells confined to one thread are skipped: their flows
                // are already on def-use chains, and pulling them would
                // inflate sequential slices (the §3.1 blow-up).
                if alias == AliasMode::PointsTo {
                    let locs: LocSet = self
                        .access_locs(s)
                        .into_iter()
                        .filter(|l| self.shared_origins.contains(&l.origin))
                        .collect();
                    if !locs.is_empty() {
                        for (&w, wlocs) in &self.write_locs {
                            if w != s
                                && feasible.contains_key(&w)
                                && !slice.contains(&w)
                                && wlocs.iter().any(|wl| locs.iter().any(|rl| wl.overlaps(rl)))
                            {
                                stmt_q.push_back(w);
                            }
                        }
                    }
                }
                // Crude alias: the first pointer-based read in the slice
                // pulls in every pointer-based write that may reach it.
                if crude_alias && !alias_seeded {
                    let is_ptr_read = self
                        .program
                        .instr(s)
                        .map(|i| {
                            i.op.is_memory_access()
                                && matches!(i.op.access_addr(), Some(Operand::Var(_)))
                        })
                        .unwrap_or(false);
                    if is_ptr_read {
                        alias_seeded = true;
                        for &w in &aliasing_writes {
                            if feasible.contains_key(&w) && !slice.contains(&w) {
                                stmt_q.push_back(w);
                            }
                        }
                    }
                }
                // getRetValues: a call whose result is consumed pulls in the
                // callees' return statements and returned items.
                if let Some(instr) = self.program.instr(s) {
                    if let Op::Call { dst: Some(_), .. } = &instr.op {
                        if let Some(targets) = self.ticfg.call_targets.get(&s) {
                            for &callee in targets {
                                for b in &self.program.function(callee).blocks {
                                    if let Terminator::Ret {
                                        id, value: Some(v), ..
                                    } = &b.term
                                    {
                                        if feasible.contains_key(id) {
                                            stmt_q.push_back(*id);
                                        }
                                        if let Operand::Var(rv) = v {
                                            push_item(
                                                SliceItem::Reg(callee, *rv),
                                                &mut seen_items,
                                                &mut item_q,
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                // Control dependences: the branches deciding s.
                for br in self.cdeps.controlling_branches(self.program, s) {
                    if feasible.contains_key(&br) && !slice.contains(&br) {
                        stmt_q.push_back(br);
                    }
                }
            }
            // Process one item.
            if let Some(item) = item_q.pop_front() {
                match item {
                    SliceItem::Reg(f, v) => {
                        // Defining statements of the register.
                        if let Some(defs) = self.defuse.reg_defs.get(&(f, v)) {
                            for &d in defs {
                                if feasible.contains_key(&d) && !slice.contains(&d) {
                                    stmt_q.push_back(d);
                                }
                            }
                        }
                        // getArgValues: parameters flow from callsites.
                        let func = self.program.function(f);
                        if (v.0 as usize) < func.params.len() {
                            let arg_idx = v.0 as usize;
                            if let Some(callers) = self.ticfg.callers.get(&f) {
                                for &cs in callers {
                                    if !feasible.contains_key(&cs) {
                                        continue;
                                    }
                                    if !slice.contains(&cs) {
                                        stmt_q.push_back(cs);
                                    }
                                    // The actual argument operand.
                                    if let Some(instr) = self.program.instr(cs) {
                                        let arg = match &instr.op {
                                            Op::Call { args, .. } => args.get(arg_idx).copied(),
                                            Op::ThreadCreate { arg, .. } if arg_idx == 0 => {
                                                Some(*arg)
                                            }
                                            _ => None,
                                        };
                                        if let Some(a) = arg {
                                            let caller =
                                                self.program.stmt_func(cs).expect("indexed");
                                            match a {
                                                Operand::Var(av) => push_item(
                                                    SliceItem::Reg(caller, av),
                                                    &mut seen_items,
                                                    &mut item_q,
                                                ),
                                                Operand::Global(g) => push_item(
                                                    SliceItem::Global(g),
                                                    &mut seen_items,
                                                    &mut item_q,
                                                ),
                                                Operand::Const(_) => {}
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    SliceItem::Global(g) => {
                        if let Some(writes) = self.defuse.global_writes.get(&g) {
                            for &w in writes {
                                if feasible.contains_key(&w) && !slice.contains(&w) {
                                    stmt_q.push_back(w);
                                }
                            }
                        }
                    }
                }
            }
        }
        Slice::new(criterion, slice, &feasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::parser::parse_program;

    fn slice_for(text: &str, func: &str, block: usize, idx: usize) -> (Program, Slice) {
        let p = parse_program("t", text).unwrap();
        let f = p.function_by_name(func).unwrap();
        let crit = if idx == usize::MAX {
            f.blocks[block].term.id()
        } else {
            f.blocks[block].instrs[idx].id
        };
        let slicer = StaticSlicer::new(&p);
        let s = slicer.compute(crit);
        (p, s)
    }

    #[test]
    fn straightline_dataflow_chain() {
        let (p, s) = slice_for(
            r#"
fn main() {
entry:
  a = const 1
  b = const 2
  c = add a, b
  d = mul c, 2
  unused = const 99
  assert d, "boom"
  ret
}
"#,
            "main",
            0,
            5,
        );
        let main = &p.functions[0];
        let names_in_slice: Vec<&str> = main.blocks[0]
            .instrs
            .iter()
            .filter(|i| s.contains(i.id))
            .filter_map(|i| i.op.def().map(|v| main.var_name(v)))
            .collect();
        assert!(names_in_slice.contains(&"a"));
        assert!(names_in_slice.contains(&"b"));
        assert!(names_in_slice.contains(&"c"));
        assert!(names_in_slice.contains(&"d"));
        assert!(
            !names_in_slice.contains(&"unused"),
            "irrelevant statement excluded: {names_in_slice:?}"
        );
        // Criterion is first in backward order.
        assert_eq!(s.ordered[0], s.criterion);
    }

    #[test]
    fn interprocedural_through_return_value() {
        let (p, s) = slice_for(
            r#"
fn mk(x) {
entry:
  y = add x, 1
  ret y
}
fn main() {
entry:
  a = const 41
  r = call mk(a)
  assert r, "boom"
  ret
}
"#,
            "main",
            0,
            2,
        );
        let mk = p.function_by_name("mk").unwrap();
        let add_stmt = mk.blocks[0].instrs[0].id;
        let ret_stmt = mk.blocks[0].term.id();
        assert!(s.contains(add_stmt), "callee computation in slice");
        assert!(s.contains(ret_stmt), "callee return in slice");
        let main = p.function_by_name("main").unwrap();
        assert!(s.contains(main.blocks[0].instrs[0].id), "argument source");
        assert!(s.contains(main.blocks[0].instrs[1].id), "the call itself");
    }

    #[test]
    fn interprocedural_through_arguments() {
        // The criterion is inside the callee; the actual argument at the
        // callsite must be in the slice (getArgValues).
        let (p, s) = slice_for(
            r#"
fn check(v) {
entry:
  assert v, "boom"
  ret
}
fn main() {
entry:
  a = const 0
  call check(a)
  ret
}
"#,
            "check",
            0,
            0,
        );
        let main = p.function_by_name("main").unwrap();
        assert!(s.contains(main.blocks[0].instrs[0].id), "a = const 0");
        assert!(s.contains(main.blocks[0].instrs[1].id), "callsite");
    }

    #[test]
    fn globals_link_stores_to_loads() {
        let (p, s) = slice_for(
            r#"
global g = 0
global other = 0
fn main() {
entry:
  store $g, 7
  store $other, 8
  v = load $g
  assert v, "boom"
  ret
}
"#,
            "main",
            0,
            3,
        );
        let main = &p.functions[0];
        assert!(s.contains(main.blocks[0].instrs[0].id), "store $g");
        assert!(
            !s.contains(main.blocks[0].instrs[1].id),
            "store to unrelated global excluded"
        );
    }

    #[test]
    fn control_dependences_pull_in_branches() {
        let (p, s) = slice_for(
            r#"
global g = 0
fn main() {
entry:
  c = load $g
  z = cmp eq c, 0
  condbr z, danger, safe
danger:
  x = load 0
  br safe
safe:
  ret
}
"#,
            "main",
            1,
            0,
        );
        let main = &p.functions[0];
        let branch = main.blocks[0].term.id();
        let cmp = main.blocks[0].instrs[1].id;
        let load_g = main.blocks[0].instrs[0].id;
        assert!(s.contains(branch), "controlling branch in slice");
        assert!(s.contains(cmp), "branch condition in slice");
        assert!(s.contains(load_g), "condition's data source in slice");
    }

    #[test]
    fn pbzip2_shape_cross_thread_statements_included() {
        // Criterion: the lock in cons. The slice must include main's
        // free/store-NULL even though they are in a sibling thread region.
        let text = r#"
fn cons(q) {
entry:
  m = load q
  lock m
  unlock m
  ret
}
fn main() {
entry:
  q = alloc 1
  mu = alloc 1
  store q, mu
  t = spawn cons(q)
  free mu
  store q, 0
  join t
  ret
}
"#;
        let (p, s) = slice_for(text, "cons", 0, 1);
        let main = p.function_by_name("main").unwrap();
        let free_stmt = main.blocks[0].instrs[4].id;
        let store_null = main.blocks[0].instrs[5].id;
        let spawn_stmt = main.blocks[0].instrs[3].id;
        let alloc_q = main.blocks[0].instrs[0].id;
        assert!(s.contains(spawn_stmt), "spawn in slice (arg source)");
        assert!(s.contains(alloc_q), "q's allocation in slice");
        let cons = p.function_by_name("cons").unwrap();
        assert!(s.contains(cons.blocks[0].instrs[0].id), "m = load q");
        // The root-cause stores write through *pointer registers* under
        // different names than cons's read of `q` and lock of `m`. The
        // points-to analysis proves both pairs may alias, so the
        // alias-aware slicer includes them statically.
        assert!(s.contains(store_null), "aliasing store found statically");
        assert!(s.contains(free_stmt), "aliasing free found statically");
    }

    #[test]
    fn pbzip2_shape_without_alias_misses_the_racing_writes() {
        // The alias-free ablation reproduces the PR-1 slice: the writes
        // through pointer names are invisible to syntactic data flow and
        // only runtime watchpoints / race seeding would recover them.
        let text = r#"
fn cons(q) {
entry:
  m = load q
  lock m
  unlock m
  ret
}
fn main() {
entry:
  q = alloc 1
  mu = alloc 1
  store q, mu
  t = spawn cons(q)
  free mu
  store q, 0
  join t
  ret
}
"#;
        let p = parse_program("t", text).unwrap();
        let cons = p.function_by_name("cons").unwrap();
        let crit = cons.blocks[0].instrs[1].id;
        let slicer = StaticSlicer::new(&p);
        let s = slicer.compute_without_alias(crit);
        let main = p.function_by_name("main").unwrap();
        let free_stmt = main.blocks[0].instrs[4].id;
        let store_null = main.blocks[0].instrs[5].id;
        assert!(!s.contains(store_null), "alias-free slice misses the store");
        assert!(!s.contains(free_stmt), "alias-free slice misses the free");
        // The alias-aware slice is a superset of the alias-free one.
        let aware = slicer.compute(crit);
        for id in &s.ordered {
            assert!(aware.contains(*id), "alias-aware slice is a superset");
        }
    }

    #[test]
    fn aliased_heap_write_two_names_one_cell() {
        // Two pointer registers name the same heap cell across threads;
        // the write goes through one name in `main`, the read through the
        // other in the spawned thread. The points-to analysis must connect
        // them — no race detector involved.
        let text = r#"
fn reader(q) {
entry:
  v = load q
  assert v, "boom"
  ret
}
fn main() {
entry:
  p = alloc 4
  t = spawn reader(p)
  r = gep p, 0
  store r, 7
  join t
  ret
}
"#;
        let p = parse_program("t", text).unwrap();
        let reader = p.function_by_name("reader").unwrap();
        let crit = reader.blocks[0].instrs[1].id;
        let slicer = StaticSlicer::new(&p);
        let s = slicer.compute(crit);
        let main = p.function_by_name("main").unwrap();
        let store_r = main.blocks[0].instrs[3].id;
        assert!(
            s.contains(store_r),
            "write through the aliased name is in the slice"
        );
        assert!(
            !slicer.compute_without_alias(crit).contains(store_r),
            "the alias-free ablation misses it"
        );
    }

    #[test]
    fn distinct_heap_cells_do_not_alias_into_the_slice() {
        // Precision check: a store to a *different* allocation must not be
        // pulled in by the alias-aware pass, even across threads.
        let text = r#"
fn reader(q) {
entry:
  v = load q
  assert v, "boom"
  ret
}
fn main() {
entry:
  p = alloc 4
  other = alloc 4
  t = spawn reader(p)
  store other, 9
  join t
  ret
}
"#;
        let p = parse_program("t", text).unwrap();
        let reader = p.function_by_name("reader").unwrap();
        let crit = reader.blocks[0].instrs[1].id;
        let slicer = StaticSlicer::new(&p);
        let s = slicer.compute(crit);
        let main = p.function_by_name("main").unwrap();
        let store_other = main.blocks[0].instrs[3].id;
        assert!(
            !s.contains(store_other),
            "write to a distinct allocation stays out of the slice"
        );
    }

    #[test]
    fn thread_confined_aliased_writes_left_to_watchpoints() {
        // In a sequential program the same two-names-one-cell shape is
        // *not* pulled statically: the cell never escapes its thread, so
        // the flow is left to runtime watchpoint discovery (the paper's
        // §3.1 rationale for skipping whole-program alias analysis — a
        // sequential slice must not balloon).
        let text = r#"
fn main() {
entry:
  p = alloc 4
  r = gep p, 0
  store r, 7
  v = load p
  assert v, "boom"
  ret
}
"#;
        let (p, s) = slice_for(text, "main", 0, 4);
        let main = &p.functions[0];
        let store_r = main.blocks[0].instrs[2].id;
        assert!(
            !s.contains(store_r),
            "thread-confined aliased write stays out of the static slice"
        );
    }

    #[test]
    fn sigma_prefix_is_distance_ordered() {
        let (_, s) = slice_for(
            r#"
fn main() {
entry:
  a = const 1
  b = add a, 1
  c = add b, 1
  assert c, "boom"
  ret
}
"#,
            "main",
            0,
            3,
        );
        assert_eq!(s.prefix(1), &[s.criterion]);
        assert_eq!(s.prefix(2).len(), 2);
        assert!(s.prefix(100).len() <= s.len());
        // Distances weakly increase along `ordered`.
        assert_eq!(s.ordered[0], s.criterion);
    }

    #[test]
    fn unreachable_code_is_not_in_slice() {
        let (p, s) = slice_for(
            r#"
global g = 0
fn never() {
entry:
  store $g, 1
  ret
}
fn main() {
entry:
  v = load $g
  assert v, "boom"
  ret
}
"#,
            "main",
            0,
            1,
        );
        // `never` is never called: its store is not backward-feasible.
        let never = p.function_by_name("never").unwrap();
        assert!(
            !s.contains(never.blocks[0].instrs[0].id),
            "store in uncalled function excluded by flow-sensitivity"
        );
    }

    #[test]
    fn no_alias_analysis_pointer_stores_missed() {
        // Under the alias-free ablation a cross-thread store through a
        // pointer that aliases the loaded global is *not* found statically
        // (the PR-1 behaviour: runtime watchpoints add it later). The
        // alias-aware default finds it.
        let text = r#"
global cell = 0
fn reader(unused) {
entry:
  v = load $cell
  assert v, "boom"
  ret
}
fn main() {
entry:
  t = spawn reader(0)
  p = gep $cell, 0
  store p, 5
  join t
  ret
}
"#;
        let p = parse_program("t", text).unwrap();
        let reader = p.function_by_name("reader").unwrap();
        let crit = reader.blocks[0].instrs[1].id;
        let main = p.function_by_name("main").unwrap();
        let store_p = main.blocks[0].instrs[2].id;
        let slicer = StaticSlicer::new(&p);
        let without = slicer.compute_without_alias(crit);
        assert!(
            !without.contains(store_p),
            "alias-free slice misses the store through the pointer"
        );
        let with = slicer.compute(crit);
        assert!(
            with.contains(store_p),
            "alias-aware slice resolves the pointer to $cell"
        );
    }

    #[test]
    fn svfg_slice_is_subset_and_keeps_pbzip2_root_cause() {
        let text = r#"
fn cons(q) {
entry:
  m = load q
  lock m
  unlock m
  ret
}
fn main() {
entry:
  q = alloc 1
  mu = alloc 1
  store q, mu
  t = spawn cons(q)
  free mu
  store q, 0
  join t
  ret
}
"#;
        let p = parse_program("t", text).unwrap();
        let cons = p.function_by_name("cons").unwrap();
        let crit = cons.blocks[0].instrs[1].id;
        let slicer = StaticSlicer::new(&p);
        let svfg = slicer.compute_with_svfg(crit);
        let legacy = slicer.compute(crit);
        for id in &svfg.ordered {
            assert!(legacy.contains(*id), "SVFG slice ⊆ legacy slice");
        }
        let main = p.function_by_name("main").unwrap();
        assert!(
            svfg.contains(main.blocks[0].instrs[4].id),
            "racing free survives the sparse slice"
        );
        assert!(
            svfg.contains(main.blocks[0].instrs[5].id),
            "racing store-null survives the sparse slice"
        );
        assert_eq!(svfg.ordered[0], svfg.criterion);
    }

    #[test]
    fn svfg_slice_prunes_constprop_dead_stores() {
        // The legacy slicer pulls both stores of $g; the SVFG slice drops
        // the one behind `if (1)`'s dead arm.
        let text = r#"
global g = 0
fn main() {
entry:
  c = const 1
  condbr c, yes, no
no:
  store $g, 7
  br done
yes:
  store $g, 9
  br done
done:
  v = load $g
  assert v, "boom"
  ret
}
"#;
        let p = parse_program("t", text).unwrap();
        let main = &p.functions[0];
        // Block ids follow first-reference order: entry, yes, no, done.
        let store_live = main.blocks[1].instrs[0].id;
        let store_dead = main.blocks[2].instrs[0].id;
        let load = main.blocks[3].instrs[0].id;
        let slicer = StaticSlicer::new(&p);
        let legacy = slicer.compute(load);
        let sparse = slicer.compute_with_svfg(load);
        assert!(legacy.contains(store_dead), "legacy over-approximates");
        assert!(!sparse.contains(store_dead), "SVFG slice prunes it");
        assert!(sparse.contains(store_live));
        assert!(sparse.len() < legacy.len());
    }

    #[test]
    fn svfg_slice_context_sensitivity_drops_unrelated_call_chain() {
        // Two calls to the same identity function; the criterion consumes
        // r1, so b (the other call's argument) must stay out.
        let text = r#"
fn id(x) {
entry:
  ret x
}
fn main() {
entry:
  a = const 1
  b = const 2
  r1 = call id(a)
  r2 = call id(b)
  assert r1, "boom"
  ret
}
"#;
        let p = parse_program("t", text).unwrap();
        let main = p.function_by_name("main").unwrap();
        let a_def = main.blocks[0].instrs[0].id;
        let b_def = main.blocks[0].instrs[1].id;
        let crit = main.blocks[0].instrs[4].id;
        let slicer = StaticSlicer::new(&p);
        let sparse = slicer.compute_with_svfg(crit);
        assert!(sparse.contains(a_def), "r1's argument source in slice");
        assert!(
            !sparse.contains(b_def),
            "the other call site's argument stays out (1-CFA)"
        );
        // The legacy slicer, being context-insensitive, keeps both.
        assert!(slicer.compute(crit).contains(b_def));
    }

    #[test]
    fn slice_len_counts_match_membership() {
        let (_, s) = slice_for(
            "fn main() {\nentry:\n  a = const 1\n  assert a, \"x\"\n  ret\n}\n",
            "main",
            0,
            1,
        );
        assert_eq!(s.len(), s.ordered.len());
        for id in &s.ordered {
            assert!(s.contains(*id));
        }
    }
}
