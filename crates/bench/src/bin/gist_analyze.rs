//! `gist-analyze` — the static analysis pass pipeline as a standalone tool.
//!
//! Runs the `gist-analysis` passes (IR verifier, lockset race detector,
//! lock-order deadlock detector, dead-store lint) over MiniC programs and
//! prints rustc-style diagnostics. The `lint` subcommand swaps in the
//! value-flow detector suite (use-after-free GA020, double-free GA021,
//! atomicity candidates GA022, null-flow-into-dereference GA023) built on
//! the sparse value-flow graph with path-feasibility pruning.
//!
//! ```text
//! gist-analyze <file.minic> [more.minic ...]   # analyze source files
//! gist-analyze --bugbase                       # analyze every bugbase program
//! gist-analyze lint --bugbase                  # value-flow lints, whole bugbase
//! gist-analyze lint --json prog.minic          # machine-readable findings
//! ```
//!
//! `--json` emits one JSON document (an array of per-program objects) on
//! stdout using the hand-rolled `gist_obs::Json` encoder; the findings are
//! pre-sorted by (severity, location, code, message), so output is
//! byte-identical across runs.
//!
//! Exit status: 0 clean (warnings allowed), 1 if any pass reported an
//! error, 2 on usage or parse failure.

use gist_analysis::{
    default_passes, has_errors, lint_passes, render_report, Diagnostic, PassManager, Severity,
};
use gist_ir::Program;
use gist_obs::json::Json;

use gist_ir::parser::parse_program;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let lint = args.first().map(String::as_str) == Some("lint");
    if lint {
        args.remove(0);
    }
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    if args.is_empty() {
        eprintln!("usage: gist-analyze [lint] [--json] <file.minic> [more.minic ...] | --bugbase");
        std::process::exit(2);
    }
    let passes: fn() -> PassManager = if lint { lint_passes } else { default_passes };
    let mut any_errors = false;
    let mut reports: Vec<Json> = Vec::new();
    if args.iter().any(|a| a == "--bugbase") {
        for bug in gist_bugbase::all_bugs() {
            if !json {
                println!("=== {} ({}) ===", bug.name, bug.display);
            }
            any_errors |= analyze(bug.name, &bug.program, passes(), json, &mut reports);
        }
    } else {
        for path in &args {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            let name = path
                .rsplit('/')
                .next()
                .and_then(|f| f.split('.').next())
                .unwrap_or("program")
                .to_owned();
            let program = match parse_program(&name, &text) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: parse failure\n  --> {path}:{}\n  {}", e.line, e.msg);
                    std::process::exit(2);
                }
            };
            if !json {
                println!("=== {path} ===");
            }
            any_errors |= analyze(path, &program, passes(), json, &mut reports);
        }
    }
    if json {
        println!("{}", Json::Arr(reports).pretty());
    }
    std::process::exit(if any_errors { 1 } else { 0 });
}

/// Runs the pass pipeline over one program. In text mode, prints the
/// rustc-style report; in JSON mode, appends a per-program object to
/// `reports`. Returns true if any diagnostic is an error.
fn analyze(
    name: &str,
    program: &Program,
    pm: PassManager,
    json: bool,
    reports: &mut Vec<Json>,
) -> bool {
    let diags = pm.run(program);
    if json {
        reports.push(program_json(name, program, &diags));
    } else if diags.is_empty() {
        println!("ok: no findings ({} passes)", pm.pass_names().len());
    } else {
        println!("{}", render_report(Some(program), &diags));
    }
    has_errors(&diags)
}

/// Encodes one program's findings as a JSON object. Diagnostics arrive
/// pre-sorted from the pass manager, so the encoding is deterministic.
fn program_json(name: &str, program: &Program, diags: &[Diagnostic]) -> Json {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let findings = diags
        .iter()
        .map(|d| {
            let where_ = if d.loc.is_unknown() {
                "<unknown>".to_owned()
            } else {
                program.source_map.display(d.loc)
            };
            Json::Obj(vec![
                ("code".into(), Json::Str(d.code.to_owned())),
                ("severity".into(), Json::Str(d.severity.to_string())),
                ("message".into(), Json::Str(d.message.clone())),
                ("where".into(), Json::Str(where_)),
                (
                    "notes".into(),
                    Json::Arr(d.notes.iter().map(|n| Json::Str(n.clone())).collect()),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("program".into(), Json::Str(name.to_owned())),
        ("errors".into(), Json::U64(errors as u64)),
        ("warnings".into(), Json::U64((diags.len() - errors) as u64)),
        ("findings".into(), Json::Arr(findings)),
    ])
}
