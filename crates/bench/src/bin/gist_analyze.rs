//! `gist-analyze` — the static analysis pass pipeline as a standalone tool.
//!
//! Runs the `gist-analysis` passes (IR verifier, lockset race detector,
//! lock-order deadlock detector, dead-store lint) over MiniC programs and
//! prints rustc-style diagnostics. The `lint` subcommand swaps in the
//! value-flow detector suite (use-after-free GA020, double-free GA021,
//! atomicity candidates GA022, null-flow-into-dereference GA023,
//! cross-thread order violations GA024) built on the sparse value-flow
//! graph with path-feasibility pruning and the happens-before/MHP
//! relation. The `predict` subcommand emits static predicted failure
//! sketches: the minimal two-thread orderings behind each cross-thread
//! finding, derived without running the program.
//!
//! ```text
//! gist-analyze <file.minic> [more.minic ...]   # analyze source files
//! gist-analyze --bugbase                       # analyze every bugbase program
//! gist-analyze lint --bugbase                  # value-flow lints, whole bugbase
//! gist-analyze lint --json prog.minic          # machine-readable findings
//! gist-analyze predict --bugbase               # static predicted sketches
//! ```
//!
//! `--json` emits one JSON document (an array of per-program objects) on
//! stdout using the hand-rolled `gist_obs::Json` encoder; the findings are
//! pre-sorted by (severity, location, code, message), so output is
//! byte-identical across runs.
//!
//! Exit status contract (documented in README):
//! * **0** — clean, or *candidate/advisory findings only*: atomicity
//!   candidates (GA022) name a suspicious interleaving window, not a
//!   confirmed bug, and style advisories (dead blocks GA005, write-only
//!   globals GA006) never gate a build.
//! * **1** — at least one confirmed finding: any error-severity
//!   diagnostic, or a confirmed detector warning (GA020/GA021 lifetime,
//!   GA023 null flow, GA024 order violation).
//! * **2** — usage, read, or parse failure.

use gist_analysis::{
    default_passes, lint_passes, predicted_sketches, render_prediction, render_report, Diagnostic,
    PassManager, PredictedSketch, Severity,
};
use gist_ir::Program;
use gist_obs::json::Json;

use gist_ir::parser::parse_program;

/// Warning codes that represent confirmed findings rather than
/// candidates or advisories; they drive exit status 1 alongside errors.
const CONFIRMED_WARNINGS: &[&str] = &["GA020", "GA021", "GA023", "GA024"];

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Default,
    Lint,
    Predict,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.first().map(String::as_str) {
        Some("lint") => Mode::Lint,
        Some("predict") => Mode::Predict,
        _ => Mode::Default,
    };
    if mode != Mode::Default {
        args.remove(0);
    }
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    if args.is_empty() {
        eprintln!(
            "usage: gist-analyze [lint|predict] [--json] <file.minic> [more.minic ...] | --bugbase"
        );
        std::process::exit(2);
    }
    let mut confirmed = false;
    let mut reports: Vec<Json> = Vec::new();
    let run = |name: &str, program: &Program, reports: &mut Vec<Json>| match mode {
        Mode::Predict => predict(name, program, json, reports),
        m => {
            let passes: fn() -> PassManager = if m == Mode::Lint {
                lint_passes
            } else {
                default_passes
            };
            analyze(name, program, passes(), json, reports)
        }
    };
    if args.iter().any(|a| a == "--bugbase") {
        for bug in gist_bugbase::all_bugs() {
            if !json {
                println!("=== {} ({}) ===", bug.name, bug.display);
            }
            confirmed |= run(bug.name, &bug.program, &mut reports);
        }
    } else {
        for path in &args {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            let name = path
                .rsplit('/')
                .next()
                .and_then(|f| f.split('.').next())
                .unwrap_or("program")
                .to_owned();
            let program = match parse_program(&name, &text) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: parse failure\n  --> {path}:{}\n  {}", e.line, e.msg);
                    std::process::exit(2);
                }
            };
            if !json {
                println!("=== {path} ===");
            }
            confirmed |= run(path, &program, &mut reports);
        }
    }
    if json {
        println!("{}", Json::Arr(reports).pretty());
    }
    std::process::exit(if confirmed { 1 } else { 0 });
}

/// True when the diagnostic gates exit status 1: an error, or a
/// confirmed-detector warning (not a candidate/advisory).
fn is_confirmed(d: &Diagnostic) -> bool {
    d.severity == Severity::Error || CONFIRMED_WARNINGS.contains(&d.code)
}

/// Runs the pass pipeline over one program. In text mode, prints the
/// rustc-style report; in JSON mode, appends a per-program object to
/// `reports`. Returns true if any diagnostic is confirmed.
fn analyze(
    name: &str,
    program: &Program,
    pm: PassManager,
    json: bool,
    reports: &mut Vec<Json>,
) -> bool {
    let diags = pm.run(program);
    if json {
        reports.push(program_json(name, program, &diags));
    } else if diags.is_empty() {
        println!("ok: no findings ({} passes)", pm.pass_names().len());
    } else {
        println!("{}", render_report(Some(program), &diags));
    }
    diags.iter().any(is_confirmed)
}

/// Emits the static predicted sketches for one program. Predictions
/// never gate the exit status — they are forecasts, not findings.
fn predict(name: &str, program: &Program, json: bool, reports: &mut Vec<Json>) -> bool {
    let sketches = predicted_sketches(program);
    if json {
        reports.push(Json::Obj(vec![
            ("program".into(), Json::Str(name.to_owned())),
            (
                "predictions".into(),
                Json::Arr(sketches.iter().map(prediction_json).collect()),
            ),
        ]));
    } else if sketches.is_empty() {
        println!("no predicted sketches (sequential or fully ordered)");
    } else {
        for s in &sketches {
            print!("{}", render_prediction(s));
        }
    }
    false
}

/// Encodes one predicted sketch as a JSON object.
fn prediction_json(s: &PredictedSketch) -> Json {
    Json::Obj(vec![
        ("code".into(), Json::Str(s.code.to_owned())),
        ("title".into(), Json::Str(s.title.clone())),
        (
            "threads".into(),
            Json::Arr(s.threads.iter().map(|t| Json::Str(t.clone())).collect()),
        ),
        (
            "steps".into(),
            Json::Arr(
                s.steps
                    .iter()
                    .map(|st| {
                        Json::Obj(vec![
                            ("thread".into(), Json::U64(st.thread as u64)),
                            ("kind".into(), Json::Str(st.kind.to_owned())),
                            ("loc".into(), Json::Str(st.loc.clone())),
                            ("note".into(), Json::Str(st.note.to_owned())),
                            ("failing".into(), Json::Bool(st.stmt == s.failing)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Encodes one program's findings as a JSON object. Diagnostics arrive
/// pre-sorted from the pass manager, so the encoding is deterministic.
fn program_json(name: &str, program: &Program, diags: &[Diagnostic]) -> Json {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let findings = diags
        .iter()
        .map(|d| {
            let where_ = if d.loc.is_unknown() {
                "<unknown>".to_owned()
            } else {
                program.source_map.display(d.loc)
            };
            Json::Obj(vec![
                ("code".into(), Json::Str(d.code.to_owned())),
                ("severity".into(), Json::Str(d.severity.to_string())),
                ("message".into(), Json::Str(d.message.clone())),
                ("where".into(), Json::Str(where_)),
                (
                    "notes".into(),
                    Json::Arr(d.notes.iter().map(|n| Json::Str(n.clone())).collect()),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("program".into(), Json::Str(name.to_owned())),
        ("errors".into(), Json::U64(errors as u64)),
        ("warnings".into(), Json::U64((diags.len() - errors) as u64)),
        ("findings".into(), Json::Arr(findings)),
    ])
}
