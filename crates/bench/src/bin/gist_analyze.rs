//! `gist-analyze` — the static analysis pass pipeline as a standalone tool.
//!
//! Runs the `gist-analysis` passes (IR verifier, lockset race detector,
//! lock-order deadlock detector, dead-store lint) over MiniC programs and
//! prints rustc-style diagnostics.
//!
//! ```text
//! gist-analyze <file.minic> [more.minic ...]   # analyze source files
//! gist-analyze --bugbase                       # analyze every bugbase program
//! ```
//!
//! Exit status: 0 clean (warnings allowed), 1 if any pass reported an
//! error, 2 on usage or parse failure.

use gist_analysis::{default_passes, has_errors, render_report};
use gist_ir::parser::parse_program;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: gist-analyze <file.minic> [more.minic ...] | --bugbase");
        std::process::exit(2);
    }
    let mut any_errors = false;
    if args.iter().any(|a| a == "--bugbase") {
        for bug in gist_bugbase::all_bugs() {
            println!("=== {} ({}) ===", bug.name, bug.display);
            any_errors |= analyze(&bug.program);
        }
    } else {
        for path in &args {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            let name = path
                .rsplit('/')
                .next()
                .and_then(|f| f.split('.').next())
                .unwrap_or("program")
                .to_owned();
            let program = match parse_program(&name, &text) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: parse failure\n  --> {path}:{}\n  {}", e.line, e.msg);
                    std::process::exit(2);
                }
            };
            println!("=== {path} ===");
            any_errors |= analyze(&program);
        }
    }
    std::process::exit(if any_errors { 1 } else { 0 });
}

/// Runs the pass pipeline over one program and prints its report.
/// Returns true if any diagnostic is an error.
fn analyze(program: &gist_ir::Program) -> bool {
    let pm = default_passes();
    let diags = pm.run(program);
    if diags.is_empty() {
        println!("ok: no findings ({} passes)", pm.pass_names().len());
        return false;
    }
    println!("{}", render_report(Some(program), &diags));
    has_errors(&diags)
}
