//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro all                 # everything below, in order
//! repro table1              # Table 1: sizes + latency per bug
//! repro fig9                # accuracy per bug
//! repro fig10               # technique contributions
//! repro fig11               # overhead vs tracked slice size
//! repro fig12               # initial σ tradeoff
//! repro fig13               # rr vs Intel PT full tracing
//! repro overhead            # §5.3 per-bug overhead breakdown
//! repro swtrace             # §6 software-only tracing factors
//! repro ablations           # design-decision ablations (DESIGN.md)
//! repro dataflow            # alias-aware slicing x dead-store pruning
//! repro svfg                # sparse value-flow slicing + feasibility pruning
//! repro mhp                 # happens-before/MHP pruning on vs off
//! repro races               # static race candidates + ranking ablation
//! repro sketch <bug-name>   # render a failure sketch (e.g. pbzip2-1)
//!   ... sketch <bug> --explain   # + provenance chains from the journal
//! repro bugs                # list bug names
//! repro bench               # full-bugbase perf run -> BENCH_gist.json
//!                           #   + flight recorder -> JOURNAL_gist.bin
//!                           #   + JSONL export    -> JOURNAL_gist.jsonl
//! repro bench --synthetic N --seed S
//!                           # N seeded synthetic bugs through the full
//!                           # AsT loop -> BENCH_gist.json + accuracy
//!                           # table on stdout; exits 1 below the
//!                           # recorded recovery floor
//! ```
//!
//! `table1`, `fig9`, `all`, and `bench` exit non-zero when any bug's sketch
//! accuracy falls below the floors recorded in
//! `gist_bench::expectations::EXPECTATIONS`.

use gist_bench::bench_report;
use gist_bench::expectations;
use gist_bench::experiments;
use gist_bench::format;
use gist_coop::BugEvaluation;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    match cmd {
        "table1" => table1(),
        "fig9" => fig9(),
        "bench" if args.iter().any(|a| a == "--synthetic") => synth_bench(&args[1..]),
        "bench" => bench(args.get(1).map(String::as_str)),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "fig13" => fig13(),
        "overhead" => overhead(),
        "ablations" => println!("{}", gist_bench::ablations::ablations_text()),
        "dataflow" | "--dataflow" => {
            println!("{}", gist_bench::ablations::dataflow_text());
        }
        "svfg" | "--svfg" => {
            println!("{}", gist_bench::ablations::svfg_text());
        }
        "mhp" | "--mhp" => {
            println!("{}", gist_bench::ablations::mhp_text());
        }
        "races" => races(),
        "swtrace" => swtrace(),
        "bugs" => bugs(),
        "sketch" => {
            let name = args.get(1).map(String::as_str).unwrap_or("pbzip2-1");
            let explain = args.iter().any(|a| a == "--explain");
            let rendered = if explain {
                experiments::sketch_for_explained(name)
            } else {
                experiments::sketch_for(name)
            };
            match rendered {
                Some(s) => println!("{s}"),
                None => {
                    eprintln!("unknown bug '{name}'; try `repro bugs`");
                    std::process::exit(1);
                }
            }
        }
        "all" => {
            let evals = experiments::table1();
            println!("{}", format::table1_text(&evals));
            println!("{}", format::fig9_text(&evals));
            fig10();
            fig11();
            fig12();
            fig13();
            overhead();
            swtrace();
            for name in ["pbzip2-1", "curl-965", "apache-21287"] {
                println!("\n=== sketch {name} ===\n");
                if let Some(s) = experiments::sketch_for(name) {
                    println!("{s}");
                }
            }
            gate_accuracy(&evals);
        }
        other => {
            eprintln!("unknown command '{other}'");
            eprintln!("commands: all table1 fig9 fig10 fig11 fig12 fig13 overhead swtrace ablations dataflow svfg mhp races sketch bugs bench");
            std::process::exit(2);
        }
    }
}

/// Exits non-zero, naming each failing bug, when accuracy falls below the
/// recorded per-bug floors (previously `repro` exited 0 on regressions).
fn gate_accuracy(evals: &[BugEvaluation]) {
    let violations = expectations::check(evals);
    if !violations.is_empty() {
        eprintln!("accuracy regression against recorded expectations:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}

fn table1() {
    let evals = experiments::table1();
    println!("{}", format::table1_text(&evals));
    gate_accuracy(&evals);
}

fn fig9() {
    let evals = experiments::table1();
    println!("{}", format::fig9_text(&evals));
    gate_accuracy(&evals);
}

fn bench(out: Option<&str>) {
    let path = out.unwrap_or("BENCH_gist.json");
    let (report, evals) = bench_report::run(None);
    let json = report.to_json();
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    // The flight-recorder journal rides along next to the report, named
    // after it: the canonical binary journal (`BENCH_gist.json` ->
    // `JOURNAL_gist.bin`) plus its JSONL export (`JOURNAL_gist.jsonl`);
    // explore either with `gist-trace summary|grep|explain|query|export`.
    let (binary_path, jsonl_path) = if path == "BENCH_gist.json" {
        (
            "JOURNAL_gist.bin".to_owned(),
            "JOURNAL_gist.jsonl".to_owned(),
        )
    } else {
        (
            format!("{path}.journal.bin"),
            format!("{path}.journal.jsonl"),
        )
    };
    if let Err(e) = std::fs::write(&binary_path, &report.journal_binary) {
        eprintln!("cannot write {binary_path}: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&jsonl_path, &report.journal) {
        eprintln!("cannot write {jsonl_path}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {path} ({} bugs) + {binary_path} ({} bytes) + {jsonl_path} ({} bytes)",
        evals.len(),
        report.journal_binary.len(),
        report.journal.len()
    );
    gate_accuracy(&evals);
}

/// `bench --synthetic N [--seed S] [--out PATH]`: the synthetic-bugbase
/// accuracy run. Deterministic for fixed `(N, S)`; exits 1 when recovery
/// falls below the recorded floor.
fn synth_bench(args: &[String]) {
    let flag_value = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let parse_u64 = |flag: &str, default: u64| -> u64 {
        match flag_value(flag) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} wants an unsigned integer, got '{v}'");
                std::process::exit(2);
            }),
        }
    };
    let n = parse_u64("--synthetic", 200);
    let seed = parse_u64("--seed", 1);
    let path = flag_value("--out")
        .map(String::as_str)
        .unwrap_or("BENCH_gist.json");
    let report = gist_bench::synth_report::run_synth(n, seed);
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("{}", report.table_text());
    println!("wrote {path} ({n} synthetic bugs)");
    let violations = expectations::check_synth(&report);
    if !violations.is_empty() {
        eprintln!("synthetic bugbase regression against recorded expectations:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}

fn fig10() {
    println!("{}", format::fig10_text(&experiments::fig10()));
}

fn fig11() {
    println!("{}", format::fig11_text(&experiments::fig11(25)));
}

fn fig12() {
    println!("{}", format::fig12_text(&experiments::fig12()));
}

fn fig13() {
    println!("{}", format::fig13_text(&experiments::fig13(15)));
}

fn overhead() {
    println!(
        "{}",
        format::overhead_text(&experiments::overhead_sigma2(30))
    );
}

fn swtrace() {
    println!("{}", format::swtrace_text(&experiments::swtrace_rows(10)));
}

fn races() {
    println!("{}", gist_bench::races::races_text());
    println!("{}", gist_bench::races::ranking_text());
}

fn bugs() {
    for bug in gist_bugbase::all_bugs() {
        println!(
            "{:<18} {} {} (bug {}) — {:?}",
            bug.name, bug.software, bug.version, bug.bug_id, bug.class
        );
    }
}
