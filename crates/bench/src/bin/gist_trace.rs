//! `gist-trace` — explorer for flight-recorder journals.
//!
//! ```text
//! gist-trace summary [journal]              # totals, kinds, traces, gap warning
//! gist-trace grep <event-kind> [journal]    # events of a kind (or layer)
//! gist-trace explain <bug> <step> [journal] # a sketch step's provenance
//! gist-trace query promotions [--in <bug>] [journal]
//! gist-trace query promoted <iid> [--in <bug>] [journal]
//! gist-trace query hits <iid> [--in <bug>] [journal]
//! gist-trace query decode <bug> <step> [journal]
//! gist-trace query chain <seq> [journal]
//! gist-trace follow <bug>                   # live-tail a fresh diagnosis
//! gist-trace export --chrome|--jsonl [journal] [-o out]
//! ```
//!
//! `journal` defaults to `JOURNAL_gist.bin` (the canonical binary journal
//! `repro -- bench` writes next to `BENCH_gist.json`), falling back to
//! `JOURNAL_gist.jsonl`; both formats are auto-detected by content.
//! `explain`, `query decode`, and `--in` accept either a trace label or a
//! bug short name — names like `pbzip2-1` work because the bench titles
//! traces `Failure Sketch for <display>`.
//!
//! `query` answers Lumos-style provenance questions: `promotions` /
//! `promoted` resolve each `ast.promoted` to the watch hit (or slice)
//! that caused it, `decode` walks a sketch step's chain to the PT decode
//! that fed it, `hits` lists watchpoint hits at a statement, and `chain`
//! expands any event's transitive provenance. `follow` runs the named
//! bug's diagnosis on a background thread and streams journal events as
//! the AsT loop produces them (cursored incremental drains: every event
//! exactly once).
//!
//! Exit status: 0 ok, 1 lookup failure (unknown trace/step/kind produced
//! nothing, or a follow missed events), 2 usage or parse error.

use gist_bench::trace_tool::{chrome_json, jsonl_text, Journal, LiveTail};

fn usage() -> ! {
    eprintln!(
        "usage:\n  gist-trace summary [journal]\n  gist-trace grep <event-kind> [journal]\n  gist-trace explain <bug> <step> [journal]\n  gist-trace query promotions [--in <bug>] [journal]\n  gist-trace query promoted <iid> [--in <bug>] [journal]\n  gist-trace query hits <iid> [--in <bug>] [journal]\n  gist-trace query decode <bug> <step> [journal]\n  gist-trace query chain <seq> [journal]\n  gist-trace follow <bug>\n  gist-trace export --chrome|--jsonl [journal] [-o out]"
    );
    std::process::exit(2);
}

/// The canonical binary journal when present, else the JSONL export.
fn default_journal() -> &'static str {
    if std::path::Path::new("JOURNAL_gist.bin").exists() {
        "JOURNAL_gist.bin"
    } else {
        "JOURNAL_gist.jsonl"
    }
}

fn load(path: &str) -> Journal {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read journal {path}: {e} (run `repro -- bench` first?)");
            std::process::exit(2);
        }
    };
    match Journal::load_bytes(&bytes) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        }
    }
}

/// Maps a bug short name to the trace label the bench uses; a label (or
/// substring) passes through untouched.
fn explain_label(journal: &Journal, arg: &str) -> String {
    if journal.trace_by_label(arg).is_some() {
        return arg.to_owned();
    }
    match gist_bugbase::bug_by_name(arg) {
        Some(bug) => format!("Failure Sketch for {}", bug.display),
        None => arg.to_owned(),
    }
}

fn print_or_fail(result: Result<Vec<String>, String>) {
    match result {
        Ok(lines) => {
            for l in lines {
                println!("{l}");
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

/// `gist-trace query …`: provenance questions over a loaded journal.
fn query(args: &[String]) {
    let Some(sub) = args.first().map(String::as_str) else {
        usage()
    };
    // `--in <bug>` scopes to one diagnosis trace; remaining positionals
    // are the query's own arguments plus an optional journal path.
    let mut scope: Option<String> = None;
    let mut positional: Vec<&str> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--in" {
            i += 1;
            scope = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
        } else {
            positional.push(&args[i]);
        }
        i += 1;
    }
    let (want, journal_at) = match sub {
        "promotions" => (0, 0),
        "promoted" | "hits" | "chain" => (1, 1),
        "decode" => (2, 2),
        _ => usage(),
    };
    if positional.len() < want || positional.len() > want + 1 {
        usage()
    }
    let path = match positional.get(journal_at) {
        Some(p) => *p,
        None => default_journal(),
    };
    let journal = load(path);
    let trace = scope.map(|s| {
        let label = explain_label(&journal, &s);
        journal.trace_by_label(&label).unwrap_or_else(|| {
            eprintln!("no trace labeled like `{s}` in {path}");
            std::process::exit(1);
        })
    });
    let parse_u64 = |s: &str| {
        s.parse::<u64>().unwrap_or_else(|_| {
            eprintln!("`{s}` is not a number");
            std::process::exit(2);
        })
    };
    match sub {
        "promotions" => {
            let lines = journal.query_promotions(trace);
            if lines.is_empty() {
                eprintln!("no ast.promoted events in {path}");
                std::process::exit(1);
            }
            print_or_fail(Ok(lines));
        }
        "promoted" => print_or_fail(journal.query_promoted(parse_u64(positional[0]), trace)),
        "hits" => {
            let lines = journal.query_hits(parse_u64(positional[0]), trace);
            if lines.is_empty() {
                eprintln!("no watch.hit events for iid={} in {path}", positional[0]);
                std::process::exit(1);
            }
            print_or_fail(Ok(lines));
        }
        "decode" => {
            let label = explain_label(&journal, positional[0]);
            print_or_fail(journal.query_decode(&label, parse_u64(positional[1])));
        }
        "chain" => print_or_fail(journal.query_chain(parse_u64(positional[0]))),
        _ => unreachable!("filtered above"),
    }
}

/// `gist-trace follow <bug>`: runs the bug's diagnosis on a background
/// thread and live-tails the in-process journal ring, printing events as
/// the AsT loop flushes them (per fleet batch and per iteration).
fn follow(bug_name: &str) -> ! {
    let Some(bug) = gist_bugbase::bug_by_name(bug_name) else {
        eprintln!("unknown bug `{bug_name}` (see `repro -- bugs`)");
        std::process::exit(2);
    };
    gist_obs::reset();
    let handle = std::thread::spawn(move || {
        gist_coop::diagnose_bug(&bug, &gist_coop::EvalConfig::default())
    });
    let mut tail = LiveTail::new();
    let print_new = |tail: &mut LiveTail| {
        for e in tail.poll() {
            println!("{}", Journal::event_line(&e));
        }
    };
    loop {
        // Order matters: sample liveness *before* polling, so events
        // flushed between the poll and the thread finishing are caught by
        // the next loop turn (or the final poll below).
        let finished = handle.is_finished();
        print_new(&mut tail);
        if finished {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let _ = handle.join();
    // The diagnosis thread's exit-time flush can land after is_finished
    // flips; joining above ordered it before this final poll.
    print_new(&mut tail);
    eprintln!(
        "followed {} events in {} chunks ({} missed)",
        tail.events.len(),
        tail.nonempty_polls,
        tail.overwritten
    );
    std::process::exit(if tail.overwritten > 0 { 1 } else { 0 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or_else(|| usage());
    match cmd {
        "summary" => {
            let path = match args.get(1) {
                Some(p) => p.as_str(),
                None => default_journal(),
            };
            print!("{}", load(path).summary_text());
        }
        "grep" => {
            let Some(kind) = args.get(1) else { usage() };
            let path = match args.get(2) {
                Some(p) => p.as_str(),
                None => default_journal(),
            };
            let out = load(path).grep_text(kind);
            if out.is_empty() {
                eprintln!("no `{kind}` events in {path}");
                std::process::exit(1);
            }
            print!("{out}");
        }
        "explain" => {
            let (Some(bug), Some(step)) = (args.get(1), args.get(2)) else {
                usage()
            };
            let Ok(step) = step.parse::<u64>() else {
                usage()
            };
            let path = match args.get(3) {
                Some(p) => p.as_str(),
                None => default_journal(),
            };
            let journal = load(path);
            let label = explain_label(&journal, bug);
            print_or_fail(journal.explain_step(&label, step));
        }
        "query" => query(&args[1..]),
        "follow" | "--follow" => {
            let Some(bug) = args.get(1) else { usage() };
            follow(bug);
        }
        "export" => {
            let rest: Vec<&str> = args[1..].iter().map(String::as_str).collect();
            let mut format: Option<&str> = None;
            let mut out_path: Option<&str> = None;
            let mut journal_path: Option<&str> = None;
            let mut i = 0;
            while i < rest.len() {
                match rest[i] {
                    "--chrome" | "--jsonl" => format = Some(rest[i]),
                    "-o" | "--out" => {
                        i += 1;
                        out_path = rest.get(i).copied().or_else(|| usage());
                    }
                    p => journal_path = Some(p),
                }
                i += 1;
            }
            let Some(format) = format else { usage() };
            let journal = load(match journal_path {
                Some(p) => p,
                None => default_journal(),
            });
            let text = if format == "--chrome" {
                chrome_json(&journal)
            } else {
                jsonl_text(&journal)
            };
            match out_path {
                Some(p) => {
                    if let Err(e) = std::fs::write(p, &text) {
                        eprintln!("cannot write {p}: {e}");
                        std::process::exit(2);
                    }
                    eprintln!("wrote {p} ({} bytes)", text.len());
                }
                None => print!("{text}"),
            }
        }
        _ => usage(),
    }
}
