//! `gist-trace` — explorer for flight-recorder journals.
//!
//! ```text
//! gist-trace summary [journal]              # totals, kinds, traces
//! gist-trace grep <event-kind> [journal]    # events of a kind (or layer)
//! gist-trace explain <bug> <step> [journal] # a sketch step's provenance
//! gist-trace export --chrome [journal] [-o out.json]
//! ```
//!
//! `journal` defaults to `JOURNAL_gist.jsonl` (what `repro -- bench`
//! writes next to `BENCH_gist.json`). `explain` accepts either a trace
//! label or any substring of it — bug names like `pbzip2-1` work because
//! the bench titles traces `Failure Sketch for <display>`.
//!
//! Exit status: 0 ok, 1 lookup failure (unknown trace/step/kind produced
//! nothing), 2 usage or parse error.

use gist_bench::trace_tool::{chrome_json, Journal};

const DEFAULT_JOURNAL: &str = "JOURNAL_gist.jsonl";

fn usage() -> ! {
    eprintln!(
        "usage:\n  gist-trace summary [journal]\n  gist-trace grep <event-kind> [journal]\n  gist-trace explain <bug> <step> [journal]\n  gist-trace export --chrome [journal] [-o out.json]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Journal {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read journal {path}: {e} (run `repro -- bench` first?)");
            std::process::exit(2);
        }
    };
    match Journal::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        }
    }
}

/// Maps a bug short name to the trace label the bench uses; a label (or
/// substring) passes through untouched.
fn explain_label(journal: &Journal, arg: &str) -> String {
    if journal.trace_by_label(arg).is_some() {
        return arg.to_owned();
    }
    match gist_bugbase::bug_by_name(arg) {
        Some(bug) => format!("Failure Sketch for {}", bug.display),
        None => arg.to_owned(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or_else(|| usage());
    match cmd {
        "summary" => {
            let path = args.get(1).map(String::as_str).unwrap_or(DEFAULT_JOURNAL);
            print!("{}", load(path).summary_text());
        }
        "grep" => {
            let Some(kind) = args.get(1) else { usage() };
            let path = args.get(2).map(String::as_str).unwrap_or(DEFAULT_JOURNAL);
            let out = load(path).grep_text(kind);
            if out.is_empty() {
                eprintln!("no `{kind}` events in {path}");
                std::process::exit(1);
            }
            print!("{out}");
        }
        "explain" => {
            let (Some(bug), Some(step)) = (args.get(1), args.get(2)) else {
                usage()
            };
            let Ok(step) = step.parse::<u64>() else {
                usage()
            };
            let path = args.get(3).map(String::as_str).unwrap_or(DEFAULT_JOURNAL);
            let journal = load(path);
            let label = explain_label(&journal, bug);
            match journal.explain_step(&label, step) {
                Ok(lines) => {
                    for l in lines {
                        println!("{l}");
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        "export" => {
            // `--chrome` is the only format; tolerate its position.
            let rest: Vec<&str> = args[1..].iter().map(String::as_str).collect();
            if !rest.contains(&"--chrome") {
                usage()
            }
            let mut out_path: Option<&str> = None;
            let mut journal_path = DEFAULT_JOURNAL;
            let mut i = 0;
            while i < rest.len() {
                match rest[i] {
                    "--chrome" => {}
                    "-o" | "--out" => {
                        i += 1;
                        out_path = rest.get(i).copied().or_else(|| usage());
                    }
                    p => journal_path = p,
                }
                i += 1;
            }
            let json = chrome_json(&load(journal_path));
            match out_path {
                Some(p) => {
                    if let Err(e) = std::fs::write(p, &json) {
                        eprintln!("cannot write {p}: {e}");
                        std::process::exit(2);
                    }
                    eprintln!("wrote {p} ({} bytes)", json.len());
                }
                None => print!("{json}"),
            }
        }
        _ => usage(),
    }
}
