//! The evaluation harness: one function per table/figure of the paper's §5.
//!
//! Everything here is also reachable from the `repro` binary:
//!
//! ```text
//! cargo run -p gist-bench --bin repro --release -- all
//! cargo run -p gist-bench --bin repro --release -- table1
//! cargo run -p gist-bench --bin repro --release -- sketch pbzip2-1
//! ```
//!
//! Absolute numbers differ from the paper (our substrate is a simulator and
//! our programs are miniatures — see DESIGN.md's substitution table); the
//! *shape* of every result is asserted by the integration tests in
//! `tests/`.

pub mod ablations;
pub mod bench_report;
pub mod expectations;
pub mod experiments;
pub mod format;
pub mod races;
pub mod synth_report;
pub mod trace_tool;

pub use experiments::{
    fig10, fig11, fig12, fig13, overhead_sigma2, sketch_for, swtrace_rows, table1, Fig10Row,
    Fig11Row, Fig12Row, Fig13Row, OverheadRow,
};
