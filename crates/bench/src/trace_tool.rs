//! Journal exploration shared by the `gist-trace` binary and the
//! `--explain` render mode: load a JSONL journal, summarize it, grep by
//! event kind, and resolve sketch-step provenance chains.

use std::collections::BTreeMap;

use gist_obs::json::Json;
use gist_obs::JournalEvent;

/// A loaded flight-recorder journal.
#[derive(Clone, Debug, Default)]
pub struct Journal {
    /// Events in seq order (the JSONL line order).
    pub events: Vec<JournalEvent>,
}

impl Journal {
    /// Parses a JSONL journal (the content of `JOURNAL_gist.jsonl`).
    pub fn parse(text: &str) -> Result<Journal, String> {
        Ok(Journal {
            events: gist_obs::journal::parse_jsonl(text)?,
        })
    }

    /// Wraps already-drained events (the in-process path used by
    /// `repro -- sketch <bug> --explain`).
    pub fn from_events(events: Vec<JournalEvent>) -> Journal {
        Journal { events }
    }

    /// The event with the given seq-no, if journaled.
    pub fn event_by_seq(&self, seq: u64) -> Option<&JournalEvent> {
        // Events are sorted by seq (drain sorts; JSONL preserves).
        self.events
            .binary_search_by_key(&seq, |e| e.seq)
            .ok()
            .map(|i| &self.events[i])
    }

    /// One-line human rendering of an event: `#seq kind k=v k=v` with the
    /// payload members in their canonical order.
    pub fn event_line(e: &JournalEvent) -> String {
        let mut out = format!("#{} t{} {}", e.seq, e.tid, e.kind);
        if let Json::Obj(members) = &e.data {
            for (k, v) in members {
                out.push(' ');
                out.push_str(k);
                out.push('=');
                out.push_str(&v.render());
            }
        }
        out
    }

    /// Per-kind event counts, sorted by kind name.
    pub fn kind_counts(&self) -> BTreeMap<&str, u64> {
        let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
        for e in &self.events {
            *counts.entry(e.kind.as_str()).or_default() += 1;
        }
        counts
    }

    /// Diagnosis traces in the journal: `(trace_id, label)` from each
    /// `trace.start` event, in seq order.
    pub fn traces(&self) -> Vec<(u64, String)> {
        self.events
            .iter()
            .filter(|e| e.kind == "trace.start")
            .map(|e| (e.trace, e.field_str("label").unwrap_or("").to_owned()))
            .collect()
    }

    /// The trace id whose `trace.start` label contains `needle` (exact
    /// match wins over substring).
    pub fn trace_by_label(&self, needle: &str) -> Option<u64> {
        let traces = self.traces();
        traces
            .iter()
            .find(|(_, l)| l == needle)
            .or_else(|| traces.iter().find(|(_, l)| l.contains(needle)))
            .map(|&(id, _)| id)
    }

    /// The *final* sketch of a trace: the sketch is rebuilt (and its steps
    /// re-journaled) every AsT iteration, so per step number keep only the
    /// last `sketch.step` event. Returned in step order.
    pub fn final_steps(&self, trace: u64) -> Vec<&JournalEvent> {
        let mut by_step: BTreeMap<u64, &JournalEvent> = BTreeMap::new();
        let mut last_first_step = 0u64;
        for e in &self.events {
            if e.trace != trace || e.kind != "sketch.step" {
                continue;
            }
            let step = e.field_u64("step").unwrap_or(0);
            // A new rebuild starts when the step counter resets; later
            // rebuilds may have *fewer* steps (pruning), so clear stale
            // higher-numbered steps from the previous build.
            if step <= last_first_step {
                by_step.clear();
            }
            if by_step.is_empty() {
                last_first_step = step;
            }
            by_step.insert(step, e);
        }
        by_step.into_values().collect()
    }

    /// Resolves one sketch step's provenance chain: the `explain` lines
    /// for step `step` of the trace labeled `label`.
    pub fn explain_step(&self, label: &str, step: u64) -> Result<Vec<String>, String> {
        let trace = self
            .trace_by_label(label)
            .ok_or_else(|| format!("no trace labeled like `{label}` in journal"))?;
        let steps = self.final_steps(trace);
        let ev = steps
            .iter()
            .find(|e| e.field_u64("step") == Some(step))
            .ok_or_else(|| {
                format!(
                    "trace {trace} has no sketch step {step} (has {})",
                    steps.len()
                )
            })?;
        let mut out = vec![Self::event_line(ev)];
        let chain = match ev.field("provenance") {
            Some(Json::Arr(items)) => items
                .iter()
                .filter_map(|v| match v {
                    Json::U64(n) => Some(*n),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        };
        if chain.is_empty() {
            return Err(format!("sketch step {step} has an empty provenance chain"));
        }
        for seq in chain {
            match self.event_by_seq(seq) {
                Some(e) => out.push(format!("  <- {}", Self::event_line(e))),
                None => out.push(format!("  <- #{seq} <unresolved>")),
            }
        }
        Ok(out)
    }

    /// `gist-trace summary`: totals, per-kind counts, and the traces with
    /// their iteration/recurrence outcomes.
    pub fn summary_text(&self) -> String {
        let mut out = format!("{} events\n", self.events.len());
        out.push_str("\nevents by kind:\n");
        for (kind, n) in self.kind_counts() {
            out.push_str(&format!("  {kind:<18} {n}\n"));
        }
        out.push_str("\ntraces:\n");
        for (id, label) in self.traces() {
            let finish = self
                .events
                .iter()
                .find(|e| e.trace == id && e.kind == "trace.finish");
            let outcome = finish.map_or_else(
                || "(unfinished)".to_owned(),
                |e| {
                    format!(
                        "iterations={} recurrences={}",
                        e.field_u64("iterations").unwrap_or(0),
                        e.field_u64("recurrences").unwrap_or(0),
                    )
                },
            );
            let steps = self.final_steps(id).len();
            out.push_str(&format!(
                "  trace {id}: {label:?} {outcome} sketch_steps={steps}\n"
            ));
        }
        out
    }

    /// `gist-trace grep <kind>`: event lines whose kind equals `kind` or
    /// starts with `kind.` (so `watch` matches `watch.hit`/`watch.armed`).
    pub fn grep_text(&self, kind: &str) -> String {
        let prefix = format!("{kind}.");
        let mut out = String::new();
        for e in &self.events {
            if e.kind == kind || e.kind.starts_with(&prefix) {
                out.push_str(&Self::event_line(e));
                out.push('\n');
            }
        }
        out
    }

    /// The deterministic digest used for golden-journal snapshots: kind
    /// counts, trace structure, and every final sketch step's provenance
    /// chain *resolved to event kinds* (seq-nos are deterministic too, but
    /// kinds survive unrelated instrumentation churn, keeping the golden
    /// focused on provenance shape).
    pub fn digest(&self) -> String {
        let mut out = String::from("kinds:\n");
        for (kind, n) in self.kind_counts() {
            out.push_str(&format!("  {kind} {n}\n"));
        }
        for (id, label) in self.traces() {
            out.push_str(&format!("trace {id} {label:?}:\n"));
            for ev in self.final_steps(id) {
                let step = ev.field_u64("step").unwrap_or(0);
                let iid = ev.field_u64("iid").unwrap_or(0);
                let chain: Vec<&str> = match ev.field("provenance") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .filter_map(|v| match v {
                            Json::U64(n) => {
                                Some(self.event_by_seq(*n).map_or("<missing>", |e| &e.kind))
                            }
                            _ => None,
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                out.push_str(&format!(
                    "  step {step} iid={iid} via [{}]\n",
                    chain.join(", ")
                ));
            }
        }
        out
    }
}

/// Renders journal events as Chrome trace JSON (`gist-trace export
/// --chrome` and the CI artifact).
pub fn chrome_json(journal: &Journal) -> String {
    gist_obs::journal::chrome_trace(&journal.events).pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Journal {
        let mk = |seq, trace, kind: &str, data: Json| JournalEvent {
            seq,
            trace,
            tid: 0,
            kind: kind.into(),
            data,
        };
        Journal::from_events(vec![
            mk(
                1,
                1,
                "trace.start",
                Json::Obj(vec![("label".into(), Json::Str("Sketch for x".into()))]),
            ),
            mk(
                2,
                1,
                "slice.computed",
                Json::Obj(vec![("criterion".into(), Json::U64(7))]),
            ),
            mk(
                3,
                1,
                "watch.hit",
                Json::Obj(vec![("iid".into(), Json::U64(5))]),
            ),
            // First sketch build: two steps.
            mk(
                4,
                1,
                "sketch.step",
                Json::Obj(vec![
                    ("step".into(), Json::U64(1)),
                    ("iid".into(), Json::U64(5)),
                    (
                        "provenance".into(),
                        Json::Arr(vec![Json::U64(3), Json::U64(2)]),
                    ),
                ]),
            ),
            mk(
                5,
                1,
                "sketch.step",
                Json::Obj(vec![
                    ("step".into(), Json::U64(2)),
                    ("iid".into(), Json::U64(7)),
                    ("provenance".into(), Json::Arr(vec![Json::U64(2)])),
                ]),
            ),
            // Rebuild: pruned to one step; the final sketch.
            mk(
                6,
                1,
                "sketch.step",
                Json::Obj(vec![
                    ("step".into(), Json::U64(1)),
                    ("iid".into(), Json::U64(7)),
                    ("provenance".into(), Json::Arr(vec![Json::U64(2)])),
                ]),
            ),
            mk(
                7,
                1,
                "trace.finish",
                Json::Obj(vec![
                    ("iterations".into(), Json::U64(2)),
                    ("recurrences".into(), Json::U64(3)),
                ]),
            ),
        ])
    }

    #[test]
    fn final_steps_keep_only_last_rebuild() {
        let j = sample();
        let steps = j.final_steps(1);
        assert_eq!(steps.len(), 1, "pruned rebuild wins");
        assert_eq!(steps[0].seq, 6);
    }

    #[test]
    fn explain_resolves_chain() {
        let j = sample();
        let lines = j.explain_step("Sketch for x", 1).unwrap();
        assert!(lines[0].contains("sketch.step"));
        assert!(lines[1].contains("slice.computed"));
        assert!(j.explain_step("Sketch for x", 9).is_err());
        assert!(j.explain_step("no such trace", 1).is_err());
    }

    #[test]
    fn summary_and_grep_render() {
        let j = sample();
        let s = j.summary_text();
        assert!(s.contains("7 events"));
        assert!(s.contains("sketch.step"));
        assert!(s.contains("iterations=2 recurrences=3"));
        assert!(s.contains("sketch_steps=1"));
        let g = j.grep_text("sketch.step");
        assert_eq!(g.lines().count(), 3);
        // Prefix form matches the whole layer.
        assert_eq!(j.grep_text("sketch").lines().count(), 3);
        assert_eq!(j.grep_text("watch").lines().count(), 1);
    }

    #[test]
    fn digest_resolves_provenance_to_kinds() {
        let j = sample();
        let d = j.digest();
        assert!(d.contains("trace 1 \"Sketch for x\":"));
        assert!(d.contains("step 1 iid=7 via [slice.computed]"));
        // Only the final rebuild's steps appear.
        assert!(!d.contains("iid=5 via"));
    }
}
