//! Journal exploration shared by the `gist-trace` binary and the
//! `--explain` render mode: load a binary or JSONL journal, summarize it
//! (warning on overwrite gaps), grep by event kind, resolve sketch-step
//! provenance chains, answer provenance queries (`gist-trace query`), and
//! tail a live in-process diagnosis (`gist-trace follow`).

use std::collections::{BTreeMap, BTreeSet};

use gist_obs::json::Json;
use gist_obs::{JournalEvent, JournalStats};

/// A loaded flight-recorder journal.
#[derive(Clone, Debug, Default)]
pub struct Journal {
    /// Events in seq order (the JSONL line order).
    pub events: Vec<JournalEvent>,
    /// Overwrite accounting from the binary journal's meta frame (zero
    /// for JSONL-loaded and in-process journals with no overwrites).
    pub stats: JournalStats,
}

impl Journal {
    /// Loads a journal from raw file bytes, sniffing the format: the
    /// binary magic selects the wire decoder, anything else parses as
    /// JSONL.
    pub fn load_bytes(bytes: &[u8]) -> Result<Journal, String> {
        if gist_obs::wire::is_binary(bytes) {
            let (records, stats) = gist_obs::journal::parse_binary(bytes)?;
            return Ok(Journal {
                events: gist_obs::journal::to_events(&records),
                stats,
            });
        }
        let text = std::str::from_utf8(bytes)
            .map_err(|_| "journal is neither binary (bad magic) nor UTF-8 JSONL".to_owned())?;
        Journal::parse(text)
    }

    /// Parses a JSONL journal (the content of `JOURNAL_gist.jsonl`).
    pub fn parse(text: &str) -> Result<Journal, String> {
        Ok(Journal {
            events: gist_obs::journal::parse_jsonl(text)?,
            stats: JournalStats::default(),
        })
    }

    /// Wraps already-drained events (the in-process path used by
    /// `repro -- sketch <bug> --explain`).
    pub fn from_events(events: Vec<JournalEvent>) -> Journal {
        Journal {
            events,
            stats: JournalStats::default(),
        }
    }

    /// The event with the given seq-no, if journaled.
    pub fn event_by_seq(&self, seq: u64) -> Option<&JournalEvent> {
        // Events are sorted by seq (drain sorts; JSONL preserves).
        self.events
            .binary_search_by_key(&seq, |e| e.seq)
            .ok()
            .map(|i| &self.events[i])
    }

    /// One-line human rendering of an event: `#seq kind k=v k=v` with the
    /// payload members in their canonical order.
    pub fn event_line(e: &JournalEvent) -> String {
        let mut out = format!("#{} t{} {}", e.seq, e.tid, e.kind);
        if let Json::Obj(members) = &e.data {
            for (k, v) in members {
                out.push(' ');
                out.push_str(k);
                out.push('=');
                out.push_str(&v.render());
            }
        }
        out
    }

    /// Per-kind event counts, sorted by kind name.
    pub fn kind_counts(&self) -> BTreeMap<&str, u64> {
        let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
        for e in &self.events {
            *counts.entry(e.kind.as_str()).or_default() += 1;
        }
        counts
    }

    /// Diagnosis traces in the journal: `(trace_id, label)` from each
    /// `trace.start` event, in seq order.
    pub fn traces(&self) -> Vec<(u64, String)> {
        self.events
            .iter()
            .filter(|e| e.kind == "trace.start")
            .map(|e| (e.trace, e.field_str("label").unwrap_or("").to_owned()))
            .collect()
    }

    /// The trace id whose `trace.start` label contains `needle` (exact
    /// match wins over substring).
    pub fn trace_by_label(&self, needle: &str) -> Option<u64> {
        let traces = self.traces();
        traces
            .iter()
            .find(|(_, l)| l == needle)
            .or_else(|| traces.iter().find(|(_, l)| l.contains(needle)))
            .map(|&(id, _)| id)
    }

    /// The *final* sketch of a trace: the sketch is rebuilt (and its steps
    /// re-journaled) every AsT iteration, so per step number keep only the
    /// last `sketch.step` event. Returned in step order.
    pub fn final_steps(&self, trace: u64) -> Vec<&JournalEvent> {
        let mut by_step: BTreeMap<u64, &JournalEvent> = BTreeMap::new();
        let mut last_first_step = 0u64;
        for e in &self.events {
            if e.trace != trace || e.kind != "sketch.step" {
                continue;
            }
            let step = e.field_u64("step").unwrap_or(0);
            // A new rebuild starts when the step counter resets; later
            // rebuilds may have *fewer* steps (pruning), so clear stale
            // higher-numbered steps from the previous build.
            if step <= last_first_step {
                by_step.clear();
            }
            if by_step.is_empty() {
                last_first_step = step;
            }
            by_step.insert(step, e);
        }
        by_step.into_values().collect()
    }

    /// Resolves one sketch step's provenance chain: the `explain` lines
    /// for step `step` of the trace labeled `label`.
    pub fn explain_step(&self, label: &str, step: u64) -> Result<Vec<String>, String> {
        let trace = self
            .trace_by_label(label)
            .ok_or_else(|| format!("no trace labeled like `{label}` in journal"))?;
        let steps = self.final_steps(trace);
        let ev = steps
            .iter()
            .find(|e| e.field_u64("step") == Some(step))
            .ok_or_else(|| {
                format!(
                    "trace {trace} has no sketch step {step} (has {})",
                    steps.len()
                )
            })?;
        let mut out = vec![Self::event_line(ev)];
        let chain = match ev.field("provenance") {
            Some(Json::Arr(items)) => items
                .iter()
                .filter_map(|v| match v {
                    Json::U64(n) => Some(*n),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        };
        if chain.is_empty() {
            return Err(format!("sketch step {step} has an empty provenance chain"));
        }
        for seq in chain {
            match self.event_by_seq(seq) {
                Some(e) => out.push(format!("  <- {}", Self::event_line(e))),
                None => out.push(format!("  <- #{seq} <unresolved>")),
            }
        }
        Ok(out)
    }

    /// A warning when the journal has gaps: the bounded ring overwrote
    /// events (meta-frame accounting), or the seq span is not contiguous
    /// (a journal trimmed by other means). `None` for complete journals.
    pub fn gap_warning(&self) -> Option<String> {
        let (min, max) = match (self.events.first(), self.events.last()) {
            (Some(f), Some(l)) => (f.seq, l.seq),
            _ => {
                return (self.stats.events_overwritten > 0).then(|| {
                    format!(
                        "WARNING: journal has gaps: {} events overwritten, none retained",
                        self.stats.events_overwritten
                    )
                })
            }
        };
        let missing = (max - min + 1).saturating_sub(self.events.len() as u64);
        if self.stats.events_overwritten == 0 && missing == 0 {
            return None;
        }
        Some(format!(
            "WARNING: journal has gaps: {} events overwritten, \
             {missing} seq-nos missing in span {min}..{max} \
             (oldest retained seq {min})",
            self.stats.events_overwritten
        ))
    }

    /// `gist-trace summary`: totals, per-kind counts, and the traces with
    /// their iteration/recurrence outcomes. Warns when the journal has
    /// overwrite gaps.
    pub fn summary_text(&self) -> String {
        let mut out = format!("{} events\n", self.events.len());
        if let Some(warning) = self.gap_warning() {
            out.push_str(&warning);
            out.push('\n');
        }
        out.push_str("\nevents by kind:\n");
        for (kind, n) in self.kind_counts() {
            out.push_str(&format!("  {kind:<18} {n}\n"));
        }
        out.push_str("\ntraces:\n");
        for (id, label) in self.traces() {
            let finish = self
                .events
                .iter()
                .find(|e| e.trace == id && e.kind == "trace.finish");
            let outcome = finish.map_or_else(
                || "(unfinished)".to_owned(),
                |e| {
                    format!(
                        "iterations={} recurrences={}",
                        e.field_u64("iterations").unwrap_or(0),
                        e.field_u64("recurrences").unwrap_or(0),
                    )
                },
            );
            let steps = self.final_steps(id).len();
            out.push_str(&format!(
                "  trace {id}: {label:?} {outcome} sketch_steps={steps}\n"
            ));
        }
        out
    }

    /// `gist-trace grep <kind>`: event lines whose kind equals `kind` or
    /// starts with `kind.` (so `watch` matches `watch.hit`/`watch.armed`).
    pub fn grep_text(&self, kind: &str) -> String {
        let prefix = format!("{kind}.");
        let mut out = String::new();
        for e in &self.events {
            if e.kind == kind || e.kind.starts_with(&prefix) {
                out.push_str(&Self::event_line(e));
                out.push('\n');
            }
        }
        out
    }

    /// The deterministic digest used for golden-journal snapshots: kind
    /// counts, trace structure, and every final sketch step's provenance
    /// chain *resolved to event kinds* (seq-nos are deterministic too, but
    /// kinds survive unrelated instrumentation churn, keeping the golden
    /// focused on provenance shape).
    pub fn digest(&self) -> String {
        let mut out = String::from("kinds:\n");
        for (kind, n) in self.kind_counts() {
            out.push_str(&format!("  {kind} {n}\n"));
        }
        for (id, label) in self.traces() {
            out.push_str(&format!("trace {id} {label:?}:\n"));
            for ev in self.final_steps(id) {
                let step = ev.field_u64("step").unwrap_or(0);
                let iid = ev.field_u64("iid").unwrap_or(0);
                let chain: Vec<&str> = match ev.field("provenance") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .filter_map(|v| match v {
                            Json::U64(n) => {
                                Some(self.event_by_seq(*n).map_or("<missing>", |e| &e.kind))
                            }
                            _ => None,
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                out.push_str(&format!(
                    "  step {step} iid={iid} via [{}]\n",
                    chain.join(", ")
                ));
            }
        }
        out
    }

    /// The `  <- …` line resolving a referenced seq-no, tolerant of
    /// references into overwritten (gap) regions.
    fn resolve_line(&self, seq: u64, indent: usize) -> String {
        let pad = " ".repeat(indent);
        match self.event_by_seq(seq) {
            Some(e) => format!("{pad}<- {}", Self::event_line(e)),
            None => format!("{pad}<- #{seq} <unresolved>"),
        }
    }

    /// `gist-trace query promotions`: every `ast.promoted` event (in the
    /// given trace, or journal-wide), each followed by the evidence event
    /// that caused it — the watch hit for `watch-discovery` promotions,
    /// the slice computation for `race-seed` ones. This answers "which
    /// watch hit promoted this statement?" for the whole diagnosis.
    pub fn query_promotions(&self, trace: Option<u64>) -> Vec<String> {
        let mut out = Vec::new();
        for e in &self.events {
            if e.kind != "ast.promoted" || trace.is_some_and(|t| e.trace != t) {
                continue;
            }
            out.push(Self::event_line(e));
            if let Some(via) = e.field_u64("via").filter(|&v| v != 0) {
                out.push(self.resolve_line(via, 2));
            }
        }
        out
    }

    /// `gist-trace query promoted <iid>`: which event promoted statement
    /// `iid` into tracking? Errors when the statement was never promoted.
    pub fn query_promoted(&self, iid: u64, trace: Option<u64>) -> Result<Vec<String>, String> {
        let mut out = Vec::new();
        for e in &self.events {
            if e.kind != "ast.promoted"
                || e.field_u64("iid") != Some(iid)
                || trace.is_some_and(|t| e.trace != t)
            {
                continue;
            }
            out.push(Self::event_line(e));
            if let Some(via) = e.field_u64("via").filter(|&v| v != 0) {
                out.push(self.resolve_line(via, 2));
            }
        }
        if out.is_empty() {
            return Err(format!("no ast.promoted event for iid={iid} in journal"));
        }
        Ok(out)
    }

    /// `gist-trace query hits <iid>`: every watchpoint hit at statement
    /// `iid`, in seq order.
    pub fn query_hits(&self, iid: u64, trace: Option<u64>) -> Vec<String> {
        self.events
            .iter()
            .filter(|e| {
                e.kind == "watch.hit"
                    && e.field_u64("iid") == Some(iid)
                    && trace.is_none_or(|t| e.trace == t)
            })
            .map(Self::event_line)
            .collect()
    }

    /// `gist-trace query decode <bug> <step>`: which PT decode fed this
    /// sketch step? Resolves the step's provenance chain to its
    /// `pt.decoded` event, plus the per-core `pt.segment` decodes that
    /// immediately precede it on the same thread.
    pub fn query_decode(&self, label: &str, step: u64) -> Result<Vec<String>, String> {
        let lines = self.explain_step(label, step)?;
        let mut out = vec![lines[0].clone()];
        let decode = lines
            .iter()
            .find(|l| l.contains(" pt.decoded "))
            .ok_or_else(|| {
                format!("sketch step {step} has no pt.decoded event in its provenance chain")
            })?;
        out.push(decode.clone());
        // "  <- #seq tN pt.decoded ..." — recover the seq to locate the
        // decode's preceding per-core segment events.
        let seq: u64 = decode
            .trim_start()
            .trim_start_matches("<- #")
            .split_whitespace()
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "malformed decode line".to_owned())?;
        if let Ok(i) = self.events.binary_search_by_key(&seq, |e| e.seq) {
            let tid = self.events[i].tid;
            let mut segments = Vec::new();
            for e in self.events[..i].iter().rev() {
                if e.kind == "pt.segment" && e.tid == tid {
                    segments.push(format!("    <- {}", Self::event_line(e)));
                } else {
                    break;
                }
            }
            segments.reverse();
            out.extend(segments);
        }
        Ok(out)
    }

    /// `gist-trace query chain <seq>`: the transitive provenance closure
    /// of one event — its `via` / `provenance` references, their
    /// references, and so on — rendered as an indented tree. Cycles and
    /// repeats are cut by a visited set.
    pub fn query_chain(&self, seq: u64) -> Result<Vec<String>, String> {
        let root = self
            .event_by_seq(seq)
            .ok_or_else(|| format!("no event #{seq} in journal"))?;
        let mut out = vec![Self::event_line(root)];
        let mut visited = BTreeSet::from([seq]);
        self.chain_children(root, 1, &mut visited, &mut out);
        Ok(out)
    }

    /// Seq-nos an event references: `via` for promotions, the
    /// `provenance` array for sketch steps. (`hit_seq` is a *VM* sequence
    /// number, not a journal seq, and is deliberately not followed.)
    fn references(e: &JournalEvent) -> Vec<u64> {
        let mut refs = Vec::new();
        if let Some(via) = e.field_u64("via").filter(|&v| v != 0) {
            refs.push(via);
        }
        if let Some(Json::Arr(items)) = e.field("provenance") {
            refs.extend(items.iter().filter_map(|v| match v {
                Json::U64(n) => Some(*n),
                _ => None,
            }));
        }
        refs
    }

    fn chain_children(
        &self,
        e: &JournalEvent,
        depth: usize,
        visited: &mut BTreeSet<u64>,
        out: &mut Vec<String>,
    ) {
        // Provenance chains are short (hit -> decode -> promotion ->
        // slice); the depth bound only guards malformed journals.
        if depth > 8 {
            return;
        }
        for r in Self::references(e) {
            if !visited.insert(r) {
                continue;
            }
            out.push(self.resolve_line(r, 2 * depth));
            if let Some(child) = self.event_by_seq(r) {
                self.chain_children(child, depth + 1, visited, out);
            }
        }
    }
}

/// Renders journal events as Chrome trace JSON (`gist-trace export
/// --chrome` and the CI artifact).
pub fn chrome_json(journal: &Journal) -> String {
    gist_obs::journal::chrome_trace(&journal.events).pretty()
}

/// Renders a loaded journal back to JSONL (`gist-trace export --jsonl`:
/// binary journal in, line-per-event export out). Byte-identical to
/// [`gist_obs::journal::to_jsonl`] over the same events.
pub fn jsonl_text(journal: &Journal) -> String {
    let mut out = String::new();
    for e in &journal.events {
        out.push_str(
            &Json::Obj(vec![
                ("seq".into(), Json::U64(e.seq)),
                ("trace".into(), Json::U64(e.trace)),
                ("tid".into(), Json::U64(u64::from(e.tid))),
                ("kind".into(), Json::Str(e.kind.clone())),
                ("data".into(), e.data.clone()),
            ])
            .render(),
        );
        out.push('\n');
    }
    out
}

/// Incremental tail over the in-process journal ring: each [`poll`]
/// drains what arrived since the last one via
/// [`gist_obs::journal::drain_since`] cursors, so a consumer thread can
/// watch a diagnosis that is still running — the cursors guarantee every
/// event is delivered exactly once (missed-by-overwrite frames are
/// counted, never silently dropped). Shared by `gist-trace follow` and
/// the streaming-drain integration test.
///
/// [`poll`]: LiveTail::poll
#[derive(Debug, Default)]
pub struct LiveTail {
    cursor: gist_obs::Cursor,
    /// Everything delivered so far, kept sorted by seq.
    pub events: Vec<JournalEvent>,
    /// Frames the ring overwrote before a poll reached them.
    pub overwritten: u64,
    /// Polls that delivered at least one event.
    pub nonempty_polls: u64,
}

impl LiveTail {
    /// A tail positioned at the start of the current journal epoch.
    pub fn new() -> LiveTail {
        LiveTail::default()
    }

    /// Drains events recorded since the previous poll, returning the new
    /// batch (seq-sorted) and folding it into [`LiveTail::events`].
    pub fn poll(&mut self) -> Vec<JournalEvent> {
        let chunk = gist_obs::journal::drain_since(self.cursor);
        self.cursor = chunk.cursor;
        self.overwritten += chunk.overwritten;
        let new = gist_obs::journal::to_events(&chunk.events);
        if !new.is_empty() {
            self.nonempty_polls += 1;
            self.events.extend(new.iter().cloned());
            // Chunks arrive in ring order; cross-thread flushes can
            // interleave seq ranges across chunks, so re-sort the whole
            // accumulation.
            self.events.sort_by_key(|e| e.seq);
        }
        new
    }

    /// The accumulated events as a queryable [`Journal`] snapshot.
    pub fn journal(&self) -> Journal {
        Journal::from_events(self.events.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Journal {
        let mk = |seq, trace, kind: &str, data: Json| JournalEvent {
            seq,
            trace,
            tid: 0,
            kind: kind.into(),
            data,
        };
        Journal::from_events(vec![
            mk(
                1,
                1,
                "trace.start",
                Json::Obj(vec![("label".into(), Json::Str("Sketch for x".into()))]),
            ),
            mk(
                2,
                1,
                "slice.computed",
                Json::Obj(vec![("criterion".into(), Json::U64(7))]),
            ),
            mk(
                3,
                1,
                "watch.hit",
                Json::Obj(vec![("iid".into(), Json::U64(5))]),
            ),
            // First sketch build: two steps.
            mk(
                4,
                1,
                "sketch.step",
                Json::Obj(vec![
                    ("step".into(), Json::U64(1)),
                    ("iid".into(), Json::U64(5)),
                    (
                        "provenance".into(),
                        Json::Arr(vec![Json::U64(3), Json::U64(2)]),
                    ),
                ]),
            ),
            mk(
                5,
                1,
                "sketch.step",
                Json::Obj(vec![
                    ("step".into(), Json::U64(2)),
                    ("iid".into(), Json::U64(7)),
                    ("provenance".into(), Json::Arr(vec![Json::U64(2)])),
                ]),
            ),
            // Rebuild: pruned to one step; the final sketch.
            mk(
                6,
                1,
                "sketch.step",
                Json::Obj(vec![
                    ("step".into(), Json::U64(1)),
                    ("iid".into(), Json::U64(7)),
                    ("provenance".into(), Json::Arr(vec![Json::U64(2)])),
                ]),
            ),
            mk(
                7,
                1,
                "trace.finish",
                Json::Obj(vec![
                    ("iterations".into(), Json::U64(2)),
                    ("recurrences".into(), Json::U64(3)),
                ]),
            ),
        ])
    }

    #[test]
    fn final_steps_keep_only_last_rebuild() {
        let j = sample();
        let steps = j.final_steps(1);
        assert_eq!(steps.len(), 1, "pruned rebuild wins");
        assert_eq!(steps[0].seq, 6);
    }

    #[test]
    fn explain_resolves_chain() {
        let j = sample();
        let lines = j.explain_step("Sketch for x", 1).unwrap();
        assert!(lines[0].contains("sketch.step"));
        assert!(lines[1].contains("slice.computed"));
        assert!(j.explain_step("Sketch for x", 9).is_err());
        assert!(j.explain_step("no such trace", 1).is_err());
    }

    #[test]
    fn summary_and_grep_render() {
        let j = sample();
        let s = j.summary_text();
        assert!(s.contains("7 events"));
        assert!(s.contains("sketch.step"));
        assert!(s.contains("iterations=2 recurrences=3"));
        assert!(s.contains("sketch_steps=1"));
        let g = j.grep_text("sketch.step");
        assert_eq!(g.lines().count(), 3);
        // Prefix form matches the whole layer.
        assert_eq!(j.grep_text("sketch").lines().count(), 3);
        assert_eq!(j.grep_text("watch").lines().count(), 1);
    }

    #[test]
    fn digest_resolves_provenance_to_kinds() {
        let j = sample();
        let d = j.digest();
        assert!(d.contains("trace 1 \"Sketch for x\":"));
        assert!(d.contains("step 1 iid=7 via [slice.computed]"));
        // Only the final rebuild's steps appear.
        assert!(!d.contains("iid=5 via"));
    }

    /// A journal with the full provenance shape: hit -> segments ->
    /// decode -> promotion -> sketch step.
    fn provenance_sample() -> Journal {
        let mk = |seq, kind: &str, data: Vec<(&str, Json)>| JournalEvent {
            seq,
            trace: 1,
            tid: 0,
            kind: kind.into(),
            data: Json::Obj(
                data.into_iter()
                    .map(|(k, v)| (k.to_owned(), v))
                    .collect::<Vec<_>>(),
            ),
        };
        Journal::from_events(vec![
            mk(
                1,
                "trace.start",
                vec![("label", Json::Str("Sketch for y".into()))],
            ),
            mk(2, "slice.computed", vec![("criterion", Json::U64(9))]),
            mk(
                3,
                "watch.hit",
                vec![("iid", Json::U64(30)), ("addr", Json::U64(64))],
            ),
            mk(
                4,
                "pt.segment",
                vec![("core", Json::U64(0)), ("stmts", Json::U64(5))],
            ),
            mk(
                5,
                "pt.segment",
                vec![("core", Json::U64(1)), ("stmts", Json::U64(6))],
            ),
            mk(6, "pt.decoded", vec![("stmts", Json::U64(11))]),
            mk(
                7,
                "ast.promoted",
                vec![
                    ("iid", Json::U64(30)),
                    ("reason", Json::Str("watch-discovery".into())),
                    ("via", Json::U64(3)),
                ],
            ),
            mk(
                8,
                "sketch.step",
                vec![
                    ("step", Json::U64(1)),
                    ("iid", Json::U64(30)),
                    (
                        "provenance",
                        Json::Arr(vec![Json::U64(3), Json::U64(6), Json::U64(7), Json::U64(2)]),
                    ),
                ],
            ),
        ])
    }

    #[test]
    fn query_promotions_resolve_their_evidence() {
        let j = provenance_sample();
        let lines = j.query_promotions(None);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("ast.promoted"));
        assert!(lines[0].contains("iid=30"));
        assert!(
            lines[1].contains("watch.hit"),
            "the via line answers which hit promoted the statement: {}",
            lines[1]
        );
        assert!(j.query_promotions(Some(99)).is_empty());
        let by_iid = j.query_promoted(30, None).unwrap();
        assert_eq!(by_iid, lines);
        assert!(j.query_promoted(31, None).is_err());
    }

    #[test]
    fn query_decode_finds_the_feeding_decode_and_segments() {
        let j = provenance_sample();
        let lines = j.query_decode("Sketch for y", 1).unwrap();
        assert!(lines[0].contains("sketch.step"));
        assert!(lines[1].contains("pt.decoded"));
        // The decode's same-thread segment runs ride along, in order.
        assert!(lines[2].contains("core=0"));
        assert!(lines[3].contains("core=1"));
        assert!(j.query_decode("Sketch for y", 2).is_err());
        // A step whose chain lacks a decode errors cleanly.
        assert!(sample().query_decode("Sketch for x", 1).is_err());
    }

    #[test]
    fn query_hits_and_chain() {
        let j = provenance_sample();
        let hits = j.query_hits(30, Some(1));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].contains("watch.hit"));
        assert!(j.query_hits(30, Some(2)).is_empty());
        // The chain from the sketch step expands provenance transitively:
        // the promotion (seq 7) references the hit (seq 3) via `via`, but
        // the hit is already visited, so it appears exactly once.
        let chain = j.query_chain(8).unwrap();
        let hits_in_chain = chain.iter().filter(|l| l.contains("watch.hit")).count();
        assert_eq!(hits_in_chain, 1, "visited set cuts repeats: {chain:?}");
        assert!(chain.iter().any(|l| l.contains("ast.promoted")));
        assert!(chain.iter().any(|l| l.contains("slice.computed")));
        assert!(j.query_chain(999).is_err());
    }

    #[test]
    fn gap_warning_fires_on_overwrites_and_seq_holes() {
        let mut j = provenance_sample();
        assert_eq!(j.gap_warning(), None);
        assert!(!j.summary_text().contains("WARNING"));
        j.stats.events_overwritten = 4;
        j.stats.oldest_seq = 1;
        let w = j.gap_warning().expect("overwrites warn");
        assert!(w.contains("4 events overwritten"));
        assert!(j.summary_text().contains("WARNING"));
        // A seq hole warns even without meta accounting.
        let mut holey = provenance_sample();
        holey.events.remove(3);
        let w = holey.gap_warning().expect("seq hole warns");
        assert!(w.contains("1 seq-nos missing"), "{w}");
    }

    #[test]
    fn load_bytes_sniffs_binary_and_jsonl() {
        use gist_obs::{EventKind, EventRecord};
        let records = vec![EventRecord {
            seq: 1,
            trace: 1,
            tid: 0,
            kind: EventKind::RunStarted { run: 1, seed: 7 },
        }];
        let stats = JournalStats {
            events_overwritten: 2,
            oldest_seq: 1,
        };
        let bin = gist_obs::journal::to_binary(&records, &stats);
        let j = Journal::load_bytes(&bin).expect("binary loads");
        assert_eq!(j.events.len(), 1);
        assert_eq!(j.stats, stats);
        let jsonl = gist_obs::journal::to_jsonl(&records);
        let j2 = Journal::load_bytes(jsonl.as_bytes()).expect("jsonl loads");
        assert_eq!(j2.events, j.events);
        assert_eq!(j2.stats, JournalStats::default());
        assert!(Journal::load_bytes(&[0xff, 0xfe, 0x00]).is_err());
    }
}
