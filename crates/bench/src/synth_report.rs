//! `repro -- bench --synthetic N --seed S`: the synthetic-bugbase
//! accuracy report.
//!
//! Scales the recovery claim from the 11 hand-built fixtures to a
//! statistical one: generate `n` seeded bugs (`gist_bugbase::synth`),
//! drive each through the full AsT loop ([`gist_coop::diagnose_synth`]),
//! check the static lints against the injected ground truth, and
//! aggregate into per-family and overall recovery rates. The report is a
//! pure function of `(n, seed)` — every row, every rate, byte-identical
//! across runs and hosts — so CI diffs two same-seed runs and gates the
//! headline rate against [`crate::expectations::SYNTH_RECOVERY_FLOOR`].

use gist_analysis::ground_truth as gt;
use gist_bugbase::synth::{self, PatternKind, SplitMix64, SynthBug, SYNTH_FILE};
use gist_coop::{diagnose_synth, EvalConfig, SynthEvaluation};
use gist_obs::json::Json;

/// Static-lint conformance of one generated bug.
#[derive(Clone, Copy, Debug)]
pub struct StaticCheck {
    /// `gist-analyze lint` reports the injected `GA0xx` code with a
    /// finding that references the injected lines (and, for atomicity,
    /// carries the right AVIO label).
    pub lint_ok: bool,
    /// `gist-analyze predict` emits a sketch with the injected code
    /// (`None` where the pattern has no predicted-sketch form: double
    /// free and deadlock are advisory/report-only).
    pub predict_ok: Option<bool>,
}

/// Runs the static half of the ground-truth contract on one bug.
pub fn static_check(bug: &SynthBug) -> StaticCheck {
    let truth = &bug.truth;
    let diags = gt::lint_all(&bug.program);
    let lint_ok = match truth.code() {
        None => diags.is_empty(),
        Some(code) => {
            let on_lines =
                gt::findings_on_lines(&bug.program, &diags, code, SYNTH_FILE, &truth.static_lines);
            match truth.pattern.av_label() {
                None => !on_lines.is_empty(),
                Some(label) => on_lines
                    .iter()
                    .any(|d| d.message.contains(&format!("({label})"))),
            }
        }
    };
    let predict_ok = predicted_code(truth.pattern).map(|code| {
        let preds = gt::predictions(&bug.program);
        preds.iter().any(|p| p.code == code)
    });
    StaticCheck {
        lint_ok,
        predict_ok,
    }
}

/// The code `gist-analyze predict` must emit for a pattern, where the
/// pattern has a predicted-sketch form at all.
pub fn predicted_code(pattern: PatternKind) -> Option<&'static str> {
    match pattern {
        PatternKind::AtomicityRwr
        | PatternKind::AtomicityWwr
        | PatternKind::AtomicityRww
        | PatternKind::AtomicityWrw => Some("GA022"),
        PatternKind::OrderViolation => Some("GA024"),
        PatternKind::UseAfterFree => Some("GA020"),
        PatternKind::NullFlow => Some("GA023"),
        PatternKind::DoubleFree | PatternKind::Deadlock | PatternKind::Control => None,
    }
}

/// One synthetic bug's full result: dynamic diagnosis plus static
/// conformance.
#[derive(Clone, Debug)]
pub struct SynthRow {
    /// The dynamic (AsT) evaluation.
    pub eval: SynthEvaluation,
    /// The static (lint/predict) conformance.
    pub stat: StaticCheck,
}

impl SynthRow {
    /// Fully recovered: the dynamic sketch covers the injected root
    /// cause (the headline recovery criterion of the N=200 gate).
    pub fn recovered(&self) -> bool {
        self.eval.manifested && self.eval.recovered
    }
}

/// Aggregate over one pattern family.
#[derive(Clone, Debug)]
pub struct FamilyStats {
    /// Family label.
    pub family: String,
    /// Bugs generated in this family.
    pub count: usize,
    /// Bugs whose sketch covered the root cause.
    pub recovered: usize,
    /// Bugs passing the static lint check.
    pub lint_ok: usize,
    /// Mean overall sketch accuracy (percent).
    pub mean_overall: f64,
}

/// The synthetic-bugbase report: a pure function of `(n, seed)`.
#[derive(Clone, Debug)]
pub struct SynthReport {
    /// Number of injected bugs evaluated.
    pub n: u64,
    /// The master seed (per-bug seeds are drawn from its SplitMix64
    /// stream).
    pub seed: u64,
    /// Per-bug rows, in generation order.
    pub rows: Vec<SynthRow>,
    /// Negative controls checked (statically clean + never fail over the
    /// sampled schedules).
    pub controls: usize,
    /// Controls that were *not* clean (must be 0).
    pub dirty_controls: usize,
}

impl SynthReport {
    /// Recovery rate over injected bugs (percent).
    pub fn recovery_rate(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        100.0 * self.rows.iter().filter(|r| r.recovered()).count() as f64 / self.rows.len() as f64
    }

    /// Static lint conformance rate (percent).
    pub fn lint_rate(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        100.0 * self.rows.iter().filter(|r| r.stat.lint_ok).count() as f64 / self.rows.len() as f64
    }

    /// Mean overall sketch accuracy over injected bugs (percent).
    pub fn mean_overall(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.eval.overall).sum::<f64>() / self.rows.len() as f64
    }

    /// Per-family aggregates, ordered by family label.
    pub fn families(&self) -> Vec<FamilyStats> {
        let mut labels: Vec<&str> = self.rows.iter().map(|r| r.eval.family.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        labels
            .into_iter()
            .map(|label| {
                let rows: Vec<&SynthRow> = self
                    .rows
                    .iter()
                    .filter(|r| r.eval.family == label)
                    .collect();
                FamilyStats {
                    family: label.to_owned(),
                    count: rows.len(),
                    recovered: rows.iter().filter(|r| r.recovered()).count(),
                    lint_ok: rows.iter().filter(|r| r.stat.lint_ok).count(),
                    mean_overall: rows.iter().map(|r| r.eval.overall).sum::<f64>()
                        / rows.len().max(1) as f64,
                }
            })
            .collect()
    }

    /// The report as a JSON value (the `BENCH_gist.json` payload for
    /// synthetic runs). Deterministic: no wall-clock data.
    pub fn to_value(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                (
                    r.eval.bug.clone(),
                    Json::Obj(vec![
                        ("seed".into(), Json::U64(r.eval.seed)),
                        ("family".into(), Json::Str(r.eval.family.clone())),
                        ("pattern".into(), Json::Str(r.eval.pattern.clone())),
                        ("manifested".into(), Json::Bool(r.eval.manifested)),
                        ("recovered".into(), Json::Bool(r.recovered())),
                        ("lint_ok".into(), Json::Bool(r.stat.lint_ok)),
                        (
                            "predict_ok".into(),
                            match r.stat.predict_ok {
                                None => Json::Null,
                                Some(b) => Json::Bool(b),
                            },
                        ),
                        ("relevance".into(), Json::F64(r.eval.relevance)),
                        ("ordering".into(), Json::F64(r.eval.ordering)),
                        ("overall".into(), Json::F64(r.eval.overall)),
                        ("iterations".into(), Json::U64(r.eval.iterations as u64)),
                        ("total_runs".into(), Json::U64(r.eval.total_runs as u64)),
                        (
                            "sketch_instrs".into(),
                            Json::U64(r.eval.sketch_instrs as u64),
                        ),
                    ]),
                )
            })
            .collect();
        let families = self
            .families()
            .into_iter()
            .map(|f| {
                (
                    f.family.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::U64(f.count as u64)),
                        ("recovered".into(), Json::U64(f.recovered as u64)),
                        ("lint_ok".into(), Json::U64(f.lint_ok as u64)),
                        ("mean_overall".into(), Json::F64(f.mean_overall)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str("gist-bench-synth/v1".into())),
            ("n".into(), Json::U64(self.n)),
            ("seed".into(), Json::U64(self.seed)),
            ("recovery_rate".into(), Json::F64(self.recovery_rate())),
            ("lint_rate".into(), Json::F64(self.lint_rate())),
            ("mean_overall".into(), Json::F64(self.mean_overall())),
            ("controls".into(), Json::U64(self.controls as u64)),
            (
                "dirty_controls".into(),
                Json::U64(self.dirty_controls as u64),
            ),
            ("families".into(), Json::Obj(families)),
            ("bugs".into(), Json::Obj(rows)),
        ])
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_value().pretty()
    }

    /// The human-readable accuracy table (the `SYNTH_accuracy` CI
    /// artifact). Deterministic for fixed `(n, seed)`.
    pub fn table_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Synthetic bugbase: n={} master seed={}\n\n",
            self.n, self.seed
        ));
        out.push_str(&format!(
            "{:<12} {:>6} {:>10} {:>8} {:>13}\n",
            "family", "bugs", "recovered", "lint", "mean overall"
        ));
        for f in self.families() {
            out.push_str(&format!(
                "{:<12} {:>6} {:>7}/{:<2} {:>5}/{:<2} {:>11.1}%\n",
                f.family, f.count, f.recovered, f.count, f.lint_ok, f.count, f.mean_overall
            ));
        }
        out.push_str(&format!(
            "\nrecovery {:.1}%  lint {:.1}%  mean overall {:.1}%  controls {}/{} clean\n",
            self.recovery_rate(),
            self.lint_rate(),
            self.mean_overall(),
            self.controls - self.dirty_controls,
            self.controls,
        ));
        out
    }
}

/// Schedules sampled per control when checking that a control never
/// fails (cheap but catches any generator bug that injects concurrency
/// into the sequential control).
const CONTROL_RUNS: u64 = 20;

fn control_is_clean(bug: &SynthBug) -> bool {
    use gist_vm::{RunOutcome, Vm};
    let diags = gt::lint_all(&bug.program);
    if !diags.is_empty() || !gt::predictions(&bug.program).is_empty() {
        return false;
    }
    (0..CONTROL_RUNS).all(|s| {
        let mut vm = Vm::new(&bug.program, synth::synth_config(s));
        matches!(vm.run(&mut []).outcome, RunOutcome::Finished)
    })
}

/// Runs the synthetic bench: `n` injected bugs (seeds drawn from the
/// `seed` stream) through the full pipeline, plus `n/10 + 1` negative
/// controls. Returns the deterministic report.
pub fn run_synth(n: u64, seed: u64) -> SynthReport {
    run_synth_with(n, seed, &EvalConfig::default())
}

/// [`run_synth`] with explicit evaluation knobs (ablation hooks).
pub fn run_synth_with(n: u64, seed: u64, cfg: &EvalConfig) -> SynthReport {
    let mut stream = SplitMix64::new(seed);
    let mut rows = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let bug = synth::generate(stream.next_u64());
        let eval = diagnose_synth(&bug, cfg);
        let stat = static_check(&bug);
        rows.push(SynthRow { eval, stat });
    }
    let controls = (n / 10 + 1) as usize;
    let dirty_controls = (0..controls)
        .filter(|_| {
            let bug = synth::generate_control(stream.next_u64());
            !control_is_clean(&bug)
        })
        .count();
    SynthReport {
        n,
        seed,
        rows,
        controls,
        dirty_controls,
    }
}
