//! `repro -- bench`: the perf-trajectory emitter.
//!
//! Drives the full bugbase through [`gist_coop::diagnose_bug`] with metrics
//! enabled and writes `BENCH_gist.json`. The report has two top-level
//! sections:
//!
//! * `deterministic` — per-bug diagnosis rows plus the counter/histogram
//!   snapshot. Under fixed seeds this section is **byte-identical** across
//!   runs (the gist-obs determinism contract), so CI can diff it against a
//!   committed baseline.
//! * `throughput` — execution rates: instrs/sec, runs/sec, and batch
//!   scaling with machine-aware arms (1/2/4/…/N for N =
//!   [`std::thread::available_parallelism`]) plus per-arm fleet contention
//!   statistics. Wall-clock derived; never compared byte-for-byte.
//! * `timing` — wall-clock per bug and span timers. Real time; never
//!   compared byte-for-byte.

use std::time::Instant;

use gist_bugbase::{all_bugs, bug_by_name, BugSpec};
use gist_coop::{diagnose_bug, BugEvaluation, EvalConfig, FleetConfig, SimulatedFleet};
use gist_core::Fleet;
use gist_obs::json::Json;
use gist_slicing::StaticSlicer;
use gist_tracking::{InstrumentationPatch, Planner};

/// Baseline runs per batch arm of the throughput measurement; the actual
/// count is rounded up by [`throughput_runs`] to a common multiple of
/// every arm so each arm executes exactly the same runs.
const THROUGHPUT_RUNS_BASE: u64 = 512;

/// The machine-aware batch-scaling arms: 1, 2, 4, … doubling up to the
/// machine's [`std::thread::available_parallelism`] N, with N itself
/// appended when it is not a power of two. One core yields just `[1]` —
/// parallel arms would only measure oversubscription noise.
pub fn throughput_batches() -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut arms = Vec::new();
    let mut b = 1usize;
    while b <= cores {
        arms.push(b);
        b *= 2;
    }
    if *arms.last().expect("at least batch=1") != cores {
        arms.push(cores);
    }
    arms
}

/// Runs per batch arm: the smallest multiple of every arm's batch size
/// that is ≥ [`THROUGHPUT_RUNS_BASE`], so no arm over-prefetches at the
/// tail and all arms execute identical run sets.
pub fn throughput_runs(batches: &[usize]) -> u64 {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let lcm = batches
        .iter()
        .fold(1u64, |l, &b| l / gcd(l, b as u64) * b as u64);
    THROUGHPUT_RUNS_BASE.div_ceil(lcm) * lcm
}

/// One bench run's output, split along the determinism contract.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Per-bug rows + metrics snapshot; byte-identical across same-seed runs.
    pub deterministic: Json,
    /// Execution-rate measurements (instrs/sec, runs/sec, batch scaling).
    /// Wall-clock derived, so excluded from the determinism contract.
    pub throughput: Json,
    /// Wall-clock timings; informational only.
    pub timing: Json,
    /// The flight-recorder journal of the deterministic section in the
    /// canonical binary format (`JOURNAL_gist.bin`). Drained *before* the
    /// throughput section runs, so it covers only the sequential (batch=1)
    /// diagnoses and is byte-identical across same-seed runs. Empty under
    /// `metrics-off`.
    pub journal_binary: Vec<u8>,
    /// The JSONL export of [`BenchReport::journal_binary`]
    /// (`JOURNAL_gist.jsonl`); same events, same determinism contract.
    pub journal: String,
}

impl BenchReport {
    /// The full report as a JSON value.
    pub fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str("gist-bench/v1".into())),
            ("deterministic".into(), self.deterministic.clone()),
            ("throughput".into(), self.throughput.clone()),
            ("timing".into(), self.timing.clone()),
        ])
    }

    /// Pretty-printed JSON (what `BENCH_gist.json` holds).
    pub fn to_json(&self) -> String {
        self.to_value().pretty()
    }

    /// Compact JSON of only the deterministic section (what determinism
    /// tests compare byte-for-byte).
    pub fn deterministic_json(&self) -> String {
        self.deterministic.render()
    }
}

fn bug_row(eval: &BugEvaluation) -> Json {
    Json::Obj(vec![
        ("recurrences".into(), Json::U64(eval.recurrences as u64)),
        ("total_runs".into(), Json::U64(eval.total_runs as u64)),
        ("iterations".into(), Json::U64(eval.iterations as u64)),
        ("final_sigma".into(), Json::U64(eval.final_sigma as u64)),
        ("slice_instrs".into(), Json::U64(eval.slice_instrs as u64)),
        ("sketch_instrs".into(), Json::U64(eval.sketch_instrs as u64)),
        ("relevance".into(), Json::F64(eval.relevance)),
        ("ordering".into(), Json::F64(eval.ordering)),
        ("overall".into(), Json::F64(eval.overall)),
        ("found_root_cause".into(), Json::Bool(eval.found_root_cause)),
        ("pt_bytes".into(), Json::U64(eval.cost.pt_bytes)),
        ("watch_traps".into(), Json::U64(eval.cost.watch_traps)),
        (
            "instrumentation_points".into(),
            Json::U64(eval.cost.instrumentation_points),
        ),
        ("patch_bytes".into(), Json::U64(eval.cost.patch_bytes)),
    ])
}

/// A representative instrumentation patch for throughput runs: plan the
/// first watch group over an 8-statement slice prefix of the bug's failure.
fn throughput_patch(bug: &BugSpec) -> InstrumentationPatch {
    let (_, report) = bug
        .find_failure(2_000)
        .unwrap_or_else(|| panic!("{}: bug never manifests", bug.name));
    let slicer = StaticSlicer::new(&bug.program);
    let slice = slicer.compute(report.failing_stmt);
    let planner = Planner::new(&bug.program, slicer.ticfg());
    let tracked = slice.prefix(8).to_vec();
    planner.plan(&tracked, 0)
}

/// One batch arm of the throughput measurement.
#[derive(Clone, Debug)]
pub struct ThroughputArm {
    /// Parallel batch size of this arm.
    pub batch: usize,
    /// Tracked fleet runs per second.
    pub runs_per_sec: f64,
    /// Retired VM instructions per second (0 under `metrics-off`, which
    /// compiles the `vm.instr_retired` counter away).
    pub instrs_per_sec: f64,
    /// Pool worker threads the arm's fleet spawned.
    pub pool_workers: usize,
    /// Per-executor contention statistics (steals, queue-empty waits,
    /// decode-shard hit ratios) harvested from the arm's fleet.
    pub contention: gist_coop::FleetStats,
}

/// Measures fleet throughput over `runs` tracked runs of pbzip2-1 for each
/// batch size: runs/sec from wall-clock, instrs/sec from the
/// `vm.instr_retired` counter delta over the same interval.
pub fn fleet_throughput(runs: u64, batches: &[usize]) -> Vec<ThroughputArm> {
    let bug = bug_by_name("pbzip2-1").expect("bugbase has pbzip2-1");
    let patch = throughput_patch(&bug);
    let retired = gist_obs::counter!("vm.instr_retired");
    batches
        .iter()
        .map(|&batch| {
            let mut fleet = SimulatedFleet::for_bug(
                &bug,
                FleetConfig {
                    endpoints: 64,
                    num_cores: 4,
                    batch,
                    workers: None,
                },
            );
            let instrs0 = retired.get();
            let t0 = Instant::now();
            for _ in 0..runs {
                let _ = Fleet::next_run(&mut fleet, &patch);
            }
            let secs = t0.elapsed().as_secs_f64().max(1e-9);
            ThroughputArm {
                batch,
                runs_per_sec: runs as f64 / secs,
                instrs_per_sec: (retired.get() - instrs0) as f64 / secs,
                pool_workers: fleet.pool_workers(),
                contention: fleet.contention_stats(),
            }
        })
        .collect()
}

/// Renders the throughput arms as the report's `throughput` section:
/// headline `runs_per_sec` / `instrs_per_sec` (the best arm) plus a
/// `batch_scaling` table keyed by batch size with per-arm rates, speedup
/// relative to batch=1, pool size, and contention statistics.
fn throughput_value(runs_per_arm: u64, arms: &[ThroughputArm]) -> Json {
    let batch1 = arms
        .iter()
        .find(|a| a.batch == 1)
        .map_or(0.0, |a| a.runs_per_sec);
    let best = arms
        .iter()
        .fold(None::<&ThroughputArm>, |best, a| match best {
            Some(b) if b.runs_per_sec >= a.runs_per_sec => Some(b),
            _ => Some(a),
        });
    let scaling = arms
        .iter()
        .map(|a| {
            (
                a.batch.to_string(),
                Json::Obj(vec![
                    ("runs_per_sec".into(), Json::F64(a.runs_per_sec)),
                    ("instrs_per_sec".into(), Json::F64(a.instrs_per_sec)),
                    (
                        "speedup_vs_batch1".into(),
                        Json::F64(if batch1 > 0.0 {
                            a.runs_per_sec / batch1
                        } else {
                            0.0
                        }),
                    ),
                    ("pool_workers".into(), Json::U64(a.pool_workers as u64)),
                    ("contention".into(), a.contention.to_value()),
                ]),
            )
        })
        .collect();
    Json::Obj(vec![
        ("runs_per_arm".into(), Json::U64(runs_per_arm)),
        (
            "available_parallelism".into(),
            Json::U64(
                std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(1),
            ),
        ),
        (
            "runs_per_sec".into(),
            Json::F64(best.map_or(0.0, |a| a.runs_per_sec)),
        ),
        (
            "instrs_per_sec".into(),
            Json::F64(best.map_or(0.0, |a| a.instrs_per_sec)),
        ),
        ("batch_scaling".into(), Json::Obj(scaling)),
    ])
}

/// Runs the bench: every bugbase bug through `diagnose_bug` (or the named
/// subset, for cheap determinism tests), then the throughput measurement.
///
/// Resets the global metrics registry first, so the snapshot covers exactly
/// this run — callers that share the process with other metric producers
/// (tests in the same binary) get polluted counters; run bench in its own
/// process for byte-stable output.
pub fn run(filter: Option<&[&str]>) -> (BenchReport, Vec<BugEvaluation>) {
    gist_obs::reset();
    let t_total = Instant::now();
    let mut rows: Vec<(String, Json)> = Vec::new();
    let mut wall: Vec<(String, Json)> = Vec::new();
    let mut evals = Vec::new();
    for bug in all_bugs() {
        if let Some(names) = filter {
            if !names.contains(&bug.name) {
                continue;
            }
        }
        let t0 = Instant::now();
        let eval = diagnose_bug(&bug, &EvalConfig::default());
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        rows.push((bug.name.to_owned(), bug_row(&eval)));
        wall.push((bug.name.to_owned(), Json::F64(ms)));
        evals.push(eval);
    }
    let snapshot = gist_obs::snapshot();
    let deterministic = Json::Obj(vec![
        ("bugs".into(), Json::Obj(rows)),
        ("metrics".into(), snapshot.deterministic_value()),
    ]);
    // Drain the journal before the throughput section: its batch>1 arms
    // record events from racing worker threads, which must not leak into
    // the deterministic journal. The cost split backs the overhead claim:
    // `encode_ms` is the amortized in-flush frame encoding, `drain_ms` is
    // the binary take (the ring already holds wire frames — draining the
    // canonical journal is a sort plus one concatenation), `export_ms` is
    // the decode + JSONL render (export only — not part of the always-on
    // recording path).
    let encode_ms = gist_obs::journal::encode_ms();
    let t_drain = Instant::now();
    let (journal_binary, stats) = gist_obs::journal::drain_binary();
    let drain_ms = t_drain.elapsed().as_secs_f64() * 1e3;
    let t_export = Instant::now();
    let (events, _) = gist_obs::journal::parse_binary(&journal_binary)
        .expect("the drained binary journal parses");
    let journal = gist_obs::journal::to_jsonl(&events);
    let export_ms = t_export.elapsed().as_secs_f64() * 1e3;

    let batches = throughput_batches();
    let runs_per_arm = throughput_runs(&batches);
    let arms = fleet_throughput(runs_per_arm, &batches);
    let throughput = throughput_value(runs_per_arm, &arms);
    let total_ms = t_total.elapsed().as_secs_f64() * 1e3;
    // The always-on recorder cost relative to the whole bench: encoding
    // plus draining. CI bench-smoke gates this ratio at ≤ 3%.
    let overhead_ratio = if total_ms > 0.0 {
        (encode_ms + drain_ms) / total_ms
    } else {
        0.0
    };
    let journal_overhead = Json::Obj(vec![
        ("events_recorded".into(), Json::U64(events.len() as u64)),
        (
            "events_overwritten".into(),
            Json::U64(stats.events_overwritten),
        ),
        ("oldest_seq".into(), Json::U64(stats.oldest_seq)),
        (
            "binary_bytes".into(),
            Json::U64(journal_binary.len() as u64),
        ),
        ("jsonl_bytes".into(), Json::U64(journal.len() as u64)),
        ("encode_ms".into(), Json::F64(encode_ms)),
        ("drain_ms".into(), Json::F64(drain_ms)),
        ("export_ms".into(), Json::F64(export_ms)),
        ("overhead_ratio".into(), Json::F64(overhead_ratio)),
    ]);
    let timing = Json::Obj(vec![
        ("total_ms".into(), Json::F64(total_ms)),
        ("per_bug_ms".into(), Json::Obj(wall)),
        ("spans".into(), snapshot.timers_value()),
        ("journal".into(), journal_overhead),
        (
            "metrics_feature".into(),
            Json::Str(
                if cfg!(feature = "metrics-off") {
                    "off"
                } else {
                    "on"
                }
                .into(),
            ),
        ),
    ]);

    (
        BenchReport {
            deterministic,
            throughput,
            timing,
            journal_binary,
            journal,
        },
        evals,
    )
}
