//! `repro -- bench`: the perf-trajectory emitter.
//!
//! Drives the full bugbase through [`gist_coop::diagnose_bug`] with metrics
//! enabled and writes `BENCH_gist.json`. The report has two top-level
//! sections:
//!
//! * `deterministic` — per-bug diagnosis rows plus the counter/histogram
//!   snapshot. Under fixed seeds this section is **byte-identical** across
//!   runs (the gist-obs determinism contract), so CI can diff it against a
//!   committed baseline.
//! * `timing` — wall-clock per bug, span timers, and fleet throughput at
//!   batch=1 vs batch=8. Real time; never compared byte-for-byte.

use std::time::Instant;

use gist_bugbase::{all_bugs, bug_by_name, BugSpec};
use gist_coop::{diagnose_bug, BugEvaluation, EvalConfig, FleetConfig, SimulatedFleet};
use gist_core::Fleet;
use gist_obs::json::Json;
use gist_slicing::StaticSlicer;
use gist_tracking::{InstrumentationPatch, Planner};

/// Runs per batch arm of the throughput measurement. A multiple of the
/// batch size, so batch=8 executes exactly as many runs as batch=1.
pub const THROUGHPUT_RUNS: u64 = 512;

/// The parallel batch size measured against batch=1.
pub const THROUGHPUT_BATCH: usize = 8;

/// One bench run's output, split along the determinism contract.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Per-bug rows + metrics snapshot; byte-identical across same-seed runs.
    pub deterministic: Json,
    /// Wall-clock timings and throughput; informational only.
    pub timing: Json,
}

impl BenchReport {
    /// The full report as a JSON value.
    pub fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str("gist-bench/v1".into())),
            ("deterministic".into(), self.deterministic.clone()),
            ("timing".into(), self.timing.clone()),
        ])
    }

    /// Pretty-printed JSON (what `BENCH_gist.json` holds).
    pub fn to_json(&self) -> String {
        self.to_value().pretty()
    }

    /// Compact JSON of only the deterministic section (what determinism
    /// tests compare byte-for-byte).
    pub fn deterministic_json(&self) -> String {
        self.deterministic.render()
    }
}

fn bug_row(eval: &BugEvaluation) -> Json {
    Json::Obj(vec![
        ("recurrences".into(), Json::U64(eval.recurrences as u64)),
        ("total_runs".into(), Json::U64(eval.total_runs as u64)),
        ("iterations".into(), Json::U64(eval.iterations as u64)),
        ("final_sigma".into(), Json::U64(eval.final_sigma as u64)),
        ("slice_instrs".into(), Json::U64(eval.slice_instrs as u64)),
        ("sketch_instrs".into(), Json::U64(eval.sketch_instrs as u64)),
        ("relevance".into(), Json::F64(eval.relevance)),
        ("ordering".into(), Json::F64(eval.ordering)),
        ("overall".into(), Json::F64(eval.overall)),
        ("found_root_cause".into(), Json::Bool(eval.found_root_cause)),
        ("pt_bytes".into(), Json::U64(eval.cost.pt_bytes)),
        ("watch_traps".into(), Json::U64(eval.cost.watch_traps)),
        (
            "instrumentation_points".into(),
            Json::U64(eval.cost.instrumentation_points),
        ),
        ("patch_bytes".into(), Json::U64(eval.cost.patch_bytes)),
    ])
}

/// A representative instrumentation patch for throughput runs: plan the
/// first watch group over an 8-statement slice prefix of the bug's failure.
fn throughput_patch(bug: &BugSpec) -> InstrumentationPatch {
    let (_, report) = bug
        .find_failure(2_000)
        .unwrap_or_else(|| panic!("{}: bug never manifests", bug.name));
    let slicer = StaticSlicer::new(&bug.program);
    let slice = slicer.compute(report.failing_stmt);
    let planner = Planner::new(&bug.program, slicer.ticfg());
    let tracked = slice.prefix(8).to_vec();
    planner.plan(&tracked, 0)
}

/// Measures fleet throughput (runs/sec) over `runs` tracked runs of
/// pbzip2-1 for each batch size. Returns `(batch, runs_per_sec)` pairs.
pub fn fleet_throughput(runs: u64, batches: &[usize]) -> Vec<(usize, f64)> {
    let bug = bug_by_name("pbzip2-1").expect("bugbase has pbzip2-1");
    let patch = throughput_patch(&bug);
    batches
        .iter()
        .map(|&batch| {
            let mut fleet = SimulatedFleet::for_bug(
                &bug,
                FleetConfig {
                    endpoints: 64,
                    num_cores: 4,
                    batch,
                },
            );
            let t0 = Instant::now();
            for _ in 0..runs {
                let _ = Fleet::next_run(&mut fleet, &patch);
            }
            let secs = t0.elapsed().as_secs_f64().max(1e-9);
            (batch, runs as f64 / secs)
        })
        .collect()
}

/// Runs the bench: every bugbase bug through `diagnose_bug` (or the named
/// subset, for cheap determinism tests), then the throughput measurement.
///
/// Resets the global metrics registry first, so the snapshot covers exactly
/// this run — callers that share the process with other metric producers
/// (tests in the same binary) get polluted counters; run bench in its own
/// process for byte-stable output.
pub fn run(filter: Option<&[&str]>) -> (BenchReport, Vec<BugEvaluation>) {
    gist_obs::reset();
    let t_total = Instant::now();
    let mut rows: Vec<(String, Json)> = Vec::new();
    let mut wall: Vec<(String, Json)> = Vec::new();
    let mut evals = Vec::new();
    for bug in all_bugs() {
        if let Some(names) = filter {
            if !names.contains(&bug.name) {
                continue;
            }
        }
        let t0 = Instant::now();
        let eval = diagnose_bug(&bug, &EvalConfig::default());
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        rows.push((bug.name.to_owned(), bug_row(&eval)));
        wall.push((bug.name.to_owned(), Json::F64(ms)));
        evals.push(eval);
    }
    let snapshot = gist_obs::snapshot();
    let deterministic = Json::Obj(vec![
        ("bugs".into(), Json::Obj(rows)),
        ("metrics".into(), snapshot.deterministic_value()),
    ]);

    let throughput = fleet_throughput(THROUGHPUT_RUNS, &[1, THROUGHPUT_BATCH]);
    let batch1 = throughput.first().map_or(0.0, |&(_, r)| r);
    let batchn = throughput.last().map_or(0.0, |&(_, r)| r);
    let timing = Json::Obj(vec![
        (
            "total_ms".into(),
            Json::F64(t_total.elapsed().as_secs_f64() * 1e3),
        ),
        ("per_bug_ms".into(), Json::Obj(wall)),
        ("spans".into(), snapshot.timers_value()),
        (
            "fleet_throughput".into(),
            Json::Obj(vec![
                ("runs_per_arm".into(), Json::U64(THROUGHPUT_RUNS)),
                ("batch1_runs_per_sec".into(), Json::F64(batch1)),
                (
                    format!("batch{THROUGHPUT_BATCH}_runs_per_sec"),
                    Json::F64(batchn),
                ),
                (
                    "parallel_speedup".into(),
                    Json::F64(if batch1 > 0.0 { batchn / batch1 } else { 0.0 }),
                ),
            ]),
        ),
        (
            "metrics_feature".into(),
            Json::Str(
                if cfg!(feature = "metrics-off") {
                    "off"
                } else {
                    "on"
                }
                .into(),
            ),
        ),
    ]);

    (
        BenchReport {
            deterministic,
            timing,
        },
        evals,
    )
}
