//! The static race detector over the bugbase (`repro races`).
//!
//! Two artifacts:
//!
//! 1. Per-bug candidate tables: what `gist-analysis` finds *before any run*
//!    — ranked racing pairs with access kinds and locksets. Sequential bugs
//!    legitimately print an empty table.
//! 2. The ranking ablation: failure recurrences to the final sketch with
//!    race-candidate seeding/watch-ordering on vs off, across all 11 bugs.
//!    This quantifies the tentpole's payoff: statements the alias-free
//!    slicer cannot reach (pbzip2's `free`) become trackable, and the
//!    likeliest racing accesses get watchpoints in the earliest
//!    cooperative groups.

use gist_analysis::{analyze, has_errors, verify, RaceAnalysis};
use gist_bugbase::all_bugs;

pub use crate::ablations::{ranking_ablation, RankingRow};

/// The race-detector verdict for one bug.
#[derive(Clone, Debug)]
pub struct BugRaces {
    /// Bug name.
    pub bug: String,
    /// Whether the IR verifier accepts the program (it must).
    pub verified: bool,
    /// The ranked candidates.
    pub analysis: RaceAnalysis,
    /// The rendered candidate table.
    pub table: String,
}

/// Runs the verifier and race detector over every bugbase program.
pub fn bug_races() -> Vec<BugRaces> {
    all_bugs()
        .iter()
        .map(|bug| {
            let analysis = analyze(&bug.program);
            BugRaces {
                bug: bug.name.to_owned(),
                verified: !has_errors(&verify(&bug.program)),
                table: analysis.render_table(&bug.program),
                analysis,
            }
        })
        .collect()
}

/// Renders the per-bug candidate tables.
pub fn races_text() -> String {
    let mut out = String::new();
    out.push_str("Static race candidates per bug (gist-analysis, no runs)\n");
    for r in bug_races() {
        out.push_str(&format!(
            "\n{} — verifier: {}\n",
            r.bug,
            if r.verified { "ok" } else { "REJECTED" }
        ));
        out.push_str(&r.table);
    }
    out
}

/// Renders the ranking ablation table.
pub fn ranking_text() -> String {
    let rows = ranking_ablation();
    let mut out = String::new();
    out.push_str("\nRace-ranking ablation — recurrences to final sketch\n\n");
    out.push_str(&format!(
        "{:<18} {:>12} {:>13} {:>9} {:>10}\n",
        "bug", "ranking on", "ranking off", "found", "found(off)"
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:<18} {:>12} {:>13} {:>9} {:>10}\n",
            r.bug, r.recurrences_on, r.recurrences_off, r.found_on, r.found_off
        ));
    }
    let on: usize = rows.iter().map(|r| r.recurrences_on).sum();
    let off: usize = rows.iter().map(|r| r.recurrences_off).sum();
    out.push_str(&format!("{:<18} {:>12} {:>13}\n", "total", on, off));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bug_gets_a_verified_table() {
        let rows = bug_races();
        assert_eq!(rows.len(), 11);
        for r in &rows {
            assert!(r.verified, "{}: verifier rejected", r.bug);
            assert!(!r.table.is_empty(), "{}: no table", r.bug);
        }
        // The concurrency bugs produce candidates; sequential ones none.
        let with = rows.iter().filter(|r| !r.analysis.is_empty()).count();
        assert!(with >= 6, "only {with} bugs had candidates");
    }
}
