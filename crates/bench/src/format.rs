//! Plain-text rendering of experiment results, in the layout of the
//! paper's tables and figures.

use gist_bugbase::all_bugs;
use gist_coop::BugEvaluation;

use crate::experiments::{Fig10Row, Fig11Row, Fig12Row, Fig13Row, OverheadRow};

/// Renders Table 1 with paper-reported values side by side.
pub fn table1_text(evals: &[BugEvaluation]) -> String {
    let bugs = all_bugs();
    let mut out = String::new();
    out.push_str(
        "Table 1 — per-bug slice/sketch sizes and diagnosis latency\n\
         (ours = this reproduction's miniature programs; paper = reported in SOSP'15)\n\n",
    );
    out.push_str(&format!(
        "{:<18} {:>14} {:>14} {:>14} {:>12} {:>12}\n",
        "bug", "slice src(ir)", "ideal src(ir)", "gist src(ir)", "recurrences", "runs"
    ));
    for e in evals {
        let paper = bugs.iter().find(|b| b.name == e.bug).map(|b| b.paper);
        out.push_str(&format!(
            "{:<18} {:>14} {:>14} {:>14} {:>12} {:>12}\n",
            e.bug,
            format!("{}({})", e.slice_src, e.slice_instrs),
            format!("{}({})", e.ideal_src, e.ideal_instrs),
            format!("{}({})", e.sketch_src, e.sketch_instrs),
            e.recurrences,
            e.total_runs
        ));
        if let Some(p) = paper {
            out.push_str(&format!(
                "{:<18} {:>14} {:>14} {:>14} {:>12}\n",
                "  (paper)",
                format!("{}({})", p.slice_src, p.slice_instrs),
                format!("{}({})", p.ideal_src, p.ideal_instrs),
                format!("{}({})", p.gist_src, p.gist_instrs),
                p.recurrences
            ));
        }
    }
    out
}

/// Renders Fig. 9 (accuracy per bug).
pub fn fig9_text(evals: &[BugEvaluation]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 9 — sketch accuracy per bug (paper averages: AR 92, AO 100, A 96)\n\n");
    out.push_str(&format!(
        "{:<18} {:>10} {:>10} {:>10} {:>12}\n",
        "bug", "relevance", "ordering", "overall", "root cause"
    ));
    let (mut ar, mut ao, mut a) = (0.0, 0.0, 0.0);
    for e in evals {
        out.push_str(&format!(
            "{:<18} {:>9.1}% {:>9.1}% {:>9.1}% {:>12}\n",
            e.bug,
            e.relevance,
            e.ordering,
            e.overall,
            if e.found_root_cause {
                "found"
            } else {
                "MISSING"
            }
        ));
        ar += e.relevance;
        ao += e.ordering;
        a += e.overall;
    }
    let n = evals.len().max(1) as f64;
    out.push_str(&format!(
        "{:<18} {:>9.1}% {:>9.1}% {:>9.1}%\n",
        "average",
        ar / n,
        ao / n,
        a / n
    ));
    out
}

/// Renders Fig. 10 (technique contributions).
pub fn fig10_text(rows: &[Fig10Row]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 10 — contribution of each technique to overall accuracy\n\n");
    out.push_str(&format!(
        "{:<18} {:>12} {:>16} {:>10}\n",
        "bug", "static only", "+control flow", "+data flow"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>11.1}% {:>15.1}% {:>9.1}%\n",
            r.bug, r.static_only, r.with_control_flow, r.full
        ));
    }
    out
}

/// Renders Fig. 11 (overhead vs tracked slice size).
pub fn fig11_text(rows: &[Fig11Row]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 11 — average client overhead vs tracked slice size\n\n");
    let max = rows
        .iter()
        .map(|r| r.overhead_pct)
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    for r in rows {
        let bar = "#".repeat(((r.overhead_pct / max) * 40.0).round() as usize);
        out.push_str(&format!(
            "  slice {:>2}: {:>6.2}%  {}\n",
            r.slice_size, r.overhead_pct, bar
        ));
    }
    out
}

/// Renders Fig. 12 (σ₀ tradeoff).
pub fn fig12_text(rows: &[Fig12Row]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 12 — initial slice size σ₀ vs accuracy and latency\n\n");
    out.push_str(&format!(
        "{:>6} {:>14} {:>18}\n",
        "σ₀", "avg accuracy", "avg recurrences"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>6} {:>13.1}% {:>18.1}\n",
            r.sigma0, r.avg_accuracy, r.avg_recurrences
        ));
    }
    out
}

/// Renders Fig. 13 (rr vs PT full tracing).
pub fn fig13_text(rows: &[Fig13Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Fig. 13 — full-tracing overhead: record/replay vs Intel PT\n\
         (paper averages: rr 984%, PT 11%)\n\n",
    );
    out.push_str(&format!(
        "{:<18} {:>10} {:>10} {:>12} {:>12} {:>14}\n",
        "program", "rr %", "PT %", "rr B/run", "PT B/run", "bits/retired"
    ));
    let (mut rr_sum, mut pt_sum) = (0.0, 0.0);
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>9.0}% {:>9.1}% {:>12.0} {:>12.0} {:>14.2}\n",
            r.program, r.rr_pct, r.pt_pct, r.rr_bytes, r.pt_bytes, r.bits_per_retired
        ));
        rr_sum += r.rr_pct;
        pt_sum += r.pt_pct;
    }
    let n = rows.len().max(1) as f64;
    out.push_str(&format!(
        "{:<18} {:>9.0}% {:>9.1}%\n",
        "average",
        rr_sum / n,
        pt_sum / n
    ));
    out
}

/// Renders the §5.3 overhead breakdown.
pub fn overhead_text(rows: &[OverheadRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "§5.3 — client overhead at σ = 2 (paper: 3.74% avg; control flow\n\
         2.01–3.43%, data flow 0.87–1.04%)\n\n",
    );
    out.push_str(&format!(
        "{:<18} {:>8} {:>14} {:>12}\n",
        "bug", "total", "control flow", "data flow"
    ));
    let mut sum = 0.0;
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>7.2}% {:>13.2}% {:>11.2}%\n",
            r.bug, r.total_pct, r.control_flow_pct, r.data_flow_pct
        ));
        sum += r.total_pct;
    }
    out.push_str(&format!(
        "{:<18} {:>7.2}%\n",
        "average",
        sum / rows.len().max(1) as f64
    ));
    out
}

/// Renders the §6 software-tracing overheads.
pub fn swtrace_text(rows: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str("§6 — software-only control-flow tracking (paper: 3×–5,000×)\n\n");
    for (name, pct) in rows {
        out.push_str(&format!(
            "{:<18} {:>8.0}%  ({:.1}×)\n",
            name,
            pct,
            pct / 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_bar_chart_renders() {
        let rows = vec![
            Fig11Row {
                slice_size: 2,
                overhead_pct: 1.0,
            },
            Fig11Row {
                slice_size: 4,
                overhead_pct: 2.0,
            },
        ];
        let t = fig11_text(&rows);
        assert!(t.contains("slice  2"));
        assert!(t.contains("####"));
    }

    #[test]
    fn fig12_table_renders() {
        let rows = vec![Fig12Row {
            sigma0: 2,
            avg_accuracy: 90.0,
            avg_recurrences: 3.5,
        }];
        let t = fig12_text(&rows);
        assert!(t.contains("90.0%"));
        assert!(t.contains("3.5"));
    }

    #[test]
    fn swtrace_shows_factor() {
        let t = swtrace_text(&[("x".into(), 500.0)]);
        assert!(t.contains("5.0×"));
    }
}
