//! Recorded per-bug accuracy expectations.
//!
//! `repro -- table1` (and `fig9`, `all`, `bench`) used to exit 0 even when
//! sketch accuracy regressed; these floors make a regression fail the run.
//! Floors are recorded from an actual run of the paper-default pipeline
//! (σ₀ = 2, multiplicative growth, β = 0.5) with ~10 points of margin, so
//! they trip on real regressions rather than on noise.

use gist_coop::BugEvaluation;

use crate::synth_report::SynthReport;

/// The recorded floor for one bug.
#[derive(Clone, Copy, Debug)]
pub struct BugExpectation {
    /// Bugbase short name.
    pub bug: &'static str,
    /// Minimum acceptable overall accuracy (percent).
    pub min_overall: f64,
    /// Whether the diagnosis must identify the root cause.
    pub require_root_cause: bool,
}

/// Per-bug floors, recorded 2026-08 from the seed pipeline.
pub const EXPECTATIONS: &[BugExpectation] = &[
    BugExpectation {
        bug: "apache-21285",
        min_overall: 75.0,
        require_root_cause: true,
    },
    BugExpectation {
        bug: "apache-21287",
        min_overall: 80.0,
        require_root_cause: true,
    },
    BugExpectation {
        bug: "apache-25520",
        min_overall: 60.0,
        require_root_cause: true,
    },
    BugExpectation {
        bug: "apache-45605",
        min_overall: 85.0,
        require_root_cause: true,
    },
    BugExpectation {
        bug: "cppcheck-2782",
        min_overall: 85.0,
        require_root_cause: true,
    },
    BugExpectation {
        bug: "cppcheck-3238",
        min_overall: 70.0,
        require_root_cause: true,
    },
    BugExpectation {
        bug: "curl-965",
        min_overall: 80.0,
        require_root_cause: true,
    },
    BugExpectation {
        bug: "memcached-127",
        min_overall: 55.0,
        require_root_cause: true,
    },
    BugExpectation {
        bug: "pbzip2-1",
        min_overall: 80.0,
        require_root_cause: true,
    },
    BugExpectation {
        bug: "sqlite-1672",
        min_overall: 70.0,
        require_root_cause: true,
    },
    BugExpectation {
        bug: "transmission-1818",
        min_overall: 80.0,
        require_root_cause: true,
    },
];

/// Recovery floor (percent) for the synthetic bugbase, recorded 2026-08
/// from `repro bench --synthetic 200 --seed 1` on the seed pipeline
/// (which recovers well above this; the floor trips on real regressions,
/// not sampling noise).
pub const SYNTH_RECOVERY_FLOOR: f64 = 90.0;

/// Static-lint conformance floor (percent) for the synthetic bugbase.
pub const SYNTH_LINT_FLOOR: f64 = 90.0;

/// Checks a synthetic-bugbase report against the recorded floors.
/// Returns one human-readable violation per failing criterion.
pub fn check_synth(report: &SynthReport) -> Vec<String> {
    let mut violations = Vec::new();
    let recovery = report.recovery_rate();
    if recovery < SYNTH_RECOVERY_FLOOR {
        violations.push(format!(
            "synthetic recovery {recovery:.1}% below recorded floor {SYNTH_RECOVERY_FLOOR:.1}%"
        ));
    }
    let lint = report.lint_rate();
    if lint < SYNTH_LINT_FLOOR {
        violations.push(format!(
            "synthetic lint conformance {lint:.1}% below recorded floor {SYNTH_LINT_FLOOR:.1}%"
        ));
    }
    if report.dirty_controls > 0 {
        violations.push(format!(
            "{} of {} negative controls were not clean",
            report.dirty_controls, report.controls
        ));
    }
    violations
}

/// Checks evaluations against the recorded floors. Returns one human-readable
/// violation per failing bug; empty means accuracy is no worse than recorded.
pub fn check(evals: &[BugEvaluation]) -> Vec<String> {
    let mut violations = Vec::new();
    for exp in EXPECTATIONS {
        let Some(eval) = evals.iter().find(|e| e.bug == exp.bug) else {
            violations.push(format!("{}: missing from results", exp.bug));
            continue;
        };
        if eval.overall < exp.min_overall {
            violations.push(format!(
                "{}: overall accuracy {:.1}% below recorded floor {:.1}%",
                exp.bug, eval.overall, exp.min_overall
            ));
        }
        if exp.require_root_cause && !eval.found_root_cause {
            violations.push(format!(
                "{}: root cause no longer identified in the sketch",
                exp.bug
            ));
        }
    }
    violations
}
