//! Experiment drivers, one per table/figure.

use gist_baselines::{CostModel, Recorder, SoftwareTracer};
use gist_bugbase::{all_bugs, bug_by_name, BugSpec};
use gist_coop::{diagnose_bug, BugEvaluation, EvalConfig};
use gist_core::server::CostSummary;
use gist_pt::{PtConfig, PtDriver, PtTracer};
use gist_slicing::StaticSlicer;
use gist_tracking::{Planner, TrackerRuntime};
use gist_vm::Vm;

/// Table 1: full diagnosis of every bug with the paper's defaults
/// (σ₀ = 2, multiplicative growth, β = 0.5).
pub fn table1() -> Vec<BugEvaluation> {
    all_bugs()
        .iter()
        .map(|bug| diagnose_bug(bug, &EvalConfig::default()))
        .collect()
}

/// One bar group of Fig. 10: overall accuracy per tracking configuration.
#[derive(Clone, Debug)]
pub struct Fig10Row {
    /// Bug short name.
    pub bug: String,
    /// Static slicing only.
    pub static_only: f64,
    /// Static slicing + Intel PT control-flow tracking.
    pub with_control_flow: f64,
    /// Full Gist (+ watchpoint data-flow tracking).
    pub full: f64,
}

/// Fig. 10: contribution of each technique to sketch accuracy.
pub fn fig10() -> Vec<Fig10Row> {
    all_bugs()
        .iter()
        .map(|bug| {
            let run = |cf: bool, df: bool| {
                diagnose_bug(
                    bug,
                    &EvalConfig {
                        enable_control_flow: cf,
                        enable_data_flow: df,
                        // Legacy slicing in every arm: Fig. 10 isolates the
                        // *runtime tracking* techniques, and the sparse
                        // value-flow slice (its own `svfg` ablation) would
                        // otherwise statically subsume part of what
                        // data-flow tracking discovers dynamically.
                        enable_svfg_slicing: false,
                        // Same σ budget in all configurations so the
                        // comparison isolates the tracking technique.
                        stop_at_root_cause: false,
                        max_iterations: 5,
                        failing_per_iteration: 4,
                        ..EvalConfig::default()
                    },
                )
                .overall
            };
            Fig10Row {
                bug: bug.name.to_owned(),
                static_only: run(false, false),
                with_control_flow: run(true, false),
                full: run(true, true),
            }
        })
        .collect()
}

/// One point of Fig. 11: average client overhead at a fixed tracked size.
#[derive(Clone, Debug)]
pub struct Fig11Row {
    /// Tracked slice size (statements).
    pub slice_size: usize,
    /// Average modeled overhead percentage across bugs.
    pub overhead_pct: f64,
}

/// Fig. 11: overhead as a function of tracked slice size.
pub fn fig11(runs_per_point: u64) -> Vec<Fig11Row> {
    let model = CostModel::default();
    let bugs = all_bugs();
    let mut rows = Vec::new();
    for size in (2..=24).step_by(2) {
        let mut pcts = Vec::new();
        for bug in &bugs {
            if let Some(cost) = tracked_cost(bug, size, runs_per_point) {
                pcts.push(model.gist_overhead_pct(&cost));
            }
        }
        let avg = pcts.iter().sum::<f64>() / pcts.len().max(1) as f64;
        rows.push(Fig11Row {
            slice_size: size,
            overhead_pct: avg,
        });
    }
    rows
}

/// Runs `n` production runs of `bug` tracking the first `size` slice
/// statements, returning the aggregate cost.
fn tracked_cost(bug: &BugSpec, size: usize, n: u64) -> Option<CostSummary> {
    let (_, report) = bug.find_failure(500)?;
    let slicer = StaticSlicer::new(&bug.program);
    let slice = slicer.compute(report.failing_stmt);
    let planner = Planner::new(&bug.program, slicer.ticfg());
    let tracked = slice.prefix(size);
    let groups = planner.watch_groups(tracked);
    let mut cost = CostSummary::default();
    for i in 0..n {
        let patch = planner.plan(tracked, (i as usize) % groups);
        let mut tracker = TrackerRuntime::new(&bug.program, patch, 4);
        let mut vm = Vm::new(&bug.program, bug.vm_config(10_000 + i));
        let result = vm.run(&mut [&mut tracker]);
        let trace = tracker.finish();
        cost.pt_bytes += trace.pt_bytes as u64;
        cost.pt_transitions += trace.pt_transitions;
        cost.traced_retired += trace.traced_retired;
        cost.watch_traps += trace.watch_traps;
        cost.ptrace_ops += trace.ptrace_ops;
        cost.total_retired += result.steps;
    }
    Some(cost)
}

/// One point of Fig. 12: the σ₀ tradeoff.
#[derive(Clone, Debug)]
pub struct Fig12Row {
    /// Initial σ.
    pub sigma0: usize,
    /// Average overall accuracy across bugs (percent).
    pub avg_accuracy: f64,
    /// Average failure recurrences to the final sketch.
    pub avg_recurrences: f64,
}

/// Fig. 12: initial slice size vs accuracy and latency.
pub fn fig12() -> Vec<Fig12Row> {
    let bugs = all_bugs();
    [2usize, 4, 8, 16, 23, 32]
        .into_iter()
        .map(|sigma0| {
            let mut acc = Vec::new();
            let mut rec = Vec::new();
            for bug in &bugs {
                let eval = diagnose_bug(
                    bug,
                    &EvalConfig {
                        sigma0,
                        ..EvalConfig::default()
                    },
                );
                acc.push(eval.overall);
                rec.push(eval.recurrences as f64);
            }
            Fig12Row {
                sigma0,
                avg_accuracy: acc.iter().sum::<f64>() / acc.len().max(1) as f64,
                avg_recurrences: rec.iter().sum::<f64>() / rec.len().max(1) as f64,
            }
        })
        .collect()
}

/// One bar pair of Fig. 13: full-tracing overheads per program.
#[derive(Clone, Debug)]
pub struct Fig13Row {
    /// Bug / program name.
    pub program: String,
    /// Record/replay modeled overhead (percent).
    pub rr_pct: f64,
    /// Intel PT full-tracing modeled overhead (percent).
    pub pt_pct: f64,
    /// rr log bytes per run (average).
    pub rr_bytes: f64,
    /// PT trace bytes per run (average).
    pub pt_bytes: f64,
    /// PT trace bits per retired statement.
    pub bits_per_retired: f64,
}

/// Fig. 13: Mozilla-rr-style record/replay vs Intel PT, full tracing.
pub fn fig13(runs: u64) -> Vec<Fig13Row> {
    let model = CostModel::default();
    all_bugs()
        .iter()
        .map(|bug| {
            let mut rr_events = 0u64;
            let mut rr_bytes = 0u64;
            let mut pt_bytes = 0u64;
            let mut retired = 0u64;
            for seed in 0..runs {
                let cfg = bug.vm_config(seed);
                let rec = Recorder::record(&bug.program, cfg.clone());
                rr_events += rec.event_count();
                rr_bytes += rec.log_bytes() as u64;
                let mut tracer =
                    PtTracer::new(&bug.program, PtDriver::always_on(), PtConfig::default());
                let mut vm = Vm::new(&bug.program, cfg);
                let r = vm.run(&mut [&mut tracer]);
                tracer.finish();
                pt_bytes += tracer.total_bytes() as u64;
                retired += r.steps;
            }
            Fig13Row {
                program: bug.name.to_owned(),
                rr_pct: model.rr_overhead_pct(rr_events, retired),
                pt_pct: model.pt_full_overhead_pct(pt_bytes, retired),
                rr_bytes: rr_bytes as f64 / runs.max(1) as f64,
                pt_bytes: pt_bytes as f64 / runs.max(1) as f64,
                bits_per_retired: if retired == 0 {
                    0.0
                } else {
                    pt_bytes as f64 * 8.0 / retired as f64
                },
            }
        })
        .collect()
}

/// One row of the §5.3 overhead breakdown at σ = 2.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Bug short name.
    pub bug: String,
    /// Total Gist overhead (percent).
    pub total_pct: f64,
    /// Control-flow tracking share (PT bytes + transitions).
    pub control_flow_pct: f64,
    /// Data-flow tracking share (traps + debug-register ops).
    pub data_flow_pct: f64,
}

/// §5.3: per-bug client overhead with AsT's initial σ = 2.
pub fn overhead_sigma2(runs_per_bug: u64) -> Vec<OverheadRow> {
    let model = CostModel::default();
    all_bugs()
        .iter()
        .filter_map(|bug| {
            let cost = tracked_cost(bug, 2, runs_per_bug)?;
            let cf = cost.pt_bytes as f64 * model.pt_byte
                + cost.pt_transitions as f64 * model.pt_transition;
            let df = cost.watch_traps as f64 * model.watch_trap
                + cost.ptrace_ops as f64 * model.ptrace_op;
            let denom = cost.total_retired as f64;
            Some(OverheadRow {
                bug: bug.name.to_owned(),
                total_pct: 100.0 * (cf + df) / denom,
                control_flow_pct: 100.0 * cf / denom,
                data_flow_pct: 100.0 * df / denom,
            })
        })
        .collect()
}

/// §6: software control-flow tracing overhead factors per program.
pub fn swtrace_rows(runs: u64) -> Vec<(String, f64)> {
    let model = CostModel::default();
    all_bugs()
        .iter()
        .map(|bug| {
            let mut stmts = 0u64;
            let mut branches = 0u64;
            for seed in 0..runs {
                let mut sw = SoftwareTracer::new();
                let mut vm = Vm::new(&bug.program, bug.vm_config(seed));
                vm.run(&mut [&mut sw]);
                stmts += sw.instrumented_stmts;
                branches += sw.recorded_branches;
            }
            (
                bug.name.to_owned(),
                model.sw_trace_overhead_pct(stmts, branches),
            )
        })
        .collect()
}

/// Renders a bug's final failure sketch (Figs. 1, 7, 8).
pub fn sketch_for(name: &str) -> Option<String> {
    let bug = bug_by_name(name)?;
    let eval = diagnose_bug(&bug, &EvalConfig::default());
    Some(eval.sketch.render())
}

/// Renders a bug's failure sketch with its provenance chains resolved
/// against the diagnosis's own flight-recorder journal (`repro -- sketch
/// <bug> --explain`). The journal is reset first so the explain output
/// covers exactly this diagnosis.
pub fn sketch_for_explained(name: &str) -> Option<String> {
    let bug = bug_by_name(name)?;
    gist_obs::reset();
    let eval = diagnose_bug(&bug, &EvalConfig::default());
    let journal = crate::trace_tool::Journal::from_events(gist_obs::journal::to_events(
        &gist_obs::journal::drain(),
    ));
    let resolve = |seq: u64| {
        journal.event_by_seq(seq).map(|e| {
            // `event_line` leads with `#seq t<tid>`, but `render_explain`
            // already prints the seq for each chain entry — drop the
            // duplicate prefix and keep `kind k=v ...`.
            let line = crate::trace_tool::Journal::event_line(e);
            line.splitn(3, ' ').nth(2).unwrap_or(&line).to_owned()
        })
    };
    Some(gist_sketch::render::render_explain(&eval.sketch, &resolve))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_costs_are_monotone_in_slice_size_overall() {
        // The overhead curve rises with the tracked slice size (the paper's
        // Fig. 11 shows monotone growth with flat stretches); compare the
        // first and last points rather than every adjacent pair.
        let rows = fig11(6);
        assert!(rows.len() >= 5);
        assert!(
            rows.last().unwrap().overhead_pct >= rows.first().unwrap().overhead_pct,
            "{rows:?}"
        );
    }

    #[test]
    fn fig13_rr_dominates_pt_everywhere() {
        for row in fig13(4) {
            assert!(
                row.rr_pct > row.pt_pct,
                "{}: rr {:.1}% vs pt {:.1}%",
                row.program,
                row.rr_pct,
                row.pt_pct
            );
            assert!(row.rr_bytes > row.pt_bytes);
        }
    }

    #[test]
    fn sketch_renders_for_the_figure_bugs() {
        for name in ["pbzip2-1", "curl-965", "apache-21287"] {
            let s = sketch_for(name).expect("bug exists");
            assert!(s.contains("Failure Sketch"), "{name}: {s}");
            assert!(s.contains("Thread T"), "{name}");
        }
    }
}
