//! Ablation studies for the design decisions DESIGN.md calls out.
//!
//! 1. **No alias analysis** (paper §3.1): slice sizes with a crude
//!    may-alias overapproximation vs the paper's runtime-discovery design.
//! 2. **sdom/ipdom start-stop optimization** (§3.2.2): instrumentation
//!    points and PT driver transitions with and without the optimization.
//! 3. **AsT multiplicative growth** (§3.2.1): failure recurrences to the
//!    final sketch for doubling vs linear σ growth.
//! 4. **F-measure β = 0.5** (§3.3): how often the top-ranked predictor
//!    changes when β favors recall instead of precision.
//! 5. **Static race ranking** (`gist-analysis`): failure recurrences to
//!    the final sketch with race-candidate seeding and rank-ordered
//!    watchpoints on vs off.

use gist_bugbase::{all_bugs, BugSpec};
use gist_coop::{diagnose_bug, EvalConfig};
use gist_core::ast::Growth;
use gist_predictors::rank;
use gist_slicing::StaticSlicer;
use gist_tracking::{Planner, TrackerRuntime};
use gist_vm::{RunOutcome, Vm};

/// Slice blow-up without/with crude alias analysis.
#[derive(Clone, Debug)]
pub struct AliasRow {
    /// Bug name.
    pub bug: String,
    /// Paper-style slice size (no alias analysis).
    pub no_alias: usize,
    /// Slice size with the crude may-alias overapproximation.
    pub crude_alias: usize,
}

/// Ablation 1: slice sizes with and without crude alias analysis.
pub fn alias_ablation() -> Vec<AliasRow> {
    all_bugs()
        .iter()
        .filter_map(|bug| {
            let (_, report) = bug.find_failure(500)?;
            let slicer = StaticSlicer::new(&bug.program);
            Some(AliasRow {
                bug: bug.name.to_owned(),
                no_alias: slicer.compute(report.failing_stmt).len(),
                crude_alias: slicer.compute_with_crude_alias(report.failing_stmt).len(),
            })
        })
        .collect()
}

/// Instrumentation cost with/without the sdom optimization.
#[derive(Clone, Debug)]
pub struct SdomRow {
    /// Bug name.
    pub bug: String,
    /// Instrumentation points with the optimization.
    pub points_sdom: usize,
    /// Instrumentation points without it.
    pub points_no_sdom: usize,
    /// PT driver transitions per run with the optimization.
    pub transitions_sdom: f64,
    /// PT driver transitions per run without it.
    pub transitions_no_sdom: f64,
}

/// Ablation 2: the strict-dominance start/stop optimization.
pub fn sdom_ablation(runs_per_bug: u64) -> Vec<SdomRow> {
    all_bugs()
        .iter()
        .filter_map(|bug| {
            let (_, report) = bug.find_failure(500)?;
            let slicer = StaticSlicer::new(&bug.program);
            let slice = slicer.compute(report.failing_stmt);
            let planner = Planner::new(&bug.program, slicer.ticfg());
            let tracked = slice.prefix(8);
            let with = planner.plan(tracked, 0);
            let without = planner.plan_without_sdom(tracked, 0);
            let transitions = |patch: &gist_tracking::InstrumentationPatch| -> f64 {
                let mut total = 0u64;
                for i in 0..runs_per_bug {
                    let mut tracker = TrackerRuntime::new(&bug.program, patch.clone(), 4);
                    let mut vm = Vm::new(&bug.program, bug.vm_config(40_000 + i));
                    vm.run(&mut [&mut tracker]);
                    total += tracker.finish().pt_transitions;
                }
                total as f64 / runs_per_bug.max(1) as f64
            };
            Some(SdomRow {
                bug: bug.name.to_owned(),
                points_sdom: with.instrumentation_points(),
                points_no_sdom: without.instrumentation_points(),
                transitions_sdom: transitions(&with),
                transitions_no_sdom: transitions(&without),
            })
        })
        .collect()
}

/// Latency comparison for AsT growth strategies.
#[derive(Clone, Debug)]
pub struct GrowthRow {
    /// Bug name.
    pub bug: String,
    /// Recurrences with multiplicative (doubling) growth.
    pub multiplicative: usize,
    /// Recurrences with linear (+2) growth.
    pub linear: usize,
}

/// Ablation 3: multiplicative vs linear σ growth.
pub fn growth_ablation() -> Vec<GrowthRow> {
    all_bugs()
        .iter()
        .map(|bug| {
            let run = |growth: Growth| {
                diagnose_bug(
                    bug,
                    &EvalConfig {
                        growth,
                        max_iterations: 24,
                        ..EvalConfig::default()
                    },
                )
                .recurrences
            };
            GrowthRow {
                bug: bug.name.to_owned(),
                multiplicative: run(Growth::Multiplicative),
                linear: run(Growth::Linear(2)),
            }
        })
        .collect()
}

/// β-sweep outcome for one bug.
#[derive(Clone, Debug)]
pub struct BetaRow {
    /// Bug name.
    pub bug: String,
    /// Precision of the top predictor at β = 0.5 (the paper's choice).
    pub precision_beta_half: f64,
    /// Precision of the top predictor at β = 2 (recall-favoring).
    pub precision_beta_two: f64,
}

/// Ablation 4: β = 0.5 favors precise predictors (few false positives in
/// front of the developer); β = 2 would rank high-recall noisy ones up.
pub fn beta_ablation(bug: &BugSpec, runs: u64) -> Option<BetaRow> {
    use gist_core::server::observations;
    let (_, report) = bug.find_failure(500)?;
    let slicer = StaticSlicer::new(&bug.program);
    let slice = slicer.compute(report.failing_stmt);
    let planner = Planner::new(&bug.program, slicer.ticfg());
    let patch = planner.plan(slice.prefix(8), 0);
    let signature = report.signature();
    let obs: Vec<_> = (0..runs)
        .map(|i| {
            let mut tracker = TrackerRuntime::new(&bug.program, patch.clone(), 4);
            let mut vm = Vm::new(&bug.program, bug.vm_config(70_000 + i));
            let r = vm.run(&mut [&mut tracker]);
            let failing = match r.outcome {
                RunOutcome::Failed(rep) => rep.signature() == signature,
                RunOutcome::Finished => false,
            };
            observations(&tracker.finish(), failing)
        })
        .collect();
    let top_precision = |beta: f64| {
        rank(&obs, beta)
            .first()
            .map(|s| s.precision())
            .unwrap_or(0.0)
    };
    Some(BetaRow {
        bug: bug.name.to_owned(),
        precision_beta_half: top_precision(0.5),
        precision_beta_two: top_precision(2.0),
    })
}

/// Recurrences-to-sketch with and without race ranking for one bug.
#[derive(Clone, Debug)]
pub struct RankingRow {
    /// Bug name.
    pub bug: String,
    /// Failure recurrences with seeding + watch ordering enabled.
    pub recurrences_on: usize,
    /// Failure recurrences with both disabled (slice order only).
    pub recurrences_off: usize,
    /// Root cause reached with ranking on.
    pub found_on: bool,
    /// Root cause reached with ranking off.
    pub found_off: bool,
}

/// Ablation 5: the static race detector's seeding + watch ordering.
pub fn ranking_ablation() -> Vec<RankingRow> {
    all_bugs()
        .iter()
        .map(|bug| {
            let run = |enable: bool| {
                diagnose_bug(
                    bug,
                    &EvalConfig {
                        enable_race_ranking: enable,
                        ..EvalConfig::default()
                    },
                )
            };
            let on = run(true);
            let off = run(false);
            RankingRow {
                bug: bug.name.to_owned(),
                recurrences_on: on.recurrences,
                recurrences_off: off.recurrences,
                found_on: on.found_root_cause,
                found_off: off.found_root_cause,
            }
        })
        .collect()
}

/// Renders all ablations as text.
pub fn ablations_text() -> String {
    let mut out = String::new();
    out.push_str("Ablation 1 — alias analysis (paper §3.1: avoided; >50% inaccurate)\n\n");
    out.push_str(&format!(
        "{:<18} {:>16} {:>18}\n",
        "bug", "no alias (Gist)", "crude may-alias"
    ));
    for r in alias_ablation() {
        out.push_str(&format!(
            "{:<18} {:>16} {:>18}\n",
            r.bug, r.no_alias, r.crude_alias
        ));
    }
    out.push_str("\nAblation 2 — sdom/ipdom start-stop optimization (§3.2.2)\n\n");
    out.push_str(&format!(
        "{:<18} {:>12} {:>14} {:>12} {:>14}\n",
        "bug", "points", "points(no)", "trans/run", "trans/run(no)"
    ));
    for r in sdom_ablation(15) {
        out.push_str(&format!(
            "{:<18} {:>12} {:>14} {:>12.1} {:>14.1}\n",
            r.bug, r.points_sdom, r.points_no_sdom, r.transitions_sdom, r.transitions_no_sdom
        ));
    }
    out.push_str("\nAblation 3 — AsT growth: recurrences to final sketch (§3.2.1)\n\n");
    out.push_str(&format!(
        "{:<18} {:>16} {:>12}\n",
        "bug", "multiplicative", "linear(+2)"
    ));
    for r in growth_ablation() {
        out.push_str(&format!(
            "{:<18} {:>16} {:>12}\n",
            r.bug, r.multiplicative, r.linear
        ));
    }
    out.push_str("\nAblation 4 — F-measure β (§3.3: β=0.5 favors precision)\n\n");
    out.push_str(&format!(
        "{:<18} {:>14} {:>14}\n",
        "bug", "P(top) β=0.5", "P(top) β=2"
    ));
    for bug in all_bugs() {
        if let Some(r) = beta_ablation(&bug, 80) {
            out.push_str(&format!(
                "{:<18} {:>14.2} {:>14.2}\n",
                r.bug, r.precision_beta_half, r.precision_beta_two
            ));
        }
    }
    out.push_str(&crate::races::ranking_text());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_bugbase::bug_by_name;

    #[test]
    fn crude_alias_never_shrinks_a_slice() {
        for r in alias_ablation() {
            assert!(
                r.crude_alias >= r.no_alias,
                "{}: {} < {}",
                r.bug,
                r.crude_alias,
                r.no_alias
            );
        }
    }

    #[test]
    fn crude_alias_blows_up_pointer_heavy_slices() {
        let rows = alias_ablation();
        // The design decision must matter somewhere: at least a third of
        // the bugs see their monitored slice grow.
        let grew = rows.iter().filter(|r| r.crude_alias > r.no_alias).count();
        assert!(grew * 3 >= rows.len(), "{rows:?}");
    }

    #[test]
    fn sdom_optimization_saves_instrumentation() {
        let rows = sdom_ablation(6);
        for r in &rows {
            assert!(
                r.points_sdom <= r.points_no_sdom,
                "{}: {} > {}",
                r.bug,
                r.points_sdom,
                r.points_no_sdom
            );
        }
        // And strictly saves driver transitions overall.
        let with: f64 = rows.iter().map(|r| r.transitions_sdom).sum();
        let without: f64 = rows.iter().map(|r| r.transitions_no_sdom).sum();
        assert!(with <= without, "with {with} vs without {without}");
    }

    #[test]
    fn race_ranking_never_costs_recurrences_overall() {
        let rows = ranking_ablation();
        assert_eq!(rows.len(), 11);
        let on: usize = rows.iter().map(|r| r.recurrences_on).sum();
        let off: usize = rows.iter().map(|r| r.recurrences_off).sum();
        assert!(on <= off, "ranking on cost more recurrences: {on} > {off}");
        // And it never loses a root cause the unranked pipeline found.
        for r in &rows {
            assert!(
                r.found_on || !r.found_off,
                "{}: ranking lost the root cause",
                r.bug
            );
        }
    }

    #[test]
    fn beta_half_top_predictor_is_precise_for_pbzip2() {
        let bug = bug_by_name("pbzip2-1").unwrap();
        let r = beta_ablation(&bug, 80).unwrap();
        assert!(
            r.precision_beta_half >= r.precision_beta_two - 1e-9,
            "{r:?}"
        );
    }
}
