//! Ablation studies for the design decisions DESIGN.md calls out.
//!
//! 1. **No alias analysis** (paper §3.1): slice sizes with a crude
//!    may-alias overapproximation vs the paper's runtime-discovery design.
//! 2. **sdom/ipdom start-stop optimization** (§3.2.2): instrumentation
//!    points and PT driver transitions with and without the optimization.
//! 3. **AsT multiplicative growth** (§3.2.1): failure recurrences to the
//!    final sketch for doubling vs linear σ growth.
//! 4. **F-measure β = 0.5** (§3.3): how often the top-ranked predictor
//!    changes when β favors recall instead of precision.
//! 5. **Static race ranking** (`gist-analysis`): failure recurrences to
//!    the final sketch with race-candidate seeding and rank-ordered
//!    watchpoints on vs off.

use gist_analysis::{Mhp, PointsTo};
use gist_bugbase::{all_bugs, BugSpec};
use gist_coop::{diagnose_bug, EvalConfig};
use gist_core::ast::Growth;
use gist_predictors::rank;
use gist_slicing::StaticSlicer;
use gist_tracking::{Planner, TrackerRuntime};
use gist_vm::{RunOutcome, Vm};

/// Slice blow-up without/with crude alias analysis.
#[derive(Clone, Debug)]
pub struct AliasRow {
    /// Bug name.
    pub bug: String,
    /// Paper-style slice size (no alias analysis).
    pub no_alias: usize,
    /// Slice size with the crude may-alias overapproximation.
    pub crude_alias: usize,
}

/// Ablation 1: slice sizes with and without crude alias analysis.
pub fn alias_ablation() -> Vec<AliasRow> {
    all_bugs()
        .iter()
        .filter_map(|bug| {
            let (_, report) = bug.find_failure(500)?;
            let slicer = StaticSlicer::new(&bug.program);
            Some(AliasRow {
                bug: bug.name.to_owned(),
                no_alias: slicer.compute_without_alias(report.failing_stmt).len(),
                crude_alias: slicer.compute_with_crude_alias(report.failing_stmt).len(),
            })
        })
        .collect()
}

/// Instrumentation cost with/without the sdom optimization.
#[derive(Clone, Debug)]
pub struct SdomRow {
    /// Bug name.
    pub bug: String,
    /// Instrumentation points with the optimization.
    pub points_sdom: usize,
    /// Instrumentation points without it.
    pub points_no_sdom: usize,
    /// PT driver transitions per run with the optimization.
    pub transitions_sdom: f64,
    /// PT driver transitions per run without it.
    pub transitions_no_sdom: f64,
}

/// Ablation 2: the strict-dominance start/stop optimization.
pub fn sdom_ablation(runs_per_bug: u64) -> Vec<SdomRow> {
    all_bugs()
        .iter()
        .filter_map(|bug| {
            let (_, report) = bug.find_failure(500)?;
            let slicer = StaticSlicer::new(&bug.program);
            let slice = slicer.compute(report.failing_stmt);
            let planner = Planner::new(&bug.program, slicer.ticfg());
            let tracked = slice.prefix(8);
            let with = planner.plan(tracked, 0);
            let without = planner.plan_without_sdom(tracked, 0);
            let transitions = |patch: &gist_tracking::InstrumentationPatch| -> f64 {
                let mut total = 0u64;
                for i in 0..runs_per_bug {
                    let mut tracker = TrackerRuntime::new(&bug.program, patch.clone(), 4);
                    let mut vm = Vm::new(&bug.program, bug.vm_config(40_000 + i));
                    vm.run(&mut [&mut tracker]);
                    total += tracker.finish().pt_transitions;
                }
                total as f64 / runs_per_bug.max(1) as f64
            };
            Some(SdomRow {
                bug: bug.name.to_owned(),
                points_sdom: with.instrumentation_points(),
                points_no_sdom: without.instrumentation_points(),
                transitions_sdom: transitions(&with),
                transitions_no_sdom: transitions(&without),
            })
        })
        .collect()
}

/// Latency comparison for AsT growth strategies.
#[derive(Clone, Debug)]
pub struct GrowthRow {
    /// Bug name.
    pub bug: String,
    /// Recurrences with multiplicative (doubling) growth.
    pub multiplicative: usize,
    /// Recurrences with linear (+2) growth.
    pub linear: usize,
}

/// Ablation 3: multiplicative vs linear σ growth.
pub fn growth_ablation() -> Vec<GrowthRow> {
    all_bugs()
        .iter()
        .map(|bug| {
            let run = |growth: Growth| {
                diagnose_bug(
                    bug,
                    &EvalConfig {
                        growth,
                        max_iterations: 24,
                        ..EvalConfig::default()
                    },
                )
                .recurrences
            };
            GrowthRow {
                bug: bug.name.to_owned(),
                multiplicative: run(Growth::Multiplicative),
                linear: run(Growth::Linear(2)),
            }
        })
        .collect()
}

/// β-sweep outcome for one bug.
#[derive(Clone, Debug)]
pub struct BetaRow {
    /// Bug name.
    pub bug: String,
    /// Precision of the top predictor at β = 0.5 (the paper's choice).
    pub precision_beta_half: f64,
    /// Precision of the top predictor at β = 2 (recall-favoring).
    pub precision_beta_two: f64,
}

/// Ablation 4: β = 0.5 favors precise predictors (few false positives in
/// front of the developer); β = 2 would rank high-recall noisy ones up.
pub fn beta_ablation(bug: &BugSpec, runs: u64) -> Option<BetaRow> {
    use gist_core::server::observations;
    let (_, report) = bug.find_failure(500)?;
    let slicer = StaticSlicer::new(&bug.program);
    let slice = slicer.compute(report.failing_stmt);
    let planner = Planner::new(&bug.program, slicer.ticfg());
    let patch = planner.plan(slice.prefix(8), 0);
    let signature = report.signature();
    let obs: Vec<_> = (0..runs)
        .map(|i| {
            let mut tracker = TrackerRuntime::new(&bug.program, patch.clone(), 4);
            let mut vm = Vm::new(&bug.program, bug.vm_config(70_000 + i));
            let r = vm.run(&mut [&mut tracker]);
            let failing = match r.outcome {
                RunOutcome::Failed(rep) => rep.signature() == signature,
                RunOutcome::Finished => false,
            };
            observations(&tracker.finish(), failing)
        })
        .collect();
    let top_precision = |beta: f64| {
        rank(&obs, beta)
            .first()
            .map(|s| s.precision())
            .unwrap_or(0.0)
    };
    Some(BetaRow {
        bug: bug.name.to_owned(),
        precision_beta_half: top_precision(0.5),
        precision_beta_two: top_precision(2.0),
    })
}

/// Recurrences-to-sketch with and without race ranking for one bug.
#[derive(Clone, Debug)]
pub struct RankingRow {
    /// Bug name.
    pub bug: String,
    /// Failure recurrences with seeding + watch ordering enabled.
    pub recurrences_on: usize,
    /// Failure recurrences with both disabled (slice order only).
    pub recurrences_off: usize,
    /// Root cause reached with ranking on.
    pub found_on: bool,
    /// Root cause reached with ranking off.
    pub found_off: bool,
}

/// Ablation 5: the static race detector's seeding + watch ordering.
pub fn ranking_ablation() -> Vec<RankingRow> {
    all_bugs()
        .iter()
        .map(|bug| {
            let run = |enable: bool| {
                diagnose_bug(
                    bug,
                    &EvalConfig {
                        enable_race_ranking: enable,
                        ..EvalConfig::default()
                    },
                )
            };
            let on = run(true);
            let off = run(false);
            RankingRow {
                bug: bug.name.to_owned(),
                recurrences_on: on.recurrences,
                recurrences_off: off.recurrences,
                found_on: on.found_root_cause,
                found_off: off.found_root_cause,
            }
        })
        .collect()
}

/// One bug's row of the `--dataflow` ablation: alias-aware slicing ×
/// dead-store pruning (`gist-analysis` dataflow results in the pipeline).
#[derive(Clone, Debug)]
pub struct DataflowRow {
    /// Bug name.
    pub bug: String,
    /// Static slice size without alias analysis (PR-1 behaviour).
    pub slice_no_alias: usize,
    /// Static slice size with points-to alias-aware pulling.
    pub slice_alias: usize,
    /// Root-cause statements inside the alias-free static slice.
    pub root_in_slice_no_alias: bool,
    /// Root-cause statements inside the alias-aware static slice.
    pub root_in_slice_alias: bool,
    /// Watchpoint candidates for the full slice (pre-budget pool the
    /// 4-register groups are drawn from), no dead-store filter.
    pub watchpoints_unpruned: usize,
    /// Watchpoint candidates with liveness-based dead stores removed.
    pub watchpoints_pruned: usize,
    /// Overall accuracy for (alias, dead-store pruning) =
    /// (on,on), (on,off), (off,on), (off,off).
    pub overall: [f64; 4],
    /// Root cause found, same configuration order.
    pub found: [bool; 4],
}

/// Computes one bug's `--dataflow` row.
pub fn dataflow_row(bug: &BugSpec) -> Option<DataflowRow> {
    let (_, report) = bug.find_failure(500)?;
    let slicer = StaticSlicer::new(&bug.program);
    let no_alias = slicer.compute_without_alias(report.failing_stmt);
    let alias = slicer.compute(report.failing_stmt);
    let root = bug.root_cause_stmts();
    let in_slice = |s: &gist_slicing::Slice| root.iter().all(|&r| s.contains(r));

    // Watchpoint plans over the full alias-aware slice, with and without
    // the dead-store filter.
    let pts = gist_analysis::PointsTo::compute(&bug.program, slicer.ticfg());
    let mut dead = gist_analysis::dead_stores(&bug.program, slicer.ticfg(), &pts);
    dead.remove(&report.failing_stmt);
    let unpruned = Planner::new(&bug.program, slicer.ticfg())
        .watch_candidates(&alias.ordered)
        .len();
    let pruned = Planner::new(&bug.program, slicer.ticfg())
        .with_dead_store_filter(dead)
        .watch_candidates(&alias.ordered)
        .len();

    let run = |alias_on: bool, dsp_on: bool| {
        diagnose_bug(
            bug,
            &EvalConfig {
                enable_alias_slicing: alias_on,
                enable_dead_store_pruning: dsp_on,
                ..EvalConfig::default()
            },
        )
    };
    let evals = [
        run(true, true),
        run(true, false),
        run(false, true),
        run(false, false),
    ];
    Some(DataflowRow {
        bug: bug.name.to_owned(),
        slice_no_alias: no_alias.len(),
        slice_alias: alias.len(),
        root_in_slice_no_alias: in_slice(&no_alias),
        root_in_slice_alias: in_slice(&alias),
        watchpoints_unpruned: unpruned,
        watchpoints_pruned: pruned,
        overall: [
            evals[0].overall,
            evals[1].overall,
            evals[2].overall,
            evals[3].overall,
        ],
        found: [
            evals[0].found_root_cause,
            evals[1].found_root_cause,
            evals[2].found_root_cause,
            evals[3].found_root_cause,
        ],
    })
}

/// The full `--dataflow` ablation across the bugbase.
pub fn dataflow_ablation() -> Vec<DataflowRow> {
    all_bugs().iter().filter_map(dataflow_row).collect()
}

/// One bug's row of the `svfg` ablation: sparse value-flow slicing with
/// path-feasibility pruning vs the flow-insensitive worklist slicer.
#[derive(Clone, Debug)]
pub struct SvfgRow {
    /// Bug name.
    pub bug: String,
    /// Legacy (flow-insensitive, alias-aware) slice size.
    pub slice_legacy: usize,
    /// Sparse value-flow slice size (1-CFA + feasibility pruning).
    pub slice_svfg: usize,
    /// Root-cause statements inside the sparse slice.
    pub root_in_slice_svfg: bool,
    /// Watchpoint candidate pool drawn from the legacy slice.
    pub watchpoints_legacy: usize,
    /// Watchpoint candidate pool drawn from the sparse slice.
    pub watchpoints_svfg: usize,
    /// Overall accuracy with sparse slicing + value-flow watch ranking.
    pub overall_on: f64,
    /// Overall accuracy with the legacy slicer.
    pub overall_off: f64,
    /// Root cause found with sparse slicing on / off.
    pub found: [bool; 2],
}

/// Computes one bug's `svfg` row.
pub fn svfg_row(bug: &BugSpec) -> Option<SvfgRow> {
    let (_, report) = bug.find_failure(500)?;
    let slicer = StaticSlicer::new(&bug.program);
    let legacy = slicer.compute(report.failing_stmt);
    let sparse = slicer.compute_with_svfg(report.failing_stmt);
    let root = bug.root_cause_stmts();
    let run = |on: bool| {
        diagnose_bug(
            bug,
            &EvalConfig {
                enable_svfg_slicing: on,
                ..EvalConfig::default()
            },
        )
    };
    let on = run(true);
    let off = run(false);
    // The legacy pool is slice-order candidates; the sparse pool adds the
    // value-flow distance filter the sparse pipeline plans with.
    let legacy_pool = Planner::new(&bug.program, slicer.ticfg())
        .watch_candidates(&legacy.ordered)
        .len();
    let distances = slicer.svfg().backward_value_flow(report.failing_stmt);
    let sparse_pool = Planner::new(&bug.program, slicer.ticfg())
        .with_distance_rank(distances)
        .watch_candidates(&sparse.ordered)
        .len();
    Some(SvfgRow {
        bug: bug.name.to_owned(),
        slice_legacy: legacy.len(),
        slice_svfg: sparse.len(),
        root_in_slice_svfg: root.iter().all(|&r| sparse.contains(r)),
        watchpoints_legacy: legacy_pool,
        watchpoints_svfg: sparse_pool,
        overall_on: on.overall,
        overall_off: off.overall,
        found: [on.found_root_cause, off.found_root_cause],
    })
}

/// The full `svfg` ablation across the bugbase.
pub fn svfg_ablation() -> Vec<SvfgRow> {
    all_bugs().iter().filter_map(svfg_row).collect()
}

/// Renders the `svfg` ablation as text.
pub fn svfg_text() -> String {
    let rows = svfg_ablation();
    let mut out = String::new();
    out.push_str("SVFG ablation — sparse value-flow slicing + feasibility pruning\n\n");
    out.push_str(&format!(
        "{:<18} {:>9} {:>9} {:>5} {:>8} {:>8} {:>8} {:>8}\n",
        "bug", "slice-l", "slice-s", "rc-s", "wp-l", "wp-s", "A(on)", "A(off)"
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:<18} {:>9} {:>9} {:>5} {:>8} {:>8} {:>8.1} {:>8.1}\n",
            r.bug,
            r.slice_legacy,
            r.slice_svfg,
            if r.root_in_slice_svfg { "yes" } else { "no" },
            r.watchpoints_legacy,
            r.watchpoints_svfg,
            r.overall_on,
            r.overall_off,
        ));
    }
    let n = rows.len().max(1) as f64;
    out.push_str(&format!(
        "\naverage overall: sparse {:.1}%  legacy {:.1}%\n",
        rows.iter().map(|r| r.overall_on).sum::<f64>() / n,
        rows.iter().map(|r| r.overall_off).sum::<f64>() / n,
    ));
    out.push_str(&format!(
        "watchpoint pool: {} legacy -> {} with sparse value-flow slicing\n",
        rows.iter().map(|r| r.watchpoints_legacy).sum::<usize>(),
        rows.iter().map(|r| r.watchpoints_svfg).sum::<usize>(),
    ));
    out
}

/// One bug's row of the `mhp` ablation: happens-before/MHP pruning of
/// interleaving hypotheses and never-parallel watchpoint candidates vs
/// the unpruned pipeline.
#[derive(Clone, Debug)]
pub struct MhpRow {
    /// Bug name.
    pub bug: String,
    /// Watchpoint candidate pool without MHP pruning.
    pub pool_off: usize,
    /// Watchpoint candidate pool with never-parallel stores dropped.
    pub pool_on: usize,
    /// AsT iterations to convergence with MHP pruning on / off.
    pub iterations: [usize; 2],
    /// Overall accuracy with MHP pruning on / off.
    pub overall: [f64; 2],
    /// Root cause found with MHP pruning on / off.
    pub found: [bool; 2],
}

/// Computes one bug's `mhp` row.
pub fn mhp_row(bug: &BugSpec) -> Option<MhpRow> {
    let (_, report) = bug.find_failure(500)?;
    let slicer = StaticSlicer::new(&bug.program);
    let sparse = slicer.compute_with_svfg(report.failing_stmt);
    let distances = slicer.svfg().backward_value_flow(report.failing_stmt);
    // Mirror the server's watchpoint pool: sparse slice, value-flow
    // distance ranking, and (on the MHP side) never-parallel stores
    // dropped — the failing statement always stays watchable.
    let pool_off = Planner::new(&bug.program, slicer.ticfg())
        .with_distance_rank(distances.clone())
        .watch_candidates(&sparse.ordered)
        .len();
    let mhp = Mhp::compute(&bug.program, slicer.ticfg());
    let pts = PointsTo::compute(&bug.program, slicer.ticfg());
    let mut never_parallel = mhp.never_parallel_stores(&bug.program, &pts);
    never_parallel.remove(&report.failing_stmt);
    let pool_on = Planner::new(&bug.program, slicer.ticfg())
        .with_distance_rank(distances)
        .with_mhp_filter(never_parallel)
        .watch_candidates(&sparse.ordered)
        .len();
    let run = |on: bool| {
        diagnose_bug(
            bug,
            &EvalConfig {
                enable_mhp: on,
                ..EvalConfig::default()
            },
        )
    };
    let on = run(true);
    let off = run(false);
    Some(MhpRow {
        bug: bug.name.to_owned(),
        pool_off,
        pool_on,
        iterations: [on.iterations, off.iterations],
        overall: [on.overall, off.overall],
        found: [on.found_root_cause, off.found_root_cause],
    })
}

/// The full `mhp` ablation across the bugbase.
pub fn mhp_ablation() -> Vec<MhpRow> {
    all_bugs().iter().filter_map(mhp_row).collect()
}

/// Renders the `mhp` ablation as text.
pub fn mhp_text() -> String {
    let rows = mhp_ablation();
    let mut out = String::new();
    out.push_str("MHP ablation — happens-before pruning of hypotheses and watchpoints\n\n");
    out.push_str(&format!(
        "{:<18} {:>8} {:>8} {:>8} {:>9} {:>8} {:>8} {:>6} {:>7}\n",
        "bug", "pool", "pool-mhp", "iter", "iter-mhp", "A(on)", "A(off)", "found", "found-"
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:<18} {:>8} {:>8} {:>8} {:>9} {:>8.1} {:>8.1} {:>6} {:>7}\n",
            r.bug,
            r.pool_off,
            r.pool_on,
            r.iterations[1],
            r.iterations[0],
            r.overall[0],
            r.overall[1],
            if r.found[0] { "yes" } else { "no" },
            if r.found[1] { "yes" } else { "no" },
        ));
    }
    let n = rows.len().max(1) as f64;
    out.push_str(&format!(
        "\naverage overall: mhp {:.1}%  unpruned {:.1}%\n",
        rows.iter().map(|r| r.overall[0]).sum::<f64>() / n,
        rows.iter().map(|r| r.overall[1]).sum::<f64>() / n,
    ));
    out.push_str(&format!(
        "watchpoint pool: {} unpruned -> {} with MHP never-parallel pruning\n",
        rows.iter().map(|r| r.pool_off).sum::<usize>(),
        rows.iter().map(|r| r.pool_on).sum::<usize>(),
    ));
    out.push_str(&format!(
        "AsT iterations: {} unpruned -> {} with MHP hypothesis pruning\n",
        rows.iter().map(|r| r.iterations[1]).sum::<usize>(),
        rows.iter().map(|r| r.iterations[0]).sum::<usize>(),
    ));
    out
}

/// Renders the `--dataflow` ablation as text.
pub fn dataflow_text() -> String {
    let rows = dataflow_ablation();
    let mut out = String::new();
    out.push_str("Dataflow ablation — alias-aware slicing x dead-store pruning\n\n");
    out.push_str(&format!(
        "{:<18} {:>9} {:>9} {:>5} {:>5} {:>7} {:>7} {:>8} {:>8} {:>8} {:>8}\n",
        "bug",
        "slice-na",
        "slice-a",
        "rc-na",
        "rc-a",
        "wp",
        "wp-dsp",
        "A(a,d)",
        "A(a,-)",
        "A(-,d)",
        "A(-,-)"
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:<18} {:>9} {:>9} {:>5} {:>5} {:>7} {:>7} {:>8.1} {:>8.1} {:>8.1} {:>8.1}\n",
            r.bug,
            r.slice_no_alias,
            r.slice_alias,
            if r.root_in_slice_no_alias {
                "yes"
            } else {
                "no"
            },
            if r.root_in_slice_alias { "yes" } else { "no" },
            r.watchpoints_unpruned,
            r.watchpoints_pruned,
            r.overall[0],
            r.overall[1],
            r.overall[2],
            r.overall[3],
        ));
    }
    let n = rows.len().max(1) as f64;
    let avg = |i: usize| rows.iter().map(|r| r.overall[i]).sum::<f64>() / n;
    out.push_str(&format!(
        "\naverage overall: alias+dsp {:.1}%  alias {:.1}%  dsp {:.1}%  neither {:.1}%\n",
        avg(0),
        avg(1),
        avg(2),
        avg(3)
    ));
    out.push_str(&format!(
        "planned watchpoints: {} unpruned -> {} with dead-store pruning\n",
        rows.iter().map(|r| r.watchpoints_unpruned).sum::<usize>(),
        rows.iter().map(|r| r.watchpoints_pruned).sum::<usize>(),
    ));
    out
}

/// Renders all ablations as text.
pub fn ablations_text() -> String {
    let mut out = String::new();
    out.push_str("Ablation 1 — alias analysis (paper §3.1: avoided; >50% inaccurate)\n\n");
    out.push_str(&format!(
        "{:<18} {:>16} {:>18}\n",
        "bug", "no alias (Gist)", "crude may-alias"
    ));
    for r in alias_ablation() {
        out.push_str(&format!(
            "{:<18} {:>16} {:>18}\n",
            r.bug, r.no_alias, r.crude_alias
        ));
    }
    out.push_str("\nAblation 2 — sdom/ipdom start-stop optimization (§3.2.2)\n\n");
    out.push_str(&format!(
        "{:<18} {:>12} {:>14} {:>12} {:>14}\n",
        "bug", "points", "points(no)", "trans/run", "trans/run(no)"
    ));
    for r in sdom_ablation(15) {
        out.push_str(&format!(
            "{:<18} {:>12} {:>14} {:>12.1} {:>14.1}\n",
            r.bug, r.points_sdom, r.points_no_sdom, r.transitions_sdom, r.transitions_no_sdom
        ));
    }
    out.push_str("\nAblation 3 — AsT growth: recurrences to final sketch (§3.2.1)\n\n");
    out.push_str(&format!(
        "{:<18} {:>16} {:>12}\n",
        "bug", "multiplicative", "linear(+2)"
    ));
    for r in growth_ablation() {
        out.push_str(&format!(
            "{:<18} {:>16} {:>12}\n",
            r.bug, r.multiplicative, r.linear
        ));
    }
    out.push_str("\nAblation 4 — F-measure β (§3.3: β=0.5 favors precision)\n\n");
    out.push_str(&format!(
        "{:<18} {:>14} {:>14}\n",
        "bug", "P(top) β=0.5", "P(top) β=2"
    ));
    for bug in all_bugs() {
        if let Some(r) = beta_ablation(&bug, 80) {
            out.push_str(&format!(
                "{:<18} {:>14.2} {:>14.2}\n",
                r.bug, r.precision_beta_half, r.precision_beta_two
            ));
        }
    }
    out.push_str(&crate::races::ranking_text());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_bugbase::bug_by_name;

    #[test]
    fn crude_alias_never_shrinks_a_slice() {
        for r in alias_ablation() {
            assert!(
                r.crude_alias >= r.no_alias,
                "{}: {} < {}",
                r.bug,
                r.crude_alias,
                r.no_alias
            );
        }
    }

    #[test]
    fn crude_alias_blows_up_pointer_heavy_slices() {
        let rows = alias_ablation();
        // The design decision must matter somewhere: at least a third of
        // the bugs see their monitored slice grow.
        let grew = rows.iter().filter(|r| r.crude_alias > r.no_alias).count();
        assert!(grew * 3 >= rows.len(), "{rows:?}");
    }

    #[test]
    fn sdom_optimization_saves_instrumentation() {
        let rows = sdom_ablation(6);
        for r in &rows {
            assert!(
                r.points_sdom <= r.points_no_sdom,
                "{}: {} > {}",
                r.bug,
                r.points_sdom,
                r.points_no_sdom
            );
        }
        // And strictly saves driver transitions overall.
        let with: f64 = rows.iter().map(|r| r.transitions_sdom).sum();
        let without: f64 = rows.iter().map(|r| r.transitions_no_sdom).sum();
        assert!(with <= without, "with {with} vs without {without}");
    }

    #[test]
    fn race_ranking_never_costs_recurrences_overall() {
        let rows = ranking_ablation();
        assert_eq!(rows.len(), 11);
        let on: usize = rows.iter().map(|r| r.recurrences_on).sum();
        let off: usize = rows.iter().map(|r| r.recurrences_off).sum();
        assert!(on <= off, "ranking on cost more recurrences: {on} > {off}");
        // And it never loses a root cause the unranked pipeline found.
        for r in &rows {
            assert!(
                r.found_on || !r.found_off,
                "{}: ranking lost the root cause",
                r.bug
            );
        }
    }

    #[test]
    fn dataflow_alias_recovers_pbzip2_racing_free_statically() {
        // The ISSUE's acceptance criterion: alias-aware slicing puts the
        // racing `free`/`store q, 0` into pbzip2's *static* slice (no
        // race-seeding fallback), and dead-store pruning trims the
        // watchpoint pool without costing accuracy.
        let bug = bug_by_name("pbzip2-1").unwrap();
        let r = dataflow_row(&bug).unwrap();
        assert!(
            r.root_in_slice_alias,
            "alias-aware slice holds the racing writes: {r:?}"
        );
        assert!(
            !r.root_in_slice_no_alias,
            "the alias-free slice misses them: {r:?}"
        );
        assert!(r.found[0], "full configuration reaches the root cause");
        assert!(
            r.watchpoints_pruned < r.watchpoints_unpruned,
            "dead-store pruning frees a watch slot: {r:?}"
        );
        assert!(
            r.overall[0] >= r.overall[1] - 1e-9,
            "pruning does not cost accuracy: {r:?}"
        );
    }

    #[test]
    fn dead_store_pruning_shrinks_watch_candidate_pool() {
        use gist_tracking::Planner;
        let mut total_unpruned = 0usize;
        let mut total_pruned = 0usize;
        for bug in all_bugs() {
            let Some((_, report)) = bug.find_failure(500) else {
                continue;
            };
            let slicer = StaticSlicer::new(&bug.program);
            let slice = slicer.compute(report.failing_stmt);
            let pts = gist_analysis::PointsTo::compute(&bug.program, slicer.ticfg());
            let mut dead = gist_analysis::dead_stores(&bug.program, slicer.ticfg(), &pts);
            dead.remove(&report.failing_stmt);
            let unpruned = Planner::new(&bug.program, slicer.ticfg())
                .watch_candidates(&slice.ordered)
                .len();
            let pruned = Planner::new(&bug.program, slicer.ticfg())
                .with_dead_store_filter(dead)
                .watch_candidates(&slice.ordered)
                .len();
            assert!(pruned <= unpruned, "{}: {pruned} > {unpruned}", bug.name);
            total_unpruned += unpruned;
            total_pruned += pruned;
        }
        assert!(
            total_pruned < total_unpruned,
            "pruning never fired: {total_pruned} vs {total_unpruned}"
        );
    }

    #[test]
    fn svfg_slices_are_subsets_and_shrink_the_watch_pool() {
        let rows = svfg_ablation();
        assert_eq!(rows.len(), 11);
        for r in &rows {
            assert!(
                r.slice_svfg <= r.slice_legacy,
                "{}: sparse slice grew: {} > {}",
                r.bug,
                r.slice_svfg,
                r.slice_legacy
            );
            assert!(
                r.root_in_slice_svfg,
                "{}: pruning lost the root cause",
                r.bug
            );
            assert!(r.found[0], "{}: sparse pipeline lost the root cause", r.bug);
        }
        let legacy: usize = rows.iter().map(|r| r.watchpoints_legacy).sum();
        let sparse: usize = rows.iter().map(|r| r.watchpoints_svfg).sum();
        assert!(
            sparse < legacy,
            "sparse slicing never freed a watch slot: {sparse} vs {legacy}"
        );
    }

    #[test]
    fn mhp_pruning_shrinks_the_pool_at_unchanged_accuracy() {
        let rows = mhp_ablation();
        assert_eq!(rows.len(), 11);
        for r in &rows {
            assert!(
                r.pool_on <= r.pool_off,
                "{}: MHP pruning grew the pool: {} > {}",
                r.bug,
                r.pool_on,
                r.pool_off
            );
            assert_eq!(
                r.found[0], r.found[1],
                "{}: MHP pruning changed root-cause discovery",
                r.bug
            );
            assert!(
                r.overall[0] >= r.overall[1] - 1e-9,
                "{}: MHP pruning cost accuracy: {:.1} < {:.1}",
                r.bug,
                r.overall[0],
                r.overall[1]
            );
        }
        let off: usize = rows.iter().map(|r| r.pool_off).sum();
        let on: usize = rows.iter().map(|r| r.pool_on).sum();
        let iter_on: usize = rows.iter().map(|r| r.iterations[0]).sum();
        let iter_off: usize = rows.iter().map(|r| r.iterations[1]).sum();
        assert!(
            on < off || (on == off && iter_on < iter_off),
            "MHP pruning never fired: pool {on} vs {off}, iterations {iter_on} vs {iter_off}"
        );
    }

    #[test]
    fn beta_half_top_predictor_is_precise_for_pbzip2() {
        let bug = bug_by_name("pbzip2-1").unwrap();
        let r = beta_ablation(&bug, 80).unwrap();
        assert!(
            r.precision_beta_half >= r.precision_beta_two - 1e-9,
            "{r:?}"
        );
    }
}
