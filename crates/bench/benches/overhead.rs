//! Measured (wall-clock) tracing overheads — the empirical companion to
//! the modeled Figs. 11 and 13.
//!
//! `vm_baseline` vs `vm_pt_full` vs `vm_rr_record` on the same program and
//! seed is a *real* measurement of observer cost in this implementation:
//! PT appends a few packet bytes per branch, rr clones every event. The
//! asymmetry is the same one the paper measures on hardware.

// The criterion macros expand to undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gist_baselines::Recorder;
use gist_bugbase::bug_by_name;
use gist_pt::{PtConfig, PtDriver, PtTracer};
use gist_slicing::StaticSlicer;
use gist_tracking::{Planner, TrackerRuntime};
use gist_vm::Vm;
use std::hint::black_box;

fn bench_fig13_measured(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_measured");
    for name in ["pbzip2-1", "curl-965", "memcached-127"] {
        let bug = bug_by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::new("baseline", name), &bug, |b, bug| {
            b.iter(|| {
                let mut vm = Vm::new(&bug.program, bug.vm_config(7));
                black_box(vm.run(&mut []))
            })
        });
        group.bench_with_input(BenchmarkId::new("pt_full", name), &bug, |b, bug| {
            b.iter(|| {
                let mut tracer =
                    PtTracer::new(&bug.program, PtDriver::always_on(), PtConfig::default());
                let mut vm = Vm::new(&bug.program, bug.vm_config(7));
                let r = vm.run(&mut [&mut tracer]);
                tracer.finish();
                black_box((r, tracer.total_bytes()))
            })
        });
        group.bench_with_input(BenchmarkId::new("rr_record", name), &bug, |b, bug| {
            b.iter(|| black_box(Recorder::record(&bug.program, bug.vm_config(7))))
        });
    }
    group.finish();
}

fn bench_fig11_measured(c: &mut Criterion) {
    let bug = bug_by_name("pbzip2-1").unwrap();
    let (_, report) = bug.find_failure(300).unwrap();
    let slicer = StaticSlicer::new(&bug.program);
    let slice = slicer.compute(report.failing_stmt);
    let planner = Planner::new(&bug.program, slicer.ticfg());
    let mut group = c.benchmark_group("fig11_measured");
    for size in [2usize, 4, 8, 16] {
        let patch = planner.plan(slice.prefix(size), 0);
        group.bench_with_input(BenchmarkId::new("tracked", size), &patch, |b, patch| {
            b.iter(|| {
                let mut tracker = TrackerRuntime::new(&bug.program, patch.clone(), 4);
                let mut vm = Vm::new(&bug.program, bug.vm_config(7));
                let r = vm.run(&mut [&mut tracker]);
                black_box((r, tracker.finish().pt_bytes))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig13_measured, bench_fig11_measured);
criterion_main!(benches);
