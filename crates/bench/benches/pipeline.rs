//! Offline-analysis benchmarks: the server-side work of Gist (Table 1's
//! "offline analysis time" column): slicing, planning, and PT decoding.

// The criterion macros expand to undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gist_bugbase::{all_bugs, bug_by_name};
use gist_pt::{decoder, PtConfig, PtDriver, PtTracer};
use gist_slicing::StaticSlicer;
use gist_tracking::Planner;
use gist_vm::Vm;
use std::hint::black_box;

fn bench_slicing(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_slicing");
    for bug in all_bugs() {
        let (_, report) = bug.find_failure(500).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(bug.name),
            &(bug, report),
            |b, (bug, report)| {
                b.iter(|| {
                    let slicer = StaticSlicer::new(&bug.program);
                    black_box(slicer.compute(report.failing_stmt))
                })
            },
        );
    }
    group.finish();
}

fn bench_planning(c: &mut Criterion) {
    let bug = bug_by_name("apache-21287").unwrap();
    let (_, report) = bug.find_failure(500).unwrap();
    let slicer = StaticSlicer::new(&bug.program);
    let slice = slicer.compute(report.failing_stmt);
    c.bench_function("plan_instrumentation", |b| {
        b.iter(|| {
            let planner = Planner::new(&bug.program, slicer.ticfg());
            black_box(planner.plan(&slice.ordered, 0))
        })
    });
}

fn bench_pt_decode(c: &mut Criterion) {
    let bug = bug_by_name("curl-965").unwrap();
    let mut tracer = PtTracer::new(&bug.program, PtDriver::always_on(), PtConfig::default());
    let mut vm = Vm::new(&bug.program, bug.vm_config(1));
    vm.run(&mut [&mut tracer]);
    tracer.finish();
    let traces = tracer.take_traces();
    c.bench_function("pt_decode_full_run", |b| {
        b.iter(|| black_box(decoder::decode(&bug.program, &traces).unwrap()))
    });
}

criterion_group!(benches, bench_slicing, bench_planning, bench_pt_decode);
criterion_main!(benches);
