//! A hardware watchpoint simulator modeled on x86 debug registers.
//!
//! Gist tracks data flow "using hardware watchpoints present in modern
//! processors (e.g., x86 has 4 hardware watchpoints)" (§3.2.3). This crate
//! reproduces the mechanism:
//!
//! * [`WatchUnit`] holds **4 slots** (DR0–DR3 semantics). Arming a fifth
//!   address fails with [`WatchError::NoFreeSlot`] — the scarcity that
//!   forces Gist's cooperative partitioning of addresses across runs.
//! * The unit observes the VM's memory events; a matching access produces a
//!   [`WatchHit`] carrying the global sequence number, so the hit log is a
//!   **total order across threads and cores** — the property Intel PT
//!   lacks and Gist needs for diagnosing concurrency bugs (§3.2.3, §6).
//! * `ptrace`-style operation counters let overhead models charge the cost
//!   of attach/detach and register writes (§4, §6).
//!
//! # Examples
//!
//! ```
//! use gist_watch::{WatchCondition, WatchUnit};
//!
//! let mut unit = WatchUnit::new();
//! let slot = unit.set(0x1000, 1, WatchCondition::ReadWrite).unwrap();
//! assert_eq!(slot, 0);
//! assert!(unit.is_watched(0x1000));
//! unit.clear(slot).unwrap();
//! assert!(!unit.is_watched(0x1000));
//! ```

use gist_ir::{InstrId, Value};
use gist_vm::{AccessKind, Event, Observer};

/// Number of hardware watchpoint slots (x86 DR0–DR3).
pub const NUM_SLOTS: usize = 4;

/// When a watchpoint fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WatchCondition {
    /// Fire on writes only (x86 R/W bits = 01).
    WriteOnly,
    /// Fire on reads and writes (x86 R/W bits = 11).
    ReadWrite,
}

impl WatchCondition {
    /// True if an access of `kind` triggers this condition.
    pub fn matches(self, kind: AccessKind) -> bool {
        match self {
            WatchCondition::WriteOnly => kind == AccessKind::Write,
            WatchCondition::ReadWrite => true,
        }
    }
}

/// An armed watchpoint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Watchpoint {
    /// Watched base address.
    pub addr: u64,
    /// Watched length in cells (x86 allows 1/2/4/8 bytes; we allow any
    /// positive cell count ≤ 8).
    pub len: u64,
    /// Trigger condition.
    pub condition: WatchCondition,
}

impl Watchpoint {
    /// True if an access at `addr` of kind `kind` triggers this watchpoint.
    pub fn triggers(&self, addr: u64, kind: AccessKind) -> bool {
        addr >= self.addr && addr < self.addr + self.len && self.condition.matches(kind)
    }
}

/// A recorded watchpoint trap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WatchHit {
    /// Global sequence number (total order across threads).
    pub seq: u64,
    /// Accessing thread.
    pub tid: u32,
    /// Virtual core.
    pub core: u32,
    /// The accessing statement (the "program counter" Gist logs, §4).
    pub iid: InstrId,
    /// The accessed address.
    pub addr: u64,
    /// The value read or written.
    pub value: Value,
    /// Read or write.
    pub kind: AccessKind,
    /// Which slot fired.
    pub slot: usize,
}

/// Errors from watchpoint management.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WatchError {
    /// All 4 slots are armed.
    NoFreeSlot,
    /// The slot index is out of range or empty.
    BadSlot,
    /// The address is already watched (the paper's active-set check).
    AlreadyWatched,
    /// Length must be 1..=8 cells.
    BadLength,
}

impl std::fmt::Display for WatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WatchError::NoFreeSlot => write!(f, "all {NUM_SLOTS} watchpoint slots in use"),
            WatchError::BadSlot => write!(f, "invalid or empty watchpoint slot"),
            WatchError::AlreadyWatched => write!(f, "address already watched"),
            WatchError::BadLength => write!(f, "watch length must be 1..=8"),
        }
    }
}

impl std::error::Error for WatchError {}

/// The debug-register file plus its hit log and cost counters.
#[derive(Clone, Debug, Default)]
pub struct WatchUnit {
    slots: [Option<Watchpoint>; NUM_SLOTS],
    hits: Vec<WatchHit>,
    /// Register writes performed (each is one ptrace `POKEUSER` analog).
    ptrace_ops: u64,
    /// Traps delivered.
    traps: u64,
    /// Accesses that were checked but did not trap.
    checked: u64,
}

impl WatchUnit {
    /// Creates a unit with all slots free.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a watchpoint. Returns the slot used.
    ///
    /// Enforces the paper's active-set rule: arming an address that is
    /// already watched is rejected rather than wasting a second register.
    pub fn set(
        &mut self,
        addr: u64,
        len: u64,
        condition: WatchCondition,
    ) -> Result<usize, WatchError> {
        if len == 0 || len > 8 {
            return Err(WatchError::BadLength);
        }
        if self.is_watched(addr) {
            return Err(WatchError::AlreadyWatched);
        }
        let slot = match self.slots.iter().position(Option::is_none) {
            Some(slot) => slot,
            None => {
                gist_obs::counter!("watch.no_free_slot").inc();
                return Err(WatchError::NoFreeSlot);
            }
        };
        self.slots[slot] = Some(Watchpoint {
            addr,
            len,
            condition,
        });
        self.ptrace_ops += 1;
        gist_obs::counter!("watch.armed").inc();
        gist_obs::event!(WatchArmed {
            addr,
            slot: slot as u64,
        });
        Ok(slot)
    }

    /// Clears a slot.
    pub fn clear(&mut self, slot: usize) -> Result<(), WatchError> {
        match self.slots.get_mut(slot) {
            Some(s @ Some(_)) => {
                *s = None;
                self.ptrace_ops += 1;
                Ok(())
            }
            _ => Err(WatchError::BadSlot),
        }
    }

    /// Clears whichever slot watches `addr`, if any.
    pub fn clear_addr(&mut self, addr: u64) -> bool {
        for s in &mut self.slots {
            if let Some(w) = s {
                if w.addr == addr {
                    *s = None;
                    self.ptrace_ops += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Clears all slots.
    pub fn clear_all(&mut self) {
        for s in &mut self.slots {
            if s.is_some() {
                *s = None;
                self.ptrace_ops += 1;
            }
        }
    }

    /// True if some slot's base address is exactly `addr` (active-set check).
    pub fn is_watched(&self, addr: u64) -> bool {
        self.slots.iter().flatten().any(|w| w.addr == addr)
    }

    /// Number of free slots.
    pub fn free_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_none()).count()
    }

    /// The currently armed watchpoints.
    pub fn armed(&self) -> Vec<(usize, Watchpoint)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|w| (i, w)))
            .collect()
    }

    /// The hit log, in global order.
    pub fn hits(&self) -> &[WatchHit] {
        &self.hits
    }

    /// Drains the hit log.
    pub fn take_hits(&mut self) -> Vec<WatchHit> {
        std::mem::take(&mut self.hits)
    }

    /// Traps delivered so far.
    pub fn traps(&self) -> u64 {
        self.traps
    }

    /// ptrace-style register operations performed.
    pub fn ptrace_ops(&self) -> u64 {
        self.ptrace_ops
    }

    /// Memory accesses checked (hit or miss).
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Feeds one memory access through the unit.
    // The argument list mirrors the fields of a trap frame; bundling them
    // into a struct would only rename the problem.
    #[allow(clippy::too_many_arguments)]
    pub fn check_access(
        &mut self,
        seq: u64,
        tid: u32,
        core: u32,
        iid: InstrId,
        kind: AccessKind,
        addr: u64,
        value: Value,
    ) {
        self.checked += 1;
        for (slot, w) in self.slots.iter().enumerate() {
            if let Some(w) = w {
                if w.triggers(addr, kind) {
                    self.traps += 1;
                    gist_obs::counter!("watch.traps").inc();
                    self.hits.push(WatchHit {
                        seq,
                        tid,
                        core,
                        iid,
                        addr,
                        value,
                        kind,
                        slot,
                    });
                    // Real debug registers deliver one trap per access even
                    // if multiple registers match; first match wins.
                    break;
                }
            }
        }
    }
}

impl Observer for WatchUnit {
    fn on_event(&mut self, ev: &Event) {
        if let Event::Mem {
            seq,
            tid,
            core,
            iid,
            kind,
            addr,
            value,
            ..
        } = ev
        {
            self.check_access(*seq, *tid, *core, *iid, *kind, *addr, *value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_slots_then_exhausted() {
        let mut u = WatchUnit::new();
        for i in 0..NUM_SLOTS as u64 {
            u.set(0x1000 + i, 1, WatchCondition::ReadWrite).unwrap();
        }
        assert_eq!(u.free_slots(), 0);
        assert_eq!(
            u.set(0x2000, 1, WatchCondition::ReadWrite),
            Err(WatchError::NoFreeSlot)
        );
    }

    #[test]
    fn duplicate_address_rejected() {
        let mut u = WatchUnit::new();
        u.set(0x1000, 1, WatchCondition::ReadWrite).unwrap();
        assert_eq!(
            u.set(0x1000, 1, WatchCondition::WriteOnly),
            Err(WatchError::AlreadyWatched)
        );
    }

    #[test]
    fn clear_frees_slot_for_reuse() {
        let mut u = WatchUnit::new();
        let s = u.set(0x1000, 1, WatchCondition::ReadWrite).unwrap();
        u.clear(s).unwrap();
        assert_eq!(u.free_slots(), NUM_SLOTS);
        let s2 = u.set(0x3000, 1, WatchCondition::ReadWrite).unwrap();
        assert_eq!(s2, s, "freed slot is reused");
    }

    #[test]
    fn clear_addr_and_clear_all() {
        let mut u = WatchUnit::new();
        u.set(0x1, 1, WatchCondition::ReadWrite).unwrap();
        u.set(0x2, 1, WatchCondition::ReadWrite).unwrap();
        assert!(u.clear_addr(0x1));
        assert!(!u.clear_addr(0x99));
        u.clear_all();
        assert_eq!(u.free_slots(), NUM_SLOTS);
    }

    #[test]
    fn bad_length_rejected() {
        let mut u = WatchUnit::new();
        assert_eq!(
            u.set(0x1, 0, WatchCondition::ReadWrite),
            Err(WatchError::BadLength)
        );
        assert_eq!(
            u.set(0x1, 9, WatchCondition::ReadWrite),
            Err(WatchError::BadLength)
        );
    }

    #[test]
    fn write_only_ignores_reads() {
        let mut u = WatchUnit::new();
        u.set(0x10, 1, WatchCondition::WriteOnly).unwrap();
        u.check_access(1, 0, 0, InstrId(0), AccessKind::Read, 0x10, 5);
        assert!(u.hits().is_empty());
        u.check_access(2, 0, 0, InstrId(0), AccessKind::Write, 0x10, 6);
        assert_eq!(u.hits().len(), 1);
        assert_eq!(u.hits()[0].value, 6);
    }

    #[test]
    fn length_covers_a_range() {
        let mut u = WatchUnit::new();
        u.set(0x100, 4, WatchCondition::ReadWrite).unwrap();
        u.check_access(1, 0, 0, InstrId(0), AccessKind::Read, 0x103, 1);
        u.check_access(2, 0, 0, InstrId(0), AccessKind::Read, 0x104, 2);
        assert_eq!(u.hits().len(), 1, "0x104 is out of range");
    }

    #[test]
    fn hits_preserve_global_order() {
        let mut u = WatchUnit::new();
        u.set(0x10, 1, WatchCondition::ReadWrite).unwrap();
        // Accesses from different threads arrive in seq order.
        u.check_access(5, 1, 1, InstrId(10), AccessKind::Write, 0x10, 1);
        u.check_access(9, 0, 0, InstrId(20), AccessKind::Read, 0x10, 1);
        u.check_access(12, 1, 1, InstrId(10), AccessKind::Write, 0x10, 2);
        let seqs: Vec<u64> = u.hits().iter().map(|h| h.seq).collect();
        assert_eq!(seqs, vec![5, 9, 12]);
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "total order");
    }

    #[test]
    fn observer_integration_with_vm() {
        use gist_ir::parser::parse_program;
        use gist_vm::{Vm, VmConfig};
        let p = parse_program(
            "t",
            r#"
global x = 0
fn main() {
entry:
  store $x, 1
  v = load $x
  store $x, 2
  ret
}
"#,
        )
        .unwrap();
        let mut unit = WatchUnit::new();
        // Globals start at 0x1000 in the VM's layout.
        unit.set(0x1000, 1, WatchCondition::ReadWrite).unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        vm.run(&mut [&mut unit]);
        let kinds: Vec<AccessKind> = unit.hits().iter().map(|h| h.kind).collect();
        assert_eq!(
            kinds,
            vec![AccessKind::Write, AccessKind::Read, AccessKind::Write]
        );
        let values: Vec<i64> = unit.hits().iter().map(|h| h.value).collect();
        assert_eq!(values, vec![1, 1, 2]);
    }

    #[test]
    fn ptrace_ops_counted() {
        let mut u = WatchUnit::new();
        let s = u.set(0x1, 1, WatchCondition::ReadWrite).unwrap();
        u.clear(s).unwrap();
        assert_eq!(u.ptrace_ops(), 2);
    }
}
