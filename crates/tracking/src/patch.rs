//! The instrumentation patch shipped to production runs.

use std::collections::BTreeSet;

use gist_ir::{FuncId, InstrId};

/// Instrumentation for one production run: which statements toggle PT and
/// which memory accesses get watchpoints. This is the artifact Gist's
/// server distributes to clients ("Gist uses bsdiff to create a binary
/// patch file that it ships off to user endpoints", §4).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InstrumentationPatch {
    /// Statements after whose execution PT tracing turns ON (predecessor
    /// block terminators, callsites, etc.).
    pub pt_on_after: BTreeSet<InstrId>,
    /// Statements after whose execution PT tracing turns OFF.
    pub pt_off_after: BTreeSet<InstrId>,
    /// Resume points: when control *returns to* one of these statements
    /// (the statement after a callsite), PT tracing turns ON. Needed when
    /// a tracked statement follows a call whose callee contains a stop
    /// point — the sdom optimization alone would leave it untraced.
    pub pt_on_return_to: BTreeSet<InstrId>,
    /// Functions whose entry turns PT tracing ON (tracked statements in
    /// the entry block of a called function or a thread start routine; the
    /// instrumentation executes in the entering thread, on its own core).
    pub pt_on_enter: BTreeSet<FuncId>,
    /// Turn PT on at run start (tracked statement in the entry block of
    /// `main`, which has no predecessors).
    pub pt_on_at_start: bool,
    /// Memory-access statements at which to arm a watchpoint on the
    /// accessed address (the arm site is "before the access and after its
    /// immediate dominator", §3.2.3).
    pub watch_accesses: BTreeSet<InstrId>,
    /// The tracked slice portion this patch covers (for refinement:
    /// executed ∩ tracked, discovered ∖ tracked).
    pub tracked: BTreeSet<InstrId>,
}

impl InstrumentationPatch {
    /// Total number of instrumentation points inserted into the program
    /// (the paper's overhead grows with this count, Fig. 11).
    pub fn instrumentation_points(&self) -> usize {
        self.pt_on_after.len()
            + self.pt_off_after.len()
            + self.pt_on_return_to.len()
            + self.pt_on_enter.len()
            + self.watch_accesses.len()
            + usize::from(self.pt_on_at_start)
    }

    /// Serialized size in bytes (patch-shipping cost accounting).
    pub fn shipped_size(&self) -> usize {
        self.to_bytes().len()
    }

    /// Encodes the patch into the compact binary wire format shipped to
    /// clients: five length-prefixed sections of little-endian `u32` ids
    /// plus the start flag.
    pub fn to_bytes(&self) -> Vec<u8> {
        fn put_section(out: &mut Vec<u8>, ids: impl Iterator<Item = u32>, len: usize) {
            out.extend_from_slice(&(len as u32).to_le_bytes());
            for id in ids {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        let mut out = Vec::new();
        put_section(
            &mut out,
            self.pt_on_after.iter().map(|i| i.0),
            self.pt_on_after.len(),
        );
        put_section(
            &mut out,
            self.pt_off_after.iter().map(|i| i.0),
            self.pt_off_after.len(),
        );
        put_section(
            &mut out,
            self.pt_on_return_to.iter().map(|i| i.0),
            self.pt_on_return_to.len(),
        );
        put_section(
            &mut out,
            self.pt_on_enter.iter().map(|f| f.0),
            self.pt_on_enter.len(),
        );
        out.push(u8::from(self.pt_on_at_start));
        put_section(
            &mut out,
            self.watch_accesses.iter().map(|i| i.0),
            self.watch_accesses.len(),
        );
        put_section(
            &mut out,
            self.tracked.iter().map(|i| i.0),
            self.tracked.len(),
        );
        out
    }

    /// Decodes a patch from the binary wire format produced by
    /// [`InstrumentationPatch::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        struct Reader<'a>(&'a [u8]);
        impl Reader<'_> {
            fn u32(&mut self) -> Result<u32, String> {
                if self.0.len() < 4 {
                    return Err("truncated patch".to_owned());
                }
                let (head, rest) = self.0.split_at(4);
                self.0 = rest;
                Ok(u32::from_le_bytes(head.try_into().unwrap()))
            }
            fn u8(&mut self) -> Result<u8, String> {
                let (&b, rest) = self.0.split_first().ok_or("truncated patch")?;
                self.0 = rest;
                Ok(b)
            }
            fn ids(&mut self) -> Result<Vec<u32>, String> {
                let n = self.u32()?;
                (0..n).map(|_| self.u32()).collect()
            }
        }
        let mut r = Reader(bytes);
        let patch = InstrumentationPatch {
            pt_on_after: r.ids()?.into_iter().map(InstrId).collect(),
            pt_off_after: r.ids()?.into_iter().map(InstrId).collect(),
            pt_on_return_to: r.ids()?.into_iter().map(InstrId).collect(),
            pt_on_enter: r.ids()?.into_iter().map(FuncId).collect(),
            pt_on_at_start: r.u8()? != 0,
            watch_accesses: r.ids()?.into_iter().map(InstrId).collect(),
            tracked: r.ids()?.into_iter().map(InstrId).collect(),
        };
        if r.0.is_empty() {
            Ok(patch)
        } else {
            Err("trailing bytes after patch".to_owned())
        }
    }

    /// Merges another patch into this one (cooperative runs may stack
    /// multiple slice portions).
    pub fn merge(&mut self, other: &InstrumentationPatch) {
        self.pt_on_after.extend(&other.pt_on_after);
        self.pt_off_after.extend(&other.pt_off_after);
        self.pt_on_return_to.extend(&other.pt_on_return_to);
        self.pt_on_enter.extend(&other.pt_on_enter);
        self.pt_on_at_start |= other.pt_on_at_start;
        self.watch_accesses.extend(&other.watch_accesses);
        self.tracked.extend(&other.tracked);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_counting() {
        let mut p = InstrumentationPatch::default();
        p.pt_on_after.insert(InstrId(1));
        p.pt_off_after.insert(InstrId(2));
        p.watch_accesses.insert(InstrId(3));
        p.pt_on_at_start = true;
        assert_eq!(p.instrumentation_points(), 4);
    }

    #[test]
    fn roundtrips_wire_format() {
        let mut p = InstrumentationPatch::default();
        p.pt_on_after.insert(InstrId(7));
        p.pt_on_enter.insert(FuncId(2));
        p.pt_on_at_start = true;
        p.tracked.insert(InstrId(7));
        let bytes = p.to_bytes();
        let q = InstrumentationPatch::from_bytes(&bytes).unwrap();
        assert_eq!(p, q);
        assert_eq!(p.shipped_size(), bytes.len());
    }

    #[test]
    fn truncated_patch_is_an_error() {
        let mut p = InstrumentationPatch::default();
        p.watch_accesses.insert(InstrId(3));
        let bytes = p.to_bytes();
        assert!(InstrumentationPatch::from_bytes(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn merge_unions_everything() {
        let mut a = InstrumentationPatch::default();
        a.pt_on_after.insert(InstrId(1));
        let mut b = InstrumentationPatch::default();
        b.pt_on_after.insert(InstrId(2));
        b.pt_on_at_start = true;
        a.merge(&b);
        assert_eq!(a.pt_on_after.len(), 2);
        assert!(a.pt_on_at_start);
    }
}
