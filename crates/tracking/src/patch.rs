//! The instrumentation patch shipped to production runs.

use std::collections::BTreeSet;

use gist_ir::{FuncId, InstrId};
use serde::{Deserialize, Serialize};

/// Instrumentation for one production run: which statements toggle PT and
/// which memory accesses get watchpoints. This is the artifact Gist's
/// server distributes to clients ("Gist uses bsdiff to create a binary
/// patch file that it ships off to user endpoints", §4).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrumentationPatch {
    /// Statements after whose execution PT tracing turns ON (predecessor
    /// block terminators, callsites, etc.).
    pub pt_on_after: BTreeSet<InstrId>,
    /// Statements after whose execution PT tracing turns OFF.
    pub pt_off_after: BTreeSet<InstrId>,
    /// Resume points: when control *returns to* one of these statements
    /// (the statement after a callsite), PT tracing turns ON. Needed when
    /// a tracked statement follows a call whose callee contains a stop
    /// point — the sdom optimization alone would leave it untraced.
    pub pt_on_return_to: BTreeSet<InstrId>,
    /// Functions whose entry turns PT tracing ON (tracked statements in
    /// the entry block of a called function or a thread start routine; the
    /// instrumentation executes in the entering thread, on its own core).
    pub pt_on_enter: BTreeSet<FuncId>,
    /// Turn PT on at run start (tracked statement in the entry block of
    /// `main`, which has no predecessors).
    pub pt_on_at_start: bool,
    /// Memory-access statements at which to arm a watchpoint on the
    /// accessed address (the arm site is "before the access and after its
    /// immediate dominator", §3.2.3).
    pub watch_accesses: BTreeSet<InstrId>,
    /// The tracked slice portion this patch covers (for refinement:
    /// executed ∩ tracked, discovered ∖ tracked).
    pub tracked: BTreeSet<InstrId>,
}

impl InstrumentationPatch {
    /// Total number of instrumentation points inserted into the program
    /// (the paper's overhead grows with this count, Fig. 11).
    pub fn instrumentation_points(&self) -> usize {
        self.pt_on_after.len()
            + self.pt_off_after.len()
            + self.pt_on_return_to.len()
            + self.pt_on_enter.len()
            + self.watch_accesses.len()
            + usize::from(self.pt_on_at_start)
    }

    /// Serialized size in bytes (patch-shipping cost accounting).
    pub fn shipped_size(&self) -> usize {
        serde_json::to_vec(self).map(|v| v.len()).unwrap_or(0)
    }

    /// Merges another patch into this one (cooperative runs may stack
    /// multiple slice portions).
    pub fn merge(&mut self, other: &InstrumentationPatch) {
        self.pt_on_after.extend(&other.pt_on_after);
        self.pt_off_after.extend(&other.pt_off_after);
        self.pt_on_return_to.extend(&other.pt_on_return_to);
        self.pt_on_enter.extend(&other.pt_on_enter);
        self.pt_on_at_start |= other.pt_on_at_start;
        self.watch_accesses.extend(&other.watch_accesses);
        self.tracked.extend(&other.tracked);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_counting() {
        let mut p = InstrumentationPatch::default();
        p.pt_on_after.insert(InstrId(1));
        p.pt_off_after.insert(InstrId(2));
        p.watch_accesses.insert(InstrId(3));
        p.pt_on_at_start = true;
        assert_eq!(p.instrumentation_points(), 4);
    }

    #[test]
    fn roundtrips_serde() {
        let mut p = InstrumentationPatch::default();
        p.pt_on_after.insert(InstrId(7));
        p.tracked.insert(InstrId(7));
        let bytes = serde_json::to_vec(&p).unwrap();
        let q: InstrumentationPatch = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(p, q);
        assert_eq!(p.shipped_size(), bytes.len());
    }

    #[test]
    fn merge_unions_everything() {
        let mut a = InstrumentationPatch::default();
        a.pt_on_after.insert(InstrId(1));
        let mut b = InstrumentationPatch::default();
        b.pt_on_after.insert(InstrId(2));
        b.pt_on_at_start = true;
        a.merge(&b);
        assert_eq!(a.pt_on_after.len(), 2);
        assert!(a.pt_on_at_start);
    }
}
