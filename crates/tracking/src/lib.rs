//! Instrumentation planning and runtime tracking (paper §3.2.2–§3.2.3).
//!
//! Gist "statically determines the locations where control flow tracking
//! should start and stop at runtime" and inserts "a small amount of
//! instrumentation ... mainly to start/stop Intel PT tracking and place a
//! hardware watchpoint" (§4). This crate has both halves:
//!
//! * [`plan::Planner`] — given the σ-prefix of a static slice, computes
//!   **PT start points** (each predecessor block of a tracked statement's
//!   block; callsites for entry blocks), **PT stop points** (after a
//!   tracked statement that does not strictly dominate the next one,
//!   before its immediate postdominator), applying the paper's `sdom`
//!   optimization, and **watchpoint placements** (before each shared
//!   memory access, after its immediate dominator), partitioned
//!   cooperatively when more than 4 addresses are needed.
//! * [`patch::InstrumentationPatch`] — the serializable artifact shipped
//!   to production runs (the `bsdiff` patch analog of §4), with size
//!   accounting.
//! * [`runtime::TrackerRuntime`] — the client-side observer that executes
//!   a patch during a VM run: toggles the PT driver at start/stop points,
//!   arms hardware watchpoints at access sites (respecting the 4-slot
//!   budget and the active-set rule), and collects the run's trace:
//!   decoded control flow, ordered watchpoint hits, and the statements
//!   *discovered* by watchpoints that static slicing missed.

pub mod patch;
pub mod plan;
pub mod runtime;

pub use patch::InstrumentationPatch;
pub use plan::Planner;
pub use runtime::{RunTrace, TrackerRuntime};
