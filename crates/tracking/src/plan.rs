//! The instrumentation planner (paper §3.2.2 Fig. 4 and §3.2.3).

use std::collections::{BTreeSet, HashMap};

use gist_ir::icfg::Icfg;
use gist_ir::{FuncId, InstrId, Op, Operand, Program};

use crate::patch::InstrumentationPatch;

/// Hardware watchpoint budget per run (x86: 4 debug registers).
pub const WATCH_BUDGET: usize = gist_watch::NUM_SLOTS;

/// Plans instrumentation for a tracked slice portion.
pub struct Planner<'p> {
    program: &'p Program,
    ticfg: &'p Icfg,
    watch_priority: Vec<InstrId>,
    dead_stores: BTreeSet<InstrId>,
    never_parallel: BTreeSet<InstrId>,
    value_flow_distance: HashMap<InstrId, u64>,
}

impl<'p> Planner<'p> {
    /// Creates a planner over the program's TICFG (shared with the slicer).
    pub fn new(program: &'p Program, ticfg: &'p Icfg) -> Planner<'p> {
        Planner {
            program,
            ticfg,
            watch_priority: Vec::new(),
            dead_stores: BTreeSet::new(),
            never_parallel: BTreeSet::new(),
            value_flow_distance: HashMap::new(),
        }
    }

    /// Ranks watchpoint candidates by their value-flow distance to the
    /// failure point (SVFG hops): among statements of equal race-rank
    /// priority, the ones fewer def-use steps from the failing value are
    /// armed in earlier cooperative groups.
    ///
    /// The distance map also *prunes* the candidate pool: a store with no
    /// value-flow path to the criterion at all writes a value the failure
    /// can never observe, so watching it only pads the cooperative
    /// schedule. Loads are kept even without a distance — their observed
    /// value can steer a branch predicate the sparse graph does not model
    /// as value flow into the criterion. Race-priority statements are
    /// always kept (the detector ranked them for discovery, not value
    /// provenance).
    pub fn with_distance_rank(mut self, distances: HashMap<InstrId, u64>) -> Planner<'p> {
        self.value_flow_distance = distances;
        self
    }

    /// Excludes statically-dead stores from watchpoint planning: a store
    /// whose cell is provably never read, freed, or synchronized on again
    /// (per the memory-liveness dataflow) cannot be the last write a
    /// watchpoint would catch, so burning one of the four debug registers
    /// on it only delays the cooperative schedule. The set is computed by
    /// the caller (`gist_analysis::dead_stores`) so tracking stays free of
    /// an analysis dependency.
    pub fn with_dead_store_filter(mut self, dead: BTreeSet<InstrId>) -> Planner<'p> {
        self.dead_stores = dead;
        self
    }

    /// Excludes never-parallel writes from watchpoint planning: a store
    /// or free that the static happens-before/MHP analysis proves has no
    /// may-parallel access to the same cell on another thread cannot be
    /// one side of the racing pair the watchpoints hunt for, so arming it
    /// only lengthens the cooperative schedule. The set is computed by
    /// the caller (`gist_analysis::Mhp::never_parallel_stores`) so
    /// tracking stays free of an analysis dependency.
    pub fn with_mhp_filter(mut self, never_parallel: BTreeSet<InstrId>) -> Planner<'p> {
        self.never_parallel = never_parallel;
        self
    }

    /// Orders watchpoint insertion by an external ranking (e.g. the static
    /// race detector's candidate order): statements earlier in `priority`
    /// land in earlier cooperative watch groups, so the likeliest racing
    /// accesses are monitored by the first production runs instead of
    /// waiting their turn in slice order. Statements not mentioned keep
    /// their relative slice order after the prioritized ones.
    pub fn with_watch_priority(mut self, priority: Vec<InstrId>) -> Planner<'p> {
        self.watch_priority = priority;
        self
    }

    /// The watchpoint-eligible access statements among `tracked`: memory
    /// accesses whose address is not statically stack-derived (Gist does
    /// not track stack variables, §3.2.3).
    pub fn watch_candidates(&self, tracked: &[InstrId]) -> Vec<InstrId> {
        let mut out: Vec<InstrId> = tracked
            .iter()
            .copied()
            .filter(|&s| {
                !self.dead_stores.contains(&s)
                    && !self.never_parallel.contains(&s)
                    && self.is_watch_candidate(s)
                    && self.flows_to_failure(s)
            })
            .collect();
        if !self.value_flow_distance.is_empty() {
            out.retain(|&s| self.arms_its_cell(s, tracked));
        }
        out
    }

    /// One armer per cell per basic block: a watchpoint arms an *address*
    /// and stays armed for the rest of the run, so once a block's first
    /// access to a cell arms it, the block's later accesses to the same
    /// cell trap without needing an arming bit of their own. Dropping them
    /// from the candidate pool shortens the cooperative watch schedule
    /// without losing coverage (every cell still has an armer in some
    /// group). Applied only under the sparse value-flow plan, whose
    /// per-cell def-use chains this mirrors statically.
    ///
    /// `s` survives unless an earlier tracked candidate in the same block
    /// accesses the same syntactic cell with no redefinition of the
    /// address register in between.
    fn arms_its_cell(&self, s: InstrId, tracked: &[InstrId]) -> bool {
        let Some(pos) = self.program.stmt_pos(s) else {
            return true;
        };
        let Some(addr) = self.program.instr(s).and_then(|i| i.op.access_addr()) else {
            return true;
        };
        let block = self.program.functions[pos.func.index()].block(pos.block);
        for earlier in tracked {
            let Some(epos) = self.program.stmt_pos(*earlier) else {
                continue;
            };
            if epos.func != pos.func || epos.block != pos.block || epos.index >= pos.index {
                continue;
            }
            let Some(einstr) = self.program.instr(*earlier) else {
                continue;
            };
            if einstr.op.access_addr() != Some(addr)
                || self.dead_stores.contains(earlier)
                || self.never_parallel.contains(earlier)
                || !self.is_watch_candidate(*earlier)
                || !self.flows_to_failure(*earlier)
            {
                continue;
            }
            // The earlier access arms the same cell — unless the address
            // register is redefined between the two statements.
            let redefined = match addr {
                Operand::Var(v) => block.instrs[epos.index + 1..pos.index]
                    .iter()
                    .any(|i| i.op.def() == Some(v)),
                Operand::Global(_) | Operand::Const(_) => false,
            };
            if !redefined {
                return false;
            }
        }
        true
    }

    /// True unless the value-flow distance map proves `s` is a store whose
    /// value cannot reach the failure (see [`Planner::with_distance_rank`]).
    fn flows_to_failure(&self, s: InstrId) -> bool {
        if self.value_flow_distance.is_empty()
            || self.value_flow_distance.contains_key(&s)
            || self.watch_priority.contains(&s)
        {
            return true;
        }
        !self
            .program
            .instr(s)
            .map(|i| i.op.is_memory_write())
            .unwrap_or(false)
    }

    fn is_watch_candidate(&self, s: InstrId) -> bool {
        let instr = match self.program.instr(s) {
            Some(i) => i,
            None => return false,
        };
        let addr = match instr.op.access_addr() {
            Some(a) => a,
            None => return false,
        };
        match addr {
            Operand::Global(_) => true,
            Operand::Const(_) => true, // absolute address; watchable
            Operand::Var(v) => {
                // Exclude registers defined *only* by stackalloc in the
                // same function (statically known stack addresses).
                let func = self.program.stmt_func(s).expect("indexed");
                let mut any_def = false;
                let mut all_stack = true;
                for f in &self.program.functions {
                    if f.id != func {
                        continue;
                    }
                    for b in &f.blocks {
                        for i in &b.instrs {
                            if i.op.def() == Some(v) {
                                any_def = true;
                                if !matches!(i.op, Op::StackAlloc { .. }) {
                                    all_stack = false;
                                }
                            }
                        }
                    }
                }
                !(any_def && all_stack)
            }
        }
    }

    /// Number of cooperative watch groups needed for this slice portion
    /// ("Gist instructs different production runs to monitor different
    /// sets of memory locations", §3.2.3).
    pub fn watch_groups(&self, tracked: &[InstrId]) -> usize {
        let n = self.watch_candidates(tracked).len();
        n.div_ceil(WATCH_BUDGET).max(1)
    }

    /// Plans instrumentation for the given slice portion; `watch_group`
    /// selects which cooperative subset of watchpoint sites this run arms.
    pub fn plan(&self, tracked: &[InstrId], watch_group: usize) -> InstrumentationPatch {
        let patch = self.plan_with_options(tracked, watch_group, true);
        gist_obs::event!(PatchPlanned {
            tracked: patch.tracked.len() as u64,
            watch: patch.watch_accesses.len() as u64,
            group: watch_group as u64,
            bytes: patch.shipped_size() as u64,
        });
        patch
    }

    /// Ablation: plan without the strict-dominance optimization of §3.2.2
    /// (every tracked statement gets its own start points, and tracking
    /// stops after every tracked statement). Comparing instrumentation
    /// point counts and driver transitions against [`Planner::plan`]
    /// quantifies what the paper's `sdom`/`ipdom` analysis saves.
    pub fn plan_without_sdom(
        &self,
        tracked: &[InstrId],
        watch_group: usize,
    ) -> InstrumentationPatch {
        self.plan_with_options(tracked, watch_group, false)
    }

    fn plan_with_options(
        &self,
        tracked: &[InstrId],
        watch_group: usize,
        use_sdom: bool,
    ) -> InstrumentationPatch {
        let _span = gist_obs::span("tracking.plan");
        gist_obs::counter!("tracking.plans").inc();
        let mut patch = InstrumentationPatch {
            tracked: tracked.iter().copied().collect(),
            ..InstrumentationPatch::default()
        };
        self.plan_control_flow(tracked, &mut patch, use_sdom);
        self.plan_data_flow(tracked, watch_group, &mut patch);
        patch
    }

    /// A patch that traces everything (full-tracing baseline of Fig. 13).
    pub fn plan_full_trace(&self) -> InstrumentationPatch {
        InstrumentationPatch {
            pt_on_at_start: true,
            tracked: self.program.all_stmt_ids().collect(),
            ..InstrumentationPatch::default()
        }
    }

    /// Control-flow planning: start/stop points per §3.2.2.
    ///
    /// The interprocedural composition needs care beyond the paper's
    /// intra-procedural Fig. 4: a stop point inside a *callee* disables
    /// tracing for the caller's remaining statements even when the `sdom`
    /// optimization says they are covered. The planner therefore runs two
    /// passes — stops first, then starts — and (a) only trusts `sdom`
    /// coverage when no call on the covered stretch can reach a stop
    /// point, (b) inserts *resume points* (re-enable tracing when control
    /// returns to the statement after a callsite) otherwise.
    fn plan_control_flow(
        &self,
        tracked: &[InstrId],
        patch: &mut InstrumentationPatch,
        use_sdom: bool,
    ) {
        // Group tracked statements by function, ordered by (block RPO
        // position, index within block) — the flow order used for the
        // pairwise sdom test.
        let mut by_func: HashMap<FuncId, Vec<InstrId>> = HashMap::new();
        for &s in tracked {
            if let Some(f) = self.program.stmt_func(s) {
                by_func.entry(f).or_default().push(s);
            }
        }
        let mut ordered_by_func: HashMap<FuncId, Vec<InstrId>> = HashMap::new();
        for (func, stmts) in &by_func {
            let cfg = &self.ticfg.cfgs[func.index()];
            let rpo_idx = cfg.rpo_index();
            let mut ordered = stmts.clone();
            ordered.sort_by_key(|&s| {
                let pos = self.program.stmt_pos(s).expect("indexed");
                (rpo_idx[pos.block.index()], pos.index)
            });
            ordered_by_func.insert(*func, ordered);
        }

        // Pass 1: stop points.
        let mut funcs_with_stops: Vec<FuncId> = Vec::new();
        for (func, ordered) in &ordered_by_func {
            let dom = &self.ticfg.doms[func.index()];
            let mut any_stop = false;
            for (i, &s) in ordered.iter().enumerate() {
                let stops_needed = match ordered.get(i + 1) {
                    // Stop "after stmt and before its immediate
                    // postdominator" when it does not strictly dominate the
                    // next tracked statement (Fig. 4 box II).
                    Some(&next) => !use_sdom || !self.stmt_sdom(dom, s, next),
                    // Last tracked statement of the function: always stop.
                    None => true,
                };
                if stops_needed {
                    patch.pt_off_after.insert(s);
                    any_stop = true;
                }
            }
            if any_stop {
                funcs_with_stops.push(*func);
            }
        }

        // Pass 2: start points, with call-aware coverage.
        for (func, ordered) in &ordered_by_func {
            let dom = &self.ticfg.doms[func.index()];
            // Could a call issued from this function reach a stop point?
            // Conservative: any *other* function has a stop.
            let calls_may_stop = funcs_with_stops.iter().any(|f| f != func);
            for (i, &s) in ordered.iter().enumerate() {
                let mut covered = false;
                if use_sdom && i > 0 {
                    let prev = ordered[i - 1];
                    if self.stmt_sdom(dom, prev, s) {
                        if !calls_may_stop {
                            covered = true;
                        } else {
                            let pp = self.program.stmt_pos(prev).expect("indexed");
                            let sp = self.program.stmt_pos(s).expect("indexed");
                            if pp.block == sp.block {
                                // Same block: coverage holds unless a call
                                // on the stretch may stop tracing; then a
                                // resume point at each call's return site
                                // restores it.
                                let calls =
                                    self.calls_in_block(*func, pp.block, pp.index, sp.index);
                                if calls.is_empty() {
                                    covered = true;
                                } else {
                                    covered = true;
                                    for c in calls {
                                        if let Some(after) = self.stmt_after(c) {
                                            patch.pt_on_return_to.insert(after);
                                        }
                                    }
                                }
                            }
                            // Different blocks with possible stopping calls
                            // on some path: fall back to start points.
                        }
                    }
                }
                if !covered {
                    self.add_start_points(*func, s, patch);
                    // A mid-block statement preceded by calls in its own
                    // block also needs resume points (its block's
                    // predecessors fired before those calls returned).
                    let sp = self.program.stmt_pos(s).expect("indexed");
                    if calls_may_stop {
                        for c in self.calls_in_block(*func, sp.block, 0, sp.index) {
                            if let Some(after) = self.stmt_after(c) {
                                patch.pt_on_return_to.insert(after);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Call statements at instruction indexes `[from, to)` of one block.
    fn calls_in_block(
        &self,
        func: FuncId,
        block: gist_ir::BlockId,
        from: usize,
        to: usize,
    ) -> Vec<InstrId> {
        let b = self.program.function(func).block(block);
        b.instrs
            .iter()
            .enumerate()
            .filter(|(idx, instr)| *idx >= from && *idx < to && matches!(instr.op, Op::Call { .. }))
            .map(|(_, instr)| instr.id)
            .collect()
    }

    /// The statement after `s` in its block (terminator if `s` is last).
    fn stmt_after(&self, s: InstrId) -> Option<InstrId> {
        let pos = self.program.stmt_pos(s)?;
        let block = self.program.function(pos.func).block(pos.block);
        Some(
            block
                .instrs
                .get(pos.index + 1)
                .map(|i| i.id)
                .unwrap_or_else(|| block.term.id()),
        )
    }

    /// True if `a` strictly dominates `b` at statement level.
    fn stmt_sdom(&self, dom: &gist_ir::dom::DomTree, a: InstrId, b: InstrId) -> bool {
        let pa = self.program.stmt_pos(a).expect("indexed");
        let pb = self.program.stmt_pos(b).expect("indexed");
        if pa.block == pb.block {
            return pa.index < pb.index;
        }
        dom.strictly_dominates(pa.block, pb.block)
    }

    /// Start points for tracked statement `s`: each predecessor block of
    /// `bb(s)` (Fig. 4 box I); for entry blocks, the callsites (or run
    /// start for the program entry function).
    fn add_start_points(&self, func: FuncId, s: InstrId, patch: &mut InstrumentationPatch) {
        let pos = self.program.stmt_pos(s).expect("indexed");
        let cfg = &self.ticfg.cfgs[func.index()];
        let preds = &cfg.preds[pos.block.index()];
        if pos.block == self.program.function(func).entry() {
            // Control arrives via calls/spawns (or program start). The ON
            // instrumentation lives at the function's entry so it executes
            // in the *entering* thread — for a spawned start routine that
            // is the child thread, on its own core.
            if func == self.program.entry {
                patch.pt_on_at_start = true;
            } else {
                patch.pt_on_enter.insert(func);
            }
        }
        for p in preds {
            let term_id = self.program.function(func).block(*p).term.id();
            patch.pt_on_after.insert(term_id);
        }
    }

    /// Data-flow planning: watchpoint sites, cooperatively partitioned.
    fn plan_data_flow(
        &self,
        tracked: &[InstrId],
        watch_group: usize,
        patch: &mut InstrumentationPatch,
    ) {
        let mut candidates = self.watch_candidates(tracked);
        if !self.watch_priority.is_empty() || !self.value_flow_distance.is_empty() {
            let rank: HashMap<InstrId, usize> = self
                .watch_priority
                .iter()
                .enumerate()
                .map(|(i, &s)| (s, i))
                .collect();
            // Stable: race rank first, then value-flow distance to the
            // failure, then slice order for the rest.
            candidates.sort_by_key(|s| {
                (
                    rank.get(s).copied().unwrap_or(usize::MAX),
                    self.value_flow_distance.get(s).copied().unwrap_or(u64::MAX),
                )
            });
        }
        let groups: Vec<&[InstrId]> = candidates.chunks(WATCH_BUDGET).collect();
        if groups.is_empty() {
            return;
        }
        let g = watch_group % groups.len();
        patch.watch_accesses = groups[g].iter().copied().collect::<BTreeSet<_>>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::parser::parse_program;

    fn setup(text: &str) -> (Program, Icfg) {
        let p = parse_program("t", text).unwrap();
        let g = Icfg::build_ticfg(&p);
        (p, g)
    }

    const DIAMOND: &str = r#"
global g = 0
fn main() {
entry:
  v = load $g
  c = cmp eq v, 0
  condbr c, then, exit
then:
  x = load $g
  br exit
exit:
  w = load $g
  assert w, "boom"
  ret
}
"#;

    #[test]
    fn start_points_are_predecessor_terminators() {
        let (p, g) = setup(DIAMOND);
        let planner = Planner::new(&p, &g);
        let main = &p.functions[0];
        let exit_block = main.blocks.iter().find(|b| b.label == "exit").unwrap();
        let w_load = exit_block.instrs[0].id;
        let patch = planner.plan(&[w_load], 0);
        // exit has two predecessors: entry's condbr and then's br.
        let condbr = main.blocks[0].term.id();
        let then_br = main
            .blocks
            .iter()
            .find(|b| b.label == "then")
            .unwrap()
            .term
            .id();
        assert!(patch.pt_on_after.contains(&condbr));
        assert!(patch.pt_on_after.contains(&then_br));
        // Last tracked statement: stop after it.
        assert!(patch.pt_off_after.contains(&w_load));
    }

    #[test]
    fn entry_block_statement_starts_at_run_begin() {
        let (p, g) = setup(DIAMOND);
        let planner = Planner::new(&p, &g);
        let v_load = p.functions[0].blocks[0].instrs[0].id;
        let patch = planner.plan(&[v_load], 0);
        assert!(patch.pt_on_at_start, "main entry block has no preds");
    }

    #[test]
    fn sdom_optimization_skips_redundant_starts() {
        // v and c are in the same block: tracking started for v covers c
        // (paper: stmt1 sdom stmt2 needs no special handling).
        let (p, g) = setup(DIAMOND);
        let planner = Planner::new(&p, &g);
        let main = &p.functions[0];
        let v_load = main.blocks[0].instrs[0].id;
        let c_cmp = main.blocks[0].instrs[1].id;
        let patch = planner.plan(&[v_load, c_cmp], 0);
        // Starts only for v (run start); nothing for c.
        assert!(patch.pt_on_at_start);
        assert!(
            patch.pt_on_after.is_empty(),
            "no extra start points: {:?}",
            patch.pt_on_after
        );
        // v sdom c, so no stop after v; stop only after c.
        assert!(!patch.pt_off_after.contains(&v_load));
        assert!(patch.pt_off_after.contains(&c_cmp));
    }

    #[test]
    fn non_dominating_pair_stops_and_restarts() {
        // then-block x does not dominate exit-block w: stop after x,
        // restart at exit's preds (Fig. 4 boxes II and III).
        let (p, g) = setup(DIAMOND);
        let planner = Planner::new(&p, &g);
        let main = &p.functions[0];
        let x_load = main
            .blocks
            .iter()
            .find(|b| b.label == "then")
            .unwrap()
            .instrs[0]
            .id;
        let w_load = main
            .blocks
            .iter()
            .find(|b| b.label == "exit")
            .unwrap()
            .instrs[0]
            .id;
        let patch = planner.plan(&[x_load, w_load], 0);
        assert!(patch.pt_off_after.contains(&x_load), "stop after x");
        // Restart at exit's predecessors.
        assert!(!patch.pt_on_after.is_empty());
    }

    #[test]
    fn callee_statement_starts_at_function_entry() {
        let (p, g) = setup(
            r#"
global g = 0
fn helper(a) {
entry:
  v = load $g
  ret v
}
fn main() {
entry:
  r = call helper(1)
  assert r, "x"
  ret
}
"#,
        );
        let planner = Planner::new(&p, &g);
        let helper = p.function_by_name("helper").unwrap();
        let v_load = helper.blocks[0].instrs[0].id;
        let patch = planner.plan(&[v_load], 0);
        let helper_fn = p.function_by_name("helper").unwrap();
        assert!(
            patch.pt_on_enter.contains(&helper_fn.id),
            "tracked entry-block stmt starts tracing at function entry"
        );
        assert!(!patch.pt_on_at_start, "helper is not the program entry");
    }

    #[test]
    fn watch_candidates_exclude_stack_accesses() {
        let (p, g) = setup(
            r#"
global shared = 0
fn main() {
entry:
  s = stackalloc 4
  store s, 1
  store $shared, 2
  v = load s
  w = load $shared
  assert w, "x"
  ret
}
"#,
        );
        let planner = Planner::new(&p, &g);
        let main = &p.functions[0];
        let all: Vec<InstrId> = main.blocks[0].instrs.iter().map(|i| i.id).collect();
        let cands = planner.watch_candidates(&all);
        let store_stack = main.blocks[0].instrs[1].id;
        let store_shared = main.blocks[0].instrs[2].id;
        let load_stack = main.blocks[0].instrs[3].id;
        let load_shared = main.blocks[0].instrs[4].id;
        assert!(!cands.contains(&store_stack));
        assert!(!cands.contains(&load_stack));
        assert!(cands.contains(&store_shared));
        assert!(cands.contains(&load_shared));
    }

    #[test]
    fn cooperative_partitioning_over_budget() {
        // Six distinct watch sites -> 2 groups.
        let (p, g) = setup(
            r#"
global a = 0
global b = 0
global c = 0
fn main() {
entry:
  v1 = load $a
  v2 = load $b
  v3 = load $c
  store $a, v1
  store $b, v2
  store $c, v3
  assert v1, "x"
  ret
}
"#,
        );
        let planner = Planner::new(&p, &g);
        let main = &p.functions[0];
        let all: Vec<InstrId> = main.blocks[0].instrs.iter().map(|i| i.id).collect();
        assert_eq!(planner.watch_groups(&all), 2);
        let p0 = planner.plan(&all, 0);
        let p1 = planner.plan(&all, 1);
        assert_eq!(p0.watch_accesses.len(), 4);
        assert_eq!(p1.watch_accesses.len(), 2);
        assert!(p0.watch_accesses.is_disjoint(&p1.watch_accesses));
        // Group index wraps.
        let p2 = planner.plan(&all, 2);
        assert_eq!(p2.watch_accesses, p0.watch_accesses);
    }

    #[test]
    fn watch_priority_reorders_cooperative_groups() {
        // Same six-site program as above; rank the last slice candidate
        // first and it must move into watch group 0.
        let (p, g) = setup(
            r#"
global a = 0
global b = 0
global c = 0
fn main() {
entry:
  v1 = load $a
  v2 = load $b
  v3 = load $c
  store $a, v1
  store $b, v2
  store $c, v3
  assert v1, "x"
  ret
}
"#,
        );
        let main = &p.functions[0];
        let all: Vec<InstrId> = main.blocks[0].instrs.iter().map(|i| i.id).collect();
        let last_store = main.blocks[0].instrs[5].id;

        let unranked = Planner::new(&p, &g).plan(&all, 0);
        assert!(
            !unranked.watch_accesses.contains(&last_store),
            "slice order leaves the last site for group 1"
        );

        let ranked = Planner::new(&p, &g)
            .with_watch_priority(vec![last_store])
            .plan(&all, 0);
        assert!(
            ranked.watch_accesses.contains(&last_store),
            "priority promotes it into group 0"
        );
        // Groups stay disjoint and exhaustive under the reordering.
        let g1 = Planner::new(&p, &g)
            .with_watch_priority(vec![last_store])
            .plan(&all, 1);
        assert!(ranked.watch_accesses.is_disjoint(&g1.watch_accesses));
        assert_eq!(ranked.watch_accesses.len() + g1.watch_accesses.len(), 6);
    }

    #[test]
    fn value_flow_distance_breaks_ties_within_priority_tiers() {
        // No race priority: distances alone decide group membership. Give
        // the last two slice sites the smallest distances and they must
        // displace earlier sites from group 0. (Each site touches its own
        // global so the per-block cell dedup stays out of the way.)
        let (p, g) = setup(
            r#"
global a = 0
global b = 0
global c = 0
global d = 0
global e = 0
global f = 0
fn main() {
entry:
  v1 = load $a
  v2 = load $b
  v3 = load $c
  store $d, v1
  store $e, v2
  store $f, v3
  assert v1, "x"
  ret
}
"#,
        );
        let main = &p.functions[0];
        let all: Vec<InstrId> = main.blocks[0].instrs.iter().map(|i| i.id).collect();
        let store_e = main.blocks[0].instrs[4].id;
        let store_f = main.blocks[0].instrs[5].id;
        let mut dist = HashMap::new();
        dist.insert(store_e, 1u64);
        dist.insert(store_f, 2u64);
        let patch = Planner::new(&p, &g).with_distance_rank(dist).plan(&all, 0);
        assert!(patch.watch_accesses.contains(&store_e));
        assert!(patch.watch_accesses.contains(&store_f));
        // Race priority still wins over distance.
        let v1 = main.blocks[0].instrs[0].id;
        let mut dist2 = HashMap::new();
        dist2.insert(store_f, 0u64);
        let patch2 = Planner::new(&p, &g)
            .with_watch_priority(vec![v1])
            .with_distance_rank(dist2)
            .plan(&all, 0);
        assert!(patch2.watch_accesses.contains(&v1), "priority tier first");
        assert!(patch2.watch_accesses.contains(&store_f), "then distance");
    }

    #[test]
    fn distance_map_prunes_flowless_stores_and_redundant_armers() {
        // `store $a, v1` follows `v1 = load $a` in the same block: the
        // load's arming already covers the cell, so under a distance map
        // the store sheds its arming bit. `store $b, v2` has no value-flow
        // distance at all, so it leaves the pool entirely; the loads stay
        // (branch predicates may need their values). Without a distance
        // map the pool is untouched.
        let (p, g) = setup(
            r#"
global a = 0
global b = 0
fn main() {
entry:
  v1 = load $a
  v2 = load $b
  store $a, v1
  store $b, v2
  assert v1, "x"
  ret
}
"#,
        );
        let main = &p.functions[0];
        let all: Vec<InstrId> = main.blocks[0].instrs.iter().map(|i| i.id).collect();
        let load_a = main.blocks[0].instrs[0].id;
        let load_b = main.blocks[0].instrs[1].id;
        let store_a = main.blocks[0].instrs[2].id;

        let plain = Planner::new(&p, &g);
        assert_eq!(plain.watch_candidates(&all).len(), 4, "no map: full pool");

        let mut dist = HashMap::new();
        dist.insert(store_a, 1u64);
        let ranked = Planner::new(&p, &g).with_distance_rank(dist);
        let pool = ranked.watch_candidates(&all);
        assert_eq!(
            pool,
            vec![load_a, load_b],
            "store_a deduped behind load_a, store_b dropped as flowless"
        );
    }

    #[test]
    fn dead_store_filter_frees_watch_slots() {
        // Six watchable sites need two cooperative groups; filtering two
        // of them as dead stores fits the rest into one group.
        let (p, g) = setup(
            r#"
global a = 0
global b = 0
global c = 0
fn main() {
entry:
  v1 = load $a
  v2 = load $b
  v3 = load $c
  store $a, v1
  store $b, v2
  store $c, v3
  assert v1, "x"
  ret
}
"#,
        );
        let main = &p.functions[0];
        let all: Vec<InstrId> = main.blocks[0].instrs.iter().map(|i| i.id).collect();
        let dead: BTreeSet<InstrId> = [main.blocks[0].instrs[4].id, main.blocks[0].instrs[5].id]
            .into_iter()
            .collect();
        let unfiltered = Planner::new(&p, &g);
        assert_eq!(unfiltered.watch_groups(&all), 2);
        let filtered = Planner::new(&p, &g).with_dead_store_filter(dead.clone());
        assert_eq!(filtered.watch_groups(&all), 1);
        let patch = filtered.plan(&all, 0);
        for d in &dead {
            assert!(
                !patch.watch_accesses.contains(d),
                "dead store never occupies a debug register"
            );
        }
    }

    #[test]
    fn full_trace_plan_has_no_stop_points() {
        let (p, g) = setup(DIAMOND);
        let planner = Planner::new(&p, &g);
        let patch = planner.plan_full_trace();
        assert!(patch.pt_on_at_start);
        assert!(patch.pt_off_after.is_empty());
        assert_eq!(patch.tracked.len(), p.stmt_count());
    }
}
