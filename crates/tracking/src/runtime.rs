//! The client-side runtime tracker: executes an instrumentation patch
//! during a production run.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use gist_ir::{InstrId, Program};
use gist_pt::decoder::DecodedTrace;
use gist_pt::{BufferPool, DecodeCache, DecodeCacheShard, PtConfig, PtDriver, PtTracer};
use gist_vm::{Event, Observer};
use gist_watch::{WatchCondition, WatchError, WatchHit, WatchUnit};

use crate::patch::InstrumentationPatch;

/// Everything one tracked production run sends back to Gist's server:
/// decoded control flow, ordered data-flow hits, discovered statements,
/// and cost counters.
#[derive(Clone, Debug, Default)]
pub struct RunTrace {
    /// Decoded per-core control flow.
    pub decoded: DecodedTrace,
    /// Watchpoint hits in global (total) order.
    pub hits: Vec<WatchHit>,
    /// Journal seq of the `watch.hit` event for each entry of `hits`
    /// (parallel vector; 0 when journaling is off). Lets the server build
    /// sketch-step provenance chains without re-deriving attribution.
    pub hit_events: Vec<u64>,
    /// Journal seq of this run's `pt.decoded` event (0 when off).
    pub decode_event: u64,
    /// Tracked statements that actually executed (slice ∩ executed —
    /// refinement's "remove statements that don't get executed", §3).
    pub executed_tracked: BTreeSet<InstrId>,
    /// Statements discovered by watchpoints that were *not* tracked —
    /// the alias-analysis gap the runtime closes (§3.2.3).
    pub discovered: BTreeSet<InstrId>,
    /// Branch outcomes at tracked conditional branches: `(tid, stmt, taken)`.
    pub branches: Vec<(u32, InstrId, bool)>,
    /// Encoded PT bytes produced.
    pub pt_bytes: usize,
    /// PT driver on/off transitions (ioctl count).
    pub pt_transitions: u64,
    /// Statements retired while PT was on.
    pub traced_retired: u64,
    /// Watchpoint traps delivered.
    pub watch_traps: u64,
    /// ptrace-style debug-register operations.
    pub ptrace_ops: u64,
    /// Accesses that should have been watched but found no free slot
    /// (would be covered by another cooperative run).
    pub missed_arms: u64,
}

/// Per-statement patch bit: arm a watchpoint at this access.
const P_WATCH: u8 = 1;
/// Per-statement patch bit: stop tracing after this statement retires.
const P_OFF_AFTER: u8 = 2;
/// Per-statement patch bit: start tracing after this statement retires.
const P_ON_AFTER: u8 = 4;
/// Per-statement patch bit: resume tracing when a `ret` returns here.
const P_ON_RETURN_TO: u8 = 8;

/// Dense patch lookups, built once per run so the per-event hot path
/// never probes a `BTreeSet` (`on_event` runs for every retired statement
/// and memory access of the production run).
struct PatchIndex {
    /// OR of `P_*` bits per statement, indexed by `InstrId`.
    stmt: Vec<u8>,
    /// Functions with a start point at their entry, indexed by `FuncId`.
    on_enter: Vec<bool>,
}

impl PatchIndex {
    fn new(program: &Program, patch: &InstrumentationPatch) -> Self {
        let mut stmt = vec![0u8; program.stmt_count()];
        let mut mark = |set: &BTreeSet<InstrId>, bit: u8| {
            for s in set {
                stmt[s.index()] |= bit;
            }
        };
        mark(&patch.watch_accesses, P_WATCH);
        mark(&patch.pt_off_after, P_OFF_AFTER);
        mark(&patch.pt_on_after, P_ON_AFTER);
        mark(&patch.pt_on_return_to, P_ON_RETURN_TO);
        let mut on_enter = vec![false; program.functions.len()];
        for f in &patch.pt_on_enter {
            on_enter[f.index()] = true;
        }
        PatchIndex { stmt, on_enter }
    }
}

/// The runtime tracker. Attach to a VM run as an [`Observer`]; call
/// [`TrackerRuntime::finish`] afterwards to decode and collect the trace.
pub struct TrackerRuntime<'p> {
    program: &'p Program,
    patch: InstrumentationPatch,
    index: PatchIndex,
    driver: PtDriver,
    tracer: PtTracer<'p>,
    watch: WatchUnit,
    /// addr -> arming statement, for discovery bookkeeping.
    armed_for: HashMap<u64, InstrId>,
    /// Cores with a resume point pending until the `ret` retires, indexed
    /// by core. The VM emits `Return { to }` while executing the `ret`,
    /// before its `Retired` event; applying the resume immediately would
    /// let a `pt_off_after` on the `ret` itself clobber it.
    pending_resume: Vec<bool>,
    missed_arms: u64,
    /// Cross-run decode memoization (fleet-shared); `None` = cold decode.
    decode_cache: Option<Arc<DecodeCache>>,
    /// Worker-owned decode shard; takes precedence over `decode_cache` and
    /// decodes with zero lock acquisitions.
    decode_shard: Option<&'p mut DecodeCacheShard>,
    /// Trace-storage recycling (fleet-shared); `None` = fresh allocations.
    buffer_pool: Option<Arc<BufferPool>>,
}

impl<'p> TrackerRuntime<'p> {
    /// Creates a tracker for one run under the given patch.
    pub fn new(program: &'p Program, patch: InstrumentationPatch, num_cores: u32) -> Self {
        let driver = PtDriver::new();
        if patch.pt_on_at_start {
            // A tracked statement sits in the program entry's first block
            // (or this is a full-trace plan): tracing starts enabled.
            driver.set_default(true);
        }
        let tracer = PtTracer::new(
            program,
            driver.clone(),
            PtConfig {
                num_cores,
                ..PtConfig::default()
            },
        );
        let index = PatchIndex::new(program, &patch);
        TrackerRuntime {
            program,
            patch,
            index,
            driver,
            tracer,
            watch: WatchUnit::new(),
            armed_for: HashMap::new(),
            pending_resume: vec![false; num_cores.max(1) as usize],
            missed_arms: 0,
            decode_cache: None,
            decode_shard: None,
            buffer_pool: None,
        }
    }

    /// Shares a cross-run [`DecodeCache`]: [`TrackerRuntime::finish`] then
    /// decodes through it. Output is guaranteed identical to a cold decode.
    pub fn with_decode_cache(mut self, cache: Arc<DecodeCache>) -> Self {
        self.decode_cache = Some(cache);
        self
    }

    /// Lends a worker-owned [`DecodeCacheShard`] for this run: decode then
    /// probes and fills the shard with zero lock acquisitions. Takes
    /// precedence over [`TrackerRuntime::with_decode_cache`]. Output is
    /// guaranteed identical to a cold decode.
    pub fn with_decode_shard(mut self, shard: &'p mut DecodeCacheShard) -> Self {
        self.decode_shard = Some(shard);
        self
    }

    /// Shares a [`BufferPool`]: trace buffers adopt recycled storage now,
    /// and [`TrackerRuntime::finish`] returns the allocations after decode.
    pub fn with_buffer_pool(mut self, pool: Arc<BufferPool>) -> Self {
        self.tracer.recycle_buffers(&pool);
        self.buffer_pool = Some(pool);
        self
    }

    /// Access to the driver (tests and ablations).
    pub fn driver(&self) -> &PtDriver {
        &self.driver
    }

    /// Decodes the PT trace and packages the run's results.
    pub fn finish(mut self) -> RunTrace {
        self.tracer.finish();
        let pt_bytes = self.tracer.total_bytes();
        let traced_retired = self.tracer.traced_retired();
        let traces = self.tracer.take_traces();
        let decoded = match (&mut self.decode_shard, &self.decode_cache) {
            (Some(shard), _) => gist_pt::decoder::decode_with_shard(self.program, &traces, shard),
            (None, Some(cache)) => {
                gist_pt::decoder::decode_with_cache(self.program, &traces, cache)
            }
            (None, None) => gist_pt::decoder::decode(self.program, &traces),
        }
        .unwrap_or_else(|e| {
            // An undecodable trace yields an empty one; refinement then
            // simply learns nothing from this run. Surface in tests via
            // debug assertions.
            debug_assert!(false, "PT decode failed: {e}");
            DecodedTrace::default()
        });
        if let Some(pool) = &self.buffer_pool {
            pool.put_all(traces);
        }
        let decode_event = gist_obs::event!(TraceDecoded {
            stmts: decoded.per_core.iter().map(Vec::len).sum::<usize>() as u64,
            branches: decoded.branches.len() as u64,
            bytes: pt_bytes as u64,
        });
        let executed = decoded.executed();
        let executed_tracked: BTreeSet<InstrId> = self
            .patch
            .tracked
            .iter()
            .copied()
            .filter(|s| executed.contains(s))
            .collect();
        let hits = self.watch.take_hits();
        let discovered: BTreeSet<InstrId> = hits
            .iter()
            .map(|h| h.iid)
            .filter(|s| !self.patch.tracked.contains(s))
            .collect();
        // One journal event per hit, in the same (total) order as `hits`;
        // `hit_events[i]` is the provenance anchor for `hits[i]`.
        let hit_events: Vec<u64> = hits
            .iter()
            .map(|h| {
                gist_obs::event!(WatchHit {
                    iid: h.iid.0,
                    addr: h.addr,
                    value: h.value,
                    hit_seq: h.seq,
                    hit_tid: h.tid,
                    discovered: !self.patch.tracked.contains(&h.iid),
                })
            })
            .collect();
        let branches: Vec<(u32, InstrId, bool)> = decoded
            .branches
            .iter()
            .filter(|(_, s, _)| self.patch.tracked.contains(s))
            .map(|&(t, s, k)| (t, s, k))
            .collect();
        gist_obs::counter!("tracking.runs_traced").inc();
        gist_obs::counter!("tracking.discovered_stmts").add(discovered.len() as u64);
        gist_obs::counter!("tracking.missed_arms").add(self.missed_arms);
        gist_obs::histogram!("tracking.hits_per_run").record(hits.len() as u64);
        RunTrace {
            decoded,
            hits,
            hit_events,
            decode_event,
            executed_tracked,
            discovered,
            branches,
            pt_bytes,
            pt_transitions: self.driver.transitions(),
            traced_retired,
            watch_traps: self.watch.traps(),
            ptrace_ops: self.watch.ptrace_ops(),
            missed_arms: self.missed_arms,
        }
    }
}

impl Observer for TrackerRuntime<'_> {
    fn on_event(&mut self, ev: &Event) {
        // 1. Arm a watchpoint at planned access sites at the PreAccess
        //    (address computation) step, which executes *before* the
        //    access — "the inserted hardware watchpoint must be located
        //    before the access and after the immediate dominator of that
        //    access" (§3.2.3). Other threads may interleave between the
        //    arm point and the access, which is exactly how Gist captures
        //    the remote racing access. Stack addresses are never watched.
        if let Event::PreAccess {
            iid,
            addr,
            is_stack,
            ..
        } = ev
        {
            if self.index.stmt[iid.index()] & P_WATCH != 0 && !is_stack {
                match self.watch.set(*addr, 1, WatchCondition::ReadWrite) {
                    Ok(_) => {
                        self.armed_for.insert(*addr, *iid);
                    }
                    Err(WatchError::AlreadyWatched) => {}
                    Err(WatchError::NoFreeSlot) => {
                        // Another cooperative run covers this address.
                        self.missed_arms += 1;
                    }
                    Err(_) => {}
                }
            }
        }
        // 2. Feed the hardware.
        self.tracer.handle(ev);
        self.watch.on_event(ev);
        // 3. Control-flow toggles fire after the statement completes, on
        //    the executing thread's core (Intel PT is per-core).
        if let Event::Retired { iid, core, .. } = ev {
            let bits = self.index.stmt[iid.index()];
            if bits & P_OFF_AFTER != 0 {
                self.driver.trace_off(*core);
            }
            if bits & P_ON_AFTER != 0 {
                self.driver.trace_on(*core);
            }
            // A resume point deferred from the `Return` event takes effect
            // once the `ret` itself has retired (and any stop on it has
            // been applied) — control is now at the return target.
            if std::mem::take(&mut self.pending_resume[*core as usize]) {
                self.driver.trace_on(*core);
            }
        }
        // 4. Function-entry start points (tracked statements in callee /
        //    thread-routine entry blocks) fire in the entering thread.
        if let Event::Enter { func, core, .. } = ev {
            if self.index.on_enter[func.index()] {
                self.driver.trace_on(*core);
            }
        }
        // 5. Resume points: returning to the statement after a callsite
        //    whose callee stopped tracing re-enables it. The VM emits
        //    `Return` before the `ret`'s `Retired`, so defer the actual
        //    toggle to step 3's Retired handler; enabling here would be
        //    undone by a `pt_off_after` stop on the `ret` itself.
        if let Event::Return {
            to: Some(to), core, ..
        } = ev
        {
            if self.index.stmt[to.index()] & P_ON_RETURN_TO != 0 {
                self.pending_resume[*core as usize] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::icfg::Icfg;
    use gist_ir::parser::parse_program;
    use gist_slicing::StaticSlicer;
    use gist_vm::{RunOutcome, SchedulerKind, Vm, VmConfig};

    use crate::plan::Planner;

    const PBZIP_MINI: &str = r#"
fn cons(q) {
entry:
  m = load q        @ pbzip2.c:40
  lock m            @ pbzip2.c:41
  unlock m          @ pbzip2.c:43
  ret               @ pbzip2.c:44
}
fn main() {
entry:
  q = alloc 1       @ pbzip2.c:10
  mu = alloc 1      @ pbzip2.c:11
  store q, mu       @ pbzip2.c:11
  t = spawn cons(q) @ pbzip2.c:13
  free mu           @ pbzip2.c:20
  store q, 0        @ pbzip2.c:21
  join t            @ pbzip2.c:22
  ret               @ pbzip2.c:23
}
"#;

    /// Runs PBZIP_MINI with a patch planned from the *alias-free* static
    /// slice of the `lock m` criterion (the paper's configuration — no
    /// static alias analysis — so the racing store stays outside the slice
    /// and must be discovered by watchpoints); returns (outcome was
    /// failure, trace).
    fn run_tracked(seed: u64, sigma: usize) -> (bool, RunTrace) {
        let p = parse_program("pbzip2-mini", PBZIP_MINI).unwrap();
        let cons = p.function_by_name("cons").unwrap();
        let crit = cons.blocks[0].instrs[1].id; // lock m
        let slicer = StaticSlicer::new(&p);
        let slice = slicer.compute_without_alias(crit);
        let planner = Planner::new(&p, slicer.ticfg());
        let patch = planner.plan(slice.prefix(sigma), 0);
        let mut tracker = TrackerRuntime::new(&p, patch, 4);
        let cfg = VmConfig {
            scheduler: SchedulerKind::Random { seed, preempt: 0.6 },
            ..VmConfig::default()
        };
        let mut vm = Vm::new(&p, cfg);
        let r = vm.run(&mut [&mut tracker]);
        (matches!(r.outcome, RunOutcome::Failed(_)), tracker.finish())
    }

    #[test]
    fn executed_tracked_is_subset_of_tracked() {
        let (_, trace) = run_tracked(1, 4);
        // By construction every executed_tracked member is tracked.
        assert!(trace
            .executed_tracked
            .iter()
            .all(|s| trace.decoded.executed().contains(s)));
    }

    #[test]
    fn watchpoints_discover_alias_missed_store() {
        // Some schedule must (a) arm the watchpoint at `m = load q` and
        // (b) see main's `store q, 0` hit it — the statement static
        // slicing missed (no alias analysis).
        let p = parse_program("pbzip2-mini", PBZIP_MINI).unwrap();
        let main = p.function_by_name("main").unwrap();
        let store_null = main.blocks[0].instrs[5].id;
        let mut found = false;
        for seed in 0..60 {
            let (_, trace) = run_tracked(seed, 8);
            if trace.discovered.contains(&store_null) {
                found = true;
                // The hit log totally orders the racing accesses.
                let seqs: Vec<u64> = trace.hits.iter().map(|h| h.seq).collect();
                assert!(seqs.windows(2).all(|w| w[0] < w[1]));
                break;
            }
        }
        assert!(found, "no schedule discovered the aliasing store");
    }

    #[test]
    fn tracing_produces_transitions_and_bytes() {
        let (_, trace) = run_tracked(3, 4);
        assert!(trace.pt_transitions > 0, "driver toggled");
        assert!(trace.pt_bytes > 0, "some trace emitted");
        assert!(trace.traced_retired > 0);
    }

    #[test]
    fn branches_filtered_to_tracked() {
        let text = r#"
global g = 0
fn main() {
entry:
  n = const 3
  br head
head:
  v = load $g
  c = cmp lt v, 3
  condbr c, body, exit
body:
  v2 = add v, 1
  store $g, v2
  br head
exit:
  w = load $g
  assert w, "boom"
  ret
}
"#;
        let p = parse_program("t", text).unwrap();
        let main = &p.functions[0];
        let exit_b = main.blocks.iter().find(|b| b.label == "exit").unwrap();
        let crit = exit_b.instrs[1].id;
        let slicer = StaticSlicer::new(&p);
        let slice = slicer.compute(crit);
        let planner = Planner::new(&p, slicer.ticfg());
        // Track the whole slice: includes the loop condbr via control dep.
        let patch = planner.plan(&slice.ordered, 0);
        let head = main.blocks.iter().find(|b| b.label == "head").unwrap();
        let condbr = head.term.id();
        assert!(patch.tracked.contains(&condbr), "condbr in slice");
        let mut tracker = TrackerRuntime::new(&p, patch, 4);
        let mut vm = Vm::new(&p, VmConfig::default());
        vm.run(&mut [&mut tracker]);
        let trace = tracker.finish();
        let outcomes: Vec<bool> = trace
            .branches
            .iter()
            .filter(|(_, s, _)| *s == condbr)
            .map(|&(_, _, t)| t)
            .collect();
        assert_eq!(outcomes, vec![true, true, true, false]);
    }

    #[test]
    fn full_trace_patch_traces_whole_run() {
        let p = parse_program("pbzip2-mini", PBZIP_MINI).unwrap();
        let ticfg = Icfg::build_ticfg(&p);
        let planner = Planner::new(&p, &ticfg);
        let patch = planner.plan_full_trace();
        let mut tracker = TrackerRuntime::new(&p, patch, 4);
        let mut vm = Vm::new(&p, VmConfig::default());
        let r = vm.run(&mut [&mut tracker]);
        let trace = tracker.finish();
        // Every retired statement decoded.
        assert_eq!(trace.traced_retired, r.steps);
        assert_eq!(
            trace.decoded.per_core.iter().map(Vec::len).sum::<usize>() as u64,
            r.steps
        );
    }

    #[test]
    fn stack_accesses_never_armed() {
        let text = r#"
fn main() {
entry:
  s = stackalloc 2
  store s, 7
  v = load s
  assert v, "x"
  ret
}
"#;
        let p = parse_program("t", text).unwrap();
        let main = &p.functions[0];
        let all: Vec<InstrId> = main.blocks[0].instrs.iter().map(|i| i.id).collect();
        let ticfg = Icfg::build_ticfg(&p);
        let planner = Planner::new(&p, &ticfg);
        let mut patch = planner.plan(&all, 0);
        // Force the store into the watch plan to exercise the runtime
        // stack guard as well.
        patch.watch_accesses.insert(main.blocks[0].instrs[1].id);
        let mut tracker = TrackerRuntime::new(&p, patch, 4);
        let mut vm = Vm::new(&p, VmConfig::default());
        vm.run(&mut [&mut tracker]);
        let trace = tracker.finish();
        assert_eq!(trace.watch_traps, 0, "stack addresses are never watched");
    }
}
