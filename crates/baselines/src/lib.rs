//! Baselines and overhead models for the paper's comparisons.
//!
//! * [`rr`] — a working **record/replay** system standing in for Mozilla
//!   rr (Fig. 13): it records every scheduling decision and architectural
//!   event of a run, and can *replay* the run deterministically from the
//!   log, verifying the event streams match. Its log volume versus Intel
//!   PT's packet bytes is the measured basis of the Fig. 13 comparison.
//! * [`swtrace`] — a **software control-flow tracer** standing in for the
//!   paper's PIN-based Intel PT software simulator (§4: 10,518 lines of
//!   C++; §6: "runtime performance overheads that range from 3× to
//!   5,000×"): it produces the same trace as the PT hardware but charges
//!   per-event software instrumentation costs.
//! * [`cbi`] — a **sampling** bug-isolation baseline in the CBI/CCI
//!   tradition (§7): predictors are observed with probability 1/N, which
//!   multiplies the failure recurrences needed before the top predictor
//!   stabilizes — the "root cause diagnosis latency" argument for Gist's
//!   always-on tracking.
//! * [`cost`] — the documented **overhead model** translating event
//!   counters into slowdown percentages. Absolute percentages cannot
//!   transfer from a simulator, so the constants are calibrated (see
//!   `cost::CostModel`) and the *shape* — what grows with tracked slice
//!   size, who beats whom by what magnitude — is what the benches assert.

pub mod cbi;
pub mod cost;
pub mod rr;
pub mod swtrace;

pub use cbi::SamplingIsolator;
pub use cost::CostModel;
pub use rr::{RecordedRun, Recorder};
pub use swtrace::SoftwareTracer;
