//! A record/replay system (the Mozilla rr stand-in of Fig. 13).
//!
//! Recording captures (a) every scheduling decision — the source of
//! nondeterminism in the VM — and (b) the full architectural event stream.
//! Replay re-executes the program under the recorded schedule and verifies
//! the event streams are identical, which is the correctness property a
//! record/replay debugger provides ("record executions and allow
//! developers to replay the failing ones", §1).
//!
//! The cost asymmetry against Intel PT is structural: rr must persist
//! *everything* (schedule + data values) while PT writes a fraction of a
//! bit per instruction of control flow — that asymmetry, not absolute
//! numbers, is what Fig. 13 shows.

use gist_ir::Program;
use gist_vm::event::EventLog;
use gist_vm::{Event, RunResult, Scheduler, Vm, VmConfig};

/// A scheduler wrapper that records every pick.
struct RecordingScheduler<S> {
    inner: S,
    picks: Vec<u32>,
}

impl<S: Scheduler> Scheduler for RecordingScheduler<S> {
    fn pick(&mut self, runnable: &[u32], step: u64) -> u32 {
        let p = self.inner.pick(runnable, step);
        self.picks.push(p);
        p
    }
}

/// A replay scheduler: consumes recorded picks verbatim.
struct ReplayScheduler {
    picks: Vec<u32>,
    pos: usize,
    /// True if a pick ever diverged from the recording.
    diverged: bool,
}

impl Scheduler for ReplayScheduler {
    fn pick(&mut self, runnable: &[u32], _step: u64) -> u32 {
        if let Some(&want) = self.picks.get(self.pos) {
            self.pos += 1;
            if runnable.contains(&want) {
                return want;
            }
            self.diverged = true;
        } else {
            self.diverged = true;
        }
        runnable[0]
    }
}

/// One recorded execution.
pub struct RecordedRun {
    /// The recorded scheduling decisions.
    pub schedule: Vec<u32>,
    /// The recorded event stream.
    pub events: Vec<Event>,
    /// The run's result.
    pub result: RunResult,
}

impl RecordedRun {
    /// Size of the recording in bytes (serialized events + schedule),
    /// the quantity compared against PT trace bytes in Fig. 13.
    ///
    /// Events are costed at their text-serialized size (one line per
    /// event), which is how rr-style tools persist annotated event logs.
    pub fn log_bytes(&self) -> usize {
        let ev: usize = self.events.iter().map(|e| format!("{e:?}").len() + 1).sum();
        ev + self.schedule.len() * std::mem::size_of::<u32>()
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> u64 {
        self.events.len() as u64
    }
}

/// The recorder.
pub struct Recorder;

impl Recorder {
    /// Records one run of `program` under `config`.
    pub fn record(program: &Program, config: VmConfig) -> RecordedRun {
        let mut sched = RecordingScheduler {
            inner: BoxedScheduler(config.scheduler.build()),
            picks: Vec::new(),
        };
        let mut log = EventLog::default();
        let mut vm = Vm::new(program, config);
        let result = vm.run_with(&mut sched, &mut [&mut log]);
        RecordedRun {
            schedule: sched.picks,
            events: log.events,
            result,
        }
    }

    /// Replays a recording; returns `true` if the replayed event stream is
    /// identical to the recorded one (deterministic replay achieved).
    pub fn replay(program: &Program, config: VmConfig, recording: &RecordedRun) -> bool {
        let mut sched = ReplayScheduler {
            picks: recording.schedule.clone(),
            pos: 0,
            diverged: false,
        };
        let mut log = EventLog::default();
        let mut vm = Vm::new(program, config);
        let result = vm.run_with(&mut sched, &mut [&mut log]);
        !sched.diverged
            && log.events == recording.events
            && result.outcome == recording.result.outcome
    }
}

/// Adapter: `Box<dyn Scheduler>` as a `Scheduler`.
struct BoxedScheduler(Box<dyn Scheduler>);

impl Scheduler for BoxedScheduler {
    fn pick(&mut self, runnable: &[u32], step: u64) -> u32 {
        self.0.pick(runnable, step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_bugbase::bug_by_name;
    use gist_vm::RunOutcome;

    #[test]
    fn record_then_replay_is_identical() {
        let bug = bug_by_name("pbzip2-1").unwrap();
        for seed in 0..12 {
            let cfg = bug.vm_config(seed);
            let rec = Recorder::record(&bug.program, cfg.clone());
            assert!(
                Recorder::replay(&bug.program, cfg, &rec),
                "seed {seed} replay diverged"
            );
        }
    }

    #[test]
    fn replay_reproduces_failures() {
        let bug = bug_by_name("memcached-127").unwrap();
        let (seed, _) = bug.find_failure(300).expect("manifests");
        let cfg = bug.vm_config(seed);
        let rec = Recorder::record(&bug.program, cfg.clone());
        assert!(matches!(rec.result.outcome, RunOutcome::Failed(_)));
        assert!(Recorder::replay(&bug.program, cfg, &rec));
    }

    #[test]
    fn tampered_schedule_fails_verification() {
        let bug = bug_by_name("pbzip2-1").unwrap();
        let cfg = bug.vm_config(1);
        let mut rec = Recorder::record(&bug.program, cfg.clone());
        if rec.schedule.len() > 4 {
            rec.schedule.truncate(2);
        }
        // With the schedule cut short the replay falls back to default
        // picks; the event streams almost surely diverge — and the
        // verifier must say so rather than claim success.
        let ok = Recorder::replay(&bug.program, cfg, &rec);
        assert!(!ok, "verification must detect a broken recording");
    }

    #[test]
    fn log_volume_dwarfs_pt_traces() {
        use gist_pt::{PtConfig, PtDriver, PtTracer};
        let bug = bug_by_name("curl-965").unwrap();
        let cfg = bug.vm_config(1);
        let rec = Recorder::record(&bug.program, cfg.clone());
        let mut tracer = PtTracer::new(&bug.program, PtDriver::always_on(), PtConfig::default());
        let mut vm = Vm::new(&bug.program, cfg);
        vm.run(&mut [&mut tracer]);
        tracer.finish();
        let pt_bytes = tracer.total_bytes();
        assert!(
            rec.log_bytes() > pt_bytes * 10,
            "rr log ({}) should dwarf PT trace ({})",
            rec.log_bytes(),
            pt_bytes
        );
    }
}
