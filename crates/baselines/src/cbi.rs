//! A CBI-style sampling bug isolator (§7 related work).
//!
//! Cooperative Bug Isolation keeps client overhead low by *sampling*
//! predicates (typically ~1/100); the price is diagnosis latency: a
//! predictor must be lucky enough to be sampled in the runs where it
//! matters. Gist's argument (§2, §7): always-on but *focused* tracking
//! avoids that latency. [`SamplingIsolator`] quantifies it — it applies
//! Bernoulli sampling to each run's observations and reports how many
//! failing runs are needed before the true top predictor surfaces.

use gist_predictors::{rank, Predictor, RunObservations};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sampling-based isolator with rate `1/period`.
pub struct SamplingIsolator {
    period: u32,
    rng: StdRng,
}

impl SamplingIsolator {
    /// Creates an isolator sampling each observation with probability
    /// `1/period` (CBI commonly uses 1/100).
    pub fn new(period: u32, seed: u64) -> Self {
        SamplingIsolator {
            period: period.max(1),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Applies sampling to one run's observations.
    pub fn sample(&mut self, obs: &RunObservations) -> RunObservations {
        let p = 1.0 / f64::from(self.period);
        RunObservations {
            failing: obs.failing,
            accesses: obs
                .accesses
                .iter()
                .filter(|_| self.rng.gen::<f64>() < p)
                .copied()
                .collect(),
            branches: obs
                .branches
                .iter()
                .filter(|_| self.rng.gen::<f64>() < p)
                .copied()
                .collect(),
            values: obs
                .values
                .iter()
                .filter(|_| self.rng.gen::<f64>() < p)
                .copied()
                .collect(),
        }
    }

    /// Feeds runs one at a time (sampled) and returns how many *failing*
    /// runs were consumed before the isolator's top predictor equals
    /// `truth`, or `None` if it never stabilizes within the given runs.
    pub fn failing_runs_until_found(
        &mut self,
        runs: &[RunObservations],
        truth: &Predictor,
        beta: f64,
    ) -> Option<usize> {
        let mut seen: Vec<RunObservations> = Vec::new();
        let mut failing = 0usize;
        for r in runs {
            let sampled = self.sample(r);
            if sampled.failing {
                failing += 1;
            }
            seen.push(sampled);
            let stats = rank(&seen, beta);
            if let Some(top) = stats.first() {
                if &top.predictor == truth && top.f_measure(beta) > 0.0 {
                    return Some(failing);
                }
            }
        }
        None
    }
}

/// The always-on (Gist-style) latency on the same runs, for comparison.
pub fn always_on_failing_runs_until_found(
    runs: &[RunObservations],
    truth: &Predictor,
    beta: f64,
) -> Option<usize> {
    let mut seen: Vec<RunObservations> = Vec::new();
    let mut failing = 0usize;
    for r in runs {
        if r.failing {
            failing += 1;
        }
        seen.push(r.clone());
        let stats = rank(&seen, beta);
        if let Some(top) = stats.first() {
            if &top.predictor == truth && top.f_measure(beta) > 0.0 {
                return Some(failing);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::InstrId;

    /// Synthetic runs: value==0 at stmt 1 perfectly predicts failure.
    fn runs(n: usize) -> Vec<RunObservations> {
        (0..n)
            .map(|i| {
                let failing = i % 2 == 0;
                RunObservations {
                    failing,
                    values: vec![(InstrId(1), if failing { 0 } else { 7 })],
                    ..Default::default()
                }
            })
            .collect()
    }

    #[test]
    fn always_on_finds_the_predictor_immediately() {
        let truth = Predictor::Value {
            stmt: InstrId(1),
            value: 0,
        };
        let n = always_on_failing_runs_until_found(&runs(50), &truth, 0.5);
        assert_eq!(n, Some(1), "first failing run suffices when always on");
    }

    #[test]
    fn sampling_needs_more_recurrences_on_average() {
        let truth = Predictor::Value {
            stmt: InstrId(1),
            value: 0,
        };
        let data = runs(400);
        let always = always_on_failing_runs_until_found(&data, &truth, 0.5).unwrap();
        let mut total = 0usize;
        let trials = 10;
        for seed in 0..trials {
            let mut iso = SamplingIsolator::new(20, seed);
            // Count "not found in 400 runs" as the full failing-run count.
            total += iso
                .failing_runs_until_found(&data, &truth, 0.5)
                .unwrap_or(200);
        }
        let avg = total as f64 / trials as f64;
        assert!(
            avg > always as f64 * 2.0,
            "sampling avg {avg} must lag always-on {always}"
        );
    }

    #[test]
    fn sampling_rate_one_equals_always_on() {
        let truth = Predictor::Value {
            stmt: InstrId(1),
            value: 0,
        };
        let mut iso = SamplingIsolator::new(1, 3);
        let a = iso.failing_runs_until_found(&runs(50), &truth, 0.5);
        let b = always_on_failing_runs_until_found(&runs(50), &truth, 0.5);
        assert_eq!(a, b);
    }
}
