//! The overhead cost model.
//!
//! # Substitution note (see DESIGN.md)
//!
//! The paper measures wall-clock slowdowns on real Broadwell hardware; a
//! simulator cannot reproduce absolute percentages, so this model charges
//! *work units* per observed event (one unit ≡ the cost of executing one
//! MiniC statement) and reports `100 × extra_work / baseline_work`.
//! The constants are calibrated so the headline regimes land in the
//! paper's ranges when driven by our measured event counters:
//!
//! * Gist with AsT at σ = 2: a few percent (paper: 3.74 % average),
//! * Intel PT full tracing: on the order of 10 % (paper: 11 % average),
//! * record/replay: around 10× (paper: Mozilla rr 984 % average),
//! * software control-flow tracing: 3×–5,000× (paper §6).
//!
//! The benches assert *shape* (monotonicity with tracked slice size, the
//! PT≪rr gap, the flat region where a bigger slice adds no new events),
//! never exact percentages.

use gist_core::server::CostSummary;

/// Work-unit prices for each event class.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Work units per PT trace byte written to the buffer (DRAM traffic).
    pub pt_byte: f64,
    /// Work units per PT driver transition (the ioctl round trip).
    pub pt_transition: f64,
    /// Work units per watchpoint trap (debug exception + handler).
    pub watch_trap: f64,
    /// Work units per ptrace debug-register operation.
    pub ptrace_op: f64,
    /// Work units per event persisted by the record/replay recorder.
    pub rr_event: f64,
    /// Work units of software instrumentation per retired statement
    /// (the PIN-style software tracer executes injected code around
    /// every statement).
    pub sw_per_stmt: f64,
    /// Extra software work per conditional branch (emitting packet bits
    /// in software).
    pub sw_per_branch: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            pt_byte: 0.4,
            pt_transition: 0.5,
            watch_trap: 2.0,
            ptrace_op: 2.0,
            rr_event: 4.0,
            sw_per_stmt: 3.0,
            sw_per_branch: 25.0,
        }
    }
}

impl CostModel {
    /// Gist's client overhead percentage for an aggregated diagnosis cost.
    pub fn gist_overhead_pct(&self, cost: &CostSummary) -> f64 {
        if cost.total_retired == 0 {
            return 0.0;
        }
        let extra = cost.pt_bytes as f64 * self.pt_byte
            + cost.pt_transitions as f64 * self.pt_transition
            + cost.watch_traps as f64 * self.watch_trap
            + cost.ptrace_ops as f64 * self.ptrace_op;
        100.0 * extra / cost.total_retired as f64
    }

    /// Full-tracing Intel PT overhead percentage for one run.
    pub fn pt_full_overhead_pct(&self, pt_bytes: u64, retired: u64) -> f64 {
        if retired == 0 {
            return 0.0;
        }
        100.0 * (pt_bytes as f64 * self.pt_byte) / retired as f64
    }

    /// Record/replay overhead percentage for one run.
    pub fn rr_overhead_pct(&self, events: u64, retired: u64) -> f64 {
        if retired == 0 {
            return 0.0;
        }
        100.0 * (events as f64 * self.rr_event) / retired as f64
    }

    /// Software control-flow tracing overhead percentage for one run.
    pub fn sw_trace_overhead_pct(&self, retired: u64, branches: u64) -> f64 {
        if retired == 0 {
            return 0.0;
        }
        100.0 * (retired as f64 * self.sw_per_stmt + branches as f64 * self.sw_per_branch)
            / retired as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(pt_bytes: u64, transitions: u64, traps: u64, ptrace: u64, retired: u64) -> CostSummary {
        CostSummary {
            pt_bytes,
            pt_transitions: transitions,
            traced_retired: 0,
            watch_traps: traps,
            ptrace_ops: ptrace,
            total_retired: retired,
            instrumentation_points: 0,
            patch_bytes: 0,
        }
    }

    #[test]
    fn zero_work_zero_overhead() {
        let m = CostModel::default();
        assert_eq!(m.gist_overhead_pct(&cost(0, 0, 0, 0, 1000)), 0.0);
        assert_eq!(m.gist_overhead_pct(&cost(100, 1, 1, 1, 0)), 0.0);
    }

    #[test]
    fn overhead_scales_linearly_with_events() {
        let m = CostModel::default();
        let a = m.gist_overhead_pct(&cost(100, 2, 2, 2, 10_000));
        let b = m.gist_overhead_pct(&cost(200, 4, 4, 4, 10_000));
        assert!((b - 2.0 * a).abs() < 1e-9);
    }

    #[test]
    fn rr_dwarfs_pt_for_identical_runs() {
        let m = CostModel::default();
        // A run of 10k statements: PT writes ~2.5 kB; rr records ~25k events.
        let pt = m.pt_full_overhead_pct(2_500, 10_000);
        let rr = m.rr_overhead_pct(25_000, 10_000);
        assert!(rr > 20.0 * pt, "rr {rr:.0}% vs pt {pt:.0}%");
    }

    #[test]
    fn software_tracing_is_multiples_not_percents() {
        let m = CostModel::default();
        // A branchy run: every 5th statement is a branch.
        let pct = m.sw_trace_overhead_pct(10_000, 2_000);
        assert!(pct > 300.0, "{pct}");
    }
}
