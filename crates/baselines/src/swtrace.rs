//! Software control-flow tracing — the stand-in for the paper's PIN-based
//! Intel PT software simulator (§4, §6).
//!
//! Produces the same control-flow information as the PT hardware, but by
//! instrumentation executed *inline*: every retired statement pays the
//! injected-code tax and every conditional branch additionally pays for
//! packet emission in software. The events captured are identical to
//! hardware PT (the paper: "failure sketching is completely independent
//! from Intel PT; it can be entirely implemented using software
//! instrumentation, although ... overheads range from 3× to 5,000×").

use gist_ir::InstrId;
use gist_vm::{Event, Observer};

/// A software tracer: counts the work its instrumentation would perform
/// and collects the same branch outcomes as the hardware tracer.
#[derive(Debug, Default)]
pub struct SoftwareTracer {
    /// Statements instrumented (one callout each).
    pub instrumented_stmts: u64,
    /// Branches whose outcome was recorded in software.
    pub recorded_branches: u64,
    /// Indirect transfers recorded.
    pub recorded_indirects: u64,
    /// The captured branch log (proof the information matches hardware PT).
    pub branch_log: Vec<(u32, InstrId, bool)>,
}

impl SoftwareTracer {
    /// Creates an idle tracer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for SoftwareTracer {
    fn on_event(&mut self, ev: &Event) {
        match ev {
            Event::Retired { .. } => self.instrumented_stmts += 1,
            Event::Branch {
                tid, iid, taken, ..
            } => {
                self.recorded_branches += 1;
                self.branch_log.push((*tid, *iid, *taken));
            }
            Event::IndirectTransfer { .. } | Event::Return { .. } => {
                self.recorded_indirects += 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use gist_bugbase::bug_by_name;
    use gist_vm::Vm;

    #[test]
    fn captures_same_branches_as_hardware_pt() {
        use gist_pt::{decoder, PtConfig, PtDriver, PtTracer};
        let bug = bug_by_name("curl-965").unwrap();
        let cfg = bug.vm_config(1);
        let mut sw = SoftwareTracer::new();
        let mut hw = PtTracer::new(&bug.program, PtDriver::always_on(), PtConfig::default());
        let mut vm = Vm::new(&bug.program, cfg);
        vm.run(&mut [&mut sw, &mut hw]);
        hw.finish();
        let decoded = decoder::decode(&bug.program, &hw.take_traces()).unwrap();
        // Hardware-decoded branch outcomes equal software-captured ones,
        // modulo ordering across cores (compare per thread).
        let mut tids: Vec<u32> = sw.branch_log.iter().map(|&(t, _, _)| t).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            let sw_seq: Vec<(InstrId, bool)> = sw
                .branch_log
                .iter()
                .filter(|&&(t, _, _)| t == tid)
                .map(|&(_, s, k)| (s, k))
                .collect();
            let hw_seq: Vec<(InstrId, bool)> = decoded
                .branches
                .iter()
                .filter(|&&(t, _, _)| t == tid)
                .map(|&(_, s, k)| (s, k))
                .collect();
            assert_eq!(sw_seq, hw_seq, "thread {tid}");
        }
    }

    #[test]
    fn software_overhead_is_orders_above_hardware() {
        let bug = bug_by_name("curl-965").unwrap();
        let cfg = bug.vm_config(1);
        let mut sw = SoftwareTracer::new();
        let mut vm = Vm::new(&bug.program, cfg);
        let r = vm.run(&mut [&mut sw]);
        let m = CostModel::default();
        let sw_pct = m.sw_trace_overhead_pct(sw.instrumented_stmts, sw.recorded_branches);
        // Hardware full tracing of the same run would cost well under 100%.
        assert!(sw_pct > 300.0, "{sw_pct}");
        assert_eq!(sw.instrumented_stmts, r.steps);
    }
}
