//! The kernel-driver control interface.
//!
//! The paper's trace collection "is implemented via a Linux kernel module
//! ... Gist-instrumented programs use an ioctl interface that our driver
//! provides to turn tracing on/off" (§4). Intel PT is configured through
//! **per-logical-core** MSRs (`IA32_RTIT_CTL`), so the driver keeps
//! per-core enable state: one thread toggling tracing at its
//! instrumentation points does not disturb tracing on other cores — which
//! matters because Gist's start/stop points execute concurrently in
//! different threads.
//!
//! [`PtDriver`] is a cheaply cloneable handle; it also counts control
//! transitions so overhead models can charge per-ioctl cost.

use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Default)]
struct DriverState {
    /// Enable state for cores without an explicit override.
    default_on: bool,
    /// Per-core overrides, indexed by core id (`None` = use the default).
    /// A dense vector, not a map: [`PtDriver::is_enabled`] runs once per
    /// VM event, and core ids are small integers.
    cores: Vec<Option<bool>>,
    /// Number of state-changing control operations ("ioctls issued").
    transitions: u64,
}

impl DriverState {
    fn core_state(&self, core: u32) -> bool {
        self.cores
            .get(core as usize)
            .copied()
            .flatten()
            .unwrap_or(self.default_on)
    }

    fn set_core(&mut self, core: u32, on: bool) {
        let idx = core as usize;
        if self.cores.len() <= idx {
            self.cores.resize(idx + 1, None);
        }
        self.cores[idx] = Some(on);
    }
}

/// A handle to the simulated PT kernel driver.
#[derive(Clone, Debug, Default)]
pub struct PtDriver {
    state: Rc<RefCell<DriverState>>,
}

impl PtDriver {
    /// Creates a driver with tracing disabled on every core.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a driver with tracing enabled on every core (full-trace
    /// mode, used for the Fig. 13 comparison).
    pub fn always_on() -> Self {
        let d = Self::new();
        d.set_default(true);
        d
    }

    /// Sets the default state for all cores (clears per-core overrides).
    pub fn set_default(&self, on: bool) {
        let mut s = self.state.borrow_mut();
        if s.default_on != on || s.cores.iter().any(Option::is_some) {
            s.transitions += 1;
        }
        s.default_on = on;
        s.cores.clear();
    }

    /// Enables tracing on one core (no-op if already on).
    pub fn trace_on(&self, core: u32) {
        let mut s = self.state.borrow_mut();
        if !s.core_state(core) {
            s.set_core(core, true);
            s.transitions += 1;
        }
    }

    /// Disables tracing on one core (no-op if already off).
    pub fn trace_off(&self, core: u32) {
        let mut s = self.state.borrow_mut();
        if s.core_state(core) {
            s.set_core(core, false);
            s.transitions += 1;
        }
    }

    /// True if tracing is enabled on the core.
    pub fn is_enabled(&self, core: u32) -> bool {
        self.state.borrow().core_state(core)
    }

    /// Number of state-changing control operations so far.
    pub fn transitions(&self) -> u64 {
        self.state.borrow().transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_disabled_and_toggles_per_core() {
        let d = PtDriver::new();
        assert!(!d.is_enabled(0));
        d.trace_on(0);
        assert!(d.is_enabled(0));
        assert!(!d.is_enabled(1), "other cores unaffected");
        d.trace_off(0);
        assert!(!d.is_enabled(0));
        assert_eq!(d.transitions(), 2);
    }

    #[test]
    fn redundant_toggles_do_not_count() {
        let d = PtDriver::new();
        d.trace_on(2);
        d.trace_on(2);
        d.trace_on(2);
        assert_eq!(d.transitions(), 1);
    }

    #[test]
    fn clones_share_state() {
        let d = PtDriver::new();
        let d2 = d.clone();
        d.trace_on(3);
        assert!(d2.is_enabled(3));
        d2.trace_off(3);
        assert!(!d.is_enabled(3));
    }

    #[test]
    fn always_on_enables_every_core() {
        let d = PtDriver::always_on();
        assert!(d.is_enabled(0));
        assert!(d.is_enabled(7));
    }

    #[test]
    fn default_with_overrides() {
        let d = PtDriver::new();
        d.set_default(true);
        d.trace_off(1);
        assert!(d.is_enabled(0));
        assert!(!d.is_enabled(1));
        d.set_default(false);
        assert!(!d.is_enabled(1), "set_default clears overrides");
    }
}
