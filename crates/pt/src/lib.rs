//! An Intel Processor Trace (Intel PT) simulator.
//!
//! The paper's prototype (Gist, §3.2.2/§4) uses Intel PT — "a set of new
//! hardware monitoring features for debugging" that "records the execution
//! flow of a program and outputs a highly-compressed trace (~0.5 bits per
//! retired assembly instruction)". Real PT was only available on Broadwell
//! parts in 2015; this crate reproduces the mechanism at packet level:
//!
//! * [`packet::Packet`] — PSB, PIP, TIP.PGE/TIP.PGD, short-TNT, TIP, FUP
//!   and OVF packets with a binary encoding, so trace *bytes* are real and
//!   the "~0.5 bits / retired instruction" figure is measurable,
//! * [`buffer::TraceBuffer`] — per-core fixed-capacity buffers (2 MB in
//!   the paper's kernel driver) with stop-on-full overflow semantics,
//! * [`tracer::PtTracer`] — the hardware side: consumes VM events and
//!   emits packets; honors RET compression via per-thread call depth, and
//!   emits PIP on context switches so traces stay decodable per core,
//! * [`driver::PtDriver`] — the ioctl-like control interface Gist's
//!   instrumentation calls to start/stop tracing (§4),
//! * [`decoder`] — reconstructs the executed statement sequence per core
//!   from packets plus the program's static CFG, exactly the way a PT
//!   decoder walks the binary.
//!
//! PT traces are control flow only, and only *partially ordered* across
//! cores (§6) — both properties are preserved here, which is why Gist needs
//! the watchpoint unit (gist-watch) for data values and cross-core order.

pub mod buffer;
pub mod decoder;
pub mod driver;
pub mod packet;
pub mod pool;
pub mod tracer;

pub use buffer::TraceBuffer;
pub use decoder::{
    decode, decode_with_cache, decode_with_shard, DecodeCache, DecodeCacheShard, DecodeError,
    DecodedTrace,
};
pub use driver::PtDriver;
pub use packet::Packet;
pub use pool::BufferPool;
pub use tracer::{PtConfig, PtTracer};
