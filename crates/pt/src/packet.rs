//! PT packet types and their binary encoding.
//!
//! The encoding is a simplified but real byte format: every packet
//! serializes to bytes and parses back, so buffer occupancy and the
//! bits-per-instruction statistic are grounded in actual encoded sizes.
//! Sizes mirror real Intel PT packets: PSB is 16 bytes, a short TNT is one
//! byte carrying up to 6 branch bits, TIP-class packets carry a compressed
//! IP (here: a 4-byte statement id), PIP carries the context (here: tid).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gist_ir::InstrId;

/// One trace packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Packet {
    /// Packet stream boundary — synchronization point (16 bytes).
    Psb,
    /// Paging/context packet: identifies the thread now executing on this
    /// core. Real PT emits PIP on CR3 changes; our "address space" marker
    /// is the thread id, which is what the decoder needs to demultiplex
    /// same-core interleavings.
    Pip {
        /// The thread now running on this core.
        tid: u32,
    },
    /// Trace enabled at this statement (TIP.PGE).
    Pge {
        /// First statement executed in the window.
        ip: InstrId,
    },
    /// Trace disabled; `ip` is the last statement executed (TIP.PGD with
    /// target IP payload).
    Pgd {
        /// Last statement executed in the window.
        ip: InstrId,
    },
    /// Taken/Not-taken bits for up to 6 conditional branches, oldest first.
    Tnt {
        /// Branch outcomes, oldest first (1–6 of them).
        bits: Vec<bool>,
    },
    /// Target IP of an indirect transfer (indirect call, or a RET that
    /// could not be compressed).
    Tip {
        /// The transfer target statement.
        ip: InstrId,
    },
    /// Flow update: the current IP at an asynchronous event (here: the
    /// failing statement when a crash ends the trace).
    Fup {
        /// The statement at which flow stopped.
        ip: InstrId,
    },
    /// Buffer overflow: packets were lost after this point.
    Ovf,
}

/// Tag bytes of the binary encoding.
mod tag {
    pub const PSB: u8 = 0x02;
    pub const PIP: u8 = 0x43;
    pub const PGE: u8 = 0x11;
    pub const PGD: u8 = 0x01;
    pub const TNT: u8 = 0x80; // high bit set; low 7 bits encode payload
    pub const TIP: u8 = 0x0d;
    pub const FUP: u8 = 0x1d;
    pub const OVF: u8 = 0x66;
}

/// Maximum branch bits in a short TNT packet.
pub const TNT_CAPACITY: usize = 6;

impl Packet {
    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Packet::Psb => 16,
            Packet::Pip { .. } => 8,
            Packet::Pge { .. } | Packet::Pgd { .. } => 5,
            Packet::Tip { .. } | Packet::Fup { .. } => 5,
            Packet::Tnt { .. } => 1,
            Packet::Ovf => 2,
        }
    }

    /// Appends the binary encoding of this packet to `out`.
    ///
    /// # Panics
    ///
    /// Panics if a TNT packet holds 0 or more than [`TNT_CAPACITY`] bits.
    pub fn encode(&self, out: &mut BytesMut) {
        match self {
            Packet::Psb => {
                // 16-byte sync pattern, like real PSB's repeating 02 82.
                for _ in 0..8 {
                    out.put_u8(tag::PSB);
                    out.put_u8(0x82);
                }
            }
            Packet::Pip { tid } => {
                out.put_u8(tag::PIP);
                out.put_u8(0x00);
                out.put_u16_le(0);
                out.put_u32_le(*tid);
            }
            Packet::Pge { ip } => {
                out.put_u8(tag::PGE);
                out.put_u32_le(ip.0);
            }
            Packet::Pgd { ip } => {
                out.put_u8(tag::PGD);
                out.put_u32_le(ip.0);
            }
            Packet::Tnt { bits } => {
                assert!(
                    !bits.is_empty() && bits.len() <= TNT_CAPACITY,
                    "short TNT holds 1..=6 bits, got {}",
                    bits.len()
                );
                // Real short-TNT: bits packed below a trailing stop bit,
                // oldest branch in the most significant position. We pack
                // into the low 7 bits: stop bit at position `len`, bits
                // below it, oldest first.
                let mut payload: u8 = 1; // stop bit
                for b in bits {
                    payload = (payload << 1) | (*b as u8);
                }
                out.put_u8(tag::TNT | payload);
            }
            Packet::Tip { ip } => {
                out.put_u8(tag::TIP);
                out.put_u32_le(ip.0);
            }
            Packet::Fup { ip } => {
                out.put_u8(tag::FUP);
                out.put_u32_le(ip.0);
            }
            Packet::Ovf => {
                out.put_u8(tag::OVF);
                out.put_u8(0x66);
            }
        }
    }

    /// Decodes one packet from the front of `buf`.
    ///
    /// Returns `None` at a clean end of stream; errors on malformed bytes.
    pub fn decode(buf: &mut Bytes) -> Result<Option<Packet>, String> {
        if buf.is_empty() {
            return Ok(None);
        }
        let t = buf[0];
        if t & 0x80 != 0 {
            // TNT packet.
            buf.advance(1);
            let payload = t & 0x7f;
            if payload == 0 {
                return Err("TNT packet without stop bit".to_owned());
            }
            // Highest set bit is the stop bit; bits below, oldest first.
            let stop = 7 - payload.leading_zeros() as usize; // position of stop bit
            let mut bits = Vec::with_capacity(stop);
            for i in (0..stop).rev() {
                bits.push(payload & (1 << i) != 0);
            }
            if bits.is_empty() {
                return Err("empty TNT packet".to_owned());
            }
            return Ok(Some(Packet::Tnt { bits }));
        }
        match t {
            tag::PSB => {
                if buf.len() < 16 {
                    return Err("truncated PSB".to_owned());
                }
                buf.advance(16);
                Ok(Some(Packet::Psb))
            }
            tag::PIP => {
                if buf.len() < 8 {
                    return Err("truncated PIP".to_owned());
                }
                buf.advance(4);
                let tid = buf.get_u32_le();
                Ok(Some(Packet::Pip { tid }))
            }
            tag::PGE => {
                if buf.len() < 5 {
                    return Err("truncated PGE".to_owned());
                }
                buf.advance(1);
                Ok(Some(Packet::Pge {
                    ip: InstrId(buf.get_u32_le()),
                }))
            }
            tag::PGD => {
                if buf.len() < 5 {
                    return Err("truncated PGD".to_owned());
                }
                buf.advance(1);
                Ok(Some(Packet::Pgd {
                    ip: InstrId(buf.get_u32_le()),
                }))
            }
            tag::TIP => {
                if buf.len() < 5 {
                    return Err("truncated TIP".to_owned());
                }
                buf.advance(1);
                Ok(Some(Packet::Tip {
                    ip: InstrId(buf.get_u32_le()),
                }))
            }
            tag::FUP => {
                if buf.len() < 5 {
                    return Err("truncated FUP".to_owned());
                }
                buf.advance(1);
                Ok(Some(Packet::Fup {
                    ip: InstrId(buf.get_u32_le()),
                }))
            }
            tag::OVF => {
                if buf.len() < 2 {
                    return Err("truncated OVF".to_owned());
                }
                buf.advance(2);
                Ok(Some(Packet::Ovf))
            }
            other => Err(format!("unknown packet tag {other:#04x}")),
        }
    }

    /// Decodes a whole byte stream into packets.
    pub fn decode_all(bytes: &[u8]) -> Result<Vec<Packet>, String> {
        let mut buf = Bytes::copy_from_slice(bytes);
        let mut out = Vec::new();
        while let Some(p) = Packet::decode(&mut buf)? {
            out.push(p);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: Packet) {
        let mut buf = BytesMut::new();
        p.encode(&mut buf);
        assert_eq!(buf.len(), p.encoded_len(), "size model matches encoding");
        let mut bytes = buf.freeze();
        let q = Packet::decode(&mut bytes).unwrap().unwrap();
        assert_eq!(p, q);
        assert!(bytes.is_empty());
    }

    #[test]
    fn all_packets_roundtrip() {
        roundtrip(Packet::Psb);
        roundtrip(Packet::Pip { tid: 7 });
        roundtrip(Packet::Pge { ip: InstrId(1234) });
        roundtrip(Packet::Pgd { ip: InstrId(0) });
        roundtrip(Packet::Tip {
            ip: InstrId(u32::MAX),
        });
        roundtrip(Packet::Fup { ip: InstrId(55) });
        roundtrip(Packet::Ovf);
    }

    #[test]
    fn tnt_roundtrips_all_lengths() {
        for len in 1..=TNT_CAPACITY {
            for pattern in 0..(1u32 << len) {
                let bits: Vec<bool> = (0..len).map(|i| pattern & (1 << i) != 0).collect();
                roundtrip(Packet::Tnt { bits });
            }
        }
    }

    #[test]
    fn tnt_is_one_byte() {
        let p = Packet::Tnt {
            bits: vec![true; 6],
        };
        assert_eq!(p.encoded_len(), 1, "6 branches in one byte ≈ 0.17 B/branch");
    }

    #[test]
    #[should_panic(expected = "short TNT holds")]
    fn oversized_tnt_panics() {
        let mut buf = BytesMut::new();
        Packet::Tnt {
            bits: vec![true; 7],
        }
        .encode(&mut buf);
    }

    #[test]
    fn decode_stream_of_packets() {
        let packets = vec![
            Packet::Psb,
            Packet::Pip { tid: 1 },
            Packet::Pge { ip: InstrId(10) },
            Packet::Tnt {
                bits: vec![true, false, true],
            },
            Packet::Tip { ip: InstrId(20) },
            Packet::Pgd { ip: InstrId(30) },
        ];
        let mut buf = BytesMut::new();
        for p in &packets {
            p.encode(&mut buf);
        }
        let decoded = Packet::decode_all(&buf).unwrap();
        assert_eq!(decoded, packets);
    }

    #[test]
    fn unknown_tag_is_an_error() {
        assert!(Packet::decode_all(&[0x7e]).is_err());
    }

    #[test]
    fn truncated_packet_is_an_error() {
        let mut buf = BytesMut::new();
        Packet::Tip { ip: InstrId(9) }.encode(&mut buf);
        let cut = &buf[..3];
        assert!(Packet::decode_all(cut).is_err());
    }
}
