//! Per-core trace buffers.
//!
//! The paper's kernel driver "uses a memory buffer sized at 2 MB, which is
//! sufficient to hold traces for all the applications we have tested" (§4).
//! We model a fixed-capacity buffer with stop-on-full semantics (Intel
//! ToPA STOP): once full, packets are dropped and a single OVF packet marks
//! the loss.

use bytes::BytesMut;

use crate::packet::Packet;

/// Default buffer capacity: 2 MB, as in the paper's driver.
pub const DEFAULT_CAPACITY: usize = 2 * 1024 * 1024;

/// A fixed-capacity packet buffer for one core.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    bytes: BytesMut,
    capacity: usize,
    overflowed: bool,
    dropped_packets: u64,
    total_packets: u64,
}

impl TraceBuffer {
    /// Creates a buffer with the default 2 MB capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a buffer with an explicit capacity in bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_recycled(capacity, Vec::new())
    }

    /// Creates a buffer that adopts `storage` as its backing allocation
    /// (cleared, capacity kept). Pairs with [`TraceBuffer::take`] so fleet
    /// workers can recycle trace allocations across runs instead of
    /// growing a fresh buffer every time.
    pub fn with_recycled(capacity: usize, mut storage: Vec<u8>) -> Self {
        storage.clear();
        TraceBuffer {
            bytes: BytesMut::from(storage),
            capacity,
            overflowed: false,
            dropped_packets: 0,
            total_packets: 0,
        }
    }

    /// Appends a packet. Returns `false` if the packet was dropped because
    /// the buffer is full (an OVF marker is then written exactly once;
    /// space for it is reserved out of the capacity).
    pub fn push(&mut self, p: &Packet) -> bool {
        self.total_packets += 1;
        let need = p.encoded_len();
        let reserve = Packet::Ovf.encoded_len();
        if self.overflowed || self.bytes.len() + need + reserve > self.capacity {
            if !self.overflowed {
                self.overflowed = true;
                Packet::Ovf.encode(&mut self.bytes);
            }
            self.dropped_packets += 1;
            return false;
        }
        p.encode(&mut self.bytes);
        true
    }

    /// Bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// The buffer's capacity limit in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// True if packets were lost.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Number of dropped packets.
    pub fn dropped(&self) -> u64 {
        self.dropped_packets
    }

    /// Total packets offered (kept + dropped).
    pub fn offered(&self) -> u64 {
        self.total_packets
    }

    /// The raw encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Drains the buffer, returning its bytes and resetting state. This is
    /// the "kernel driver hands the trace to Gist" step. Zero-copy: the
    /// returned `Vec` is the buffer's backing allocation (feed it back via
    /// [`TraceBuffer::with_recycled`] or a [`crate::pool::BufferPool`]).
    pub fn take(&mut self) -> Vec<u8> {
        let out = self.bytes.split().into_vec();
        self.overflowed = false;
        self.dropped_packets = 0;
        out
    }
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::InstrId;

    #[test]
    fn push_accumulates_bytes() {
        let mut b = TraceBuffer::new();
        assert!(b.is_empty());
        assert!(b.push(&Packet::Psb));
        assert!(b.push(&Packet::Pge { ip: InstrId(1) }));
        assert_eq!(b.len(), 16 + 5);
        assert!(!b.overflowed());
    }

    #[test]
    fn overflow_drops_and_marks_once() {
        let mut b = TraceBuffer::with_capacity(20);
        assert!(b.push(&Packet::Psb)); // 16 bytes
                                       // TIP (5B) does not fit in the remaining 4.
        assert!(!b.push(&Packet::Tip { ip: InstrId(1) }));
        assert!(b.overflowed());
        assert_eq!(b.dropped(), 1);
        // OVF marker (2B) was appended.
        assert_eq!(b.len(), 18);
        // Everything after the overflow is dropped, even if it would fit.
        assert!(!b.push(&Packet::Tnt { bits: vec![true] }));
        assert_eq!(b.dropped(), 2);
        assert_eq!(b.len(), 18);
        // The stream still decodes, ending with OVF.
        let pkts = Packet::decode_all(b.as_bytes()).unwrap();
        assert_eq!(pkts.last(), Some(&Packet::Ovf));
    }

    #[test]
    fn take_resets_buffer() {
        let mut b = TraceBuffer::with_capacity(20);
        b.push(&Packet::Psb);
        b.push(&Packet::Tip { ip: InstrId(1) }); // overflow
        let bytes = b.take();
        assert!(!bytes.is_empty());
        assert!(b.is_empty());
        assert!(!b.overflowed());
        assert!(b.push(&Packet::Tip { ip: InstrId(2) }));
    }

    #[test]
    fn offered_counts_everything() {
        let mut b = TraceBuffer::with_capacity(4);
        b.push(&Packet::Tnt { bits: vec![true] });
        b.push(&Packet::Psb);
        assert_eq!(b.offered(), 2);
    }
}
