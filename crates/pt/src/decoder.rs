//! The PT decoder: packets + static CFG → executed statement sequence.
//!
//! A real PT decoder walks the program binary alongside the packet stream:
//! straight-line code and direct branches are followed from the binary
//! alone; each conditional branch consumes one TNT bit; each indirect
//! transfer consumes a TIP packet; compressed RETs pop the decoder's own
//! call stack. This module does exactly that over MiniC programs.
//!
//! The output of decoding is what Gist's refinement step consumes: the set
//! (and per-core sequence) of statements that *actually executed* during
//! the traced windows (paper §3.2.2: "control flow traces identify
//! statements that get executed during production runs").

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use gist_ir::{Callee, InstrId, Op, Program, Terminator};

use crate::packet::Packet;

/// A decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream was malformed.
    BadBytes(String),
    /// A packet arrived that the walker state cannot apply.
    Desync {
        /// Explanation.
        what: String,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadBytes(m) => write!(f, "malformed packet bytes: {m}"),
            DecodeError::Desync { what } => write!(f, "decoder desync: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The decoded control flow of one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DecodedTrace {
    /// Per-core statement sequences `(tid, stmt)`, in core-trace order.
    /// Only *per-core* order is meaningful — Intel PT does not order
    /// across cores (paper §6).
    pub per_core: Vec<Vec<(u32, InstrId)>>,
    /// Branch outcomes observed: `(tid, condbr stmt, taken)`.
    pub branches: Vec<(u32, InstrId, bool)>,
    /// True if any core's buffer overflowed (OVF seen).
    pub overflowed: bool,
}

impl DecodedTrace {
    /// All distinct statements that executed, across cores.
    pub fn executed(&self) -> HashSet<InstrId> {
        self.per_core
            .iter()
            .flat_map(|c| c.iter().map(|&(_, s)| s))
            .collect()
    }

    /// The statements executed by one thread, in that thread's order.
    /// (Within one thread, per-core order *is* program order because a
    /// thread never migrates cores in the VM.)
    pub fn thread_stmts(&self, tid: u32) -> Vec<InstrId> {
        self.per_core
            .iter()
            .flat_map(|c| c.iter())
            .filter(|&&(t, _)| t == tid)
            .map(|&(_, s)| s)
            .collect()
    }
}

/// What a walker needs next.
enum Need {
    /// A TNT bit (walker is at a conditional branch).
    Tnt,
    /// A TIP packet (indirect call, or ret with empty decoder stack).
    Tip,
}

/// Per-thread walker state.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
struct Walker {
    /// Next statement to execute (None = window closed).
    pos: Option<InstrId>,
    /// Return-site stack for RET compression.
    stack: Vec<InstrId>,
    /// Last statement emitted for this walker (PGD/FUP may point at it
    /// when the window closed immediately after a consumed decision).
    last_emitted: Option<InstrId>,
}

/// Applies a run of packets to the decoder state, emitting statements into
/// `core_seq` and branches into `out`. This is the core-decode inner loop,
/// shared between the cold path and per-segment cache misses.
fn apply_packets(
    program: &Program,
    packets: &[Packet],
    out: &mut DecodedTrace,
    core_seq: &mut Vec<(u32, InstrId)>,
    walkers: &mut HashMap<u32, Walker>,
    current: &mut Option<u32>,
) -> Result<(), DecodeError> {
    for p in packets {
        match p {
            Packet::Psb => {}
            Packet::Ovf => {
                out.overflowed = true;
                // All walker state on this core is unreliable now.
                for (_, w) in walkers.iter_mut() {
                    w.pos = None;
                }
            }
            Packet::Pip { tid } => *current = Some(*tid),
            Packet::Pge { ip } => {
                let tid = (*current).ok_or_else(|| DecodeError::Desync {
                    what: "PGE before any PIP".into(),
                })?;
                let w = walkers.entry(tid).or_default();
                w.pos = Some(*ip);
                w.stack.clear();
            }
            Packet::Tnt { bits } => {
                let tid = (*current).ok_or_else(|| DecodeError::Desync {
                    what: "TNT before any PIP".into(),
                })?;
                for &taken in bits {
                    let condbr = walk_to_need(program, walkers, tid, core_seq, Need::Tnt)?;
                    out.branches.push((tid, condbr, taken));
                    let w = walkers.get_mut(&tid).expect("walker exists");
                    let target = match program.terminator(condbr) {
                        Some(Terminator::CondBr {
                            then_bb, else_bb, ..
                        }) => {
                            let pos = program.stmt_pos(condbr).expect("known stmt");
                            let f = program.function(pos.func);
                            let bb = if taken { *then_bb } else { *else_bb };
                            first_stmt_of_block(program, f.id, bb)
                        }
                        _ => {
                            return Err(DecodeError::Desync {
                                what: format!("TNT bit but walker not at condbr ({condbr})"),
                            })
                        }
                    };
                    w.pos = Some(target);
                }
            }
            Packet::Tip { ip } => {
                let tid = (*current).ok_or_else(|| DecodeError::Desync {
                    what: "TIP before any PIP".into(),
                })?;
                let at = walk_to_need(program, walkers, tid, core_seq, Need::Tip)?;
                let w = walkers.get_mut(&tid).expect("walker exists");
                // An indirect call pushes its return site before jumping.
                if let Some(instr) = program.instr(at) {
                    if matches!(
                        instr.op,
                        Op::Call {
                            callee: Callee::Indirect(_),
                            ..
                        }
                    ) {
                        if let Some(after) = stmt_after(program, at) {
                            w.stack.push(after);
                        }
                    }
                }
                w.pos = Some(*ip);
            }
            Packet::Pgd { ip } | Packet::Fup { ip } => {
                let tid = (*current).ok_or_else(|| DecodeError::Desync {
                    what: "PGD/FUP before any PIP".into(),
                })?;
                walk_until_ip(program, walkers, tid, core_seq, *ip)?;
                let w = walkers.get_mut(&tid).expect("walker exists");
                w.pos = None;
            }
        }
    }
    Ok(())
}

/// Decodes one core's byte stream, cache-cold.
fn decode_core(
    program: &Program,
    bytes: &[u8],
    out: &mut DecodedTrace,
    core_seq: &mut Vec<(u32, InstrId)>,
) -> Result<(), DecodeError> {
    let packets = Packet::decode_all(bytes).map_err(DecodeError::BadBytes)?;
    gist_obs::counter!("pt.packets_decoded").add(packets.len() as u64);
    // Walkers are per (core, tid); threads never migrate cores.
    let mut walkers: HashMap<u32, Walker> = HashMap::new();
    let mut current: Option<u32> = None;
    apply_packets(program, &packets, out, core_seq, &mut walkers, &mut current)
}

/// Decoder state at a segment boundary: which thread the core's stream is
/// attributed to, plus every walker, sorted by tid for stable comparison.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct StateSnapshot {
    current: Option<u32>,
    walkers: Vec<(u32, Walker)>,
}

fn snapshot(walkers: &HashMap<u32, Walker>, current: Option<u32>) -> StateSnapshot {
    let mut ws: Vec<(u32, Walker)> = walkers.iter().map(|(&t, w)| (t, w.clone())).collect();
    ws.sort_unstable_by_key(|&(t, _)| t);
    StateSnapshot {
        current,
        walkers: ws,
    }
}

/// One memoized decode of a PSB-delimited packet segment.
#[derive(Debug)]
struct CacheEntry {
    /// Full key, verified on every hit (the map key is only a hash).
    fingerprint: u64,
    entry_state: StateSnapshot,
    bytes: Vec<u8>,
    /// Replay data: exactly what [`apply_packets`] emitted for the segment.
    seq: Vec<(u32, InstrId)>,
    branches: Vec<(u32, InstrId, bool)>,
    overflowed: bool,
    exit_state: StateSnapshot,
}

/// A cross-run PT decode cache, keyed by PSB-delimited packet segments.
///
/// Real PT streams resynchronize at periodic PSB packets; fleets of runs
/// over the same program re-emit many identical segments (same windows,
/// same control flow). The cache memoizes *(program fingerprint, decoder
/// state at segment entry, segment bytes)* → *(emitted statements,
/// branches, overflow flag, decoder state at segment exit)*, so a repeat
/// segment replays without walking the CFG.
///
/// Guarantees:
///
/// * **Identical output.** A hit replays exactly what the cold decode of
///   the same segment from the same entry state would emit; the full key
///   is compared on every probe, so hash collisions fall back to a cold
///   decode.
/// * **Determinism-invisible.** The cache records no observability
///   metrics: decode counters (`pt.packets_decoded`, `pt.stmts_decoded`,
///   ...) count the same logical work whether or not a segment hits, so
///   warm-cache runs stay byte-identical to cold ones.
/// * Only successful decodes are cached; a [`DecodeError`] caches nothing.
///
/// Thread-safe sharing model: the cache holds an *epoch-published*
/// read-only snapshot (`Arc<HashMap<…>>`) behind a mutex that is touched
/// only at publish/refresh points, never per segment. Decoding goes through
/// a [`DecodeCacheShard`] — a single-owner view holding the snapshot `Arc`
/// plus a private map of fresh entries — so the hot loop probes plain
/// `HashMap`s with zero lock acquisitions. Fleet workers refresh their
/// shard at batch start and [`DecodeCache::absorb`] it at batch end, which
/// copy-on-write-merges the fresh entries and publishes a new snapshot for
/// the next epoch.
#[derive(Debug, Default)]
pub struct DecodeCache {
    published: Mutex<Arc<HashMap<u64, Arc<CacheEntry>>>>,
}

impl DecodeCache {
    /// Retention bound: beyond this many segments, new entries are not
    /// inserted (steady-state fleets reuse a small working set).
    const MAX_ENTRIES: usize = 4096;

    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized segments in the published snapshot.
    pub fn len(&self) -> usize {
        self.published
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// True if nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Creates a shard warmed from the current published snapshot.
    pub fn shard(&self) -> DecodeCacheShard {
        DecodeCacheShard {
            snapshot: Arc::clone(&self.published.lock().unwrap_or_else(|e| e.into_inner())),
            fresh: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Merges the shard's fresh entries into the cache and publishes a new
    /// snapshot, then re-points the shard at it (so the shard can keep
    /// decoding in the next epoch without a separate refresh). Statistics
    /// are left on the shard for the caller to harvest.
    ///
    /// Insertion respects [`DecodeCache::MAX_ENTRIES`]; concurrent absorbs
    /// of the same segment from two shards keep whichever lands second —
    /// both map to identical replay data, so the choice is unobservable.
    pub fn absorb(&self, shard: &mut DecodeCacheShard) {
        let mut published = self.published.lock().unwrap_or_else(|e| e.into_inner());
        if shard.fresh.is_empty() {
            shard.snapshot = Arc::clone(&published);
            return;
        }
        let mut merged: HashMap<u64, Arc<CacheEntry>> = (**published).clone();
        for (hash, entry) in shard.fresh.drain() {
            if merged.len() >= Self::MAX_ENTRIES && !merged.contains_key(&hash) {
                continue;
            }
            merged.insert(hash, entry);
        }
        *published = Arc::new(merged);
        shard.snapshot = Arc::clone(&published);
    }
}

/// A single-owner decode view over a [`DecodeCache`]: an immutable epoch
/// snapshot plus privately accumulated fresh entries. Probing and insertion
/// never take a lock; fresh entries become visible to other shards only
/// after [`DecodeCache::absorb`].
///
/// Hit/miss tallies are *scheduling-dependent* (which worker decodes which
/// run, and what its shard has absorbed, varies with thread interleaving),
/// so they are plain fields harvested by the fleet's contention stats — by
/// design they never touch the global metric registry, keeping the
/// deterministic snapshot batch-shape-invariant.
#[derive(Debug)]
pub struct DecodeCacheShard {
    snapshot: Arc<HashMap<u64, Arc<CacheEntry>>>,
    fresh: HashMap<u64, Arc<CacheEntry>>,
    hits: u64,
    misses: u64,
}

impl DecodeCacheShard {
    /// Segment probes answered from the snapshot or fresh map.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Segment probes that fell through to a cold decode.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resets the hit/miss tallies (typically after harvesting them into a
    /// batch report).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Re-points the shard at `cache`'s current published snapshot without
    /// contributing the shard's fresh entries (use [`DecodeCache::absorb`]
    /// to contribute *and* refresh).
    pub fn refresh(&mut self, cache: &DecodeCache) {
        self.snapshot = Arc::clone(&cache.published.lock().unwrap_or_else(|e| e.into_inner()));
    }

    fn lookup(&self, hash: u64) -> Option<&Arc<CacheEntry>> {
        self.snapshot.get(&hash).or_else(|| self.fresh.get(&hash))
    }

    fn insert(&mut self, hash: u64, entry: CacheEntry) {
        if self.snapshot.len() + self.fresh.len() < DecodeCache::MAX_ENTRIES {
            self.fresh.insert(hash, Arc::new(entry));
        }
    }
}

fn segment_hash(fingerprint: u64, entry_state: &StateSnapshot, seg_bytes: &[u8]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    fingerprint.hash(&mut h);
    entry_state.hash(&mut h);
    seg_bytes.hash(&mut h);
    h.finish()
}

/// Decodes one core's byte stream through a segment-cache shard.
fn decode_core_cached(
    program: &Program,
    bytes: &[u8],
    out: &mut DecodedTrace,
    core_seq: &mut Vec<(u32, InstrId)>,
    shard: &mut DecodeCacheShard,
) -> Result<(), DecodeError> {
    let packets = Packet::decode_all(bytes).map_err(DecodeError::BadBytes)?;
    gist_obs::counter!("pt.packets_decoded").add(packets.len() as u64);
    let fingerprint = program.fingerprint();
    let mut walkers: HashMap<u32, Walker> = HashMap::new();
    let mut current: Option<u32> = None;
    // Byte offset of each packet, so segments key on their raw bytes.
    let mut offsets = Vec::with_capacity(packets.len() + 1);
    let mut off = 0usize;
    for p in &packets {
        offsets.push(off);
        off += p.encoded_len();
    }
    offsets.push(off);
    // Each PSB resync point starts a new segment.
    let mut bounds: Vec<usize> = vec![0];
    for (i, p) in packets.iter().enumerate() {
        if i > 0 && matches!(p, Packet::Psb) {
            bounds.push(i);
        }
    }
    bounds.push(packets.len());
    for w in bounds.windows(2) {
        let (p0, p1) = (w[0], w[1]);
        if p0 == p1 {
            continue;
        }
        let seg_bytes = &bytes[offsets[p0]..offsets[p1]];
        let entry_state = snapshot(&walkers, current);
        let hash = segment_hash(fingerprint, &entry_state, seg_bytes);
        let hit = match shard.lookup(hash) {
            Some(e)
                if e.fingerprint == fingerprint
                    && e.entry_state == entry_state
                    && e.bytes == seg_bytes =>
            {
                core_seq.extend_from_slice(&e.seq);
                out.branches.extend_from_slice(&e.branches);
                out.overflowed |= e.overflowed;
                walkers = e.exit_state.walkers.iter().cloned().collect();
                current = e.exit_state.current;
                true
            }
            _ => false,
        };
        if hit {
            shard.hits += 1;
            continue;
        }
        shard.misses += 1;
        let seq0 = core_seq.len();
        let br0 = out.branches.len();
        apply_packets(
            program,
            &packets[p0..p1],
            out,
            core_seq,
            &mut walkers,
            &mut current,
        )?;
        let entry = CacheEntry {
            fingerprint,
            entry_state,
            bytes: seg_bytes.to_vec(),
            seq: core_seq[seq0..].to_vec(),
            branches: out.branches[br0..].to_vec(),
            // OVF is the only packet that sets the flag, so the segment's
            // contribution is exactly "did it contain an OVF".
            overflowed: packets[p0..p1].iter().any(|p| matches!(p, Packet::Ovf)),
            exit_state: snapshot(&walkers, current),
        };
        shard.insert(hash, entry);
    }
    Ok(())
}

/// Decodes all cores' streams of one run.
pub fn decode(program: &Program, core_bytes: &[Vec<u8>]) -> Result<DecodedTrace, DecodeError> {
    decode_inner(program, core_bytes, None)
}

/// Like [`decode`], but memoizes PSB-delimited segments in `cache`. The
/// result is guaranteed identical to [`decode`] on the same input — see
/// [`DecodeCache`] for the contract.
///
/// Convenience wrapper over the shard API: snapshots the cache, decodes
/// lock-free, then absorbs fresh segments back — two lock acquisitions per
/// run instead of the shard-less one-per-segment. Long-lived callers (fleet
/// workers) should hold a [`DecodeCacheShard`] across runs and use
/// [`decode_with_shard`] instead.
pub fn decode_with_cache(
    program: &Program,
    core_bytes: &[Vec<u8>],
    cache: &DecodeCache,
) -> Result<DecodedTrace, DecodeError> {
    let mut shard = cache.shard();
    let out = decode_inner(program, core_bytes, Some(&mut shard));
    cache.absorb(&mut shard);
    out
}

/// Like [`decode`], but memoizes PSB-delimited segments in the caller's
/// [`DecodeCacheShard`] with zero lock acquisitions. Output is guaranteed
/// identical to [`decode`] on the same input.
pub fn decode_with_shard(
    program: &Program,
    core_bytes: &[Vec<u8>],
    shard: &mut DecodeCacheShard,
) -> Result<DecodedTrace, DecodeError> {
    decode_inner(program, core_bytes, Some(shard))
}

fn decode_inner(
    program: &Program,
    core_bytes: &[Vec<u8>],
    mut shard: Option<&mut DecodeCacheShard>,
) -> Result<DecodedTrace, DecodeError> {
    let _span = gist_obs::span("pt.decode");
    gist_obs::counter!("pt.decodes").inc();
    gist_obs::counter!("pt.bytes_decoded")
        .add(core_bytes.iter().map(|b| b.len() as u64).sum::<u64>());
    let mut out = DecodedTrace::default();
    for (core, bytes) in core_bytes.iter().enumerate() {
        let mut seq = Vec::new();
        match shard.as_deref_mut() {
            Some(s) => decode_core_cached(program, bytes, &mut out, &mut seq, s)?,
            None => decode_core(program, bytes, &mut out, &mut seq)?,
        }
        // One journal event per core buffer, recorded after the decode so
        // the payload is identical whether the segment cache hit or missed
        // (the cache must stay observation-invisible).
        gist_obs::event!(PtSegmentDecoded {
            core: core as u32,
            segment: core as u64,
            bytes: bytes.len() as u64,
            stmts: seq.len() as u64,
        });
        out.per_core.push(seq);
    }
    gist_obs::counter!("pt.stmts_decoded")
        .add(out.per_core.iter().map(|c| c.len() as u64).sum::<u64>());
    Ok(out)
}

/// Advances `tid`'s walker, emitting statements, until it reaches a
/// statement that needs the given packet kind. Returns that statement
/// (also emitted).
fn walk_to_need(
    program: &Program,
    walkers: &mut HashMap<u32, Walker>,
    tid: u32,
    seq: &mut Vec<(u32, InstrId)>,
    need: Need,
) -> Result<InstrId, DecodeError> {
    let w = walkers.entry(tid).or_default();
    let mut guard = 0usize;
    loop {
        let pos = w.pos.ok_or_else(|| DecodeError::Desync {
            what: format!("packet for tid {tid} with no open window"),
        })?;
        guard += 1;
        if guard > 10_000_000 {
            return Err(DecodeError::Desync {
                what: "walker did not reach a decision point".into(),
            });
        }
        match classify(program, pos, &mut w.stack) {
            Step::Plain(next) => {
                seq.push((tid, pos));
                w.last_emitted = Some(pos);
                w.pos = Some(next);
            }
            Step::End => {
                return Err(DecodeError::Desync {
                    what: format!("walker fell off the program at {pos}"),
                });
            }
            Step::NeedTnt => {
                seq.push((tid, pos));
                w.last_emitted = Some(pos);
                return match need {
                    Need::Tnt => Ok(pos),
                    Need::Tip => Err(DecodeError::Desync {
                        what: format!("expected TIP consumer, found condbr at {pos}"),
                    }),
                };
            }
            Step::NeedTip => {
                seq.push((tid, pos));
                w.last_emitted = Some(pos);
                return match need {
                    Need::Tip => Ok(pos),
                    Need::Tnt => Err(DecodeError::Desync {
                        what: format!("expected condbr, found TIP consumer at {pos}"),
                    }),
                };
            }
        }
    }
}

/// Advances the walker, emitting statements, until `ip` is emitted.
fn walk_until_ip(
    program: &Program,
    walkers: &mut HashMap<u32, Walker>,
    tid: u32,
    seq: &mut Vec<(u32, InstrId)>,
    ip: InstrId,
) -> Result<(), DecodeError> {
    let w = walkers.entry(tid).or_default();
    // The window may close immediately after a consumed decision point; the
    // PGD/FUP ip then names the statement the walker just emitted.
    if w.last_emitted == Some(ip) {
        return Ok(());
    }
    let mut guard = 0usize;
    loop {
        let pos = match w.pos {
            Some(p) => p,
            // Window already closed (e.g. FUP then PGD): nothing to do.
            None => return Ok(()),
        };
        seq.push((tid, pos));
        w.last_emitted = Some(pos);
        if pos == ip {
            return Ok(());
        }
        guard += 1;
        if guard > 10_000_000 {
            return Err(DecodeError::Desync {
                what: format!("never reached PGD/FUP ip {ip}"),
            });
        }
        match classify(program, pos, &mut w.stack) {
            Step::Plain(next) => w.pos = Some(next),
            Step::End | Step::NeedTnt | Step::NeedTip => {
                return Err(DecodeError::Desync {
                    what: format!("hit decision point {pos} before PGD/FUP target {ip}"),
                });
            }
        }
    }
}

/// How the walker leaves statement `pos`. May pop `stack` for rets and
/// push it for direct calls.
enum Step {
    /// Deterministic successor.
    Plain(InstrId),
    /// Conditional branch: needs a TNT bit.
    NeedTnt,
    /// Indirect transfer: needs a TIP packet.
    NeedTip,
    /// No successor (thread exit via ret with empty stack handled as
    /// NeedTip in real PT; End is for unreachable).
    End,
}

fn classify(program: &Program, pos: InstrId, stack: &mut Vec<InstrId>) -> Step {
    if let Some(instr) = program.instr(pos) {
        match &instr.op {
            Op::Call {
                callee: Callee::Direct(f),
                ..
            } => {
                if let Some(after) = stmt_after(program, pos) {
                    stack.push(after);
                }
                Step::Plain(entry_stmt(program, *f))
            }
            Op::Call {
                callee: Callee::Indirect(_),
                ..
            } => Step::NeedTip,
            _ => match stmt_after(program, pos) {
                Some(next) => Step::Plain(next),
                None => Step::End,
            },
        }
    } else if let Some(term) = program.terminator(pos) {
        match term {
            Terminator::Br { target, .. } => {
                let p = program.stmt_pos(pos).expect("known stmt");
                Step::Plain(first_stmt_of_block(program, p.func, *target))
            }
            Terminator::CondBr { .. } => Step::NeedTnt,
            Terminator::Ret { .. } => match stack.pop() {
                Some(site) => Step::Plain(site),
                None => Step::NeedTip,
            },
            Terminator::Unreachable { .. } => Step::End,
        }
    } else {
        Step::End
    }
}

/// The first statement of a function's entry block.
fn entry_stmt(program: &Program, f: gist_ir::FuncId) -> InstrId {
    let func = program.function(f);
    let b = func.block(func.entry());
    b.instrs
        .first()
        .map(|i| i.id)
        .unwrap_or_else(|| b.term.id())
}

/// The first statement of a block.
fn first_stmt_of_block(program: &Program, f: gist_ir::FuncId, b: gist_ir::BlockId) -> InstrId {
    let block = program.function(f).block(b);
    block
        .instrs
        .first()
        .map(|i| i.id)
        .unwrap_or_else(|| block.term.id())
}

/// The statement after `pos` within its block (terminator if last).
fn stmt_after(program: &Program, pos: InstrId) -> Option<InstrId> {
    let p = program.stmt_pos(pos)?;
    let block = program.function(p.func).block(p.block);
    if p.index < block.instrs.len() {
        Some(
            block
                .instrs
                .get(p.index + 1)
                .map(|i| i.id)
                .unwrap_or_else(|| block.term.id()),
        )
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::PtDriver;
    use crate::tracer::{PtConfig, PtTracer};
    use gist_ir::parser::parse_program;
    use gist_vm::{Event, Observer, SchedulerKind, Vm, VmConfig};

    /// Runs with full tracing and checks the decoded statement stream for
    /// each thread matches exactly the statements the VM retired.
    fn assert_roundtrip(text: &str, cfg: VmConfig) {
        let p = parse_program("t", text).unwrap();
        let mut tracer = PtTracer::new(
            &p,
            PtDriver::always_on(),
            PtConfig {
                num_cores: cfg.num_cores,
                buffer_capacity: crate::buffer::DEFAULT_CAPACITY,
            },
        );
        let mut truth = gist_vm::event::EventLog::default();
        let mut vm = Vm::new(&p, cfg);
        vm.run(&mut [&mut truth, &mut tracer]);
        tracer.finish();
        let traces = tracer.take_traces();
        let decoded = decode(&p, &traces).expect("decode");
        assert!(!decoded.overflowed);
        // Per-thread retired sequences from ground truth.
        let mut tids: Vec<u32> = truth
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Retired { tid, .. } => Some(*tid),
                _ => None,
            })
            .collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            let truth_seq: Vec<InstrId> = truth
                .events
                .iter()
                .filter_map(|e| match e {
                    Event::Retired { tid: t, iid, .. } if *t == tid => Some(*iid),
                    _ => None,
                })
                .collect();
            let got = decoded.thread_stmts(tid);
            assert_eq!(got, truth_seq, "thread {tid} statement stream");
        }
    }

    #[test]
    fn roundtrip_straightline() {
        assert_roundtrip(
            "fn main() {\nentry:\n  x = const 1\n  y = add x, 2\n  print y\n  ret\n}\n",
            VmConfig::default(),
        );
    }

    #[test]
    fn roundtrip_loop() {
        assert_roundtrip(
            r#"
fn main() {
entry:
  n = const 25
  br head
head:
  c = cmp gt n, 0
  condbr c, body, exit
body:
  n = sub n, 1
  br head
exit:
  ret
}
"#,
            VmConfig::default(),
        );
    }

    #[test]
    fn roundtrip_calls_and_branches() {
        assert_roundtrip(
            r#"
fn collatz(n) {
entry:
  c = cmp eq n, 1
  condbr c, done, step
step:
  r = rem n, 2
  z = cmp eq r, 0
  condbr z, even, odd
even:
  h = div n, 2
  v = call collatz(h)
  ret v
odd:
  t = mul n, 3
  t1 = add t, 1
  v2 = call collatz(t1)
  ret v2
done:
  ret 1
}
fn main() {
entry:
  r = call collatz(27)
  print r
  ret
}
"#,
            VmConfig::default(),
        );
    }

    #[test]
    fn roundtrip_indirect_calls() {
        assert_roundtrip(
            r#"
fn inc(x) {
entry:
  y = add x, 1
  ret y
}
fn dec(x) {
entry:
  y = sub x, 1
  ret y
}
fn main() {
entry:
  f1 = funcaddr inc
  f2 = funcaddr dec
  a = icall f1(10)
  b = icall f2(a)
  print b
  ret
}
"#,
            VmConfig::default(),
        );
    }

    #[test]
    fn roundtrip_multithreaded_single_core() {
        assert_roundtrip(
            r#"
global x = 0
fn worker(arg) {
entry:
  i = const 0
  br head
head:
  c = cmp lt i, 8
  condbr c, body, exit
body:
  v = load $x
  v2 = add v, 1
  store $x, v2
  i = add i, 1
  br head
exit:
  ret
}
fn main() {
entry:
  t1 = spawn worker(0)
  t2 = spawn worker(0)
  join t1
  join t2
  ret
}
"#,
            VmConfig {
                num_cores: 1,
                scheduler: SchedulerKind::Random {
                    seed: 9,
                    preempt: 0.5,
                },
                ..VmConfig::default()
            },
        );
    }

    #[test]
    fn roundtrip_multithreaded_multicore() {
        assert_roundtrip(
            r#"
global m = 0
global x = 0
fn worker(arg) {
entry:
  lock $m
  v = load $x
  v2 = add v, arg
  store $x, v2
  unlock $m
  ret
}
fn main() {
entry:
  t1 = spawn worker(1)
  t2 = spawn worker(2)
  t3 = spawn worker(3)
  join t1
  join t2
  join t3
  v = load $x
  print v
  ret
}
"#,
            VmConfig {
                num_cores: 4,
                scheduler: SchedulerKind::Random {
                    seed: 4,
                    preempt: 0.6,
                },
                ..VmConfig::default()
            },
        );
    }

    #[test]
    fn roundtrip_crashing_run() {
        assert_roundtrip(
            r#"
fn main() {
entry:
  p = alloc 2
  free p
  v = load p
  print v
  ret
}
"#,
            VmConfig::default(),
        );
    }

    #[test]
    fn windowed_tracing_decodes_only_the_window() {
        // Enable tracing in the middle of the run; the decoded set must
        // contain only post-enable statements.
        let text = r#"
fn main() {
entry:
  a = const 1
  b = add a, 1
  c = add b, 1
  d = add c, 1
  print d
  ret
}
"#;
        let p = parse_program("t", text).unwrap();
        let main = p.function_by_name("main").unwrap();
        let c_iid = main.blocks[0].instrs[2].id;
        let driver = PtDriver::new();
        struct At {
            driver: PtDriver,
            at: InstrId,
        }
        impl Observer for At {
            fn on_event(&mut self, ev: &Event) {
                if let Event::Retired { iid, .. } = ev {
                    if *iid == self.at {
                        self.driver.set_default(true);
                    }
                }
            }
        }
        let mut en = At {
            driver: driver.clone(),
            at: c_iid,
        };
        let mut tracer = PtTracer::new(&p, driver, PtConfig::default());
        let mut vm = Vm::new(&p, VmConfig::default());
        vm.run(&mut [&mut en, &mut tracer]);
        tracer.finish();
        let decoded = decode(&p, &tracer.take_traces()).unwrap();
        let executed = decoded.executed();
        let a_iid = main.blocks[0].instrs[0].id;
        let d_iid = main.blocks[0].instrs[3].id;
        assert!(!executed.contains(&a_iid), "pre-window stmt must be absent");
        assert!(
            executed.contains(&d_iid),
            "post-enable stmt must be present"
        );
        // The enabler observer runs before the tracer sees c's Retired
        // event, so the window opens exactly at c.
        assert!(executed.contains(&c_iid));
    }

    #[test]
    fn overflow_truncates_but_decodes() {
        let text = r#"
fn main() {
entry:
  n = const 10000
  br head
head:
  c = cmp gt n, 0
  condbr c, body, exit
body:
  n = sub n, 1
  br head
exit:
  ret
}
"#;
        let p = parse_program("t", text).unwrap();
        let mut tracer = PtTracer::new(
            &p,
            PtDriver::always_on(),
            PtConfig {
                num_cores: 4,
                buffer_capacity: 256,
            },
        );
        let mut vm = Vm::new(&p, VmConfig::default());
        vm.run(&mut [&mut tracer]);
        tracer.finish();
        assert!(tracer.buffers()[0].overflowed());
        let decoded = decode(&p, &tracer.take_traces()).unwrap();
        assert!(decoded.overflowed);
        // Some prefix decoded.
        assert!(!decoded.per_core[0].is_empty());
    }
}
