//! Recycled allocations for trace collection.
//!
//! A fleet of tracked runs allocates the same shapes over and over: one
//! trace buffer per core per run, then one `Vec<u8>` per core handed to
//! the decoder. [`BufferPool`] keeps those allocations alive across runs
//! so steady-state collection performs no heap traffic for trace storage.
//!
//! The pool is deliberately invisible to the deterministic observability
//! layer: recycling changes *where* bytes live, never *what* bytes a run
//! produces, so it records no metrics (a warm pool would otherwise make a
//! second in-process run observable).

use std::sync::Mutex;

/// A thread-safe pool of byte buffers, shared across fleet workers.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    /// Maximum number of retained buffers (excess is simply dropped).
    max: usize,
}

impl BufferPool {
    /// Default retention bound: enough for several in-flight batches of
    /// per-core buffers without hoarding memory.
    const DEFAULT_MAX: usize = 64;

    /// Creates an empty pool with the default retention bound.
    pub fn new() -> Self {
        Self::with_max(Self::DEFAULT_MAX)
    }

    /// Creates an empty pool retaining at most `max` buffers.
    pub fn with_max(max: usize) -> Self {
        BufferPool {
            free: Mutex::new(Vec::new()),
            max,
        }
    }

    /// Takes a cleared buffer from the pool (or a fresh one if empty).
    pub fn get(&self) -> Vec<u8> {
        let mut v = self
            .free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        v.clear();
        v
    }

    /// Returns a buffer's allocation to the pool for reuse.
    pub fn put(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        if free.len() < self.max {
            free.push(buf);
        }
    }

    /// Returns several buffers at once (order is irrelevant).
    pub fn put_all<I: IntoIterator<Item = Vec<u8>>>(&self, bufs: I) {
        for b in bufs {
            self.put(b);
        }
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_reuses_put_allocation() {
        let pool = BufferPool::new();
        let mut v = pool.get();
        v.extend_from_slice(&[1, 2, 3]);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        pool.put(v);
        assert_eq!(pool.pooled(), 1);
        let v2 = pool.get();
        assert!(v2.is_empty(), "recycled buffers come back cleared");
        assert_eq!(v2.capacity(), cap);
        assert_eq!(v2.as_ptr(), ptr, "same allocation, not a copy");
    }

    #[test]
    fn retention_is_bounded() {
        let pool = BufferPool::with_max(2);
        for _ in 0..5 {
            pool.put(Vec::with_capacity(16));
        }
        assert_eq!(pool.pooled(), 2);
    }

    #[test]
    fn capacityless_buffers_are_not_retained() {
        let pool = BufferPool::new();
        pool.put(Vec::new());
        assert_eq!(pool.pooled(), 0);
    }
}
