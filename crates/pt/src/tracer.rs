//! The hardware side of Intel PT: turns the VM's architectural events into
//! packet streams, one [`TraceBuffer`] per core.
//!
//! Faithfulness notes:
//!
//! * Only **control flow** is captured: conditional branch outcomes become
//!   TNT bits (6 to a byte), indirect transfers become TIP packets. Data
//!   values never appear in the trace (paper §6: "Intel PT only traces
//!   control flow, and does not contain any data values").
//! * Traces are **per core** and only ordered within a core (§6). Threads
//!   time-sharing a core are demultiplexed by PIP context packets.
//! * **RET compression**: a `ret` whose matching call was traced in the
//!   same window produces no packet; the decoder pops its call stack. Rets
//!   that cross a window boundary need an explicit TIP.
//! * Tracing windows open/close via the [`PtDriver`] — emitting
//!   PSB/PIP/TIP.PGE on open and a flush + TIP.PGD on close, which is how
//!   Gist's instrumentation brackets slice statements (§3.2.2).

use gist_ir::{InstrId, Op, Program, Terminator};
use gist_vm::{Event, Observer};

use crate::buffer::TraceBuffer;
use crate::driver::PtDriver;
use crate::packet::{Packet, TNT_CAPACITY};

/// Tracer configuration.
#[derive(Clone, Debug)]
pub struct PtConfig {
    /// Number of core buffers.
    pub num_cores: u32,
    /// Capacity of each core buffer, in bytes.
    pub buffer_capacity: usize,
}

impl Default for PtConfig {
    fn default() -> Self {
        PtConfig {
            num_cores: 4,
            buffer_capacity: crate::buffer::DEFAULT_CAPACITY,
        }
    }
}

#[derive(Debug, Default)]
struct TidWindow {
    active: bool,
    /// Call depth since the window opened (for RET compression).
    depth: u64,
    /// Pending TNT bits, oldest first.
    pending: Vec<bool>,
    /// Last statement retired in this window.
    last_ip: Option<InstrId>,
    /// Core this thread is pinned to (learned from events).
    core: u32,
}

/// Per-statement classification bit: the statement is a `call`.
const FLAG_CALL: u8 = 1;
/// Per-statement classification bit: the statement is a `ret` terminator.
const FLAG_RET: u8 = 2;

/// Builds the dense per-statement call/ret flag table, so the per-event
/// hot path never walks the IR (`Program::instr` / `Program::terminator`
/// resolve block positions on every lookup).
fn stmt_flags(program: &Program) -> Vec<u8> {
    let mut flags = vec![0u8; program.stmt_count()];
    for f in &program.functions {
        for b in &f.blocks {
            for i in &b.instrs {
                if matches!(i.op, Op::Call { .. }) {
                    flags[i.id.index()] = FLAG_CALL;
                }
            }
            if matches!(b.term, Terminator::Ret { .. }) {
                flags[b.term.id().index()] = FLAG_RET;
            }
        }
    }
    flags
}

/// The PT tracer. Attach as a VM [`Observer`]; control via [`PtDriver`].
pub struct PtTracer<'p> {
    #[allow(dead_code)]
    program: &'p Program,
    driver: PtDriver,
    buffers: Vec<TraceBuffer>,
    /// Which thread's packets a core's stream is currently attributed to.
    core_tid: Vec<Option<u32>>,
    /// Bytes emitted on each core since its last PSB (real PT emits PSB
    /// periodically — about every 4 KB — not at every trace window).
    since_psb: Vec<usize>,
    /// Per-thread trace windows, indexed by tid (dense: the scheduler
    /// numbers tids from 0, and `handle` runs once per VM event).
    windows: Vec<TidWindow>,
    /// Capacity for core buffers allocated after construction (the VM may
    /// schedule onto more cores than `PtConfig.num_cores` anticipated).
    buffer_capacity: usize,
    /// Call/ret classification per statement, indexed by `InstrId`.
    flags: Vec<u8>,
    /// Total branch events observed while tracing was enabled.
    traced_branches: u64,
    /// Total statements retired while tracing was enabled.
    traced_retired: u64,
    /// Guards the one-shot metrics flush in [`PtTracer::finish`].
    metrics_flushed: bool,
}

impl<'p> PtTracer<'p> {
    /// Creates a tracer for `program`, controlled by `driver`.
    pub fn new(program: &'p Program, driver: PtDriver, config: PtConfig) -> Self {
        let n = config.num_cores.max(1) as usize;
        PtTracer {
            driver,
            buffers: (0..n)
                .map(|_| TraceBuffer::with_capacity(config.buffer_capacity))
                .collect(),
            core_tid: vec![None; n],
            since_psb: vec![usize::MAX; n],
            windows: Vec::new(),
            buffer_capacity: config.buffer_capacity,
            flags: stmt_flags(program),
            program,
            traced_branches: 0,
            traced_retired: 0,
            metrics_flushed: false,
        }
    }

    /// True if `tid` currently has an open trace window.
    #[inline]
    fn window_active(&self, tid: u32) -> bool {
        self.windows.get(tid as usize).is_some_and(|w| w.active)
    }

    /// Grows the per-core state when the VM schedules onto a core the
    /// tracer has not seen. Real PT allocates a buffer per logical core at
    /// driver load; here the VM's core count is its own config, so a
    /// mismatch must open a fresh stream rather than index out of bounds.
    fn ensure_core(&mut self, core: u32) {
        let idx = core as usize;
        if self.buffers.len() <= idx {
            let cap = self.buffer_capacity;
            self.buffers
                .resize_with(idx + 1, || TraceBuffer::with_capacity(cap));
            self.core_tid.resize(idx + 1, None);
            self.since_psb.resize(idx + 1, usize::MAX);
        }
    }

    /// The window slot for `tid`, growing the table on first sight.
    fn window_mut(&mut self, tid: u32) -> &mut TidWindow {
        let idx = tid as usize;
        if self.windows.len() <= idx {
            self.windows.resize_with(idx + 1, TidWindow::default);
        }
        &mut self.windows[idx]
    }

    /// The per-core trace buffers.
    pub fn buffers(&self) -> &[TraceBuffer] {
        &self.buffers
    }

    /// Takes the encoded bytes of every core's buffer.
    pub fn take_traces(&mut self) -> Vec<Vec<u8>> {
        self.buffers.iter_mut().map(TraceBuffer::take).collect()
    }

    /// Replaces each still-empty core buffer's backing storage with a
    /// recycled allocation from `pool`. Call before the run starts so the
    /// encode path appends into warm memory instead of growing fresh Vecs.
    pub fn recycle_buffers(&mut self, pool: &crate::pool::BufferPool) {
        for b in &mut self.buffers {
            if b.is_empty() {
                *b = TraceBuffer::with_recycled(b.capacity(), pool.get());
            }
        }
    }

    /// Total encoded trace bytes across cores.
    pub fn total_bytes(&self) -> usize {
        self.buffers.iter().map(TraceBuffer::len).sum()
    }

    /// Branches observed while enabled.
    pub fn traced_branches(&self) -> u64 {
        self.traced_branches
    }

    /// Statements retired while enabled.
    pub fn traced_retired(&self) -> u64 {
        self.traced_retired
    }

    /// Trace compression ratio: bits per retired statement, the figure the
    /// paper quotes as "~0.5 bits per retired assembly instruction".
    pub fn bits_per_retired(&self) -> f64 {
        if self.traced_retired == 0 {
            return 0.0;
        }
        (self.total_bytes() as f64 * 8.0) / self.traced_retired as f64
    }

    /// Closes all open windows (call at end of run before decoding).
    pub fn finish(&mut self) {
        let tids: Vec<u32> = self
            .windows
            .iter()
            .enumerate()
            .filter(|(_, w)| w.active)
            .map(|(t, _)| t as u32)
            .collect();
        for tid in tids {
            self.close_window(tid);
        }
        // Metrics are flushed from buffer aggregates once per run, not per
        // packet, so the encode path carries no atomic traffic.
        if !self.metrics_flushed {
            self.metrics_flushed = true;
            gist_obs::counter!("pt.traced_retired").add(self.traced_retired);
            gist_obs::counter!("pt.bytes_encoded").add(self.total_bytes() as u64);
            for b in &self.buffers {
                gist_obs::counter!("pt.packets_encoded").add(b.offered() - b.dropped());
                gist_obs::counter!("pt.packets_dropped").add(b.dropped());
                if b.overflowed() {
                    gist_obs::counter!("pt.buffer_overflows").inc();
                }
            }
        }
    }

    /// Interval between PSB sync packets (real PT: every 4 KB of trace).
    const PSB_INTERVAL: usize = 4096;

    fn push(&mut self, core: u32, p: Packet) {
        let c = core as usize;
        if self.since_psb[c] >= Self::PSB_INTERVAL {
            self.buffers[c].push(&Packet::Psb);
            self.since_psb[c] = 0;
        }
        self.since_psb[c] += p.encoded_len();
        self.buffers[c].push(&p);
    }

    fn flush_tnt(&mut self, tid: u32) {
        let (core, bits) = {
            let w = &mut self.windows[tid as usize];
            if w.pending.is_empty() {
                return;
            }
            (w.core, std::mem::take(&mut w.pending))
        };
        self.switch_core_to(core, tid);
        for chunk in bits.chunks(TNT_CAPACITY) {
            self.push(
                core,
                Packet::Tnt {
                    bits: chunk.to_vec(),
                },
            );
        }
    }

    /// Makes `core`'s stream attribute packets to `tid`, flushing any other
    /// thread's pending bits first and emitting a PIP if switching.
    fn switch_core_to(&mut self, core: u32, tid: u32) {
        if self.core_tid[core as usize] == Some(tid) {
            return;
        }
        if let Some(old) = self.core_tid[core as usize] {
            // Flush the outgoing thread's bits while still attributed.
            self.core_tid[core as usize] = Some(old);
            let old_bits = self
                .windows
                .get_mut(old as usize)
                .map(|w| std::mem::take(&mut w.pending))
                .unwrap_or_default();
            for chunk in old_bits.chunks(TNT_CAPACITY) {
                self.push(
                    core,
                    Packet::Tnt {
                        bits: chunk.to_vec(),
                    },
                );
            }
        }
        self.core_tid[core as usize] = Some(tid);
        self.push(core, Packet::Pip { tid });
    }

    /// Ensures `tid` has an open window; opens one starting at `ip` if not.
    fn ensure_window(&mut self, tid: u32, core: u32, ip: InstrId) {
        let needs_open = {
            let w = self.window_mut(tid);
            w.core = core;
            !w.active
        };
        if needs_open {
            self.core_tid[core as usize] = None; // force a PIP
            self.switch_core_to(core, tid);
            self.push(core, Packet::Pge { ip });
            let w = &mut self.windows[tid as usize];
            w.active = true;
            w.depth = 0;
            w.pending.clear();
            w.last_ip = Some(ip);
        } else {
            self.switch_core_to(core, tid);
        }
    }

    fn close_window(&mut self, tid: u32) {
        let (core, last_ip, active) = {
            let w = &self.windows[tid as usize];
            (w.core, w.last_ip, w.active)
        };
        if !active {
            return;
        }
        self.flush_tnt(tid);
        self.switch_core_to(core, tid);
        if let Some(ip) = last_ip {
            self.push(core, Packet::Pgd { ip });
        }
        let w = &mut self.windows[tid as usize];
        w.active = false;
        w.depth = 0;
    }

    /// Processes one VM event (also available via the [`Observer`] impl).
    pub fn handle(&mut self, ev: &Event) {
        let tid = ev.tid();
        self.ensure_core(ev.core());
        let enabled = self.driver.is_enabled(ev.core());
        if !enabled {
            // The first event a thread produces on a disabled core closes
            // its window: the flow from here on is untraced, and the
            // window must not silently resume later with a gap.
            if self.window_active(tid) {
                self.close_window(tid);
            }
            return;
        }
        match ev {
            Event::Retired { tid, core, iid, .. } => {
                // Never *open* a window at a `ret`: the flow immediately
                // leaves the function and the decoder would need a TIP that
                // was decided before the window existed. The caller-side
                // resume statement opens the window instead.
                let flags = self.flags[iid.index()];
                if !self.window_active(*tid) && flags & FLAG_RET != 0 {
                    return;
                }
                self.ensure_window(*tid, *core, *iid);
                self.traced_retired += 1;
                let w = &mut self.windows[*tid as usize];
                w.last_ip = Some(*iid);
                if flags & FLAG_CALL != 0 {
                    w.depth += 1;
                }
            }
            Event::Branch {
                tid,
                core,
                iid,
                taken,
                ..
            } => {
                self.ensure_window(*tid, *core, *iid);
                self.traced_branches += 1;
                let flush = {
                    let w = &mut self.windows[*tid as usize];
                    w.pending.push(*taken);
                    w.pending.len() >= TNT_CAPACITY
                };
                if flush {
                    self.flush_tnt(*tid);
                }
            }
            Event::IndirectTransfer {
                tid,
                core,
                iid,
                target,
                ..
            } => {
                self.ensure_window(*tid, *core, *iid);
                self.flush_tnt(*tid);
                self.switch_core_to(*core, *tid);
                self.push(*core, Packet::Tip { ip: *target });
            }
            Event::Return {
                tid, core, iid, to, ..
            } => {
                // A return with no open window needs no packet (nothing was
                // being decoded); the resume point re-opens tracing.
                if !self.window_active(*tid) {
                    return;
                }
                self.ensure_window(*tid, *core, *iid);
                let compressed = {
                    let w = &mut self.windows[*tid as usize];
                    if w.depth > 0 {
                        w.depth -= 1;
                        true
                    } else {
                        false
                    }
                };
                if !compressed {
                    if let Some(t) = to {
                        self.flush_tnt(*tid);
                        self.switch_core_to(*core, *tid);
                        self.push(*core, Packet::Tip { ip: *t });
                    }
                    // Outermost return (`to == None`): no packet here; the
                    // ThreadExit event (which follows the ret's Retired
                    // event) closes the window at the ret statement.
                }
            }
            Event::ThreadExit { tid, .. } => {
                if self.window_active(*tid) {
                    self.close_window(*tid);
                }
            }
            Event::Failure { tid, iid, .. } => {
                if self.window_active(*tid) {
                    self.flush_tnt(*tid);
                    let core = self.windows[*tid as usize].core;
                    self.switch_core_to(core, *tid);
                    self.push(core, Packet::Fup { ip: *iid });
                    let w = &mut self.windows[*tid as usize];
                    w.active = false;
                }
            }
            // PT carries no data; thread management needs no packets
            // (children open their own windows at their first event).
            Event::Mem { .. }
            | Event::PreAccess { .. }
            | Event::Enter { .. }
            | Event::Spawn { .. } => {}
        }
    }
}

impl Observer for PtTracer<'_> {
    fn on_event(&mut self, ev: &Event) {
        self.handle(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::parser::parse_program;
    use gist_vm::{Vm, VmConfig};

    const LOOP: &str = r#"
fn main() {
entry:
  n = const 10
  br head
head:
  c = cmp gt n, 0
  condbr c, body, exit
body:
  n = sub n, 1
  br head
exit:
  ret
}
"#;

    #[test]
    fn full_trace_contains_tnt_bits() {
        let p = parse_program("loop", LOOP).unwrap();
        let driver = PtDriver::always_on();
        let mut tracer = PtTracer::new(&p, driver, PtConfig::default());
        let mut vm = Vm::new(&p, VmConfig::default());
        vm.run(&mut [&mut tracer]);
        tracer.finish();
        assert_eq!(tracer.traced_branches(), 11, "10 taken + 1 not-taken");
        let pkts = Packet::decode_all(tracer.buffers()[0].as_bytes()).unwrap();
        let tnt_bits: usize = pkts
            .iter()
            .filter_map(|p| match p {
                Packet::Tnt { bits } => Some(bits.len()),
                _ => None,
            })
            .sum();
        assert_eq!(tnt_bits, 11);
        assert!(matches!(pkts[0], Packet::Psb));
        assert!(pkts.iter().any(|p| matches!(p, Packet::Pge { .. })));
        assert!(pkts.iter().any(|p| matches!(p, Packet::Pgd { .. })));
    }

    #[test]
    fn disabled_driver_produces_no_packets() {
        let p = parse_program("loop", LOOP).unwrap();
        let driver = PtDriver::new();
        let mut tracer = PtTracer::new(&p, driver, PtConfig::default());
        let mut vm = Vm::new(&p, VmConfig::default());
        vm.run(&mut [&mut tracer]);
        tracer.finish();
        assert_eq!(tracer.total_bytes(), 0);
        assert_eq!(tracer.traced_retired(), 0);
    }

    #[test]
    fn compression_is_well_under_a_byte_per_statement() {
        // A long loop amortizes window-open costs: the per-statement cost
        // must approach the TNT regime (a few tenths of a bit in real PT;
        // our statement granularity is coarser but still far below 8).
        let text = r#"
fn main() {
entry:
  n = const 5000
  br head
head:
  c = cmp gt n, 0
  condbr c, body, exit
body:
  n = sub n, 1
  br head
exit:
  ret
}
"#;
        let p = parse_program("bigloop", text).unwrap();
        let mut tracer = PtTracer::new(&p, PtDriver::always_on(), PtConfig::default());
        let mut vm = Vm::new(&p, VmConfig::default());
        vm.run(&mut [&mut tracer]);
        tracer.finish();
        let bpr = tracer.bits_per_retired();
        assert!(bpr > 0.0 && bpr < 1.0, "bits/retired = {bpr}");
    }

    #[test]
    fn ret_compression_skips_traced_calls() {
        let text = r#"
fn leaf(x) {
entry:
  y = add x, 1
  ret y
}
fn main() {
entry:
  a = call leaf(1)
  b = call leaf(2)
  ret
}
"#;
        let p = parse_program("calls", text).unwrap();
        let mut tracer = PtTracer::new(&p, PtDriver::always_on(), PtConfig::default());
        let mut vm = Vm::new(&p, VmConfig::default());
        vm.run(&mut [&mut tracer]);
        tracer.finish();
        let pkts = Packet::decode_all(tracer.buffers()[0].as_bytes()).unwrap();
        // Both leaf returns are compressed: the only non-window packets
        // are for main's outermost ret (window close), so no TIP at all.
        let tips = pkts
            .iter()
            .filter(|p| matches!(p, Packet::Tip { .. }))
            .count();
        assert_eq!(tips, 0, "packets: {pkts:?}");
    }

    #[test]
    fn uncompressed_ret_emits_tip() {
        // Enable tracing only *inside* leaf (simulated by enabling after
        // the call was retired): leaf's ret then crosses the window start.
        let text = r#"
fn leaf(x) {
entry:
  y = add x, 1
  ret y
}
fn main() {
entry:
  a = call leaf(1)
  b = add a, 1
  ret
}
"#;
        let p = parse_program("calls", text).unwrap();
        let driver = PtDriver::new();
        // Custom observer that enables tracing when leaf's add retires.
        struct Enabler {
            driver: PtDriver,
            at: gist_ir::InstrId,
        }
        impl Observer for Enabler {
            fn on_event(&mut self, ev: &Event) {
                if let Event::Retired { iid, .. } = ev {
                    if *iid == self.at {
                        self.driver.set_default(true);
                    }
                }
            }
        }
        let leaf = p.function_by_name("leaf").unwrap();
        let add_iid = leaf.blocks[0].instrs[0].id;
        let mut enabler = Enabler {
            driver: driver.clone(),
            at: add_iid,
        };
        let mut tracer = PtTracer::new(&p, driver, PtConfig::default());
        let mut vm = Vm::new(&p, VmConfig::default());
        // Enabler runs before tracer for each event.
        vm.run(&mut [&mut enabler, &mut tracer]);
        tracer.finish();
        let pkts = Packet::decode_all(tracer.buffers()[0].as_bytes()).unwrap();
        assert!(
            pkts.iter().any(|p| matches!(p, Packet::Tip { .. })),
            "ret crossing window start needs a TIP: {pkts:?}"
        );
    }

    #[test]
    fn multithreaded_trace_has_pip_context_switches() {
        let text = r#"
global x = 0
fn worker(arg) {
entry:
  i = const 0
  br head
head:
  c = cmp lt i, 5
  condbr c, body, exit
body:
  i = add i, 1
  br head
exit:
  ret
}
fn main() {
entry:
  t1 = spawn worker(0)
  t2 = spawn worker(0)
  join t1
  join t2
  ret
}
"#;
        let p = parse_program("mt", text).unwrap();
        let mut tracer = PtTracer::new(
            &p,
            PtDriver::always_on(),
            PtConfig {
                num_cores: 1,
                buffer_capacity: crate::buffer::DEFAULT_CAPACITY,
            },
        );
        let mut vm = Vm::new(
            &p,
            VmConfig {
                num_cores: 1,
                ..VmConfig::default()
            },
        );
        vm.run(&mut [&mut tracer]);
        tracer.finish();
        let pkts = Packet::decode_all(tracer.buffers()[0].as_bytes()).unwrap();
        let pips: Vec<u32> = pkts
            .iter()
            .filter_map(|p| match p {
                Packet::Pip { tid } => Some(*tid),
                _ => None,
            })
            .collect();
        // All three threads shared core 0.
        assert!(pips.contains(&0) && pips.contains(&1) && pips.contains(&2));
        // Round-robin quantum 1 forces many context switches.
        assert!(pips.len() > 6, "pips: {pips:?}");
    }

    #[test]
    fn tracer_grows_when_vm_schedules_onto_unconfigured_cores() {
        // Regression: a tracer sized for one core panicked with an
        // out-of-bounds index when the VM (4 cores by default) placed a
        // spawned thread on core 1+. The tracer must open fresh streams
        // for cores it did not anticipate.
        let text = r#"
fn worker(arg) {
entry:
  ret
}
fn main() {
entry:
  t1 = spawn worker(0)
  t2 = spawn worker(0)
  join t1
  join t2
  ret
}
"#;
        let p = parse_program("grow", text).unwrap();
        let mut tracer = PtTracer::new(
            &p,
            PtDriver::always_on(),
            PtConfig {
                num_cores: 1,
                buffer_capacity: crate::buffer::DEFAULT_CAPACITY,
            },
        );
        let mut vm = Vm::new(&p, VmConfig::default());
        vm.run(&mut [&mut tracer]);
        tracer.finish();
        assert!(
            tracer.buffers().len() > 1,
            "spawned threads never left core 0"
        );
        for b in tracer.buffers() {
            Packet::decode_all(b.as_bytes()).expect("every grown stream decodes");
        }
    }

    #[test]
    fn crash_window_ends_with_fup() {
        let text = "fn main() {\nentry:\n  x = load 0\n  ret\n}\n";
        let p = parse_program("crash", text).unwrap();
        let mut tracer = PtTracer::new(&p, PtDriver::always_on(), PtConfig::default());
        let mut vm = Vm::new(&p, VmConfig::default());
        vm.run(&mut [&mut tracer]);
        tracer.finish();
        let pkts = Packet::decode_all(tracer.buffers()[0].as_bytes()).unwrap();
        assert!(
            pkts.iter().any(|p| matches!(p, Packet::Fup { .. })),
            "{pkts:?}"
        );
    }
}
