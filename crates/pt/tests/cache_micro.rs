//! Manual micro-benchmark: cold vs cached decode timing.
//!
//! Run with `cargo test -p gist-pt --release --test cache_micro --
//! --ignored --nocapture`. The cached path must stay within the same
//! order of magnitude as the cold path even at ~100% hit rate — this is
//! the harness that caught `Program::fingerprint` re-hashing the whole
//! program on every decode (a 20x per-decode regression).

use gist_ir::parser::parse_program;
use gist_pt::{decode, decode_with_cache, DecodeCache, PtConfig, PtDriver, PtTracer};
use gist_vm::{SchedulerKind, Vm, VmConfig};

#[test]
#[ignore]
fn micro() {
    let text = r#"
global m = 0
global x = 0
fn worker(arg) {
entry:
  lock $m
  v = load $x
  v2 = add v, arg
  store $x, v2
  unlock $m
  ret
}
fn main() {
entry:
  t1 = spawn worker(1)
  t2 = spawn worker(2)
  t3 = spawn worker(3)
  join t1
  join t2
  join t3
  v = load $x
  print v
  ret
}
"#;
    let p = parse_program("t", text).unwrap();
    // Collect several distinct traces (different seeds) like the fleet does.
    let mut traces = Vec::new();
    for seed in 0..16u64 {
        let mut tracer = PtTracer::new(&p, PtDriver::always_on(), PtConfig::default());
        let mut vm = Vm::new(
            &p,
            VmConfig {
                num_cores: 4,
                scheduler: SchedulerKind::Random { seed, preempt: 0.5 },
                ..VmConfig::default()
            },
        );
        vm.run(&mut [&mut tracer]);
        tracer.finish();
        traces.push(tracer.take_traces());
    }
    let total_bytes: usize = traces.iter().flatten().map(|b| b.len()).sum();
    eprintln!(
        "16 traces, {total_bytes} bytes total ({} per run)",
        total_bytes / 16
    );

    let n = 2000usize;
    let t0 = std::time::Instant::now();
    for i in 0..n {
        let d = decode(&p, &traces[i % 16]).unwrap();
        std::hint::black_box(d);
    }
    let cold = t0.elapsed();

    let cache = DecodeCache::new();
    let t1 = std::time::Instant::now();
    for i in 0..n {
        let d = decode_with_cache(&p, &traces[i % 16], &cache).unwrap();
        std::hint::black_box(d);
    }
    let warm = t1.elapsed();
    eprintln!(
        "cold: {:?} ({:.2}us/decode)  cached: {:?} ({:.2}us/decode)  cache len {}",
        cold,
        cold.as_secs_f64() * 1e6 / n as f64,
        warm,
        warm.as_secs_f64() * 1e6 / n as f64,
        cache.len()
    );
}
