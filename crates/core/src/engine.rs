//! The failure sketch engine (Fig. 2, step ⑤): assembles per-thread
//! columns, time steps, data values, and the highest-ranked failure
//! predictors into a [`FailureSketch`].

use std::collections::{BTreeSet, HashMap, HashSet};

use gist_analysis::ConstProp;
use gist_ir::icfg::{Icfg, Ticfg};
use gist_ir::printer::stmt_to_string;
use gist_ir::{InstrId, Op, Operand, Program};
use gist_predictors::{top_by_category, Predictor, PredictorStats};
use gist_sketch::{FailureSketch, SketchStep};
use gist_tracking::RunTrace;
use gist_vm::FailureReport;

/// Builds failure sketches for one program.
pub struct SketchBuilder<'p> {
    program: &'p Program,
    /// TICFG for the reaching-path step pruning.
    ticfg: Ticfg,
    /// Sparse constant propagation facts, for static value annotations
    /// when the dynamic trace has no hit value for a step.
    consts: ConstProp,
    /// Sketch title (e.g. `Failure Sketch for pbzip2 bug #1`).
    pub title: String,
    /// Bug classification for the type line (`Concurrency bug` /
    /// `Sequential bug`).
    pub bug_class: String,
}

impl<'p> SketchBuilder<'p> {
    /// Creates a builder with a default title derived from the program.
    pub fn new(program: &'p Program) -> Self {
        let ticfg = Icfg::build_ticfg(program);
        let consts = ConstProp::compute(program, &ticfg);
        SketchBuilder {
            title: format!("Failure Sketch for {}", program.name),
            program,
            ticfg,
            consts,
            bug_class: "Bug".to_owned(),
        }
    }

    /// Sets the title.
    pub fn with_title(mut self, title: &str) -> Self {
        self.title = title.to_owned();
        self
    }

    /// Sets the bug classification.
    pub fn with_class(mut self, class: &str) -> Self {
        self.bug_class = class.to_owned();
        self
    }

    /// Assembles the sketch.
    ///
    /// * `report` — the failure under diagnosis,
    /// * `stmts` — the refined statement set (slice ∩ executed ∪ discovered),
    /// * `rep` — a representative *failing* run's trace, used for thread
    ///   attribution and inter-thread ordering (watchpoint hits are the
    ///   cross-thread anchors; within a thread, decoded PT order is used),
    /// * `stats` — ranked predictors; the best per category is highlighted,
    /// * `ideal` — if provided, statements outside it render grey
    ///   (evaluation mode, as in Fig. 8).
    pub fn build(
        &self,
        report: &FailureReport,
        stmts: &BTreeSet<InstrId>,
        rep: &RunTrace,
        stats: &[PredictorStats],
        beta: f64,
        ideal: Option<&BTreeSet<InstrId>>,
    ) -> FailureSketch {
        // ---- ordering ---------------------------------------------------
        // Occurrences of sketch statements per thread, keyed for a global
        // merge: (anchor seq from the last watchpoint hit at or before the
        // occurrence, tid, position in thread).
        let mut occurrences: Vec<(u64, u32, usize, InstrId)> = Vec::new();
        let mut tids: Vec<u32> = rep
            .decoded
            .per_core
            .iter()
            .flat_map(|c| c.iter().map(|&(t, _)| t))
            .collect();
        tids.sort_unstable();
        tids.dedup();
        for &tid in &tids {
            let thread_stmts = rep.decoded.thread_stmts(tid);
            let mut hits = rep.hits.iter().filter(|h| h.tid == tid).collect::<Vec<_>>();
            hits.sort_by_key(|h| h.seq);
            // Anchor each occurrence to the seq of this thread's *next*
            // watch hit at or after it (it executed at or before that
            // hit); occurrences past the last hit keep the last hit's
            // seq. Anchoring to the *previous* hit instead would give
            // every pre-first-hit occurrence anchor 0 and sort a late
            // thread's prefix ahead of other threads' anchored work.
            let mut hit_idx = 0usize;
            let mut pending: Vec<(usize, InstrId)> = Vec::new();
            let mut last_anchor = 0u64;
            for (pos, &s) in thread_stmts.iter().enumerate() {
                if stmts.contains(&s) {
                    pending.push((pos, s));
                }
                if hit_idx < hits.len() && hits[hit_idx].iid == s {
                    last_anchor = hits[hit_idx].seq;
                    hit_idx += 1;
                    for (p, st) in pending.drain(..) {
                        occurrences.push((last_anchor, tid, p, st));
                    }
                }
            }
            for (p, st) in pending {
                occurrences.push((last_anchor, tid, p, st));
            }
        }
        // If a sketch statement never appears in the decoded trace (e.g. a
        // discovered statement traced only by a watchpoint), synthesize an
        // occurrence from its hit.
        let decoded_set: BTreeSet<InstrId> = occurrences.iter().map(|o| o.3).collect();
        for h in &rep.hits {
            if stmts.contains(&h.iid) && !decoded_set.contains(&h.iid) {
                occurrences.push((h.seq, h.tid, usize::MAX, h.iid));
            }
        }
        // Static-only fallback: sketch statements with no runtime placement
        // at all (no decoded control flow, no hit) are laid out in program
        // order, attributed to the failing thread. This is what the sketch
        // looks like after a single failure with no refinement yet.
        let placed: BTreeSet<InstrId> = occurrences.iter().map(|o| o.3).collect();
        for &s in stmts {
            if !placed.contains(&s) {
                occurrences.push((0, report.tid, s.0 as usize, s));
            }
        }
        occurrences.sort_by_key(|&(anchor, tid, pos, _)| (anchor, tid, pos));
        // Keep the LAST occurrence of each (tid, stmt): near the failure is
        // where the sketch's single row for a looped statement belongs.
        let mut last_at: HashMap<(u32, InstrId), usize> = HashMap::new();
        for (i, &(_, tid, _, s)) in occurrences.iter().enumerate() {
            last_at.insert((tid, s), i);
        }
        let mut kept: Vec<(u64, u32, usize, InstrId)> = occurrences
            .iter()
            .enumerate()
            .filter(|(i, &(_, tid, _, s))| last_at[&(tid, s)] == *i)
            .map(|(_, &o)| o)
            .collect();
        // The failing statement is always last.
        if let Some(p) = kept
            .iter()
            .position(|&(_, _, _, s)| s == report.failing_stmt)
        {
            let f = kept.remove(p);
            kept.push(f);
        }

        // ---- predictors & highlights ------------------------------------
        let tops = top_by_category(stats, beta);
        let mut highlighted: BTreeSet<InstrId> = BTreeSet::new();
        for s in tops.values() {
            match &s.predictor {
                Predictor::Atomicity {
                    first,
                    remote,
                    second,
                    ..
                } => {
                    highlighted.insert(*first);
                    highlighted.insert(*remote);
                    highlighted.insert(*second);
                }
                Predictor::Race { first, second, .. } => {
                    highlighted.insert(*first);
                    highlighted.insert(*second);
                }
                Predictor::Branch { stmt, .. }
                | Predictor::Value { stmt, .. }
                | Predictor::ValueRange { stmt, .. } => {
                    highlighted.insert(*stmt);
                }
            }
        }

        // ---- value column -----------------------------------------------
        // Label from the best value predictor's access expression; notes
        // from the representative run's last hit value per statement.
        let value_column = tops.get("value").map(|s| match &s.predictor {
            Predictor::Value { stmt, .. } | Predictor::ValueRange { stmt, .. } => {
                self.value_label(*stmt)
            }
            _ => "value".to_owned(),
        });
        let mut value_at: HashMap<InstrId, i64> = HashMap::new();
        for h in &rep.hits {
            value_at.insert(h.iid, h.value);
        }

        // ---- rows ---------------------------------------------------------
        let mut threads: Vec<u32> = kept.iter().map(|&(_, t, _, _)| t).collect();
        threads.sort_unstable();
        threads.dedup();
        let steps: Vec<SketchStep> = kept
            .iter()
            .enumerate()
            .map(|(i, &(_, tid, _, stmt))| {
                let loc = self
                    .program
                    .stmt_loc(stmt)
                    .map(|l| self.program.source_map.display(l))
                    .unwrap_or_default();
                let text = self
                    .program
                    .stmt_loc(stmt)
                    .and_then(|l| self.program.source_map.line_text(l))
                    .map(str::to_owned)
                    .unwrap_or_else(|| stmt_to_string(self.program, stmt));
                let mut value_note = value_at
                    .get(&stmt)
                    .map(|v| v.to_string())
                    .or_else(|| self.static_value_note(stmt));
                if stmt == report.failing_stmt {
                    let suffix = format!("<- Failure ({})", report.kind.label());
                    value_note = Some(match value_note {
                        Some(v) => format!("{v}  {suffix}"),
                        None => suffix,
                    });
                }
                SketchStep {
                    step: i + 1,
                    tid,
                    stmt,
                    text,
                    loc,
                    highlight: highlighted.contains(&stmt),
                    grey: ideal.map(|i| !i.contains(&stmt)).unwrap_or(false),
                    value_note,
                    // Filled in by the server, which holds the SVFG.
                    flow_note: None,
                    // Filled in by the server, which holds the journal
                    // anchors (hit/decode/promotion/slice event seq-nos).
                    provenance: Vec::new(),
                }
            })
            .collect();

        let mut predictors: Vec<PredictorStats> = tops.into_values().collect();
        predictors.sort_by(|a, b| {
            b.f_measure(beta)
                .partial_cmp(&a.f_measure(beta))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut sketch = FailureSketch {
            title: self.title.clone(),
            failure_type: format!("{}, {}", self.bug_class, report.kind.label()),
            value_column,
            steps,
            threads,
            predictors,
            failing_stmt: Some(report.failing_stmt),
        };
        // Reaching-path pruning: a step whose statement neither lies on a
        // TICFG path to the failing statement nor touches memory (the only
        // channel through which a concurrent statement can still affect
        // the failure) pads the sketch without explaining anything.
        let reach: HashSet<InstrId> = self
            .ticfg
            .backward_order(report.failing_stmt)
            .into_iter()
            .collect();
        sketch.retain_steps(|s| {
            reach.contains(&s)
                || self
                    .program
                    .instr(s)
                    .map(|i| i.op.is_memory_access())
                    .unwrap_or(false)
        });
        sketch
    }

    /// A static value annotation for `stmt` when no dynamic hit recorded
    /// one: the constant the sparse constant propagation proves is stored
    /// (or computed) here on every path.
    fn static_value_note(&self, stmt: InstrId) -> Option<String> {
        let func = self.program.stmt_func(stmt)?;
        let instr = self.program.instr(stmt)?;
        let op = match &instr.op {
            Op::Store { value, .. } => *value,
            other => Operand::Var(other.def()?),
        };
        let v = self.consts.operand_value(func, op)?;
        Some(format!("{v} (static)"))
    }

    /// A human-readable label for the memory accessed by `stmt`.
    fn value_label(&self, stmt: InstrId) -> String {
        if let Some(instr) = self.program.instr(stmt) {
            if let Some(addr) = instr.op.access_addr() {
                return match addr {
                    Operand::Global(g) => self.program.globals[g.index()].name.clone(),
                    Operand::Var(v) => {
                        let f = self
                            .program
                            .stmt_func(stmt)
                            .map(|f| self.program.function(f));
                        f.map(|f| format!("*{}", f.var_name(v)))
                            .unwrap_or_else(|| "value".into())
                    }
                    Operand::Const(c) => format!("*{c}"),
                };
            }
        }
        "value".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::parser::parse_program;
    use gist_pt::decoder::DecodedTrace;
    use gist_vm::{AccessKind, FailureKind};
    use gist_watch::WatchHit;

    fn mini_program() -> Program {
        parse_program(
            "mini",
            r#"
global x = 0
fn worker(a) {
entry:
  store $x, 0      @ mini.c:20
  ret
}
fn main() {
entry:
  v = load $x      @ mini.c:10
  t = spawn worker(0)
  w = load $x      @ mini.c:12
  assert w, "boom" @ mini.c:13
  join t
  ret
}
"#,
        )
        .unwrap()
    }

    fn build_demo() -> (Program, FailureSketch) {
        let p = mini_program();
        let main = p.function_by_name("main").unwrap();
        let worker = p.function_by_name("worker").unwrap();
        let v_load = main.blocks[0].instrs[0].id;
        let w_load = main.blocks[0].instrs[2].id;
        let assert_s = main.blocks[0].instrs[3].id;
        let store = worker.blocks[0].instrs[0].id;

        let report = FailureReport {
            program: "mini".into(),
            kind: FailureKind::AssertFail { msg: "boom".into() },
            failing_stmt: assert_s,
            tid: 0,
            stack: Vec::new(),
            loc: p.stmt_loc(assert_s),
        };
        let stmts: BTreeSet<InstrId> = [v_load, store, w_load, assert_s].into_iter().collect();
        // Representative failing run: main reads, worker writes, main
        // reads again and asserts.
        let mut decoded = DecodedTrace::default();
        decoded
            .per_core
            .push(vec![(0, v_load), (0, w_load), (0, assert_s)]);
        decoded.per_core.push(vec![(1, store)]);
        let hit = |seq, tid, iid, value, kind| WatchHit {
            seq,
            tid,
            core: tid,
            iid,
            addr: 0x1000,
            value,
            kind,
            slot: 0,
        };
        let rep = RunTrace {
            decoded,
            hits: vec![
                hit(10, 0, v_load, 1, AccessKind::Read),
                hit(20, 1, store, 0, AccessKind::Write),
                hit(30, 0, w_load, 0, AccessKind::Read),
            ],
            executed_tracked: stmts.clone(),
            watch_traps: 3,
            ptrace_ops: 1,
            ..RunTrace::default()
        };
        // Predictors: the RWR interleaving perfectly predicts the failure.
        let stats = vec![PredictorStats {
            predictor: Predictor::Atomicity {
                pattern: gist_predictors::AvPattern::Rwr,
                first: v_load,
                remote: store,
                second: w_load,
            },
            in_failing: 3,
            in_successful: 0,
            total_failing: 3,
            total_successful: 5,
        }];
        let sketch = SketchBuilder::new(&p)
            .with_title("Failure Sketch for mini bug #1")
            .with_class("Concurrency bug")
            .build(&report, &stmts, &rep, &stats, 0.5, None);
        (p, sketch)
    }

    #[test]
    fn interleaving_order_follows_watch_hits() {
        let (p, sketch) = build_demo();
        let main = p.function_by_name("main").unwrap();
        let worker = p.function_by_name("worker").unwrap();
        let order: Vec<InstrId> = sketch.steps.iter().map(|s| s.stmt).collect();
        let v_load = main.blocks[0].instrs[0].id;
        let w_load = main.blocks[0].instrs[2].id;
        let store = worker.blocks[0].instrs[0].id;
        let pos = |s: InstrId| order.iter().position(|&x| x == s).unwrap();
        assert!(pos(v_load) < pos(store), "read before remote write");
        assert!(pos(store) < pos(w_load), "remote write before second read");
    }

    #[test]
    fn failing_stmt_is_last_and_annotated() {
        let (_, sketch) = build_demo();
        let last = sketch.steps.last().unwrap();
        assert_eq!(Some(last.stmt), sketch.failing_stmt);
        assert!(last
            .value_note
            .as_deref()
            .unwrap()
            .contains("Failure (assertion failure)"));
    }

    #[test]
    fn predictor_statements_highlighted() {
        let (p, sketch) = build_demo();
        let worker = p.function_by_name("worker").unwrap();
        let store = worker.blocks[0].instrs[0].id;
        assert!(sketch.is_highlighted(store));
    }

    #[test]
    fn two_thread_columns() {
        let (_, sketch) = build_demo();
        assert_eq!(sketch.threads, vec![0, 1]);
    }

    #[test]
    fn value_column_labeled_from_access() {
        let (_, sketch) = build_demo();
        // Hmm: top value predictor derives from hits? Here only an
        // atomicity predictor was supplied, so no value column.
        assert!(sketch.value_column.is_none());
    }

    #[test]
    fn source_text_used_when_registered() {
        let p = mini_program();
        // No line text registered: falls back to IR rendering.
        let main = p.function_by_name("main").unwrap();
        let (_, sketch) = build_demo();
        let row = sketch
            .steps
            .iter()
            .find(|s| s.stmt == main.blocks[0].instrs[0].id)
            .unwrap();
        assert!(row.text.contains("load"), "IR fallback text: {}", row.text);
        assert_eq!(row.loc, "mini.c:10");
    }

    #[test]
    fn grey_marking_against_ideal() {
        let p = mini_program();
        let main = p.function_by_name("main").unwrap();
        let worker = p.function_by_name("worker").unwrap();
        let v_load = main.blocks[0].instrs[0].id;
        let w_load = main.blocks[0].instrs[2].id;
        let assert_s = main.blocks[0].instrs[3].id;
        let store = worker.blocks[0].instrs[0].id;
        let report = FailureReport {
            program: "mini".into(),
            kind: FailureKind::AssertFail { msg: String::new() },
            failing_stmt: assert_s,
            tid: 0,
            stack: Vec::new(),
            loc: None,
        };
        let stmts: BTreeSet<InstrId> = [v_load, store, w_load, assert_s].into_iter().collect();
        let ideal: BTreeSet<InstrId> = [store, w_load, assert_s].into_iter().collect();
        let mut decoded = DecodedTrace::default();
        decoded
            .per_core
            .push(vec![(0, v_load), (0, w_load), (0, assert_s)]);
        decoded.per_core.push(vec![(1, store)]);
        let rep = RunTrace {
            decoded,
            executed_tracked: stmts.clone(),
            ..RunTrace::default()
        };
        let sketch = SketchBuilder::new(&p).build(&report, &stmts, &rep, &[], 0.5, Some(&ideal));
        let grey: Vec<InstrId> = sketch
            .steps
            .iter()
            .filter(|s| s.grey)
            .map(|s| s.stmt)
            .collect();
        assert_eq!(grey, vec![v_load], "only the non-ideal stmt is grey");
    }
}
