//! Gist's server side: the diagnosis loop of Fig. 2.

use std::collections::BTreeSet;

use gist_ir::{InstrId, Program};
use gist_predictors::{rank, Access, PredictorStats, RunObservations};
use gist_sketch::FailureSketch;
use gist_slicing::{Slice, StaticSlicer};
use gist_tracking::{Planner, RunTrace};
use gist_vm::{AccessKind, FailureReport};

use crate::ast::{AstController, Growth, DEFAULT_SIGMA};
use crate::client::Fleet;
use crate::engine::SketchBuilder;
use crate::refine::Refinement;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct GistConfig {
    /// Initial tracked-slice size σ (paper: 2).
    pub sigma0: usize,
    /// σ growth strategy (paper: multiplicative).
    pub growth: Growth,
    /// F-measure β (paper: 0.5, precision-favoring).
    pub beta: f64,
    /// Failure recurrences to gather per AsT iteration before rebuilding
    /// the sketch.
    pub failing_runs_per_iteration: usize,
    /// Run budget per iteration (bounds diagnosis latency when failures
    /// are rare).
    pub max_runs_per_iteration: usize,
    /// Hard cap on AsT iterations.
    pub max_iterations: usize,
    /// Ablation toggle: track control flow (Intel PT). Disabling leaves
    /// the static slice unfiltered (Fig. 10's "static slicing only" bar).
    pub enable_control_flow: bool,
    /// Ablation toggle: track data flow (watchpoints).
    pub enable_data_flow: bool,
    /// Use the static race detector to (a) seed the tracked set with race
    /// candidates touching the slice — a *fallback* for statements the
    /// alias-aware slicer still cannot see — and (b) order cooperative
    /// watch groups by race rank instead of slice order.
    pub enable_race_ranking: bool,
    /// Alias-aware slicing: consult the points-to analysis so heap writes
    /// through aliased pointer names enter the static slice directly.
    /// Disabling reverts to syntactic (global-name-only) data dependences,
    /// leaving discovery to watchpoints and race seeding (the `--dataflow`
    /// ablation's "alias off" arm).
    pub enable_alias_slicing: bool,
    /// Sparse value-flow slicing: walk the SVFG (reaching-def-filtered,
    /// path-feasibility-pruned, 1-CFA context-bound def-use chains)
    /// backward from the criterion instead of the flow-insensitive item
    /// worklist, rank watchpoint candidates by value-flow distance, and
    /// annotate sketch steps with inter-thread value-flow provenance.
    /// The SVFG slice is a subset of the legacy slice by construction
    /// (`repro svfg` quantifies the shrinkage). Requires
    /// `enable_alias_slicing`; ignored when that is off.
    pub enable_svfg_slicing: bool,
    /// Happens-before/MHP pruning: drop race-candidate interleaving
    /// hypotheses the thread structure proves never-parallel before they
    /// seed the AsT loop, and keep never-parallel writes out of the
    /// watchpoint pool — the `repro mhp` ablation toggles this off.
    pub enable_mhp: bool,
    /// Dead-store pruning: exclude stores the memory-liveness dataflow
    /// proves are never read/freed/synchronized on from watchpoint plans,
    /// so the four debug registers go to observable accesses.
    pub enable_dead_store_pruning: bool,
    /// Sketch title.
    pub title: String,
    /// Bug classification shown on the sketch type line.
    pub bug_class: String,
}

impl Default for GistConfig {
    fn default() -> Self {
        GistConfig {
            sigma0: DEFAULT_SIGMA,
            growth: Growth::Multiplicative,
            beta: 0.5,
            failing_runs_per_iteration: 1,
            max_runs_per_iteration: 400,
            max_iterations: 12,
            enable_control_flow: true,
            enable_data_flow: true,
            enable_race_ranking: true,
            enable_alias_slicing: true,
            enable_svfg_slicing: true,
            enable_mhp: true,
            enable_dead_store_pruning: true,
            title: "Failure Sketch".to_owned(),
            bug_class: "Bug".to_owned(),
        }
    }
}

/// Aggregate client-side cost counters for one diagnosis (feeds the
/// overhead models in `gist-baselines`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostSummary {
    /// Encoded PT bytes across all runs.
    pub pt_bytes: u64,
    /// PT driver transitions (ioctls).
    pub pt_transitions: u64,
    /// Statements retired while PT was on.
    pub traced_retired: u64,
    /// Watchpoint traps delivered.
    pub watch_traps: u64,
    /// Debug-register operations.
    pub ptrace_ops: u64,
    /// Total statements retired across all runs (baseline work).
    pub total_retired: u64,
    /// Instrumentation points shipped (summed over patches used).
    pub instrumentation_points: u64,
    /// Serialized patch bytes shipped.
    pub patch_bytes: u64,
}

impl CostSummary {
    fn absorb(&mut self, trace: &RunTrace, retired: u64) {
        self.pt_bytes += trace.pt_bytes as u64;
        self.pt_transitions += trace.pt_transitions;
        self.traced_retired += trace.traced_retired;
        self.watch_traps += trace.watch_traps;
        self.ptrace_ops += trace.ptrace_ops;
        self.total_retired += retired;
    }
}

/// The outcome of diagnosing one failure.
#[derive(Clone, Debug)]
pub struct DiagnosisResult {
    /// The final failure sketch.
    pub sketch: FailureSketch,
    /// The static slice the diagnosis started from.
    pub slice: Slice,
    /// AsT iterations performed.
    pub iterations: usize,
    /// Failure recurrences consumed (Table 1's latency unit).
    pub recurrences: usize,
    /// Total production runs consumed (failing + successful).
    pub total_runs: usize,
    /// Final σ.
    pub final_sigma: usize,
    /// Accumulated refinement state.
    pub refinement: Refinement,
    /// Full predictor ranking from the final iteration.
    pub ranked: Vec<PredictorStats>,
    /// Aggregate client cost.
    pub cost: CostSummary,
}

/// The Gist server: static analyzer + failure sketch engine.
pub struct GistServer<'p> {
    program: &'p Program,
    slicer: StaticSlicer<'p>,
    config: GistConfig,
}

impl<'p> GistServer<'p> {
    /// Creates a server for one program.
    pub fn new(program: &'p Program, config: GistConfig) -> Self {
        // Warm the shared compilation up front: every collection run
        // executes on the compiled form, and paying the one-time lowering
        // here keeps it out of the measured `server.collect` span (fleets
        // built from the same program share the cached Arc).
        let _ = gist_vm::CompiledProgram::shared(program);
        GistServer {
            program,
            slicer: StaticSlicer::new(program),
            config,
        }
    }

    /// The static slicer (exposed for evaluation harnesses).
    pub fn slicer(&self) -> &StaticSlicer<'p> {
        &self.slicer
    }

    /// The configuration.
    pub fn config(&self) -> &GistConfig {
        &self.config
    }

    /// Diagnoses one failure: runs AsT iterations against the fleet until
    /// `stop` approves the sketch (the paper's developer-in-the-loop),
    /// AsT saturates, or the iteration cap is hit.
    ///
    /// `ideal` (evaluation only) marks statements outside the ideal sketch
    /// grey, as in the paper's Fig. 8.
    pub fn diagnose(
        &self,
        report: &FailureReport,
        fleet: &mut dyn Fleet,
        ideal: Option<&BTreeSet<InstrId>>,
        stop: &mut dyn FnMut(&FailureSketch) -> bool,
    ) -> DiagnosisResult {
        gist_obs::begin_trace(&self.config.title);
        let _span_diagnose = gist_obs::span("server.diagnose");
        gist_obs::counter!("server.diagnoses").inc();
        let use_svfg = self.config.enable_svfg_slicing && self.config.enable_alias_slicing;
        let slice = {
            let _span = gist_obs::span("server.slice");
            if use_svfg {
                self.slicer.compute_with_svfg(report.failing_stmt)
            } else if self.config.enable_alias_slicing {
                self.slicer.compute(report.failing_stmt)
            } else {
                self.slicer.compute_without_alias(report.failing_stmt)
            }
        };
        // The slice criterion is the root of every provenance chain: any
        // statement in the sketch is there because of this computation, a
        // promotion decision that cites it, or runtime evidence.
        let slice_event = gist_obs::event!(SliceComputed {
            criterion: report.failing_stmt.0,
            len: slice.len() as u64,
            alias: self.config.enable_alias_slicing,
        });
        // Static race analysis (fallback seeding): candidates whose pair
        // touches the slice contribute their *other* endpoint to the
        // tracked set. With alias-aware slicing on, most racing writes are
        // already in the slice and the seed set is empty or tiny; the
        // fallback still catches pairs the points-to analysis widens past
        // usefulness. The full rank order prioritizes watchpoint insertion
        // either way.
        let mut race_seed: Vec<InstrId> = Vec::new();
        let mut watch_priority: Vec<InstrId> = Vec::new();
        let mut dead = BTreeSet::new();
        let _span_analyze = gist_obs::span("server.analyze");
        // The happens-before/MHP relation, when enabled: race-candidate
        // pairs the thread structure orders (a free after the join, two
        // phases separated by a join barrier) are statically-impossible
        // interleavings — they neither seed tracking nor rank watchpoints,
        // so the AsT loop never spends runs testing them.
        let mhp = self
            .config
            .enable_mhp
            .then(|| gist_analysis::Mhp::compute(self.program, self.slicer.ticfg()));
        if self.config.enable_race_ranking {
            let mut analysis = gist_analysis::analyze(self.program);
            if let Some(m) = &mhp {
                analysis.candidates.retain(|c| {
                    let [a, b] = c.stmts();
                    m.may_happen_in_parallel(a, b)
                });
            }
            watch_priority = analysis.ranked_stmts();
            // Only high-confidence candidates seed: anything scoring more
            // than 2 below the best is a long-shot pair whose extra endpoint
            // would dilute sketch relevance rather than sharpen it.
            let best = analysis.candidates.first().map_or(0, |c| c.score);
            for c in &analysis.candidates {
                if c.score + 2 < best {
                    break;
                }
                let [a, b] = c.stmts();
                if slice.contains(a) || slice.contains(b) {
                    for s in [a, b] {
                        if !slice.contains(s) && !race_seed.contains(&s) {
                            race_seed.push(s);
                        }
                    }
                }
            }
        }
        // Dead-store pruning: stores the memory-liveness dataflow proves
        // unobservable never occupy a debug register. The failing statement
        // is always kept watchable, whatever the analysis says.
        let pts = (self.config.enable_dead_store_pruning || mhp.is_some())
            .then(|| gist_analysis::PointsTo::compute(self.program, self.slicer.ticfg()));
        if self.config.enable_dead_store_pruning {
            let pts = pts.as_ref().expect("computed above");
            dead = gist_analysis::dead_stores(self.program, self.slicer.ticfg(), pts);
            dead.remove(&report.failing_stmt);
        }
        // Never-parallel writes: their interleavings cannot matter, so
        // they never occupy a debug register. The failing statement and
        // race-ranked statements always stay watchable.
        let mut never_parallel = BTreeSet::new();
        if let Some(m) = &mhp {
            let pts = pts.as_ref().expect("computed above");
            never_parallel = m.never_parallel_stores(self.program, pts);
            never_parallel.remove(&report.failing_stmt);
            for s in &watch_priority {
                never_parallel.remove(s);
            }
        }
        drop(_span_analyze);
        // Value-flow distances (SVFG hops to the failing value) break
        // priority ties among watchpoint candidates: fewer def-use steps
        // from the failure means an earlier cooperative watch group.
        let flow_distances = if use_svfg {
            self.slicer.svfg().backward_value_flow(report.failing_stmt)
        } else {
            Default::default()
        };
        let planner = Planner::new(self.program, self.slicer.ticfg())
            .with_watch_priority(watch_priority)
            .with_distance_rank(flow_distances)
            .with_dead_store_filter(dead)
            .with_mhp_filter(never_parallel);
        let builder = SketchBuilder::new(self.program)
            .with_title(&self.config.title)
            .with_class(&self.config.bug_class);
        let signature = report.signature();

        // Journal anchor of the event that promoted each non-slice
        // statement into tracking (race seed or watchpoint discovery);
        // sketch steps cite it in their provenance chains.
        let mut origin: std::collections::HashMap<InstrId, u64> = std::collections::HashMap::new();
        for &s in &race_seed {
            let ev = gist_obs::event!(StmtPromoted {
                iid: s.0,
                reason: "race-seed",
                via: slice_event,
                sigma: self.config.sigma0 as u64,
            });
            origin.insert(s, ev);
        }
        let mut ast =
            AstController::with_sigma(slice.clone(), self.config.sigma0, self.config.growth);
        let mut refinement = Refinement::new();
        let mut cost = CostSummary::default();
        let mut recurrences = 0usize;
        let mut total_runs = 0usize;
        // The representative failing run used for sketch layout: keep the
        // one observing the most statements (thread attribution and
        // cross-thread anchors are richest there).
        let mut representative: Option<RunTrace> = None;
        let mut representative_score = 0usize;
        let mut sketch = FailureSketch::default();
        let mut ranked: Vec<PredictorStats>;
        let mut iterations = 0usize;

        loop {
            iterations += 1;
            gist_obs::counter!("server.iterations").inc();
            // Refinement's additive half (§3): statements the watchpoints
            // discovered join the tracked slice, so later iterations trace
            // them with PT and arm watchpoints at them directly — this is
            // how a root cause that static slicing missed (no alias
            // analysis) becomes fully observable.
            let mut tracked: Vec<InstrId> = ast.tracked_portion().to_vec();
            // Race-candidate seeding joins from the very first iteration;
            // watchpoint discoveries (below) accumulate across iterations.
            for &s in race_seed.iter().chain(&refinement.discovered) {
                if !tracked.contains(&s) {
                    tracked.push(s);
                }
            }
            gist_obs::histogram!("server.tracked_size").record(tracked.len() as u64);
            gist_obs::event!(IterationStarted {
                iteration: iterations as u64,
                sigma: ast.sigma() as u64,
                tracked: tracked.len() as u64,
            });
            let groups = planner.watch_groups(&tracked);
            let mut iter_obs: Vec<RunObservations> = Vec::new();
            let mut failing_this_iter = 0usize;
            let mut runs_this_iter = 0usize;

            let span_collect = gist_obs::span("server.collect");
            while failing_this_iter < self.config.failing_runs_per_iteration
                && runs_this_iter < self.config.max_runs_per_iteration
            {
                let group = runs_this_iter % groups;
                let mut patch = planner.plan(&tracked, group);
                if !self.config.enable_control_flow {
                    patch.pt_on_after.clear();
                    patch.pt_off_after.clear();
                    patch.pt_on_return_to.clear();
                    patch.pt_on_enter.clear();
                    patch.pt_on_at_start = false;
                }
                if !self.config.enable_data_flow {
                    patch.watch_accesses.clear();
                }
                let shipped = patch.shipped_size() as u64;
                cost.instrumentation_points += patch.instrumentation_points() as u64;
                cost.patch_bytes += shipped;
                gist_obs::histogram!("tracking.patch_bytes").record(shipped);
                gist_obs::histogram!("tracking.patch_points")
                    .record(patch.instrumentation_points() as u64);

                fleet.hint_runs_remaining(
                    (self.config.max_runs_per_iteration - runs_this_iter) as u64,
                );
                let run = fleet.next_run(&patch);
                runs_this_iter += 1;
                let failing = run.matches_failure(signature);
                // First-discovery promotions: a watchpoint hit at an
                // untracked statement is the evidence that adds it to the
                // tracked set next iteration (§3.2.3's alias-gap closing).
                for (hit, &hit_event) in run.trace.hits.iter().zip(&run.trace.hit_events) {
                    if run.trace.discovered.contains(&hit.iid) && !origin.contains_key(&hit.iid) {
                        let ev = gist_obs::event!(StmtPromoted {
                            iid: hit.iid.0,
                            reason: "watch-discovery",
                            via: hit_event,
                            sigma: ast.sigma() as u64,
                        });
                        origin.insert(hit.iid, ev);
                    }
                }
                refinement.absorb(&run.trace, failing);
                cost.absorb(&run.trace, run.retired);
                iter_obs.push(observations(&run.trace, failing));
                if failing {
                    failing_this_iter += 1;
                    let score = run.trace.executed_tracked.len()
                        + run.trace.discovered.len()
                        + run.trace.hits.len();
                    if representative.is_none() || score >= representative_score {
                        representative_score = score;
                        representative = Some(run.trace.clone());
                    }
                }
            }
            drop(span_collect);
            recurrences += failing_this_iter;
            total_runs += runs_this_iter;
            gist_obs::counter!("server.recurrences").add(failing_this_iter as u64);
            gist_obs::counter!("server.runs_consumed").add(runs_this_iter as u64);

            let span_rank = gist_obs::span("server.rank");
            ranked = rank(&iter_obs, self.config.beta);
            drop(span_rank);
            for (i, stats) in ranked.iter().take(3).enumerate() {
                gist_obs::event!(PredictorRanked {
                    category: stats.predictor.category().to_owned(),
                    rank: i as u64 + 1,
                    f_milli: (stats.f_measure(self.config.beta) * 1000.0).round() as u64,
                    iid: predictor_stmt(&stats.predictor).0,
                });
            }
            let mut stmts = if self.config.enable_control_flow {
                refinement.sketch_stmts()
            } else {
                // Static-only mode: no execution filter available.
                let mut s: BTreeSet<InstrId> = tracked.iter().copied().collect();
                s.extend(&refinement.discovered);
                s
            };
            if use_svfg && self.config.enable_data_flow {
                // Control-context backfill: value-flow-ranked watchpoints
                // can converge before σ grows past the branch that steers
                // execution into the failure; the sketch must still show it.
                stmts.extend(self.slicer.control_context([report.failing_stmt], &slice));
            }
            if let Some(rep) = &representative {
                let _span_sketch = gist_obs::span("server.sketch");
                sketch = builder.build(report, &stmts, rep, &ranked, self.config.beta, ideal);
                // Inter-thread value-flow provenance: a step that observes
                // a value an *interleaved* SVFG edge says another thread's
                // sketch step may have written gets a flow note naming the
                // writer (the Fig. 1 arrow, derived statically).
                if use_svfg {
                    let tid_of: std::collections::HashMap<InstrId, u32> =
                        sketch.steps.iter().map(|s| (s.stmt, s.tid)).collect();
                    let svfg = self.slicer.svfg();
                    for step in &mut sketch.steps {
                        let flow = svfg
                            .edges_in(step.stmt)
                            .iter()
                            .filter(|e| {
                                e.kind == gist_analysis::SvfgEdgeKind::Interleaved
                                    && tid_of.get(&e.def).is_some_and(|&t| t != step.tid)
                            })
                            .min_by_key(|e| e.def);
                        if let Some(e) = flow {
                            let writer_tid = tid_of[&e.def];
                            let at = self
                                .program
                                .stmt_loc(e.def)
                                .map(|l| self.program.source_map.display(l))
                                .unwrap_or_else(|| e.def.to_string());
                            step.flow_note =
                                Some(format!("value may flow from T{writer_tid} write at {at}"));
                        }
                    }
                }
                // Attach provenance: the most specific runtime evidence
                // first (latest watchpoint hit at this statement in the
                // representative run), then that run's PT decode, then the
                // decision that promoted the statement into tracking, and
                // finally the slice criterion everything descends from.
                for step in &mut sketch.steps {
                    let mut chain: Vec<u64> = Vec::new();
                    if let Some(pos) = rep.hits.iter().rposition(|h| h.iid == step.stmt) {
                        if let Some(&ev) = rep.hit_events.get(pos) {
                            chain.push(ev);
                        }
                    }
                    chain.push(rep.decode_event);
                    if let Some(&ev) = origin.get(&step.stmt) {
                        chain.push(ev);
                    }
                    chain.push(slice_event);
                    chain.retain(|&s| s != 0);
                    let mut seen = BTreeSet::new();
                    chain.retain(|&s| seen.insert(s));
                    step.provenance = chain;
                    gist_obs::event!(SketchStepEmitted {
                        step: step.step as u64,
                        iid: step.stmt.0,
                        provenance: step.provenance.clone(),
                    });
                }
            }

            // Iteration boundary: push this iteration's events into the
            // global ring so streaming consumers (`gist-trace follow`,
            // `journal::drain_since` cursors) tail the diagnosis live
            // instead of waiting for the final drain.
            gist_obs::journal::flush_local();

            let done = stop(&sketch) || ast.saturated() || iterations >= self.config.max_iterations;
            if done {
                break;
            }
            ast.advance();
        }

        // AsT refinement tallies: promotions are statements the watchpoints
        // discovered and added to tracking; demotions are tracked statements
        // refinement proved never execute in failing runs.
        gist_obs::counter!("server.ast_promotions").add(refinement.discovered.len() as u64);
        let tracked_set: BTreeSet<InstrId> = ast.tracked_portion().iter().copied().collect();
        let demoted = refinement.removable(&tracked_set);
        gist_obs::counter!("server.ast_demotions").add(demoted.len() as u64);
        for &s in &demoted {
            gist_obs::event!(StmtDemoted {
                iid: s.0,
                reason: "never-executed",
                sigma: ast.sigma() as u64,
            });
        }
        drop(_span_diagnose);
        gist_obs::end_trace(iterations as u64, recurrences as u64);
        // Final checkpoint: make the trace.finish (and the post-loop
        // demotion events) visible to live cursors immediately.
        gist_obs::journal::flush_local();

        DiagnosisResult {
            sketch,
            slice,
            iterations,
            recurrences,
            total_runs,
            final_sigma: ast.sigma(),
            refinement,
            ranked,
            cost,
        }
    }
}

/// The statement a predictor points at, for journal attribution: the
/// remote (interleaved) access for atomicity violations, the earlier
/// access for races, the subject statement otherwise.
fn predictor_stmt(p: &gist_predictors::Predictor) -> InstrId {
    use gist_predictors::Predictor;
    match *p {
        Predictor::Atomicity { remote, .. } => remote,
        Predictor::Race { first, .. } => first,
        Predictor::Branch { stmt, .. }
        | Predictor::Value { stmt, .. }
        | Predictor::ValueRange { stmt, .. } => stmt,
    }
}

/// Converts one run's trace into the statistical observations of §3.3.
pub fn observations(trace: &RunTrace, failing: bool) -> RunObservations {
    let accesses: Vec<Access> = trace
        .hits
        .iter()
        .map(|h| Access {
            seq: h.seq,
            tid: h.tid,
            iid: h.iid,
            addr: h.addr,
            rw: match h.kind {
                AccessKind::Read => gist_predictors::pattern::Rw::R,
                AccessKind::Write => gist_predictors::pattern::Rw::W,
            },
            value: h.value,
        })
        .collect();
    let branches: Vec<(InstrId, bool)> = trace.branches.iter().map(|&(_, s, t)| (s, t)).collect();
    RunObservations {
        failing,
        accesses,
        branches,
        values: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientRunData;
    use gist_ir::parser::parse_program;
    use gist_tracking::InstrumentationPatch;
    use gist_tracking::TrackerRuntime;
    use gist_vm::{RunOutcome, SchedulerKind, Vm, VmConfig};

    const PBZIP_MINI: &str = r#"
fn cons(q) {
entry:
  m = load q        @ pbzip2.c:40
  lock m            @ pbzip2.c:41
  unlock m          @ pbzip2.c:43
  ret               @ pbzip2.c:44
}
fn main() {
entry:
  q = alloc 1       @ pbzip2.c:10
  mu = alloc 1      @ pbzip2.c:11
  store q, mu       @ pbzip2.c:11
  t = spawn cons(q) @ pbzip2.c:13
  free mu           @ pbzip2.c:20
  store q, 0        @ pbzip2.c:21
  join t            @ pbzip2.c:22
  ret               @ pbzip2.c:23
}
"#;

    /// A fleet that executes the program on the VM with varying seeds.
    struct VmFleet<'p> {
        program: &'p Program,
        next_seed: u64,
        runs: u64,
    }

    impl Fleet for VmFleet<'_> {
        fn next_run(&mut self, patch: &InstrumentationPatch) -> ClientRunData {
            self.next_seed += 1;
            self.runs += 1;
            let mut tracker = TrackerRuntime::new(self.program, patch.clone(), 4);
            let cfg = VmConfig {
                scheduler: SchedulerKind::Random {
                    seed: self.next_seed,
                    preempt: 0.6,
                },
                ..VmConfig::default()
            };
            let mut vm = Vm::new(self.program, cfg);
            let result = vm.run(&mut [&mut tracker]);
            let outcome = match result.outcome {
                RunOutcome::Failed(r) => Some(r),
                RunOutcome::Finished => None,
            };
            ClientRunData {
                run_id: self.runs,
                outcome,
                trace: tracker.finish(),
                retired: result.steps,
            }
        }
    }

    /// Finds a failing run to seed the diagnosis (the paper's step ①).
    fn first_failure(program: &Program) -> FailureReport {
        for seed in 0..200 {
            let cfg = VmConfig {
                scheduler: SchedulerKind::Random { seed, preempt: 0.6 },
                ..VmConfig::default()
            };
            let mut vm = Vm::new(program, cfg);
            if let RunOutcome::Failed(r) = vm.run(&mut []).outcome {
                return r;
            }
        }
        panic!("bug never manifested");
    }

    #[test]
    fn end_to_end_pbzip2_diagnosis() {
        let p = parse_program("pbzip2-mini", PBZIP_MINI).unwrap();
        let report = first_failure(&p);
        let main = p.function_by_name("main").unwrap();
        let store_null = main.blocks[0].instrs[5].id;

        let server = GistServer::new(
            &p,
            GistConfig {
                failing_runs_per_iteration: 6,
                title: "Failure Sketch for pbzip2 bug #1".into(),
                bug_class: "Concurrency bug".into(),
                ..GistConfig::default()
            },
        );
        let mut fleet = VmFleet {
            program: &p,
            next_seed: 1000,
            runs: 0,
        };
        let result = server.diagnose(
            &report,
            &mut fleet,
            None,
            // Developer stops once the sketch shows the root-cause store.
            &mut |sketch| sketch.stmts().contains(&store_null),
        );
        assert!(
            result.sketch.stmts().contains(&store_null),
            "sketch must contain the alias-missed root-cause store; got {:?}",
            result.sketch.stmts()
        );
        assert!(result.recurrences >= 1);
        assert!(result.iterations >= 1);
        assert!(result.cost.total_retired > 0);
        // The sketch spans both threads.
        assert!(
            result.sketch.threads.len() >= 2,
            "{:?}",
            result.sketch.threads
        );
        // A concurrency predictor should rank at the top among "order".
        let has_order_predictor = result
            .ranked
            .iter()
            .any(|s| s.predictor.category() == "order" && s.f_measure(0.5) > 0.0);
        assert!(has_order_predictor, "ranked: {:?}", result.ranked);
        // Render must not panic and must mention both threads.
        let text = result.sketch.render();
        assert!(text.contains("Thread T0"));
        assert!(text.contains("Thread T1"));
    }

    #[test]
    fn sequential_bug_diagnosis_with_branch_predictor() {
        // A curl-like sequential bug: bad input takes the unchecked path.
        let text = r#"
global urls = 0
fn next_url(u) {
entry:
  cur = load u           @ curl.c:20
  n = strlen cur         @ curl.c:21
  ret n
}
fn main() {
entry:
  s = input 0            @ curl.c:5
  bal = input 1          @ curl.c:6
  u = alloc 1            @ curl.c:7
  cond = cmp eq bal, 1   @ curl.c:8
  condbr cond, ok, bad   @ curl.c:8
ok:
  store u, s             @ curl.c:9
  br go
bad:
  store u, 0             @ curl.c:11
  br go
go:
  r = call next_url(u)   @ curl.c:13
  print r
  ret
}
"#;
        let p = parse_program("curl-mini", text).unwrap();
        // Find the failure: bal=0 stores NULL, strlen(NULL) segfaults.
        let mut report = None;
        {
            let cfg = VmConfig {
                inputs: vec![gist_vm::Input::str_from("{}{"), gist_vm::Input::Scalar(0)],
                ..VmConfig::default()
            };
            let mut vm = Vm::new(&p, cfg);
            if let RunOutcome::Failed(r) = vm.run(&mut []).outcome {
                report = Some(r);
            }
        }
        let report = report.expect("curl-mini must fail on unbalanced input");

        struct CurlFleet<'p> {
            program: &'p Program,
            n: u64,
        }
        impl Fleet for CurlFleet<'_> {
            fn next_run(&mut self, patch: &InstrumentationPatch) -> ClientRunData {
                self.n += 1;
                // Alternate failing (unbalanced) and successful inputs.
                let bad = self.n.is_multiple_of(2);
                let cfg = VmConfig {
                    inputs: vec![
                        gist_vm::Input::str_from(if bad { "{}{" } else { "abc" }),
                        gist_vm::Input::Scalar(i64::from(!bad)),
                    ],
                    ..VmConfig::default()
                };
                let mut tracker = TrackerRuntime::new(self.program, patch.clone(), 4);
                let mut vm = Vm::new(self.program, cfg);
                let result = vm.run(&mut [&mut tracker]);
                ClientRunData {
                    run_id: self.n,
                    outcome: match result.outcome {
                        RunOutcome::Failed(r) => Some(r),
                        RunOutcome::Finished => None,
                    },
                    trace: tracker.finish(),
                    retired: result.steps,
                }
            }
        }

        let server = GistServer::new(
            &p,
            GistConfig {
                failing_runs_per_iteration: 4,
                bug_class: "Sequential bug".into(),
                ..GistConfig::default()
            },
        );
        let mut fleet = CurlFleet { program: &p, n: 0 };
        let result = server.diagnose(&report, &mut fleet, None, &mut |sketch| {
            // Stop once a branch or value predictor emerges.
            sketch.predictors.iter().any(|s| s.f_measure(0.5) > 0.9)
        });
        assert!(
            result
                .ranked
                .iter()
                .any(|s| matches!(s.predictor.category(), "branch" | "value")
                    && s.f_measure(0.5) > 0.9),
            "a sequential predictor must emerge: {:?}",
            result.ranked
        );
        assert!(result.sketch.failure_type.contains("Sequential bug"));
    }

    #[test]
    fn static_only_mode_uses_tracked_set() {
        let p = parse_program("pbzip2-mini", PBZIP_MINI).unwrap();
        let report = first_failure(&p);
        let server = GistServer::new(
            &p,
            GistConfig {
                enable_control_flow: false,
                enable_data_flow: false,
                failing_runs_per_iteration: 2,
                max_iterations: 2,
                ..GistConfig::default()
            },
        );
        let mut fleet = VmFleet {
            program: &p,
            next_seed: 0,
            runs: 0,
        };
        let result = server.diagnose(&report, &mut fleet, None, &mut |_| false);
        // No PT, no watchpoints: cost counters for tracking must be zero.
        assert_eq!(result.cost.pt_bytes, 0);
        assert_eq!(result.cost.watch_traps, 0);
        // But a sketch is still produced from the static slice prefix.
        assert!(!result.sketch.is_empty());
    }
}
