//! Coverage-targeted diagnosis: run the AsT loop until the sketch covers
//! a ground-truth statement set.
//!
//! The interactive story of the paper has a developer refining the sketch
//! until it explains the failure; the evaluation harnesses (hand-built
//! bugbase, synthetic bugbase) mechanize that judgement as a *coverage
//! target* — a conjunction of statement groups, each group the statements
//! of one source line the sketch must mention. [`diagnose_until`] wires
//! the target into [`GistServer::diagnose`]'s stop callback so AsT halts
//! as soon as the root cause is on the sketch instead of burning the full
//! iteration budget.

use std::collections::BTreeSet;

use gist_ir::InstrId;
use gist_vm::FailureReport;

use crate::client::Fleet;
use crate::server::{DiagnosisResult, GistServer};

/// A conjunction of statement groups the sketch must cover: one group per
/// ground-truth source line, covered when *any* statement of the group is
/// on the sketch (line granularity — a line's load and its address
/// computation are interchangeable evidence).
#[derive(Clone, Debug, Default)]
pub struct CoverageTarget {
    /// The groups; an empty group can never be covered (the target line
    /// has no statements, so the goal is unreachable and `diagnose_until`
    /// falls back to running AsT to saturation).
    pub groups: Vec<Vec<InstrId>>,
}

impl CoverageTarget {
    /// Builds a target from per-line statement groups.
    pub fn from_groups(groups: Vec<Vec<InstrId>>) -> CoverageTarget {
        CoverageTarget { groups }
    }

    /// True if every group has at least one statement in `stmts`.
    pub fn covered_by(&self, stmts: &BTreeSet<InstrId>) -> bool {
        self.groups
            .iter()
            .all(|g| !g.is_empty() && g.iter().any(|s| stmts.contains(s)))
    }

    /// True if the target can be satisfied at all (no empty groups).
    pub fn achievable(&self) -> bool {
        self.groups.iter().all(|g| !g.is_empty())
    }
}

/// Runs the full diagnosis loop, stopping early once the sketch covers
/// `target` (in addition to the server's own saturation criteria). With
/// an empty target the loop stops at the first assembled sketch; with an
/// unachievable one it runs to saturation like plain `diagnose`.
pub fn diagnose_until(
    server: &GistServer,
    report: &FailureReport,
    fleet: &mut dyn Fleet,
    ideal: Option<&BTreeSet<InstrId>>,
    target: &CoverageTarget,
) -> DiagnosisResult {
    server.diagnose(report, fleet, ideal, &mut |sketch| {
        let stmts: BTreeSet<InstrId> = sketch.stmts().into_iter().collect();
        target.covered_by(&stmts)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_target_is_trivially_covered() {
        let t = CoverageTarget::default();
        assert!(t.covered_by(&BTreeSet::new()));
        assert!(t.achievable());
    }

    #[test]
    fn unachievable_target_never_covers() {
        let t = CoverageTarget::from_groups(vec![vec![], vec![InstrId(3)]]);
        assert!(!t.achievable());
        assert!(!t.covered_by(&BTreeSet::from([InstrId(3)])));
    }

    #[test]
    fn any_statement_of_a_group_satisfies_it() {
        let t = CoverageTarget::from_groups(vec![vec![InstrId(1), InstrId(2)], vec![InstrId(9)]]);
        assert!(t.covered_by(&BTreeSet::from([InstrId(2), InstrId(9)])));
        assert!(!t.covered_by(&BTreeSet::from([InstrId(1), InstrId(2)])));
    }
}
