//! The client-side abstraction: what one production run returns.

use gist_ir::InstrId;
use gist_tracking::{InstrumentationPatch, RunTrace};
use gist_vm::FailureReport;

/// Everything Gist's server receives from one instrumented production run.
#[derive(Clone, Debug)]
pub struct ClientRunData {
    /// Monotonic run id (for diagnostics).
    pub run_id: u64,
    /// The failure report, if the run failed (`None` = successful run).
    pub outcome: Option<FailureReport>,
    /// The collected trace (decoded PT + watchpoint hits + counters).
    pub trace: RunTrace,
    /// Total statements the run retired (denominator of overhead models).
    pub retired: u64,
}

impl ClientRunData {
    /// True if the run failed with the given failure signature (Gist
    /// matches failures by program counter + stack trace, §3 fn. 1).
    pub fn matches_failure(&self, signature: u64) -> bool {
        self.outcome
            .as_ref()
            .map(|r| r.signature() == signature)
            .unwrap_or(false)
    }

    /// The failing statement if the run failed.
    pub fn failing_stmt(&self) -> Option<InstrId> {
        self.outcome.as_ref().map(|r| r.failing_stmt)
    }
}

/// A source of production runs. Implemented by the simulated cooperative
/// fleet (`gist-coop`) and by in-process test fleets.
pub trait Fleet {
    /// Executes one production run under the given instrumentation and
    /// returns its data. Successive calls represent successive runs in
    /// the data center / user endpoints.
    fn next_run(&mut self, patch: &InstrumentationPatch) -> ClientRunData;

    /// Advises the fleet how many more runs the server expects to request
    /// in the current collection round, so batching fleets can size their
    /// prefetch and avoid executing runs that would only be discarded.
    /// Purely a throughput hint: implementations must return identical
    /// run data with or without it. Default: ignored.
    fn hint_runs_remaining(&mut self, _remaining: u64) {}
}

impl<F> Fleet for F
where
    F: FnMut(&InstrumentationPatch) -> ClientRunData,
{
    fn next_run(&mut self, patch: &InstrumentationPatch) -> ClientRunData {
        self(patch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_vm::{FailureKind, FailureReport};

    fn report(stmt: u32) -> FailureReport {
        FailureReport {
            program: "p".into(),
            kind: FailureKind::SegFault { addr: 0 },
            failing_stmt: InstrId(stmt),
            tid: 0,
            stack: Vec::new(),
            loc: None,
        }
    }

    fn dummy_trace() -> RunTrace {
        RunTrace::default()
    }

    #[test]
    fn signature_matching() {
        let run = ClientRunData {
            run_id: 0,
            outcome: Some(report(5)),
            trace: dummy_trace(),
            retired: 10,
        };
        assert!(run.matches_failure(report(5).signature()));
        assert!(!run.matches_failure(report(6).signature()));
        assert_eq!(run.failing_stmt(), Some(InstrId(5)));
    }

    #[test]
    fn successful_run_matches_nothing() {
        let run = ClientRunData {
            run_id: 0,
            outcome: None,
            trace: dummy_trace(),
            retired: 10,
        };
        assert!(!run.matches_failure(report(5).signature()));
        assert_eq!(run.failing_stmt(), None);
    }

    #[test]
    fn closures_are_fleets() {
        let mut n = 0u64;
        let mut fleet = |_patch: &InstrumentationPatch| {
            n += 1;
            ClientRunData {
                run_id: n,
                outcome: None,
                trace: dummy_trace(),
                retired: 1,
            }
        };
        let patch = InstrumentationPatch::default();
        assert_eq!(Fleet::next_run(&mut fleet, &patch).run_id, 1);
        assert_eq!(Fleet::next_run(&mut fleet, &patch).run_id, 2);
    }
}
