//! Adaptive Slice Tracking (AsT, §3.2.1).
//!
//! AsT "initially enables runtime tracking for a small number of
//! statements (σ = 2 in our experiments) backward from the failure point"
//! — two, "because even a simple concurrency bug is likely to be caused by
//! two statements from different threads" — and "employs a multiplicative
//! increase strategy", doubling σ each iteration until the developer stops
//! it. The growth strategy is pluggable so the ablation bench can compare
//! multiplicative against linear growth.

use gist_ir::InstrId;
use gist_slicing::Slice;

/// The paper's initial tracked-slice size.
pub const DEFAULT_SIGMA: usize = 2;

/// How σ grows between AsT iterations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Growth {
    /// Double each iteration (the paper's strategy).
    Multiplicative,
    /// Add a fixed increment each iteration (ablation baseline).
    Linear(usize),
}

/// The AsT state machine for one failure's diagnosis.
#[derive(Clone, Debug)]
pub struct AstController {
    slice: Slice,
    sigma: usize,
    iteration: usize,
    growth: Growth,
}

impl AstController {
    /// Starts AsT over a slice with the default σ = 2 and doubling.
    pub fn new(slice: Slice) -> Self {
        Self::with_sigma(slice, DEFAULT_SIGMA, Growth::Multiplicative)
    }

    /// Starts AsT with an explicit initial σ and growth strategy
    /// (Fig. 12 sweeps the initial σ).
    pub fn with_sigma(slice: Slice, sigma: usize, growth: Growth) -> Self {
        AstController {
            slice,
            sigma: sigma.max(1),
            iteration: 0,
            growth,
        }
    }

    /// The slice being tracked.
    pub fn slice(&self) -> &Slice {
        &self.slice
    }

    /// Current σ.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Completed iterations.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The slice portion tracked this iteration: the σ statements nearest
    /// the failure.
    pub fn tracked_portion(&self) -> &[InstrId] {
        self.slice.prefix(self.sigma)
    }

    /// True once σ covers the whole slice (growing further is pointless).
    pub fn saturated(&self) -> bool {
        self.sigma >= self.slice.len()
    }

    /// Advances to the next iteration, growing σ. Returns the new σ.
    pub fn advance(&mut self) -> usize {
        self.iteration += 1;
        self.sigma = match self.growth {
            Growth::Multiplicative => self.sigma.saturating_mul(2),
            Growth::Linear(step) => self.sigma.saturating_add(step.max(1)),
        };
        gist_obs::counter!("server.ast_advances").inc();
        gist_obs::histogram!("server.ast_sigma").record(self.sigma as u64);
        self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::parser::parse_program;
    use gist_slicing::StaticSlicer;

    fn slice() -> Slice {
        let p = parse_program(
            "t",
            r#"
fn main() {
entry:
  a = const 1
  b = add a, 1
  c = add b, 1
  d = add c, 1
  e = add d, 1
  assert e, "boom"
  ret
}
"#,
        )
        .unwrap();
        let crit = p.functions[0].blocks[0].instrs[5].id;
        StaticSlicer::new(&p).compute(crit)
    }

    #[test]
    fn starts_at_sigma_two_and_doubles() {
        let mut ast = AstController::new(slice());
        assert_eq!(ast.sigma(), 2);
        assert_eq!(ast.tracked_portion().len(), 2);
        assert_eq!(ast.advance(), 4);
        assert_eq!(ast.advance(), 8);
        assert_eq!(ast.iteration(), 2);
    }

    #[test]
    fn tracked_portion_starts_at_criterion() {
        let ast = AstController::new(slice());
        assert_eq!(ast.tracked_portion()[0], ast.slice().criterion);
    }

    #[test]
    fn saturates_when_sigma_covers_slice() {
        let s = slice();
        let n = s.len();
        let mut ast = AstController::new(s);
        let mut guard = 0;
        while !ast.saturated() {
            ast.advance();
            guard += 1;
            assert!(guard < 32);
        }
        assert!(ast.sigma() >= n);
        assert_eq!(ast.tracked_portion().len(), n);
    }

    #[test]
    fn linear_growth_for_ablation() {
        let mut ast = AstController::with_sigma(slice(), 2, Growth::Linear(2));
        assert_eq!(ast.advance(), 4);
        assert_eq!(ast.advance(), 6);
        assert_eq!(ast.advance(), 8);
    }

    #[test]
    fn sigma_zero_clamped_to_one() {
        let ast = AstController::with_sigma(slice(), 0, Growth::Multiplicative);
        assert_eq!(ast.sigma(), 1);
    }
}
