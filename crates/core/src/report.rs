//! Failure-report clustering.
//!
//! "Gist identifies the same failure across multiple executions by
//! matching the program counters and stack traces of those executions"
//! (§3, footnote 1). In a deployment, many different failures stream in
//! from the fleet; the [`FailureIndex`] groups them by signature — the
//! same role Windows Error Reporting's bucketing plays in §7 — so each
//! cluster can drive its own diagnosis session.

use std::collections::HashMap;

use gist_vm::FailureReport;

/// One cluster of identical failures.
#[derive(Clone, Debug)]
pub struct FailureCluster {
    /// The signature shared by every report in the cluster.
    pub signature: u64,
    /// A representative report (the first one seen).
    pub exemplar: FailureReport,
    /// Number of reports folded into this cluster.
    pub count: u64,
    /// Run id of the first occurrence.
    pub first_seen: u64,
    /// Run id of the latest occurrence.
    pub last_seen: u64,
}

/// Groups incoming failure reports by signature.
#[derive(Debug, Default)]
pub struct FailureIndex {
    clusters: HashMap<u64, FailureCluster>,
    total_reports: u64,
}

impl FailureIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a failure report from run `run_id`; returns its signature.
    pub fn insert(&mut self, report: &FailureReport, run_id: u64) -> u64 {
        self.total_reports += 1;
        let sig = report.signature();
        self.clusters
            .entry(sig)
            .and_modify(|c| {
                c.count += 1;
                c.last_seen = run_id;
            })
            .or_insert_with(|| FailureCluster {
                signature: sig,
                exemplar: report.clone(),
                count: 1,
                first_seen: run_id,
                last_seen: run_id,
            });
        sig
    }

    /// The cluster for a signature, if any.
    pub fn cluster(&self, signature: u64) -> Option<&FailureCluster> {
        self.clusters.get(&signature)
    }

    /// All clusters, most frequent first (the triage order a developer —
    /// or Gist's server scheduling diagnosis sessions — would use).
    pub fn by_frequency(&self) -> Vec<&FailureCluster> {
        let mut v: Vec<&FailureCluster> = self.clusters.values().collect();
        v.sort_by(|a, b| b.count.cmp(&a.count).then(a.first_seen.cmp(&b.first_seen)));
        v
    }

    /// Number of distinct failures seen.
    pub fn distinct_failures(&self) -> usize {
        self.clusters.len()
    }

    /// Total reports folded in.
    pub fn total_reports(&self) -> u64 {
        self.total_reports
    }

    /// The recurrence rate of a cluster over a window of runs: how many
    /// runs per recurrence ("the once every 24 hours bugs in a 100 machine
    /// cluster", §1).
    pub fn runs_per_recurrence(&self, signature: u64, total_runs: u64) -> Option<f64> {
        let c = self.clusters.get(&signature)?;
        if c.count == 0 {
            return None;
        }
        Some(total_runs as f64 / c.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::{FuncId, InstrId};
    use gist_vm::{FailureKind, StackFrame};

    fn report(stmt: u32, kind: FailureKind) -> FailureReport {
        FailureReport {
            program: "p".into(),
            kind,
            failing_stmt: InstrId(stmt),
            tid: 0,
            stack: vec![StackFrame {
                func: FuncId(0),
                iid: InstrId(stmt),
            }],
            loc: None,
        }
    }

    #[test]
    fn identical_failures_cluster_together() {
        let mut idx = FailureIndex::new();
        let a = report(5, FailureKind::SegFault { addr: 0 });
        let s1 = idx.insert(&a, 1);
        let s2 = idx.insert(&report(5, FailureKind::SegFault { addr: 0x40 }), 9);
        assert_eq!(s1, s2, "addresses differ but the failure is the same");
        assert_eq!(idx.distinct_failures(), 1);
        let c = idx.cluster(s1).unwrap();
        assert_eq!(c.count, 2);
        assert_eq!(c.first_seen, 1);
        assert_eq!(c.last_seen, 9);
    }

    #[test]
    fn different_failures_stay_apart() {
        let mut idx = FailureIndex::new();
        idx.insert(&report(5, FailureKind::SegFault { addr: 0 }), 1);
        idx.insert(&report(6, FailureKind::SegFault { addr: 0 }), 2);
        idx.insert(&report(5, FailureKind::Deadlock), 3);
        assert_eq!(idx.distinct_failures(), 3);
        assert_eq!(idx.total_reports(), 3);
    }

    #[test]
    fn frequency_ordering_for_triage() {
        let mut idx = FailureIndex::new();
        for i in 0..5 {
            idx.insert(&report(1, FailureKind::Deadlock), i);
        }
        idx.insert(&report(2, FailureKind::Deadlock), 10);
        let order = idx.by_frequency();
        assert_eq!(order[0].count, 5);
        assert_eq!(order[1].count, 1);
    }

    #[test]
    fn recurrence_rate() {
        let mut idx = FailureIndex::new();
        let s = idx.insert(&report(1, FailureKind::Deadlock), 0);
        idx.insert(&report(1, FailureKind::Deadlock), 50);
        assert_eq!(idx.runs_per_recurrence(s, 100), Some(50.0));
        assert_eq!(idx.runs_per_recurrence(123, 100), None);
    }

    #[test]
    fn clusters_real_fleet_failures() {
        // Drive a real bug's workload and confirm the index separates the
        // crash flavors (different failing statements → different
        // clusters) while grouping repeats.
        use gist_vm::{RunOutcome, Vm};
        let bug = {
            // A tiny inline racy program with two distinct crash sites.
            let text = r#"
global x = 0
fn t2body(arg) {
entry:
  p = load $x
  v = load p
  ret
}
fn main() {
entry:
  q = alloc 1
  store $x, q
  t = spawn t2body(0)
  free q
  store $x, 0
  join t
  ret
}
"#;
            gist_ir::parser::parse_program("two-flavors", text).unwrap()
        };
        let mut idx = FailureIndex::new();
        let mut runs = 0u64;
        for seed in 0..300 {
            let cfg = gist_vm::VmConfig {
                scheduler: gist_vm::SchedulerKind::Random { seed, preempt: 0.6 },
                ..gist_vm::VmConfig::default()
            };
            runs += 1;
            if let RunOutcome::Failed(r) = Vm::new(&bug, cfg).run(&mut []).outcome {
                idx.insert(&r, runs);
            }
        }
        assert!(idx.total_reports() > 0, "the race must manifest");
        // Every cluster has a consistent exemplar signature.
        for c in idx.by_frequency() {
            assert_eq!(c.exemplar.signature(), c.signature);
        }
    }
}
