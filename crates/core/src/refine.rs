//! Slice refinement (§3, step ③; §3.2).
//!
//! "Refinement removes from the slice the statements that don't get
//! executed during the executions that Gist monitors, and it adds to the
//! slice statements that were not identified as being part of the slice
//! initially," the latter coming from watchpoint hits at untracked
//! statements (the alias-analysis gap, §3.2.3).

use std::collections::BTreeSet;

use gist_ir::InstrId;
use gist_tracking::RunTrace;

/// Accumulated refinement state for one failure across production runs.
#[derive(Clone, Debug, Default)]
pub struct Refinement {
    /// Tracked statements observed to execute in at least one *failing* run.
    pub executed_in_failing: BTreeSet<InstrId>,
    /// Tracked statements observed to execute in any run.
    pub executed_ever: BTreeSet<InstrId>,
    /// Statements discovered by watchpoints that were not tracked.
    pub discovered: BTreeSet<InstrId>,
    /// Failing runs folded in.
    pub failing_runs: usize,
    /// Successful runs folded in.
    pub successful_runs: usize,
}

impl Refinement {
    /// Creates an empty refinement.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one run's trace in.
    pub fn absorb(&mut self, trace: &RunTrace, failing: bool) {
        self.executed_ever.extend(&trace.executed_tracked);
        self.discovered.extend(&trace.discovered);
        if failing {
            self.failing_runs += 1;
            self.executed_in_failing.extend(&trace.executed_tracked);
            // Discovered statements executed by definition (a watchpoint
            // trapped on them).
            self.executed_in_failing.extend(&trace.discovered);
        } else {
            self.successful_runs += 1;
        }
    }

    /// The refined statement set for the failure sketch: statements
    /// observed (traced or watchpoint-discovered) in *failing* runs. A
    /// statement only ever seen in successful runs does not "lead to the
    /// failure" and stays out of the sketch.
    pub fn sketch_stmts(&self) -> BTreeSet<InstrId> {
        self.executed_in_failing.clone()
    }

    /// Tracked statements that never executed in any monitored run — the
    /// ones refinement removes from the slice.
    pub fn removable(&self, tracked: &BTreeSet<InstrId>) -> BTreeSet<InstrId> {
        tracked
            .iter()
            .copied()
            .filter(|s| !self.executed_ever.contains(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_pt::decoder::DecodedTrace;

    fn trace(executed: &[u32], discovered: &[u32]) -> RunTrace {
        RunTrace {
            decoded: DecodedTrace::default(),
            executed_tracked: executed.iter().map(|&i| InstrId(i)).collect(),
            discovered: discovered.iter().map(|&i| InstrId(i)).collect(),
            ..RunTrace::default()
        }
    }

    #[test]
    fn absorb_accumulates_by_outcome() {
        let mut r = Refinement::new();
        r.absorb(&trace(&[1, 2], &[]), true);
        r.absorb(&trace(&[2, 3], &[]), false);
        assert_eq!(r.failing_runs, 1);
        assert_eq!(r.successful_runs, 1);
        assert!(r.executed_in_failing.contains(&InstrId(1)));
        assert!(!r.executed_in_failing.contains(&InstrId(3)));
        assert!(r.executed_ever.contains(&InstrId(3)));
    }

    #[test]
    fn discovered_statements_join_the_sketch() {
        let mut r = Refinement::new();
        r.absorb(&trace(&[1], &[9]), true);
        let s = r.sketch_stmts();
        assert!(s.contains(&InstrId(1)));
        assert!(s.contains(&InstrId(9)), "watchpoint-discovered stmt added");
        // Discoveries from successful runs are recorded for refinement but
        // do not enter the failure sketch.
        r.absorb(&trace(&[], &[7]), false);
        assert!(r.discovered.contains(&InstrId(7)));
        assert!(!r.sketch_stmts().contains(&InstrId(7)));
    }

    #[test]
    fn removable_reports_never_executed() {
        let mut r = Refinement::new();
        r.absorb(&trace(&[1], &[]), true);
        let tracked: BTreeSet<InstrId> = [1, 2, 3].iter().map(|&i| InstrId(i)).collect();
        let dead = r.removable(&tracked);
        assert!(!dead.contains(&InstrId(1)));
        assert!(dead.contains(&InstrId(2)));
        assert!(dead.contains(&InstrId(3)));
    }

    #[test]
    fn successful_run_discoveries_still_recorded() {
        let mut r = Refinement::new();
        r.absorb(&trace(&[1], &[7]), false);
        assert!(r.discovered.contains(&InstrId(7)));
        // But sketch stmts only include failing-run observations.
        assert!(!r.sketch_stmts().contains(&InstrId(7)));
        assert!(!r.sketch_stmts().contains(&InstrId(1)));
    }
}
