//! Gist — the failure-sketching engine (SOSP'15).
//!
//! This crate wires the substrates together into the pipeline of the
//! paper's Fig. 2:
//!
//! 1. a [`gist_vm::FailureReport`] arrives from production ①,
//! 2. the server computes a static backward slice ([`gist_slicing`]),
//! 3. **Adaptive Slice Tracking** ([`ast`]) picks a σ-statement portion
//!    (σ = 2 initially, doubling per iteration, §3.2.1), the planner
//!    ([`gist_tracking`]) turns it into an
//!    [`gist_tracking::InstrumentationPatch`], and the patch ships to
//!    production runs ②,
//! 4. runs come back with decoded Intel PT control flow and ordered
//!    watchpoint hits; [`refine`] intersects the slice with what executed
//!    and adds watchpoint-discovered statements ③,
//! 5. failing and successful runs feed the statistical predictor ranking
//!    ([`gist_predictors`]) ④,
//! 6. the sketch [`engine`] assembles the failure sketch ⑤ — per-thread
//!    columns, time steps, best predictors highlighted.
//!
//! The production fleet is abstracted by the [`client::Fleet`] trait so the
//! same server drives the simulated data center of `gist-coop`, the
//! in-process test fleets in this crate, and the benchmark harness.

pub mod ast;
pub mod client;
pub mod engine;
pub mod eval;
pub mod refine;
pub mod report;
pub mod server;

pub use ast::AstController;
pub use client::{ClientRunData, Fleet};
pub use engine::SketchBuilder;
pub use eval::{diagnose_until, CoverageTarget};
pub use refine::Refinement;
pub use report::{FailureCluster, FailureIndex};
pub use server::{DiagnosisResult, GistConfig, GistServer};
