//! Bug specifications: program + workload + ground truth + paper numbers.

use std::collections::BTreeSet;

use gist_ir::{InstrId, Program};
use gist_sketch::IdealSketch;
use gist_vm::{FailureReport, RunOutcome, Vm, VmConfig};

/// Sequential vs concurrency bug (the sketch "Type:" line).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BugClass {
    /// Manifests only under particular thread interleavings.
    Concurrency,
    /// Manifests for particular inputs.
    Sequential,
}

impl BugClass {
    /// Display string for sketch type lines.
    pub fn label(self) -> &'static str {
        match self {
            BugClass::Concurrency => "Concurrency bug",
            BugClass::Sequential => "Sequential bug",
        }
    }
}

/// The paper's Table 1 row for this bug, kept verbatim for EXPERIMENTS.md
/// side-by-side comparison (sizes in the paper's units refer to the
/// *original* C programs, not our miniatures).
#[derive(Clone, Copy, Debug)]
pub struct PaperNumbers {
    /// Software size (sloccount LOC).
    pub software_loc: u64,
    /// Static slice size, source LOC.
    pub slice_src: u64,
    /// Static slice size, LLVM instructions.
    pub slice_instrs: u64,
    /// Ideal sketch size, source LOC.
    pub ideal_src: u64,
    /// Ideal sketch size, LLVM instructions.
    pub ideal_instrs: u64,
    /// Gist-computed sketch size, source LOC.
    pub gist_src: u64,
    /// Gist-computed sketch size, LLVM instructions.
    pub gist_instrs: u64,
    /// Failure recurrences to the best sketch.
    pub recurrences: u64,
    /// End-to-end sketch time, seconds.
    pub time_s: u64,
    /// Offline analysis time, seconds.
    pub offline_s: u64,
}

/// One evaluation bug.
pub struct BugSpec {
    /// Short id, e.g. `apache-21287`.
    pub name: &'static str,
    /// Display name, e.g. `Apache bug #21287`.
    pub display: &'static str,
    /// Software, e.g. `Apache httpd`.
    pub software: &'static str,
    /// Software version from Table 1.
    pub version: &'static str,
    /// Official bug-database id.
    pub bug_id: &'static str,
    /// Concurrency or sequential.
    pub class: BugClass,
    /// The miniature program.
    pub program: Program,
    /// Seeded workload: maps a production-run seed to a VM configuration.
    pub make_config: fn(u64) -> VmConfig,
    /// `(file, line)` pairs forming the ideal failure sketch.
    pub ideal_lines: Vec<(&'static str, u32)>,
    /// `(file, line)` pairs giving the ideal partial order of the key
    /// memory accesses in a *failing* run.
    pub ideal_order_lines: Vec<(&'static str, u32)>,
    /// `(file, line)` pairs a developer must see to fix the bug (the
    /// AsT stop condition used in evaluation).
    pub root_cause_lines: Vec<(&'static str, u32)>,
    /// Preferred failing location: when a bug can crash at several
    /// statements depending on the interleaving, the diagnosis seeds from
    /// the flavor that matches the production bug report (e.g. Apache
    /// #21287 was reported as a double free at the `free`, not as the
    /// use-after-free read some interleavings produce).
    pub prefer_loc: Option<(&'static str, u32)>,
    /// Paper-reported numbers.
    pub paper: PaperNumbers,
}

impl BugSpec {
    /// VM configuration for one production run.
    pub fn vm_config(&self, seed: u64) -> VmConfig {
        (self.make_config)(seed)
    }

    /// All statements attributed to `file:line`.
    pub fn stmts_at(&self, file: &str, line: u32) -> Vec<InstrId> {
        let fid = match self.program.source_map.find_file(file) {
            Some(f) => f,
            None => return Vec::new(),
        };
        self.program
            .all_stmt_ids()
            .filter(|&id| {
                self.program
                    .stmt_loc(id)
                    .map(|l| l.file == fid && l.line == line)
                    .unwrap_or(false)
            })
            .collect()
    }

    fn lines_to_stmts(&self, lines: &[(&'static str, u32)]) -> Vec<InstrId> {
        let mut out = Vec::new();
        for &(f, l) in lines {
            out.extend(self.stmts_at(f, l));
        }
        out
    }

    /// The ideal sketch statement set.
    pub fn ideal_stmts(&self) -> BTreeSet<InstrId> {
        self.lines_to_stmts(&self.ideal_lines).into_iter().collect()
    }

    /// The ideal sketch, resolved to statement ids.
    pub fn ideal_sketch(&self) -> IdealSketch {
        let stmts: Vec<InstrId> = self.lines_to_stmts(&self.ideal_lines);
        let access_order = self.lines_to_stmts(&self.ideal_order_lines);
        let source_loc = self.program.source_loc_count(stmts.iter());
        IdealSketch {
            stmts,
            access_order,
            source_loc,
        }
    }

    /// The statements a developer must see to fix the bug.
    pub fn root_cause_stmts(&self) -> BTreeSet<InstrId> {
        self.lines_to_stmts(&self.root_cause_lines)
            .into_iter()
            .collect()
    }

    /// True if every one of the given source lines has at least one of its
    /// statements in `stmts`. Coverage is *line*-granular: a developer
    /// reading the sketch sees source lines, and one representative
    /// statement per line suffices (e.g. the store of a `x--` line whose
    /// register arithmetic is invisible to tracking).
    pub fn lines_covered(&self, stmts: &BTreeSet<InstrId>, lines: &[(&'static str, u32)]) -> bool {
        lines.iter().all(|&(f, l)| {
            let line_stmts = self.stmts_at(f, l);
            !line_stmts.is_empty() && line_stmts.iter().any(|s| stmts.contains(s))
        })
    }

    /// Line-level root-cause coverage (see [`BugSpec::lines_covered`]).
    pub fn root_cause_covered(&self, stmts: &BTreeSet<InstrId>) -> bool {
        self.lines_covered(stmts, &self.root_cause_lines)
    }

    /// Line-level ideal-sketch coverage.
    pub fn ideal_covered(&self, stmts: &BTreeSet<InstrId>) -> bool {
        self.lines_covered(stmts, &self.ideal_lines)
    }

    /// Runs seeds `0..max_seeds` until the bug manifests; returns the
    /// first failure report and its seed (Gist's input ①). If the spec
    /// names a preferred failing location, failures elsewhere are skipped
    /// while searching (falling back to the first failure seen if the
    /// preferred flavor never shows).
    pub fn find_failure(&self, max_seeds: u64) -> Option<(u64, FailureReport)> {
        let mut fallback: Option<(u64, FailureReport)> = None;
        for seed in 0..max_seeds {
            let mut vm = Vm::new(&self.program, self.vm_config(seed));
            if let RunOutcome::Failed(r) = vm.run(&mut []).outcome {
                match self.prefer_loc {
                    None => return Some((seed, r)),
                    Some((f, l)) => {
                        let matches = r
                            .loc
                            .map(|loc| self.program.source_map.display(loc) == format!("{f}:{l}"))
                            .unwrap_or(false);
                        if matches {
                            return Some((seed, r));
                        }
                        if fallback.is_none() {
                            fallback = Some((seed, r));
                        }
                    }
                }
            }
        }
        fallback
    }

    /// Fraction of the first `n` seeds that fail (workload diagnostics).
    pub fn failure_rate(&self, n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let mut fails = 0u64;
        for seed in 0..n {
            let mut vm = Vm::new(&self.program, self.vm_config(seed));
            if matches!(vm.run(&mut []).outcome, RunOutcome::Failed(_)) {
                fails += 1;
            }
        }
        fails as f64 / n as f64
    }

    /// Program size in IR statements (our miniature's "LLVM instructions").
    pub fn program_stmts(&self) -> usize {
        self.program.stmt_count()
    }

    /// Program size in distinct annotated source lines.
    pub fn program_src_lines(&self) -> usize {
        let ids: Vec<InstrId> = self.program.all_stmt_ids().collect();
        self.program.source_loc_count(ids.iter())
    }
}

/// All 11 bugs, in Table 1 order.
pub fn all_bugs() -> Vec<BugSpec> {
    vec![
        crate::bugs::apache::apache_1_45605(),
        crate::bugs::apache::apache_2_25520(),
        crate::bugs::apache::apache_3_21287(),
        crate::bugs::apache::apache_4_21285(),
        crate::bugs::cppcheck::cppcheck_1_3238(),
        crate::bugs::cppcheck::cppcheck_2_2782(),
        crate::bugs::curl::curl_965(),
        crate::bugs::transmission::transmission_1818(),
        crate::bugs::sqlite::sqlite_1672(),
        crate::bugs::memcached::memcached_127(),
        crate::bugs::pbzip2::pbzip2_1(),
    ]
}

/// Looks up a bug by its short name.
pub fn bug_by_name(name: &str) -> Option<BugSpec> {
    all_bugs().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eleven_bugs_present() {
        let bugs = all_bugs();
        assert_eq!(bugs.len(), 11);
        let names: Vec<&str> = bugs.iter().map(|b| b.name).collect();
        for expected in [
            "apache-45605",
            "apache-25520",
            "apache-21287",
            "apache-21285",
            "cppcheck-3238",
            "cppcheck-2782",
            "curl-965",
            "transmission-1818",
            "sqlite-1672",
            "memcached-127",
            "pbzip2-1",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn every_bug_has_resolvable_ground_truth() {
        for bug in all_bugs() {
            assert!(
                !bug.ideal_stmts().is_empty(),
                "{}: ideal sketch resolves to no statements",
                bug.name
            );
            assert!(
                !bug.root_cause_stmts().is_empty(),
                "{}: root cause resolves to no statements",
                bug.name
            );
            let ideal = bug.ideal_sketch();
            assert!(
                !ideal.access_order.is_empty(),
                "{}: ideal order empty",
                bug.name
            );
            assert!(ideal.source_loc > 0, "{}: ideal source loc", bug.name);
        }
    }

    #[test]
    fn every_bug_manifests_within_seed_budget() {
        for bug in all_bugs() {
            let found = bug.find_failure(300);
            assert!(found.is_some(), "{} never failed in 300 seeds", bug.name);
        }
    }

    #[test]
    fn every_bug_also_succeeds_sometimes() {
        for bug in all_bugs() {
            let rate = bug.failure_rate(60);
            assert!(
                rate < 1.0,
                "{} fails on every seed (rate {rate}) — needs successful runs too",
                bug.name
            );
            assert!(rate > 0.0, "{} never fails in 60 seeds", bug.name);
        }
    }

    #[test]
    fn failure_class_matches_spec() {
        for bug in all_bugs() {
            let (_, report) = bug.find_failure(300).expect("manifests");
            // The failing statement must be attributed source.
            assert!(
                report.loc.is_some(),
                "{}: failing stmt has no loc",
                bug.name
            );
            // Root cause and failing statement should be distinct, except
            // when the failing statement itself is part of the root cause.
            assert!(!report.stack.is_empty(), "{}: empty stack", bug.name);
        }
    }

    #[test]
    fn bug_lookup_by_name() {
        assert!(bug_by_name("pbzip2-1").is_some());
        assert!(bug_by_name("nope").is_none());
    }

    #[test]
    fn programs_have_scaffolding_beyond_the_slice() {
        // Miniatures still follow Table 1's shape: the ideal sketch is a
        // strict subset of the program.
        for bug in all_bugs() {
            let ideal = bug.ideal_stmts().len();
            let total = bug.program_stmts();
            assert!(
                total >= ideal + 5,
                "{}: program ({total}) should exceed ideal sketch ({ideal})",
                bug.name
            );
        }
    }

    #[test]
    fn paper_numbers_recorded() {
        for bug in all_bugs() {
            assert!(bug.paper.software_loc > 0);
            assert!(bug.paper.recurrences >= 2, "{}", bug.name);
        }
    }
}
