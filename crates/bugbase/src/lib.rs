//! Bugbase — the paper's evaluation suite (§5, Table 1), rebuilt.
//!
//! The paper evaluates Gist on 11 failures from 7 programs: Apache httpd
//! (4 bugs), Cppcheck (2), Curl, Transmission, SQLite, Memcached, and
//! Pbzip2, reproduced through their "Bugbase" framework. The original
//! programs are hundreds of thousands of lines of C; here each bug is
//! re-created as a miniature MiniC program that is **structurally
//! faithful** to the real root cause:
//!
//! * the same *kind* of failure (segfault / double free / assert / UAF),
//! * the same *failure-predicting pattern* (e.g. Apache #21287 is still a
//!   non-atomic `dec; if (!refcnt) free` double free across two threads;
//!   Curl #965 is still `strlen(NULL)` reached only for unbalanced-brace
//!   inputs),
//! * the same relationship between root cause and failure point (including
//!   root causes that static slicing *misses* without alias analysis and
//!   runtime watchpoints must discover),
//! * plus unrelated scaffolding code so slices are a strict subset of the
//!   program, as in Table 1.
//!
//! Every bug carries: the program, a seeded workload generator (some runs
//! fail, most succeed), a hand-built **ideal failure sketch** (the §5.2
//! ground truth), the root-cause statements a developer needs (the
//! stop-condition for AsT), and the paper's reported metadata for
//! side-by-side comparison in EXPERIMENTS.md.

//! Alongside the 11 hand-built fixtures, [`synth`] generates seeded
//! random programs with exactly one *injected* root cause each and a
//! machine-checkable ground truth, scaling the accuracy claim to
//! hundreds of bugs (`repro bench --synthetic N --seed S`).

pub mod bugs;
pub mod spec;
pub mod synth;

pub use spec::{all_bugs, bug_by_name, BugClass, BugSpec, PaperNumbers};
pub use synth::{
    generate, generate_control, generate_with_pattern, synth_config, ExpectedFailure, Family,
    GroundTruth, Model, PatternKind, SynthBug,
};
