//! The 11 evaluation bugs, one module per software system.

pub mod apache;
pub mod cppcheck;
pub mod curl;
pub mod memcached;
pub mod pbzip2;
pub mod sqlite;
pub mod transmission;

use gist_ir::parser::parse_program;
use gist_ir::Program;

/// Parses a bug program, panicking with context on error (bug programs are
/// compiled-in constants; a parse error is a bug in bugbase itself).
pub(crate) fn parse(name: &str, text: &str) -> Program {
    match parse_program(name, text) {
        Ok(p) => p,
        Err(e) => panic!("bugbase program {name} failed to parse: {e}"),
    }
}
